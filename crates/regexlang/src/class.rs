//! Character classes as 128-bit ASCII sets.
//!
//! All symbols in the IOS policy-regexp dialect are ASCII; the two sentinel
//! code points (`0x02`, `0x03`) live inside the same 0..128 space, so a
//! single bitset covers literals, `[a-z]` classes, `.`, `_`, and anchors.

use std::fmt;

use crate::{SENT_END, SENT_START};

/// A set of ASCII symbols (0..128), stored as two 64-bit words.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CharClass {
    bits: [u64; 2],
}

impl CharClass {
    /// The empty set.
    pub const fn empty() -> CharClass {
        CharClass { bits: [0, 0] }
    }

    /// A single symbol.
    pub fn single(b: u8) -> CharClass {
        let mut c = CharClass::empty();
        c.insert(b);
        c
    }

    /// An inclusive range of symbols.
    pub fn range(lo: u8, hi: u8) -> CharClass {
        let mut c = CharClass::empty();
        for b in lo..=hi {
            c.insert(b);
        }
        c
    }

    /// The `.` class: every printable symbol and tab, excluding the virtual
    /// start/end sentinels (a dot never crosses a text boundary).
    pub fn dot() -> CharClass {
        let mut c = CharClass::range(0x20, 0x7E);
        c.insert(b'\t');
        c
    }

    /// The as-path `_` class: start, end, and the delimiter characters IOS
    /// documents (space, comma, braces, parentheses).
    pub fn underscore() -> CharClass {
        let mut c = CharClass::empty();
        for b in [SENT_START, SENT_END, b' ', b',', b'{', b'}', b'(', b')'] {
            c.insert(b);
        }
        c
    }

    /// The decimal digits.
    pub fn digits() -> CharClass {
        CharClass::range(b'0', b'9')
    }

    /// Inserts a symbol.
    ///
    /// # Panics
    /// Panics on non-ASCII input.
    pub fn insert(&mut self, b: u8) {
        assert!(b < 128, "CharClass holds ASCII only");
        self.bits[(b / 64) as usize] |= 1u64 << (b % 64);
    }

    /// Membership test (non-ASCII symbols are never members).
    pub const fn contains(&self, b: u8) -> bool {
        if b >= 128 {
            return false;
        }
        self.bits[(b / 64) as usize] >> (b % 64) & 1 == 1
    }

    /// Complement *within the dot universe* (printables + tab, no
    /// sentinels): the meaning of `[^…]` in this dialect.
    pub fn negated(&self) -> CharClass {
        let dot = CharClass::dot();
        CharClass {
            bits: [dot.bits[0] & !self.bits[0], dot.bits[1] & !self.bits[1]],
        }
    }

    /// Set union.
    pub fn union(&self, other: &CharClass) -> CharClass {
        CharClass {
            bits: [self.bits[0] | other.bits[0], self.bits[1] | other.bits[1]],
        }
    }

    /// True if no symbols are present.
    pub const fn is_empty(&self) -> bool {
        self.bits[0] == 0 && self.bits[1] == 0
    }

    /// Number of member symbols.
    pub const fn len(&self) -> u32 {
        self.bits[0].count_ones() + self.bits[1].count_ones()
    }

    /// True if every member is a decimal digit.
    pub fn is_digit_subset(&self) -> bool {
        let d = CharClass::digits();
        self.bits[0] & !d.bits[0] == 0 && self.bits[1] & !d.bits[1] == 0
    }

    /// Iterates over member symbols in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0u8..128).filter(move |&b| self.contains(b))
    }
}

impl fmt::Debug for CharClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CharClass{{")?;
        for b in self.iter() {
            match b {
                SENT_START => write!(f, "⊢")?,
                SENT_END => write!(f, "⊣")?,
                b if b.is_ascii_graphic() || b == b' ' => write!(f, "{}", b as char)?,
                b => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_range() {
        let c = CharClass::single(b'a');
        assert!(c.contains(b'a'));
        assert!(!c.contains(b'b'));
        let r = CharClass::range(b'2', b'5');
        assert!(r.contains(b'2') && r.contains(b'5'));
        assert!(!r.contains(b'1') && !r.contains(b'6'));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn dot_excludes_sentinels() {
        let d = CharClass::dot();
        assert!(d.contains(b'a') && d.contains(b' ') && d.contains(b'\t'));
        assert!(!d.contains(SENT_START) && !d.contains(SENT_END));
        assert!(!d.contains(b'\n'));
    }

    #[test]
    fn underscore_members() {
        let u = CharClass::underscore();
        for b in [SENT_START, SENT_END, b' ', b',', b'{', b'}', b'(', b')'] {
            assert!(u.contains(b));
        }
        assert!(!u.contains(b'a') && !u.contains(b'0'));
    }

    #[test]
    fn negation_stays_in_dot_universe() {
        let n = CharClass::digits().negated();
        assert!(n.contains(b'a'));
        assert!(!n.contains(b'5'));
        assert!(!n.contains(SENT_START), "negation must not admit sentinels");
    }

    #[test]
    fn digit_subset_detection() {
        assert!(CharClass::digits().is_digit_subset());
        assert!(CharClass::range(b'2', b'5').is_digit_subset());
        assert!(!CharClass::single(b'a').is_digit_subset());
        assert!(!CharClass::underscore().is_digit_subset());
        assert!(CharClass::empty().is_digit_subset());
    }

    #[test]
    fn union_and_iter() {
        let u = CharClass::single(b'a').union(&CharClass::single(b'c'));
        let members: Vec<u8> = u.iter().collect();
        assert_eq!(members, vec![b'a', b'c']);
    }

    #[test]
    fn non_ascii_never_contained() {
        assert!(!CharClass::dot().contains(200));
    }
}
