//! Thompson NFA construction and simulation.
//!
//! The matcher is a classic epsilon-closure simulator: linear in
//! `input.len() * states`, no backtracking, immune to pathological
//! patterns — important because the anonymizer runs attacker-adjacent
//! input (arbitrary config text) through these automata millions of times.

use crate::ast::Ast;
use crate::class::CharClass;

/// State identifier.
pub type StateId = usize;

/// A transition on a symbol class.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Symbols this edge consumes.
    pub on: CharClass,
    /// Destination state.
    pub to: StateId,
}

/// One NFA state: any number of symbol edges plus epsilon edges.
#[derive(Debug, Clone, Default)]
pub struct State {
    /// Symbol-consuming edges.
    pub edges: Vec<Transition>,
    /// Epsilon edges.
    pub eps: Vec<StateId>,
}

/// A Thompson NFA with a single start and single accept state.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// All states; indices are [`StateId`]s.
    pub states: Vec<State>,
    /// The start state.
    pub start: StateId,
    /// The unique accepting state.
    pub accept: StateId,
}

impl Nfa {
    /// Builds the Thompson NFA for `ast`.
    pub fn from_ast(ast: &Ast) -> Nfa {
        let mut b = Builder { states: Vec::new() };
        let (start, accept) = b.build(ast);
        Nfa {
            states: b.states,
            start,
            accept,
        }
    }

    /// Number of states (for benchmarks and tests).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the automaton has no states (never happens for built NFAs,
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Epsilon closure of `set`, in place. `set` is a dense boolean mask.
    fn closure(&self, set: &mut [bool], work: &mut Vec<StateId>) {
        work.clear();
        work.extend((0..set.len()).filter(|&s| set[s]));
        while let Some(s) = work.pop() {
            for &t in &self.states[s].eps {
                if !set[t] {
                    set[t] = true;
                    work.push(t);
                }
            }
        }
    }

    /// Anchored simulation: does the entire `input` drive start → accept?
    pub fn full_match(&self, input: &[u8]) -> bool {
        let n = self.states.len();
        let mut cur = vec![false; n];
        let mut work = Vec::with_capacity(n);
        cur[self.start] = true;
        self.closure(&mut cur, &mut work);
        let mut next = vec![false; n];
        for &b in input {
            next.iter_mut().for_each(|v| *v = false);
            let mut any = false;
            #[allow(clippy::needless_range_loop)] // dense-mask scan
            for s in 0..n {
                if !cur[s] {
                    continue;
                }
                for t in &self.states[s].edges {
                    if t.on.contains(b) {
                        next[t.to] = true;
                        any = true;
                    }
                }
            }
            if !any {
                return false;
            }
            self.closure(&mut next, &mut work);
            std::mem::swap(&mut cur, &mut next);
        }
        cur[self.accept]
    }

    /// Unanchored simulation: does any substring of `input` drive
    /// start → accept? Implemented with the multi-start trick (re-inject
    /// the start closure before every symbol), which keeps the scan
    /// single-pass.
    pub fn search(&self, input: &[u8]) -> bool {
        let n = self.states.len();
        let mut cur = vec![false; n];
        let mut work = Vec::with_capacity(n);
        cur[self.start] = true;
        self.closure(&mut cur, &mut work);
        if cur[self.accept] {
            return true; // empty match
        }
        let mut next = vec![false; n];
        for &b in input {
            next.iter_mut().for_each(|v| *v = false);
            #[allow(clippy::needless_range_loop)] // dense-mask scan
            for s in 0..n {
                if !cur[s] {
                    continue;
                }
                for t in &self.states[s].edges {
                    if t.on.contains(b) {
                        next[t.to] = true;
                    }
                }
            }
            // New match may start at the next position.
            next[self.start] = true;
            self.closure(&mut next, &mut work);
            if next[self.accept] {
                return true;
            }
            std::mem::swap(&mut cur, &mut next);
        }
        false
    }
}

struct Builder {
    states: Vec<State>,
}

impl Builder {
    fn new_state(&mut self) -> StateId {
        self.states.push(State::default());
        self.states.len() - 1
    }

    fn eps(&mut self, from: StateId, to: StateId) {
        self.states[from].eps.push(to);
    }

    /// Returns `(start, accept)` for the fragment.
    fn build(&mut self, ast: &Ast) -> (StateId, StateId) {
        match ast {
            Ast::Epsilon => {
                let s = self.new_state();
                let a = self.new_state();
                self.eps(s, a);
                (s, a)
            }
            Ast::Class(c) => {
                let s = self.new_state();
                let a = self.new_state();
                self.states[s].edges.push(Transition { on: *c, to: a });
                (s, a)
            }
            Ast::Concat(parts) => {
                let frags: Vec<(StateId, StateId)> =
                    parts.iter().map(|p| self.build(p)).collect();
                let (start, mut acc) = frags[0];
                for &(s, a) in &frags[1..] {
                    self.eps(acc, s);
                    acc = a;
                }
                (start, acc)
            }
            Ast::Alt(parts) => {
                let s = self.new_state();
                let a = self.new_state();
                for p in parts {
                    let (ps, pa) = self.build(p);
                    self.eps(s, ps);
                    self.eps(pa, a);
                }
                (s, a)
            }
            Ast::Star(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                let (is, ia) = self.build(inner);
                self.eps(s, is);
                self.eps(s, a);
                self.eps(ia, is);
                self.eps(ia, a);
                (s, a)
            }
            Ast::Plus(inner) => {
                let (is, ia) = self.build(inner);
                let a = self.new_state();
                self.eps(ia, is);
                self.eps(ia, a);
                (is, a)
            }
            Ast::Opt(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                let (is, ia) = self.build(inner);
                self.eps(s, is);
                self.eps(s, a);
                self.eps(ia, a);
                (s, a)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn full(pat: &str, s: &str) -> bool {
        Nfa::from_ast(&parse(pat).unwrap()).full_match(s.as_bytes())
    }

    fn find(pat: &str, s: &str) -> bool {
        Nfa::from_ast(&parse(pat).unwrap()).search(s.as_bytes())
    }

    #[test]
    fn literal_full_match() {
        assert!(full("701", "701"));
        assert!(!full("701", "702"));
        assert!(!full("701", "7012"));
        assert!(!full("701", "70"));
    }

    #[test]
    fn alternation() {
        assert!(full("701|1239", "701"));
        assert!(full("701|1239", "1239"));
        assert!(!full("701|1239", "7011239"));
    }

    #[test]
    fn star_and_plus() {
        assert!(full("1(23)*", "1"));
        assert!(full("1(23)*", "12323"));
        assert!(!full("1(23)*", "123232"));
        assert!(full("9+", "999"));
        assert!(!full("9+", ""));
    }

    #[test]
    fn epsilon_pattern_matches_empty_only() {
        let nfa = Nfa::from_ast(&Ast::Epsilon);
        assert!(nfa.full_match(b""));
        assert!(!nfa.full_match(b"a"));
    }

    #[test]
    fn search_finds_inner_substring() {
        assert!(find("701", "x701y"));
        assert!(find("701", "701"));
        assert!(!find("701", "70 1"));
    }

    #[test]
    fn search_with_empty_pattern_always_matches() {
        assert!(find("()", "anything"));
        assert!(find("a*", "bbb"));
    }

    #[test]
    fn class_edges() {
        assert!(full("[0-9]+", "0123456789"));
        assert!(!full("[0-9]+", "12a34"));
    }

    #[test]
    fn pathological_pattern_terminates_fast() {
        // (a?)^20 a^20 against a^20 — exponential for backtrackers,
        // linear here.
        let pat = format!("{}{}", "a?".repeat(20), "a".repeat(20));
        let input = "a".repeat(20);
        assert!(full(&pat, &input));
    }

    #[test]
    fn state_counts_are_linear() {
        let small = Nfa::from_ast(&parse("abc").unwrap()).len();
        let big = Nfa::from_ast(&parse(&"abc".repeat(50)).unwrap()).len();
        assert!(big <= small * 50 + 2);
    }
}
