//! Subset construction and DFA minimization.
//!
//! The ASN rewriter enumerates a regexp's language over all 2^16 AS
//! numbers (paper §4.4). Running the NFA 65536 times works but is slow;
//! determinizing once and walking digit strings through the DFA makes the
//! enumeration essentially free. Minimization (Hopcroft's algorithm) is
//! the first half of the paper's proposed extension for emitting compact
//! rewritten regexps; the second half (FA → regexp) lives in [`crate::synth`].

use std::collections::HashMap;

use crate::ast::Ast;
use crate::class::CharClass;
use crate::nfa::Nfa;

/// A deterministic finite automaton over a compressed alphabet.
///
/// Symbols (ASCII bytes) are first mapped to *symbol classes*: groups of
/// bytes that every NFA edge treats identically. The transition table is
/// dense over classes, keeping subset construction and minimization fast
/// without a 128-wide row per state.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// `trans[state][class]` = next state, or `DEAD`.
    trans: Vec<Vec<u32>>,
    /// Accepting flags per state.
    accepting: Vec<bool>,
    /// Start state.
    start: u32,
    /// Byte → symbol-class index; bytes outside every edge map to the
    /// sink class (which always leads to `DEAD`).
    symbol_class: [u8; 128],
    /// Number of symbol classes (including the sink class).
    n_classes: usize,
}

/// Sentinel "no transition" state id.
const DEAD: u32 = u32::MAX;

impl Dfa {
    /// Determinizes `nfa` by subset construction.
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        let (symbol_class, n_classes) = compress_alphabet(nfa);

        let n = nfa.states.len();
        let closure = |set: &mut Vec<bool>| {
            let mut work: Vec<usize> = (0..n).filter(|&s| set[s]).collect();
            while let Some(s) = work.pop() {
                for &t in &nfa.states[s].eps {
                    if !set[t] {
                        set[t] = true;
                        work.push(t);
                    }
                }
            }
        };

        // Map from NFA state-set (as sorted indices) to DFA state id.
        let mut ids: HashMap<Vec<usize>, u32> = HashMap::new();
        let mut trans: Vec<Vec<u32>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut queue: Vec<Vec<bool>> = Vec::new();

        let mut start_set = vec![false; n];
        start_set[nfa.start] = true;
        closure(&mut start_set);
        let key0: Vec<usize> = (0..n).filter(|&s| start_set[s]).collect();
        ids.insert(key0, 0);
        trans.push(vec![DEAD; n_classes]);
        accepting.push(start_set[nfa.accept]);
        queue.push(start_set);

        // Pick one representative byte per symbol class for stepping.
        let mut rep = vec![None; n_classes];
        for b in 0u8..128 {
            let c = symbol_class[b as usize] as usize;
            if rep[c].is_none() {
                rep[c] = Some(b);
            }
        }

        let mut qi = 0;
        while qi < queue.len() {
            let cur = queue[qi].clone();
            let cur_id = qi as u32;
            qi += 1;
            for (class, &r) in rep.iter().enumerate() {
                let Some(byte) = r else { continue };
                let mut next = vec![false; n];
                let mut any = false;
                #[allow(clippy::needless_range_loop)] // dense-mask scan
                for s in 0..n {
                    if !cur[s] {
                        continue;
                    }
                    for t in &nfa.states[s].edges {
                        if t.on.contains(byte) {
                            next[t.to] = true;
                            any = true;
                        }
                    }
                }
                if !any {
                    continue; // stays DEAD
                }
                closure(&mut next);
                let key: Vec<usize> = (0..n).filter(|&s| next[s]).collect();
                let id = *ids.entry(key).or_insert_with(|| {
                    trans.push(vec![DEAD; n_classes]);
                    accepting.push(next[nfa.accept]);
                    queue.push(next);
                    (trans.len() - 1) as u32
                });
                trans[cur_id as usize][class] = id;
            }
        }

        Dfa {
            trans,
            accepting,
            start: 0,
            symbol_class,
            n_classes,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.trans.len()
    }

    /// True if the DFA has no states (cannot occur via `from_nfa`).
    pub fn is_empty(&self) -> bool {
        self.trans.is_empty()
    }

    /// Runs the DFA on raw bytes; anchored (whole-input) acceptance.
    pub fn accepts(&self, input: &[u8]) -> bool {
        let mut s = self.start;
        for &b in input {
            if b >= 128 {
                return false;
            }
            let c = self.symbol_class[b as usize] as usize;
            s = self.trans[s as usize][c];
            if s == DEAD {
                return false;
            }
        }
        self.accepting[s as usize]
    }

    /// True if the accepted language is empty.
    pub fn language_is_empty(&self) -> bool {
        // BFS from start over non-dead edges looking for an accept state.
        let mut seen = vec![false; self.len()];
        let mut work = vec![self.start];
        seen[self.start as usize] = true;
        while let Some(s) = work.pop() {
            if self.accepting[s as usize] {
                return false;
            }
            for &t in &self.trans[s as usize] {
                if t != DEAD && !seen[t as usize] {
                    seen[t as usize] = true;
                    work.push(t);
                }
            }
        }
        true
    }

    /// Minimizes the DFA with Hopcroft's partition-refinement algorithm,
    /// returning an equivalent DFA with the minimum number of states.
    pub fn minimize(&self) -> Dfa {
        // Work over a *complete* automaton: add an explicit dead state so
        // every (state, class) pair has a successor.
        let n = self.len() + 1; // last index = dead
        let dead = n - 1;
        let step = |s: usize, c: usize| -> usize {
            if s == dead {
                dead
            } else {
                let t = self.trans[s][c];
                if t == DEAD {
                    dead
                } else {
                    t as usize
                }
            }
        };

        // Initial partition: accepting vs non-accepting (dead is
        // non-accepting).
        let mut block_of: Vec<usize> = (0..n)
            .map(|s| usize::from(s < self.len() && self.accepting[s]))
            .collect();
        let mut blocks: Vec<Vec<usize>> = vec![Vec::new(), Vec::new()];
        for (s, &b) in block_of.iter().enumerate() {
            blocks[b].push(s);
        }
        blocks.retain(|b| !b.is_empty());
        // Rebuild block_of after the retain.
        for (bi, b) in blocks.iter().enumerate() {
            for &s in b {
                block_of[s] = bi;
            }
        }

        // Precompute reverse transitions per class.
        let mut rev: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n]; self.n_classes];
        for s in 0..n {
            for (c, r) in rev.iter_mut().enumerate() {
                r[step(s, c)].push(s);
            }
        }

        // Hopcroft worklist of (block index, class).
        let mut work: Vec<(usize, usize)> = (0..blocks.len())
            .flat_map(|b| (0..self.n_classes).map(move |c| (b, c)))
            .collect();

        while let Some((bi, c)) = work.pop() {
            // X = states with a c-transition into block bi.
            let mut in_x = vec![false; n];
            let mut nonempty = false;
            // Snapshot: blocks[bi] may be stale if bi was split after this
            // work item was queued; using the current membership is still
            // correct for Hopcroft (splitters are monotone).
            for &t in &blocks[bi] {
                for &s in &rev[c][t] {
                    in_x[s] = true;
                    nonempty = true;
                }
            }
            if !nonempty {
                continue;
            }
            // Split every block Y into Y∩X and Y\X.
            let n_blocks = blocks.len();
            for y in 0..n_blocks {
                let (inside, outside): (Vec<usize>, Vec<usize>) =
                    blocks[y].iter().partition(|&&s| in_x[s]);
                if inside.is_empty() || outside.is_empty() {
                    continue;
                }
                // Keep the larger part in place, create a new block for
                // the smaller (Hopcroft's "process the smaller half").
                let (keep, split) = if inside.len() <= outside.len() {
                    (outside, inside)
                } else {
                    (inside, outside)
                };
                let new_bi = blocks.len();
                for &s in &split {
                    block_of[s] = new_bi;
                }
                blocks[y] = keep;
                blocks.push(split);
                for cc in 0..self.n_classes {
                    work.push((new_bi, cc));
                }
            }
        }

        // Assemble the quotient automaton, dropping the dead block and any
        // block unreachable from the start.
        let dead_block = block_of[dead];
        let mut new_id: Vec<Option<u32>> = vec![None; blocks.len()];
        let mut order: Vec<usize> = Vec::new();
        let start_block = block_of[self.start as usize];
        // BFS over blocks for reachability.
        if start_block != dead_block {
            new_id[start_block] = Some(0);
            order.push(start_block);
            let mut qi = 0;
            while qi < order.len() {
                let b = order[qi];
                qi += 1;
                let repr = blocks[b][0];
                for c in 0..self.n_classes {
                    let tb = block_of[step(repr, c)];
                    if tb != dead_block && new_id[tb].is_none() {
                        new_id[tb] = Some(order.len() as u32);
                        order.push(tb);
                    }
                }
            }
        } else {
            // Start state is equivalent to dead: empty language. Emit a
            // one-state non-accepting DFA.
            return Dfa {
                trans: vec![vec![DEAD; self.n_classes]],
                accepting: vec![false],
                start: 0,
                symbol_class: self.symbol_class,
                n_classes: self.n_classes,
            };
        }

        let mut trans = vec![vec![DEAD; self.n_classes]; order.len()];
        let mut accepting = vec![false; order.len()];
        for (i, &b) in order.iter().enumerate() {
            let repr = blocks[b][0];
            accepting[i] = repr != dead && repr < self.len() && self.accepting[repr];
            for c in 0..self.n_classes {
                let tb = block_of[step(repr, c)];
                if tb != dead_block {
                    trans[i][c] = new_id[tb].expect("reachable block has id");
                }
            }
        }

        Dfa {
            trans,
            accepting,
            start: 0,
            symbol_class: self.symbol_class,
            n_classes: self.n_classes,
        }
    }

    /// Iterator access for the synthesizer: `(from, symbols, to)` for every
    /// live transition, with `symbols` the full byte class of the edge.
    pub fn edges(&self) -> Vec<(u32, CharClass, u32)> {
        // Group per (from, to) and union the byte classes.
        let mut acc: HashMap<(u32, u32), CharClass> = HashMap::new();
        for (s, row) in self.trans.iter().enumerate() {
            for (class, &t) in row.iter().enumerate() {
                if t == DEAD {
                    continue;
                }
                let mut bytes = CharClass::empty();
                for b in 0u8..128 {
                    if self.symbol_class[b as usize] as usize == class {
                        bytes.insert(b);
                    }
                }
                let e = acc.entry((s as u32, t)).or_insert_with(CharClass::empty);
                *e = e.union(&bytes);
            }
        }
        let mut v: Vec<(u32, CharClass, u32)> =
            acc.into_iter().map(|((f, t), c)| (f, c, t)).collect();
        v.sort_by_key(|&(f, _, t)| (f, t));
        v
    }

    /// The start state id.
    pub fn start_state(&self) -> u32 {
        self.start
    }

    /// One transition: the successor of `state` on byte `b`, or `None`
    /// when the automaton dies. Drives the bounded digit-tree walks of
    /// `lang::accepted_numbers_bounded`.
    pub fn step(&self, state: u32, b: u8) -> Option<u32> {
        if b >= 128 {
            return None;
        }
        let c = self.symbol_class[b as usize] as usize;
        match self.trans[state as usize][c] {
            DEAD => None,
            t => Some(t),
        }
    }

    /// Whether `s` is accepting.
    pub fn is_accepting(&self, s: u32) -> bool {
        self.accepting[s as usize]
    }
}

/// Builds a regex from an [`Ast`] and runs it through determinization.
pub fn dfa_for(ast: &Ast) -> Dfa {
    Dfa::from_nfa(&Nfa::from_ast(ast))
}

/// Partitions the 128 ASCII symbols into classes treated identically by
/// every edge of `nfa`. Returns the byte → class map and the class count.
fn compress_alphabet(nfa: &Nfa) -> ([u8; 128], usize) {
    // Signature of a byte = which edges contain it. Hash the signature
    // incrementally to avoid materializing bitsets per byte.
    let mut sig: Vec<Vec<bool>> = vec![Vec::new(); 128];
    for state in &nfa.states {
        for t in &state.edges {
            for (b, s) in sig.iter_mut().enumerate() {
                s.push(t.on.contains(b as u8));
            }
        }
    }
    let mut map: HashMap<&[bool], u8> = HashMap::new();
    let mut symbol_class = [0u8; 128];
    let mut next = 0u8;
    for b in 0..128 {
        let class = *map.entry(sig[b].as_slice()).or_insert_with(|| {
            let c = next;
            next += 1;
            c
        });
        symbol_class[b] = class;
    }
    (symbol_class, next as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn dfa(pat: &str) -> Dfa {
        dfa_for(&parse(pat).unwrap())
    }

    #[test]
    fn accepts_matches_nfa() {
        let d = dfa("70[1-3]");
        assert!(d.accepts(b"701"));
        assert!(d.accepts(b"703"));
        assert!(!d.accepts(b"700"));
        assert!(!d.accepts(b"7012"));
        assert!(!d.accepts(b""));
    }

    #[test]
    fn dfa_agrees_with_nfa_on_corpus() {
        for pat in ["(1|2)*3", "70[1-5]+", "1(0|1)*0", "(12|21)*"] {
            let ast = parse(pat).unwrap();
            let nfa = Nfa::from_ast(&ast);
            let d = Dfa::from_nfa(&nfa);
            // All binary-ish strings up to length 6 over {0,1,2,3,7}.
            let syms = [b'0', b'1', b'2', b'3', b'7'];
            let mut inputs: Vec<Vec<u8>> = vec![Vec::new()];
            for _ in 0..6 {
                let mut next = Vec::new();
                for i in &inputs {
                    for &s in &syms {
                        let mut j = i.clone();
                        j.push(s);
                        next.push(j);
                    }
                }
                inputs.extend(next.clone());
                inputs = inputs.into_iter().collect();
            }
            for i in inputs.iter().take(5000) {
                assert_eq!(nfa.full_match(i), d.accepts(i), "{pat} on {i:?}");
            }
        }
    }

    #[test]
    fn minimize_preserves_language() {
        for pat in ["70[1-3]", "(_1239_|_70[2-5]_)", "1(0)*", "(a|b)*abb"] {
            let d = dfa(pat);
            let m = d.minimize();
            assert!(m.len() <= d.len());
            // Compare on a sample of strings.
            let alphabet: Vec<u8> = b"ab01237_ ".to_vec();
            let mut inputs: Vec<Vec<u8>> = vec![Vec::new()];
            for _ in 0..4 {
                let mut nxt = Vec::new();
                for i in &inputs {
                    for &s in &alphabet {
                        let mut j = i.clone();
                        j.push(s);
                        nxt.push(j);
                    }
                }
                inputs.extend(nxt);
            }
            for i in &inputs {
                assert_eq!(d.accepts(i), m.accepts(i), "{pat} on {i:?}");
            }
        }
    }

    #[test]
    fn minimize_merges_redundant_states() {
        // (1|2|3) has equivalent accept paths; minimal DFA has 2 states.
        let m = dfa("1|2|3").minimize();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn empty_language_detection() {
        // Not expressible directly in the dialect, so fabricate: a class
        // pattern then check a contradiction via intersection-free trick:
        // use an NFA whose accept is unreachable.
        let d = dfa("a");
        assert!(!d.language_is_empty());
        // `minimize` of the empty language yields a 1-state reject-all.
        let nfa = Nfa::from_ast(&parse("a").unwrap());
        let mut broken = nfa.clone();
        broken.states[0].edges.clear();
        broken.states[0].eps.clear();
        let d = Dfa::from_nfa(&broken);
        assert!(d.language_is_empty());
        assert_eq!(d.minimize().len(), 1);
    }

    #[test]
    fn edges_cover_transitions() {
        let d = dfa("ab").minimize();
        let edges = d.edges();
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().any(|(_, c, _)| c.contains(b'a')));
        assert!(edges.iter().any(|(_, c, _)| c.contains(b'b')));
    }

    #[test]
    fn digit_walk_over_asn_universe_is_exact() {
        // The enumeration the rewriter performs: which of 0..=65535 does
        // `70[1-3]` accept?
        let d = dfa("70[1-3]");
        let accepted: Vec<u16> = (0u32..=65535)
            .filter(|n| d.accepts(n.to_string().as_bytes()))
            .map(|n| n as u16)
            .collect();
        assert_eq!(accepted, vec![701, 702, 703]);
    }
}
