//! DFA → regular expression by state elimination.
//!
//! Paper §4.4: "We could use known polynomial-time algorithms for
//! constructing the minimum finite automata (FA) that accepts the new
//! language and then convert this FA back into a regexp, but we have not
//! had need for this functionality." We *did* build it: combined with
//! [`crate::dfa::Dfa::minimize`], this turns the potentially enormous
//! alternation of anonymized ASNs back into a compact pattern.
//!
//! The algorithm is the textbook GNFA construction: add a fresh start and
//! accept state, then eliminate original states one at a time, rewriting
//! `i → k → j` paths as `R(i,j) | R(i,k) R(k,k)* R(k,j)`. Elimination
//! order follows the fewest-paths-first heuristic to keep the result small.

use std::collections::HashMap;

use crate::ast::Ast;
use crate::dfa::Dfa;

/// Converts `dfa` to an equivalent regular expression, or `None` if the
/// DFA accepts the empty language.
pub fn synthesize(dfa: &Dfa) -> Option<Ast> {
    if dfa.language_is_empty() {
        return None;
    }

    // GNFA state numbering: 0 = fresh start, 1 = fresh accept,
    // k + 2 = original DFA state k.
    let n = dfa.len() + 2;
    let mut edge: HashMap<(usize, usize), Ast> = HashMap::new();

    let add = |edge: &mut HashMap<(usize, usize), Ast>, i: usize, j: usize, a: Ast| {
        match edge.remove(&(i, j)) {
            None => {
                edge.insert((i, j), a);
            }
            Some(prev) => {
                edge.insert((i, j), Ast::alt(vec![prev, a]));
            }
        }
    };

    add(&mut edge, 0, dfa.start_state() as usize + 2, Ast::Epsilon);
    for s in 0..dfa.len() as u32 {
        if dfa.is_accepting(s) {
            add(&mut edge, s as usize + 2, 1, Ast::Epsilon);
        }
    }
    for (f, class, t) in dfa.edges() {
        add(&mut edge, f as usize + 2, t as usize + 2, Ast::Class(class));
    }

    let mut alive: Vec<usize> = (2..n).collect();
    while !alive.is_empty() {
        // Heuristic: eliminate the state with the fewest in*out pairs.
        let k = *alive
            .iter()
            .min_by_key(|&&k| {
                let ins = edge.keys().filter(|&&(i, j)| j == k && i != k).count();
                let outs = edge.keys().filter(|&&(i, j)| i == k && j != k).count();
                ins * outs
            })
            .expect("alive non-empty");
        alive.retain(|&s| s != k);

        let self_loop = edge.remove(&(k, k));
        let ins: Vec<(usize, Ast)> = edge
            .iter()
            .filter(|&(&(i, j), _)| j == k && i != k)
            .map(|(&(i, _), a)| (i, a.clone()))
            .collect();
        let outs: Vec<(usize, Ast)> = edge
            .iter()
            .filter(|&(&(i, j), _)| i == k && j != k)
            .map(|(&(_, j), a)| (j, a.clone()))
            .collect();
        edge.retain(|&(i, j), _| i != k && j != k);

        let loop_part = self_loop.map(star);
        for (i, ain) in &ins {
            for (j, aout) in &outs {
                let mut parts = vec![ain.clone()];
                if let Some(l) = &loop_part {
                    parts.push(l.clone());
                }
                parts.push(aout.clone());
                add(&mut edge, *i, *j, Ast::concat(parts));
            }
        }
    }

    edge.remove(&(0, 1))
}

/// `Star` with the obvious simplifications (`ε* = ε`, `(x*)* = x*`,
/// `(x?)* = x*`).
fn star(a: Ast) -> Ast {
    match a {
        Ast::Epsilon => Ast::Epsilon,
        Ast::Star(inner) | Ast::Opt(inner) | Ast::Plus(inner) => Ast::Star(inner),
        other => Ast::Star(Box::new(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::dfa_for;
    use crate::nfa::Nfa;
    use crate::parser::parse;

    /// Round-trips `pat` through DFA → minimize → synthesize and checks
    /// language equality on `samples`.
    fn round_trip(pat: &str, samples: &[&str]) {
        let ast = parse(pat).unwrap();
        let d = dfa_for(&ast).minimize();
        let back = synthesize(&d).expect("nonempty language");
        let orig = Nfa::from_ast(&ast);
        let resyn = Nfa::from_ast(&back);
        for s in samples {
            assert_eq!(
                orig.full_match(s.as_bytes()),
                resyn.full_match(s.as_bytes()),
                "pattern {pat} resynthesized as {} disagrees on {s:?}",
                back.to_pattern()
            );
        }
    }

    #[test]
    fn simple_literals() {
        round_trip("701", &["701", "702", "70", "7011", ""]);
    }

    #[test]
    fn alternation_of_numbers() {
        round_trip(
            "701|702|703",
            &["700", "701", "702", "703", "704", "70", ""],
        );
    }

    #[test]
    fn classes_and_repeats() {
        round_trip(
            "70[1-3]+",
            &["701", "701702", "701701703", "700", "", "701704"],
        );
        round_trip("1(0)*", &["1", "10", "100", "01", ""]);
    }

    #[test]
    fn nontrivial_loops() {
        round_trip(
            "(12|21)*",
            &["", "12", "21", "1221", "2112", "122", "11", "1212"],
        );
    }

    #[test]
    fn empty_language_yields_none() {
        let nfa = Nfa::from_ast(&parse("a").unwrap());
        let mut broken = nfa.clone();
        broken.states[0].edges.clear();
        broken.states[0].eps.clear();
        let d = crate::dfa::Dfa::from_nfa(&broken);
        assert!(synthesize(&d).is_none());
    }

    #[test]
    fn synthesized_pattern_is_parseable() {
        let d = dfa_for(&parse("(_1239_|_70[2-5]_)").unwrap()).minimize();
        let back = synthesize(&d).unwrap();
        let text = back.to_pattern();
        parse(&text).unwrap_or_else(|e| panic!("unparseable synthesis {text:?}: {e}"));
    }

    #[test]
    fn star_simplifications() {
        assert_eq!(star(Ast::Epsilon), Ast::Epsilon);
        let a = Ast::literal_byte(b'a');
        assert_eq!(star(Ast::Star(Box::new(a.clone()))), Ast::Star(Box::new(a.clone())));
        assert_eq!(star(Ast::Opt(Box::new(a.clone()))), Ast::Star(Box::new(a.clone())));
        assert_eq!(star(Ast::Plus(Box::new(a.clone()))), Ast::Star(Box::new(a)));
    }
}
