//! Language enumeration over the AS-number universe.
//!
//! Paper §4.4: "Since there are only 2^16 ASNs in BGPv4, we can find the
//! language accepted by the regexp by simply applying the regexp to a list
//! of all 2^16 ASNs and seeing which it accepts." This module is exactly
//! that, accelerated by determinizing once and walking each decimal string
//! through the DFA.

use crate::ast::Ast;
use crate::dfa::dfa_for;

/// Enumerates the ASNs (0..=65535) whose decimal representation is
/// accepted (full match) by `ast`.
///
/// This is only meaningful for *numeric* subtrees ([`Ast::is_numeric`]);
/// callers pass the numeric atoms extracted from a policy regexp, e.g.
/// the `70[1-3]` between two `_` delimiters.
pub fn accepted_asns(ast: &Ast) -> Vec<u16> {
    let dfa = dfa_for(ast);
    let mut out = Vec::new();
    let mut buf = itoa_buf();
    for n in 0..=u16::MAX {
        let s = itoa(n, &mut buf);
        if dfa.accepts(s) {
            out.push(n);
        }
    }
    out
}

/// Builds the alternation-of-literals AST accepting exactly `asns`
/// (paper §4.4: "we construct a regexp that is the alternation of all
/// ASNs in the language", e.g. `70[1-3]` → `701|702|703`).
///
/// Returns `None` for an empty set (the caller decides how to handle a
/// regexp whose language became empty — cannot happen under a bijective
/// ASN mapping, but the API is total).
pub fn alternation_of(asns: &[u16]) -> Option<Ast> {
    if asns.is_empty() {
        return None;
    }
    Some(Ast::alt(
        asns.iter()
            .map(|&n| Ast::literal_str(&n.to_string()))
            .collect(),
    ))
}

/// Stack buffer for [`itoa`].
fn itoa_buf() -> [u8; 5] {
    [0; 5]
}

/// Formats `n` into `buf` without allocating; returns the used slice.
fn itoa(n: u16, buf: &mut [u8; 5]) -> &[u8] {
    if n == 0 {
        buf[0] = b'0';
        return &buf[..1];
    }
    let mut i = 5;
    let mut v = n;
    while v > 0 {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
    }
    // Shift to the front for a stable return slice.
    buf.copy_within(i..5, 0);
    &buf[..5 - i]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::Nfa;
    use crate::parser::parse;

    #[test]
    fn itoa_matches_std() {
        let mut buf = itoa_buf();
        for n in [0u16, 1, 9, 10, 700, 701, 9999, 10000, 65535] {
            assert_eq!(itoa(n, &mut buf), n.to_string().as_bytes());
        }
    }

    #[test]
    fn range_pattern_enumerates_exactly() {
        let asns = accepted_asns(&parse("70[1-3]").unwrap());
        assert_eq!(asns, vec![701, 702, 703]);
    }

    #[test]
    fn wildcard_pattern() {
        // `123.` accepts 1230..=1239.
        let asns = accepted_asns(&parse("123[0-9]").unwrap());
        assert_eq!(asns, (1230..=1239).collect::<Vec<u16>>());
    }

    #[test]
    fn uunet_block() {
        // The paper's footnote: UUNET owns the contiguous 7046..7059... we
        // use the documented example 70[2-5] = non-US UUNET ASNs 702-705.
        let asns = accepted_asns(&parse("70[2-5]").unwrap());
        assert_eq!(asns, vec![702, 703, 704, 705]);
    }

    #[test]
    fn star_patterns_stay_within_u16() {
        // `1(0)*` accepts 1, 10, 100, 1000, 10000 — and nothing longer
        // fits in a u16 decimal string.
        let asns = accepted_asns(&parse("1(0)*").unwrap());
        assert_eq!(asns, vec![1, 10, 100, 1000, 10000]);
    }

    #[test]
    fn alternation_round_trip() {
        let set = vec![7u16, 701, 1239, 65535];
        let ast = alternation_of(&set).unwrap();
        let nfa = Nfa::from_ast(&ast);
        for n in 0..=u16::MAX {
            let expect = set.contains(&n);
            if expect != nfa.full_match(n.to_string().as_bytes()) {
                panic!("mismatch at {n}");
            }
        }
    }

    #[test]
    fn alternation_of_empty_is_none() {
        assert!(alternation_of(&[]).is_none());
    }

    #[test]
    fn enumeration_then_alternation_preserves_language() {
        // The full §4.4 loop for a numeric atom, pre-permutation: language
        // of rebuild equals language of original.
        let orig = parse("6[45][0-9][0-9][0-9]").unwrap();
        let lang = accepted_asns(&orig);
        assert!(!lang.is_empty());
        let rebuilt = alternation_of(&lang).unwrap();
        assert_eq!(accepted_asns(&rebuilt), lang);
    }
}

/// Error from [`accepted_numbers_bounded`]: the language over the bounded
/// universe exceeds `cap` members, so alternation rewriting would explode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LanguageTooLarge {
    /// The configured cap that was exceeded.
    pub cap: usize,
}

impl std::fmt::Display for LanguageTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "accepted language exceeds {} members", self.cap)
    }
}

impl std::error::Error for LanguageTooLarge {}

/// Enumerates the numbers in `0..=max` whose decimal representation is
/// accepted by `ast`, stopping with an error once more than `cap` members
/// are found.
///
/// This extends the paper's 2^16 enumeration to the 4-byte ASN space
/// (RFC 4893): brute force over 2^32 strings is out, but walking the
/// decimal digit tree through the DFA visits only live prefixes, so
/// realistic policy patterns (ranges, wildcards over a few digits)
/// enumerate in microseconds. Truly huge languages (e.g. `[0-9]+`) are
/// rejected via `cap` — the caller leaves such universal atoms unchanged,
/// exactly as the 16-bit path does.
pub fn accepted_numbers_bounded(
    ast: &Ast,
    max: u64,
    cap: usize,
) -> Result<Vec<u64>, LanguageTooLarge> {
    let dfa = dfa_for(ast);
    let mut out = Vec::new();

    // "0" is the only representation with a leading zero.
    if let Some(s) = dfa.step(dfa.start_state(), b'0') {
        if dfa.is_accepting(s) {
            out.push(0);
        }
    }

    // DFS over non-zero-leading decimal strings.
    let max_len = max.to_string().len();
    let mut stack: Vec<(u32, u64, usize)> = Vec::new();
    for d in 1..=9u8 {
        if let Some(s) = dfa.step(dfa.start_state(), b'0' + d) {
            stack.push((s, u64::from(d), 1));
        }
    }
    while let Some((state, value, len)) = stack.pop() {
        if value <= max && dfa.is_accepting(state) {
            out.push(value);
            if out.len() > cap {
                return Err(LanguageTooLarge { cap });
            }
        }
        if len >= max_len {
            continue;
        }
        for d in 0..=9u8 {
            let next = value * 10 + u64::from(d);
            if next > max {
                continue;
            }
            if let Some(s) = dfa.step(state, b'0' + d) {
                stack.push((s, next, len + 1));
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

#[cfg(test)]
mod tests32 {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn agrees_with_exhaustive_16bit_enumeration() {
        for pat in ["70[1-3]", "1(0)*", "6[45][0-9][0-9][0-9]", "123[0-9]"] {
            let ast = parse(pat).unwrap();
            let exhaustive: Vec<u64> =
                accepted_asns(&ast).into_iter().map(u64::from).collect();
            let walked = accepted_numbers_bounded(&ast, 65535, 1 << 20).unwrap();
            assert_eq!(walked, exhaustive, "{pat}");
        }
    }

    #[test]
    fn four_byte_ranges() {
        // RFC 6996 private 32-bit block boundary digits.
        let ast = parse("420000000[0-5]").unwrap();
        let lang = accepted_numbers_bounded(&ast, u64::from(u32::MAX), 100).unwrap();
        assert_eq!(
            lang,
            (4_200_000_000u64..=4_200_000_005).collect::<Vec<_>>()
        );
    }

    #[test]
    fn max_bound_respected() {
        // `4294967[0-9][0-9][0-9]` crosses u32::MAX = 4294967295.
        let ast = parse("4294967[0-9][0-9][0-9]").unwrap();
        let lang = accepted_numbers_bounded(&ast, u64::from(u32::MAX), 1000).unwrap();
        assert_eq!(lang.first(), Some(&4_294_967_000));
        assert_eq!(lang.last(), Some(&4_294_967_295));
        assert_eq!(lang.len(), 296);
    }

    #[test]
    fn huge_language_rejected() {
        let ast = parse("[0-9]+").unwrap();
        let err = accepted_numbers_bounded(&ast, u64::from(u32::MAX), 10_000).unwrap_err();
        assert_eq!(err.cap, 10_000);
    }

    #[test]
    fn zero_handled() {
        let ast = parse("0").unwrap();
        assert_eq!(
            accepted_numbers_bounded(&ast, u64::from(u32::MAX), 10).unwrap(),
            vec![0]
        );
    }
}
