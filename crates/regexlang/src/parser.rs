//! Recursive-descent parser for the IOS policy-regexp dialect.
//!
//! Grammar (standard precedence):
//!
//! ```text
//! alt    := concat ('|' concat)*
//! concat := repeat*
//! repeat := atom ('*' | '+' | '?' | '{' m (',' n?)? '}')*
//! atom   := literal | '.' | '_' | '^' | '$' | class | '(' alt ')'
//! class  := '[' '^'? member+ ']'
//! member := char | char '-' char
//! ```
//!
//! `\x` escapes the metacharacter `x` anywhere. `^` and `$` parse as
//! single-sentinel classes (see crate docs); `_` parses as the as-path
//! delimiter class.
//!
//! Bounded repetition `{m}`, `{m,}`, `{m,n}` is an engine extension
//! (desugared to concatenation/option/star at parse time, bounds capped
//! at 255 to keep the desugaring linear); a `{` not opening a valid bound
//! is a literal brace, matching IOS behaviour.

use std::fmt;

use crate::ast::Ast;
use crate::class::CharClass;
use crate::{SENT_END, SENT_START};

/// A parse error with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseErr {
    /// Byte offset into the pattern where the error was detected.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regexp parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseErr {}

/// Parses `pattern` into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseErr> {
    let mut p = Parser {
        bytes: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.alt()?;
    if p.pos != p.bytes.len() {
        return Err(p.err("unexpected trailing input (unbalanced ')'?)"));
    }
    Ok(ast)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseErr {
        ParseErr {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn alt(&mut self) -> Result<Ast, ParseErr> {
        let mut parts = vec![self.concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            parts.push(self.concat()?);
        }
        Ok(Ast::alt(parts))
    }

    fn concat(&mut self) -> Result<Ast, ParseErr> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(Ast::concat(parts))
    }

    fn repeat(&mut self) -> Result<Ast, ParseErr> {
        let mut a = self.atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    a = Ast::Star(Box::new(a));
                }
                Some(b'+') => {
                    self.bump();
                    a = Ast::Plus(Box::new(a));
                }
                Some(b'?') => {
                    self.bump();
                    a = Ast::Opt(Box::new(a));
                }
                Some(b'{') => {
                    match self.try_bounds() {
                        Some((m, n)) => a = desugar_repeat(a, m, n),
                        None => return Ok(a), // literal `{` starts a new atom
                    }
                }
                _ => return Ok(a),
            }
        }
    }

    /// Attempts to read `{m}`, `{m,}`, or `{m,n}` at the cursor. On
    /// success consumes it and returns `(m, upper)` with `upper = None`
    /// for an unbounded `{m,}`. On failure leaves the cursor untouched
    /// (the `{` is then a literal).
    fn try_bounds(&mut self) -> Option<(u16, Option<u16>)> {
        let save = self.pos;
        let out = self.try_bounds_inner();
        if out.is_none() {
            self.pos = save; // the `{` is a literal; nothing was consumed
        }
        out
    }

    fn try_bounds_inner(&mut self) -> Option<(u16, Option<u16>)> {
        debug_assert_eq!(self.peek(), Some(b'{'));
        self.bump();
        let m = self.bounded_number()?;
        match self.peek() {
            Some(b'}') => {
                self.bump();
                Some((m, Some(m)))
            }
            Some(b',') => {
                self.bump();
                match self.peek() {
                    Some(b'}') => {
                        self.bump();
                        Some((m, None))
                    }
                    _ => {
                        let n = self.bounded_number()?;
                        if self.peek() == Some(b'}') && n >= m {
                            self.bump();
                            Some((m, Some(n)))
                        } else {
                            None
                        }
                    }
                }
            }
            _ => None,
        }
    }

    /// A decimal number capped at 255 (keeps the desugaring linear).
    fn bounded_number(&mut self) -> Option<u16> {
        let mut v: u16 = 0;
        let mut any = false;
        while let Some(b) = self.peek() {
            if !b.is_ascii_digit() {
                break;
            }
            any = true;
            v = v.checked_mul(10)?.checked_add(u16::from(b - b'0'))?;
            if v > 255 {
                return None;
            }
            self.bump();
        }
        any.then_some(v)
    }

    fn atom(&mut self) -> Result<Ast, ParseErr> {
        let b = self.bump().ok_or_else(|| self.err("expected an atom"))?;
        match b {
            b'(' => {
                let inner = self.alt()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(inner)
            }
            b'[' => self.class(),
            b'.' => Ok(Ast::Class(CharClass::dot())),
            b'_' => Ok(Ast::Class(CharClass::underscore())),
            b'^' => Ok(Ast::Class(CharClass::single(SENT_START))),
            b'$' => Ok(Ast::Class(CharClass::single(SENT_END))),
            b'\\' => {
                let esc = self
                    .bump()
                    .ok_or_else(|| self.err("dangling escape at end of pattern"))?;
                if esc >= 128 {
                    return Err(self.err("non-ASCII escape"));
                }
                Ok(Ast::literal_byte(esc))
            }
            b'*' | b'+' | b'?' => Err(self.err("repetition operator with nothing to repeat")),
            b if b < 128 => Ok(Ast::literal_byte(b)),
            _ => Err(self.err("non-ASCII byte in pattern")),
        }
    }

    fn class(&mut self) -> Result<Ast, ParseErr> {
        let negate = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut set = CharClass::empty();
        let mut first = true;
        loop {
            let b = self
                .bump()
                .ok_or_else(|| self.err("unterminated character class"))?;
            match b {
                b']' if !first => break,
                b'\\' => {
                    let esc = self
                        .bump()
                        .ok_or_else(|| self.err("dangling escape in class"))?;
                    self.class_member(esc, &mut set)?;
                }
                // A literal `]` is allowed as the first member, per POSIX.
                _ => self.class_member(b, &mut set)?,
            }
            first = false;
        }
        if set.is_empty() {
            return Err(self.err("empty character class"));
        }
        Ok(Ast::Class(if negate { set.negated() } else { set }))
    }

    /// Adds `lo` (or the range `lo-hi` if a dash follows) to `set`.
    fn class_member(&mut self, lo: u8, set: &mut CharClass) -> Result<(), ParseErr> {
        if lo >= 128 {
            return Err(self.err("non-ASCII byte in class"));
        }
        // Range only if '-' is followed by something other than ']'.
        if self.peek() == Some(b'-') && self.bytes.get(self.pos + 1).is_some_and(|&n| n != b']') {
            self.bump(); // the '-'
            let mut hi = self.bump().expect("peeked above");
            if hi == b'\\' {
                hi = self
                    .bump()
                    .ok_or_else(|| self.err("dangling escape in class range"))?;
            }
            if hi >= 128 {
                return Err(self.err("non-ASCII byte in class"));
            }
            if hi < lo {
                return Err(self.err("inverted range in character class"));
            }
            for b in lo..=hi {
                set.insert(b);
            }
        } else {
            set.insert(lo);
        }
        Ok(())
    }
}

/// Desugars `a{m,n}` / `a{m,}` into the core operators.
fn desugar_repeat(a: Ast, m: u16, upper: Option<u16>) -> Ast {
    let mut parts: Vec<Ast> = (0..m).map(|_| a.clone()).collect();
    match upper {
        None => parts.push(Ast::Star(Box::new(a))),
        Some(n) => {
            for _ in m..n {
                parts.push(Ast::Opt(Box::new(a.clone())));
            }
        }
    }
    Ast::concat(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(p: &str) -> String {
        parse(p).unwrap().to_pattern()
    }

    #[test]
    fn literals_concat() {
        assert_eq!(pat("701"), "701");
        assert_eq!(pat("abc"), "abc");
    }

    #[test]
    fn alternation_precedence() {
        // `ab|cd` is (ab)|(cd), not a(b|c)d.
        let a = parse("ab|cd").unwrap();
        match &a {
            Ast::Alt(v) => assert_eq!(v.len(), 2),
            other => panic!("expected Alt, got {other:?}"),
        }
    }

    #[test]
    fn repeat_binds_tightest() {
        let a = parse("ab*").unwrap();
        assert_eq!(a.to_pattern(), "ab*");
        let a = parse("(ab)*").unwrap();
        assert_eq!(a.to_pattern(), "(ab)*");
    }

    #[test]
    fn classes() {
        assert_eq!(pat("[0-9]"), "[0-9]");
        assert_eq!(pat("7[1-5]."), "7[1-5].");
        assert_eq!(pat("[abc]"), "[a-c]"); // printed as a range
    }

    #[test]
    fn negated_class() {
        let a = parse("[^0-9]").unwrap();
        match a {
            Ast::Class(c) => {
                assert!(c.contains(b'a'));
                assert!(!c.contains(b'5'));
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn special_atoms() {
        for p in [".", "_", "^", "$"] {
            assert_eq!(pat(p), p);
        }
    }

    #[test]
    fn escapes() {
        assert_eq!(pat(r"\."), r"\.");
        assert_eq!(pat(r"\\"), r"\\");
        assert_eq!(pat(r"a\|b"), r"a\|b");
    }

    #[test]
    fn class_leading_bracket_and_dash() {
        // `[]a]` = class of ']' and 'a'; `[a-]` = 'a' and '-'.
        let a = parse("[]a]").unwrap();
        match a {
            Ast::Class(c) => assert!(c.contains(b']') && c.contains(b'a')),
            other => panic!("{other:?}"),
        }
        let a = parse("[a-]").unwrap();
        match a {
            Ast::Class(c) => assert!(c.contains(b'a') && c.contains(b'-')),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        for p in ["(", "(a", "a)", "[", "[a", "*a", "+", "a\\", "[z-a]", "[]"] {
            assert!(parse(p).is_err(), "{p:?} should fail");
        }
    }

    #[test]
    fn error_positions_are_sensible() {
        let e = parse("ab(cd").unwrap_err();
        assert_eq!(e.pos, 5);
    }

    #[test]
    fn round_trip_reparses_to_same_pattern() {
        for p in [
            "701",
            "(_1239_|_70[2-5]_)",
            "701:7[1-5]..",
            "^65000_",
            "(1|2|3)+",
            "a?b*c+",
            "[^ ]*",
        ] {
            let once = pat(p);
            let twice = parse(&once).unwrap().to_pattern();
            assert_eq!(once, twice, "pattern {p}");
        }
    }
}

#[cfg(test)]
mod bounds_tests {
    use super::*;
    use crate::nfa::Nfa;

    fn full(pat: &str, s: &str) -> bool {
        Nfa::from_ast(&parse(pat).unwrap()).full_match(crate::wrap(s).as_slice().get(1..).map(|x| &x[..x.len()-1]).unwrap())
    }

    #[test]
    fn exact_count() {
        assert!(full("[0-9]{3}", "701"));
        assert!(!full("[0-9]{3}", "70"));
        assert!(!full("[0-9]{3}", "7011"));
    }

    #[test]
    fn range_count() {
        for (s, want) in [("7", false), ("70", true), ("701", true), ("7011", true), ("70111", false)] {
            assert_eq!(full("7[0-9]{1,3}", s), want, "{s}");
        }
    }

    #[test]
    fn open_upper_bound() {
        assert!(!full("1[0-9]{2,}", "10"));
        assert!(full("1[0-9]{2,}", "100"));
        assert!(full("1[0-9]{2,}", "100000"));
    }

    #[test]
    fn zero_lower_bound() {
        assert!(full("a{0,2}", ""));
        assert!(full("a{0,2}", "aa"));
        assert!(!full("a{0,2}", "aaa"));
    }

    #[test]
    fn invalid_bounds_are_literal_braces() {
        // `{` not opening a valid bound is a literal, as in IOS.
        assert!(full("a\\{x", "a{x"));
        assert!(full("a{,3}", "a{,3}"));
        assert!(full("a{3,1}", "a{3,1}")); // inverted: literal
        assert!(full("a{999}", "a{999}")); // over the cap: literal
    }

    #[test]
    fn bounds_compose_with_enumeration() {
        use crate::lang::accepted_asns;
        let asns = accepted_asns(&parse("70[1-3]{1}").unwrap());
        assert_eq!(asns, vec![701, 702, 703]);
        let asns = accepted_asns(&parse("7[0-9]{2,3}").unwrap());
        assert_eq!(asns.len(), 100 + 1000);
    }
}
