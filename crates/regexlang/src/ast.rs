//! The regexp abstract syntax tree.
//!
//! The ASN rewriter (`confanon-asnanon`) performs surgery on this tree —
//! replacing numeric atoms with alternations of permuted ASNs — and then
//! prints it back to pattern text, so the AST must be constructible,
//! walkable, and faithfully printable.

use std::fmt;

use crate::class::CharClass;
use crate::{SENT_END, SENT_START};

/// A regular-expression syntax tree node.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Ast {
    /// Matches the empty string.
    Epsilon,
    /// Matches one symbol from the class. Anchors are represented as
    /// single-sentinel classes; `.` and `_` as their documented classes.
    Class(CharClass),
    /// Concatenation, in order. Invariant: never nested directly inside
    /// another `Concat` when built through [`Ast::concat`].
    Concat(Vec<Ast>),
    /// Alternation. Invariant mirror of `Concat`.
    Alt(Vec<Ast>),
    /// Kleene star.
    Star(Box<Ast>),
    /// One or more.
    Plus(Box<Ast>),
    /// Zero or one.
    Opt(Box<Ast>),
}

impl Ast {
    /// A literal symbol.
    pub fn literal_byte(b: u8) -> Ast {
        Ast::Class(CharClass::single(b))
    }

    /// The concatenation of `parts`, flattening nested concatenations and
    /// dropping epsilons.
    pub fn concat(parts: Vec<Ast>) -> Ast {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Ast::Epsilon => {}
                Ast::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Ast::Epsilon,
            1 => flat.pop().expect("len checked"),
            _ => Ast::Concat(flat),
        }
    }

    /// The alternation of `parts`, flattening nested alternations.
    pub fn alt(parts: Vec<Ast>) -> Ast {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Ast::Alt(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Ast::Epsilon,
            1 => flat.pop().expect("len checked"),
            _ => Ast::Alt(flat),
        }
    }

    /// A literal string of symbols (each byte one literal).
    pub fn literal_str(s: &str) -> Ast {
        Ast::concat(s.bytes().map(Ast::literal_byte).collect())
    }

    /// True if this subtree's language consists only of digit strings:
    /// every class is a subset of `[0-9]` (so no `_`, `.`, anchors, or
    /// letters anywhere below). This is the test the ASN rewriter uses to
    /// find "numeric atoms" eligible for language enumeration.
    pub fn is_numeric(&self) -> bool {
        match self {
            Ast::Epsilon => true,
            Ast::Class(c) => !c.is_empty() && c.is_digit_subset(),
            Ast::Concat(v) | Ast::Alt(v) => v.iter().all(Ast::is_numeric),
            Ast::Star(a) | Ast::Plus(a) | Ast::Opt(a) => a.is_numeric(),
        }
    }

    /// True if the subtree can match the empty string.
    pub fn is_nullable(&self) -> bool {
        match self {
            Ast::Epsilon => true,
            Ast::Class(_) => false,
            Ast::Concat(v) => v.iter().all(Ast::is_nullable),
            Ast::Alt(v) => v.iter().any(Ast::is_nullable),
            Ast::Star(_) | Ast::Opt(_) => true,
            Ast::Plus(a) => a.is_nullable(),
        }
    }

    /// Prints the node back to pattern text.
    ///
    /// Group parentheses are re-inserted where precedence demands them, so
    /// `parse(x.to_pattern())` always yields a tree with the same language
    /// (tested by the round-trip property tests).
    pub fn to_pattern(&self) -> String {
        let mut s = String::new();
        self.write_pattern(&mut s, Prec::Alt);
        s
    }

    fn write_pattern(&self, out: &mut String, ctx: Prec) {
        match self {
            Ast::Epsilon => {
                // An explicit empty group keeps the text parseable.
                out.push_str("()");
            }
            Ast::Class(c) => write_class(c, out),
            Ast::Concat(v) => {
                let needs_group = ctx > Prec::Concat;
                if needs_group {
                    out.push('(');
                }
                for p in v {
                    p.write_pattern(out, Prec::Concat);
                }
                if needs_group {
                    out.push(')');
                }
            }
            Ast::Alt(v) => {
                let needs_group = ctx > Prec::Alt;
                if needs_group {
                    out.push('(');
                }
                for (i, p) in v.iter().enumerate() {
                    if i > 0 {
                        out.push('|');
                    }
                    p.write_pattern(out, Prec::Concat);
                }
                if needs_group {
                    out.push(')');
                }
            }
            Ast::Star(a) => {
                a.write_pattern(out, Prec::Repeat);
                out.push('*');
            }
            Ast::Plus(a) => {
                a.write_pattern(out, Prec::Repeat);
                out.push('+');
            }
            Ast::Opt(a) => {
                a.write_pattern(out, Prec::Repeat);
                out.push('?');
            }
        }
    }
}

/// Precedence levels for printing: alternation < concatenation < repeat
/// operand.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Alt,
    Concat,
    Repeat,
}

/// Prints a class using the most idiomatic available notation.
fn write_class(c: &CharClass, out: &mut String) {
    // Recognize the canonical classes first.
    if *c == CharClass::dot() {
        out.push('.');
        return;
    }
    if *c == CharClass::underscore() {
        out.push('_');
        return;
    }
    if *c == CharClass::single(SENT_START) {
        out.push('^');
        return;
    }
    if *c == CharClass::single(SENT_END) {
        out.push('$');
        return;
    }
    let members: Vec<u8> = c.iter().collect();
    if members.len() == 1 {
        push_literal(members[0], out);
        return;
    }
    // General class: emit ranges.
    out.push('[');
    let mut i = 0;
    while i < members.len() {
        let start = members[i];
        let mut end = start;
        while i + 1 < members.len() && members[i + 1] == end + 1 {
            i += 1;
            end = members[i];
        }
        if end > start + 1 {
            push_class_member(start, out);
            out.push('-');
            push_class_member(end, out);
        } else {
            push_class_member(start, out);
            if end != start {
                push_class_member(end, out);
            }
        }
        i += 1;
    }
    out.push(']');
}

/// Escapes a literal symbol for a top-level position.
fn push_literal(b: u8, out: &mut String) {
    if b"|*+?()[].^$_\\".contains(&b) {
        out.push('\\');
    }
    out.push(b as char);
}

/// Escapes a symbol for use inside `[...]`.
fn push_class_member(b: u8, out: &mut String) {
    if b"]-\\^".contains(&b) {
        out.push('\\');
    }
    out.push(b as char);
}

/// `Debug` prints the pattern form — far more readable in test failures
/// than a raw tree dump.
impl fmt::Debug for Ast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ast({})", self.to_pattern())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_flattens_and_drops_epsilon() {
        let a = Ast::concat(vec![
            Ast::Epsilon,
            Ast::concat(vec![Ast::literal_byte(b'a'), Ast::literal_byte(b'b')]),
            Ast::literal_byte(b'c'),
        ]);
        assert_eq!(a.to_pattern(), "abc");
    }

    #[test]
    fn alt_flattens() {
        let a = Ast::alt(vec![
            Ast::alt(vec![Ast::literal_byte(b'a'), Ast::literal_byte(b'b')]),
            Ast::literal_byte(b'c'),
        ]);
        assert_eq!(a.to_pattern(), "a|b|c");
    }

    #[test]
    fn numeric_detection() {
        assert!(Ast::literal_str("701").is_numeric());
        assert!(Ast::concat(vec![
            Ast::literal_str("70"),
            Ast::Class(CharClass::range(b'1', b'3')),
        ])
        .is_numeric());
        assert!(!Ast::literal_str("70a").is_numeric());
        assert!(!Ast::Class(CharClass::underscore()).is_numeric());
        assert!(!Ast::Class(CharClass::dot()).is_numeric());
    }

    #[test]
    fn nullability() {
        assert!(Ast::Epsilon.is_nullable());
        assert!(Ast::Star(Box::new(Ast::literal_byte(b'a'))).is_nullable());
        assert!(Ast::Opt(Box::new(Ast::literal_byte(b'a'))).is_nullable());
        assert!(!Ast::Plus(Box::new(Ast::literal_byte(b'a'))).is_nullable());
        assert!(!Ast::literal_str("x").is_nullable());
    }

    #[test]
    fn pattern_printing_groups_correctly() {
        // (a|b)c needs the group; abc* must keep the star on c only.
        let ab_c = Ast::concat(vec![
            Ast::alt(vec![Ast::literal_byte(b'a'), Ast::literal_byte(b'b')]),
            Ast::literal_byte(b'c'),
        ]);
        assert_eq!(ab_c.to_pattern(), "(a|b)c");
        let abc_star = Ast::concat(vec![
            Ast::literal_str("ab"),
            Ast::Star(Box::new(Ast::literal_byte(b'c'))),
        ]);
        assert_eq!(abc_star.to_pattern(), "abc*");
    }

    #[test]
    fn star_of_group_prints_group() {
        let a = Ast::Star(Box::new(Ast::literal_str("ab")));
        assert_eq!(a.to_pattern(), "(ab)*");
    }

    #[test]
    fn class_printing_uses_ranges() {
        let a = Ast::Class(CharClass::range(b'2', b'5'));
        assert_eq!(a.to_pattern(), "[2-5]");
        let mut two = CharClass::single(b'1');
        two.insert(b'9');
        assert_eq!(Ast::Class(two).to_pattern(), "[19]");
    }

    #[test]
    fn metacharacters_are_escaped() {
        assert_eq!(Ast::literal_byte(b'.').to_pattern(), "\\.");
        assert_eq!(Ast::literal_byte(b'|').to_pattern(), "\\|");
        assert_eq!(Ast::literal_byte(b'a').to_pattern(), "a");
    }
}
