//! # confanon-regexlang — a regular-expression engine for router policy regexps
//!
//! Cisco IOS routing policies reference AS numbers and BGP communities
//! through POSIX-flavoured regular expressions (`ip as-path access-list 50
//! permit (_1239_|_70[2-5]_)`). Anonymizing those requires reasoning about
//! the *language* a regexp accepts (paper §4.4): the anonymizer enumerates
//! the accepted ASNs over the full 2^16 universe, maps them through the
//! permutation, and rewrites the regexp to accept exactly the image set.
//!
//! This crate implements the required machinery from scratch:
//!
//! * [`ast`] — the regexp abstract syntax tree, rebuildable (the ASN
//!   rewriter performs tree surgery) and printable back to pattern text;
//! * [`parser`] — parser for the IOS dialect: literals, `.`, character
//!   classes `[0-9]`/`[^ab]`, grouping, alternation, `*` `+` `?`, anchors
//!   `^` `$`, and the as-path delimiter `_`;
//! * [`nfa`] — Thompson construction plus a single-pass simulator giving
//!   both anchored (full-match) and unanchored (search) semantics;
//! * [`dfa`] — subset construction, Hopcroft minimization, and language
//!   emptiness/finiteness analysis;
//! * [`synth`] — DFA → regexp by state elimination, the paper's
//!   "polynomial-time algorithms for constructing the minimum FA … and
//!   then convert this FA back into a regexp" extension;
//! * [`lang`] — language enumeration over the ASN universe.
//!
//! Anchors and `_` are modelled with sentinel symbols: input text is
//! conceptually wrapped as `␂ text ␃`, `^`/`$` become literals for the
//! sentinels, `_` is the class {␂, ␃, space, comma, braces, parens}, and
//! `.` and negated classes exclude the sentinels. This turns zero-width
//! assertions into ordinary symbols, so one NFA/DFA pipeline handles
//! everything.
//!
//! ```
//! use confanon_regexlang::Regex;
//! let re = Regex::compile("_70[1-3]_").unwrap();
//! assert!(re.is_match("100 701 40"));
//! assert!(re.is_match("701"));          // `_` matches start/end too
//! assert!(!re.is_match("1701 40"));
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

pub mod ast;
pub mod class;
pub mod dfa;
pub mod lang;
pub mod nfa;
pub mod parser;
pub mod synth;

pub use ast::Ast;
pub use class::CharClass;
pub use parser::{parse, ParseErr};

/// Start-of-text sentinel symbol (STX). Inputs never contain it; the
/// matcher prepends it before running the automaton.
pub const SENT_START: u8 = 0x02;
/// End-of-text sentinel symbol (ETX).
pub const SENT_END: u8 = 0x03;

/// A compiled regular expression with IOS search semantics.
///
/// `is_match` is unanchored (the pattern may match any substring, as in
/// `show ip bgp regexp`); `is_full_match` requires the pattern to cover
/// the whole input. Anchors inside the pattern constrain either mode.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    ast: Ast,
    search_nfa: nfa::Nfa,
    full_nfa: nfa::Nfa,
}

impl Regex {
    /// Parses and compiles `pattern`.
    pub fn compile(pattern: &str) -> Result<Regex, ParseErr> {
        let ast = parse(pattern)?;
        let search_nfa = nfa::Nfa::from_ast(&ast);
        // Full-match automaton: the pattern must cover the whole wrapped
        // text `␂ text ␃`. The wrapper sentinels are *optional* here
        // because an explicit `^`/`$` (or a boundary-consuming `_`) inside
        // the pattern consumes the sentinel itself; when the pattern has
        // no anchor the Opt eats it. Either way the pattern body is forced
        // to span exactly the inner text.
        let full = Ast::concat(vec![
            Ast::Opt(Box::new(Ast::literal_byte(SENT_START))),
            ast.clone(),
            Ast::Opt(Box::new(Ast::literal_byte(SENT_END))),
        ]);
        let full_nfa = nfa::Nfa::from_ast(&full);
        Ok(Regex {
            pattern: pattern.to_string(),
            ast,
            search_nfa,
            full_nfa,
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The parsed syntax tree.
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// Unanchored match: does any substring of `text` (including the
    /// virtual start/end positions used by `^`, `$`, and `_`) match?
    pub fn is_match(&self, text: &str) -> bool {
        self.search_nfa.search(&wrap(text))
    }

    /// Anchored match: does the *entire* `text` match the pattern?
    pub fn is_full_match(&self, text: &str) -> bool {
        self.full_nfa.full_match(&wrap(text))
    }
}

/// Wraps raw text in the sentinel symbols. Bytes equal to the sentinels
/// are remapped to `0x1A` (SUB) so hostile input cannot forge a virtual
/// boundary.
pub(crate) fn wrap(text: &str) -> Vec<u8> {
    let mut v = Vec::with_capacity(text.len() + 2);
    v.push(SENT_START);
    for &b in text.as_bytes() {
        v.push(if b == SENT_START || b == SENT_END { 0x1A } else { b });
    }
    v.push(SENT_END);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_path_delimiter_semantics() {
        let re = Regex::compile("_701_").unwrap();
        assert!(re.is_match("701"));
        assert!(re.is_match("100 701"));
        assert!(re.is_match("701 100"));
        assert!(re.is_match("1 701 2"));
        assert!(!re.is_match("7011"));
        assert!(!re.is_match("1701"));
        assert!(!re.is_match("170111"));
    }

    #[test]
    fn figure1_as_path_regexp() {
        // Line 32 of the paper's Figure 1.
        let re = Regex::compile("(_1239_|_70[2-5]_)").unwrap();
        assert!(re.is_match("7018 1239 701"));
        assert!(re.is_match("703"));
        assert!(re.is_match("100 705"));
        assert!(!re.is_match("700"));
        assert!(!re.is_match("706"));
        assert!(!re.is_match("12391"));
    }

    #[test]
    fn figure1_community_regexp() {
        // Line 31: `701:7[1-5]..` — communities from UUNET in 7100..7599.
        let re = Regex::compile("701:7[1-5]..").unwrap();
        assert!(re.is_match("701:7100"));
        assert!(re.is_match("701:7599"));
        assert!(!re.is_match("701:7600")); // 6 not in [1-5]
        assert!(!re.is_match("702:7100"));
    }

    #[test]
    fn anchors() {
        let re = Regex::compile("^701_").unwrap();
        assert!(re.is_match("701 1239"));
        assert!(!re.is_match("1239 701"));
        let re2 = Regex::compile("_701$").unwrap();
        assert!(re2.is_match("1239 701"));
        assert!(!re2.is_match("701 1239"));
        let empty = Regex::compile("^$").unwrap();
        assert!(empty.is_match(""));
        assert!(!empty.is_match("1"));
    }

    #[test]
    fn full_match_vs_search() {
        let re = Regex::compile("70[1-3]").unwrap();
        assert!(re.is_full_match("701"));
        assert!(!re.is_full_match("7012"));
        assert!(re.is_match("7012")); // substring 701 matches
    }

    #[test]
    fn star_plus_opt() {
        let re = Regex::compile("^1(0)*$").unwrap();
        assert!(re.is_full_match("1"));
        assert!(re.is_full_match("1000"));
        assert!(!re.is_full_match("1001"));
        let re = Regex::compile("^10+$").unwrap();
        assert!(!re.is_full_match("1"));
        assert!(re.is_full_match("100"));
        let re = Regex::compile("^10?$").unwrap();
        assert!(re.is_full_match("1"));
        assert!(re.is_full_match("10"));
        assert!(!re.is_full_match("100"));
    }

    #[test]
    fn dot_does_not_cross_boundaries() {
        // `.` must not match the virtual start/end sentinels.
        let re = Regex::compile("^.701").unwrap();
        assert!(re.is_match("x701"));
        assert!(!re.is_match("701"));
    }

    #[test]
    fn sentinel_forgery_is_neutralized() {
        let re = Regex::compile("^x$").unwrap();
        assert!(!re.is_match("\u{2}x")); // raw STX in input cannot anchor
    }
}
