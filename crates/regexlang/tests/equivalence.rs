//! Cross-representation equivalence: for random patterns, the NFA
//! simulator, the subset-construction DFA, the minimized DFA, and the
//! re-synthesized regexp must all accept exactly the same strings.
//!
//! This is the property that makes the §4.4 rewriting trustworthy: every
//! transformation in the pipeline is language-preserving.

use proptest::prelude::*;

use confanon_regexlang::ast::Ast;
use confanon_regexlang::class::CharClass;
use confanon_regexlang::dfa::Dfa;
use confanon_regexlang::nfa::Nfa;
use confanon_regexlang::synth::synthesize;

/// Strategy for random ASTs over a small digit/letter alphabet.
fn ast_strategy() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        (b'0'..=b'3').prop_map(Ast::literal_byte),
        (b'a'..=b'b').prop_map(Ast::literal_byte),
        Just(Ast::Class(CharClass::range(b'0', b'2'))),
        Just(Ast::Epsilon),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::concat),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::alt),
            inner.clone().prop_map(|a| Ast::Star(Box::new(a))),
            inner.clone().prop_map(|a| Ast::Plus(Box::new(a))),
            inner.prop_map(|a| Ast::Opt(Box::new(a))),
        ]
    })
}

/// All strings over the alphabet up to length 4 (1 + 6 + 36 + 216 + 1296).
fn inputs() -> Vec<Vec<u8>> {
    let alphabet = [b'0', b'1', b'2', b'3', b'a', b'b'];
    let mut all: Vec<Vec<u8>> = vec![Vec::new()];
    let mut frontier = vec![Vec::new()];
    for _ in 0..4 {
        let mut next = Vec::new();
        for s in &frontier {
            for &c in &alphabet {
                let mut t = s.clone();
                t.push(c);
                next.push(t);
            }
        }
        all.extend(next.iter().cloned());
        frontier = next;
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nfa_dfa_minimized_and_synthesized_agree(ast in ast_strategy()) {
        let nfa = Nfa::from_ast(&ast);
        let dfa = Dfa::from_nfa(&nfa);
        let min = dfa.minimize();
        let resynth = synthesize(&min).map(|back| Nfa::from_ast(&back));

        for input in inputs() {
            let want = nfa.full_match(&input);
            prop_assert_eq!(dfa.accepts(&input), want, "dfa on {:?} ({:?})", input, ast);
            prop_assert_eq!(min.accepts(&input), want, "min on {:?} ({:?})", input, ast);
            if let Some(r) = &resynth {
                prop_assert_eq!(
                    r.full_match(&input),
                    want,
                    "resynth on {:?} ({:?})",
                    input,
                    ast
                );
            } else {
                prop_assert!(!want, "empty synthesis but NFA accepts {:?}", input);
            }
        }
    }

    #[test]
    fn minimized_never_larger(ast in ast_strategy()) {
        let dfa = Dfa::from_nfa(&Nfa::from_ast(&ast));
        prop_assert!(dfa.minimize().len() <= dfa.len());
    }

    #[test]
    fn pattern_round_trip_preserves_language(ast in ast_strategy()) {
        // AST → pattern text → parse → same language.
        let text = ast.to_pattern();
        let reparsed = confanon_regexlang::parse(&text)
            .unwrap_or_else(|e| panic!("unparseable print {text:?}: {e}"));
        let a = Nfa::from_ast(&ast);
        let b = Nfa::from_ast(&reparsed);
        for input in inputs() {
            prop_assert_eq!(
                a.full_match(&input),
                b.full_match(&input),
                "{:?} vs reparse of {:?}",
                input,
                text
            );
        }
    }
}
