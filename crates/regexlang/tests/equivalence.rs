//! Cross-representation equivalence: for random patterns, the NFA
//! simulator, the subset-construction DFA, the minimized DFA, and the
//! re-synthesized regexp must all accept exactly the same strings.
//!
//! This is the property that makes the §4.4 rewriting trustworthy: every
//! transformation in the pipeline is language-preserving.

use confanon_regexlang::ast::Ast;
use confanon_regexlang::class::CharClass;
use confanon_regexlang::dfa::Dfa;
use confanon_regexlang::nfa::Nfa;
use confanon_regexlang::synth::synthesize;
use confanon_testkit::props::{from_fn, Source, Strategy};
use confanon_testkit::rng::Rng;

/// One random AST node; `depth` bounds recursion so generated machines
/// stay small enough to check against every input exhaustively.
fn gen_ast(src: &mut Source, depth: u32) -> Ast {
    let choices = if depth == 0 { 4 } else { 9 };
    match src.gen_range(0..choices) {
        0u32 => Ast::literal_byte(src.gen_range(b'0'..=b'3')),
        1 => Ast::literal_byte(src.gen_range(b'a'..=b'b')),
        2 => Ast::Class(CharClass::range(b'0', b'2')),
        3 => Ast::Epsilon,
        4 | 5 => {
            let n = src.gen_range(1usize..4);
            let kids: Vec<Ast> = (0..n).map(|_| gen_ast(src, depth - 1)).collect();
            if src.gen_bool(0.5) {
                Ast::concat(kids)
            } else {
                Ast::alt(kids)
            }
        }
        6 => Ast::Star(Box::new(gen_ast(src, depth - 1))),
        7 => Ast::Plus(Box::new(gen_ast(src, depth - 1))),
        _ => Ast::Opt(Box::new(gen_ast(src, depth - 1))),
    }
}

/// Strategy for random ASTs over a small digit/letter alphabet.
fn ast_strategy() -> impl Strategy<Value = Ast> {
    from_fn(|src| gen_ast(src, 3))
}

/// All strings over the alphabet up to length 4 (1 + 6 + 36 + 216 + 1296).
fn inputs() -> Vec<Vec<u8>> {
    let alphabet = [b'0', b'1', b'2', b'3', b'a', b'b'];
    let mut all: Vec<Vec<u8>> = vec![Vec::new()];
    let mut frontier = vec![Vec::new()];
    for _ in 0..4 {
        let mut next = Vec::new();
        for s in &frontier {
            for &c in &alphabet {
                let mut t = s.clone();
                t.push(c);
                next.push(t);
            }
        }
        all.extend(next.iter().cloned());
        frontier = next;
    }
    all
}

confanon_testkit::props! {
    cases = 256;

    fn nfa_dfa_minimized_and_synthesized_agree(ast in ast_strategy()) {
        let nfa = Nfa::from_ast(&ast);
        let dfa = Dfa::from_nfa(&nfa);
        let min = dfa.minimize();
        let resynth = synthesize(&min).map(|back| Nfa::from_ast(&back));

        for input in inputs() {
            let want = nfa.full_match(&input);
            assert_eq!(dfa.accepts(&input), want, "dfa on {input:?} ({ast:?})");
            assert_eq!(min.accepts(&input), want, "min on {input:?} ({ast:?})");
            if let Some(r) = &resynth {
                assert_eq!(r.full_match(&input), want, "resynth on {input:?} ({ast:?})");
            } else {
                assert!(!want, "empty synthesis but NFA accepts {input:?}");
            }
        }
    }

    fn minimized_never_larger(ast in ast_strategy()) {
        let dfa = Dfa::from_nfa(&Nfa::from_ast(&ast));
        assert!(dfa.minimize().len() <= dfa.len());
    }

    fn pattern_round_trip_preserves_language(ast in ast_strategy()) {
        // AST → pattern text → parse → same language.
        let text = ast.to_pattern();
        let reparsed = confanon_regexlang::parse(&text)
            .unwrap_or_else(|e| panic!("unparseable print {text:?}: {e}"));
        let a = Nfa::from_ast(&ast);
        let b = Nfa::from_ast(&reparsed);
        for input in inputs() {
            assert_eq!(
                a.full_match(&input),
                b.full_match(&input),
                "{input:?} vs reparse of {text:?}"
            );
        }
    }
}
