//! Validation suite 1: independent characteristics.
//!
//! §5: "The first suite of tests verifies that independent
//! characteristics of the configurations are being preserved by comparing
//! properties such as: (a) the number of BGP speakers; (b) the number of
//! interfaces; and (c) the structure of the address space (i.e., number
//! of subnets of each size)."

use std::collections::{BTreeMap, BTreeSet};

use confanon_iosparse::{parse_command, Command, Config};
use confanon_netprim::{Prefix, Prefix6};
/// The independent characteristics of one network's configs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkProperties {
    /// Routers in the network.
    pub routers: usize,
    /// Total config lines.
    pub lines: usize,
    /// Routers with a `router bgp` process.
    pub bgp_speakers: usize,
    /// Total addressed interfaces.
    pub interfaces: usize,
    /// Number of *distinct* subnets of each prefix length, derived from
    /// interface addresses and masks (the address-space structure of
    /// §5 / the fingerprint input of §6.2).
    pub subnet_histogram: BTreeMap<u8, usize>,
    /// Total BGP neighbor statements.
    pub bgp_neighbors: usize,
    /// Total route-map clauses.
    pub route_map_clauses: usize,
    /// Distinct route-map names (a hash collision in the anonymizer
    /// would merge two maps and shrink this — referential integrity's
    /// converse).
    pub distinct_route_maps: usize,
    /// Total access-list entries.
    pub acl_entries: usize,
    /// Total IPv6-addressed interfaces (extension).
    pub ipv6_interfaces: usize,
    /// Distinct IPv6 subnets per prefix length (extension).
    pub ipv6_subnet_histogram: BTreeMap<u8, usize>,
}

/// Computes the properties of a network from its routers' configs.
pub fn network_properties(configs: &[Config]) -> NetworkProperties {
    let mut p = NetworkProperties {
        routers: configs.len(),
        ..Default::default()
    };
    let mut subnets: BTreeSet<Prefix> = BTreeSet::new();
    let mut subnets6: BTreeSet<Prefix6> = BTreeSet::new();
    let mut map_names: BTreeSet<String> = BTreeSet::new();
    for cfg in configs {
        p.lines += cfg.len();
        let mut is_speaker = false;
        for line in cfg.lines() {
            match parse_command(line) {
                Command::IpAddress { addr, mask } => {
                    p.interfaces += 1;
                    subnets.insert(Prefix::new(addr, mask.len()));
                }
                Command::Ipv6Address { addr, len } => {
                    p.ipv6_interfaces += 1;
                    subnets6.insert(Prefix6::new(addr, len));
                }
                Command::RouterBgp(_) => is_speaker = true,
                Command::NeighborRemoteAs { .. } => p.bgp_neighbors += 1,
                Command::RouteMap { name, .. } => {
                    p.route_map_clauses += 1;
                    map_names.insert(name);
                }
                Command::AccessList { .. } => p.acl_entries += 1,
                _ => {}
            }
        }
        p.bgp_speakers += usize::from(is_speaker);
    }
    for s in subnets {
        *p.subnet_histogram.entry(s.len()).or_insert(0) += 1;
    }
    for s in subnets6 {
        *p.ipv6_subnet_histogram.entry(s.len()).or_insert(0) += 1;
    }
    p.distinct_route_maps = map_names.len();
    p
}

/// The diff between pre- and post-anonymization properties.
#[derive(Debug, Clone, Default)]
pub struct Suite1Report {
    /// Field names that differ.
    pub differing_fields: Vec<String>,
    /// The two property sets.
    pub pre: NetworkProperties,
    /// Post-anonymization side.
    pub post: NetworkProperties,
}

impl Suite1Report {
    /// True when every compared property is identical.
    pub fn passed(&self) -> bool {
        self.differing_fields.is_empty()
    }
}

/// Compares two property sets field by field.
///
/// `lines` is *expected* to differ when comment stripping is on (the
/// paper removes ~1.5% of words), so it is reported but not compared.
pub fn compare_properties(pre: &NetworkProperties, post: &NetworkProperties) -> Suite1Report {
    let mut differing = Vec::new();
    if pre.routers != post.routers {
        differing.push("routers".to_string());
    }
    if pre.bgp_speakers != post.bgp_speakers {
        differing.push("bgp_speakers".to_string());
    }
    if pre.interfaces != post.interfaces {
        differing.push("interfaces".to_string());
    }
    if pre.subnet_histogram != post.subnet_histogram {
        differing.push("subnet_histogram".to_string());
    }
    if pre.bgp_neighbors != post.bgp_neighbors {
        differing.push("bgp_neighbors".to_string());
    }
    if pre.route_map_clauses != post.route_map_clauses {
        differing.push("route_map_clauses".to_string());
    }
    if pre.distinct_route_maps != post.distinct_route_maps {
        differing.push("distinct_route_maps".to_string());
    }
    if pre.acl_entries != post.acl_entries {
        differing.push("acl_entries".to_string());
    }
    if pre.ipv6_interfaces != post.ipv6_interfaces {
        differing.push("ipv6_interfaces".to_string());
    }
    if pre.ipv6_subnet_histogram != post.ipv6_subnet_histogram {
        differing.push("ipv6_subnet_histogram".to_string());
    }
    Suite1Report {
        differing_fields: differing,
        pre: pre.clone(),
        post: post.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
interface Serial0
 ip address 10.0.0.1 255.255.255.252
interface Ethernet0
 ip address 10.1.0.1 255.255.255.0
router bgp 65000
 neighbor 10.0.0.2 remote-as 65000
route-map X permit 10
access-list 5 permit 10.0.0.0 0.0.0.255
";

    #[test]
    fn properties_counted() {
        let p = network_properties(&[Config::parse(SAMPLE)]);
        assert_eq!(p.routers, 1);
        assert_eq!(p.bgp_speakers, 1);
        assert_eq!(p.interfaces, 2);
        assert_eq!(p.bgp_neighbors, 1);
        assert_eq!(p.route_map_clauses, 1);
        assert_eq!(p.distinct_route_maps, 1);
        assert_eq!(p.acl_entries, 1);
        assert_eq!(p.subnet_histogram[&30], 1);
        assert_eq!(p.subnet_histogram[&24], 1);
    }

    #[test]
    fn identical_configs_pass() {
        let p = network_properties(&[Config::parse(SAMPLE)]);
        let r = compare_properties(&p, &p.clone());
        assert!(r.passed());
    }

    #[test]
    fn histogram_difference_detected() {
        let p1 = network_properties(&[Config::parse(SAMPLE)]);
        // Replace the /30 with a /29: same interface count, different
        // address-space structure.
        let broken = SAMPLE.replace("255.255.255.252", "255.255.255.248");
        let p2 = network_properties(&[Config::parse(&broken)]);
        let r = compare_properties(&p1, &p2);
        assert!(!r.passed());
        assert_eq!(r.differing_fields, vec!["subnet_histogram"]);
    }

    #[test]
    fn shared_subnet_counted_once() {
        // Two routers on one /30 contribute a single subnet.
        let a = "interface s0\n ip address 10.0.0.1 255.255.255.252\n";
        let b = "interface s0\n ip address 10.0.0.2 255.255.255.252\n";
        let p = network_properties(&[Config::parse(a), Config::parse(b)]);
        assert_eq!(p.subnet_histogram[&30], 1);
        assert_eq!(p.interfaces, 2);
    }

    #[test]
    fn speaker_count_detects_loss() {
        let p1 = network_properties(&[Config::parse(SAMPLE)]);
        let no_bgp = SAMPLE.replace("router bgp 65000", "router rip");
        let p2 = network_properties(&[Config::parse(&no_bgp)]);
        let r = compare_properties(&p1, &p2);
        assert!(r.differing_fields.contains(&"bgp_speakers".to_string()));
    }
}

#[cfg(test)]
mod name_merge_tests {
    use super::*;

    #[test]
    fn merged_map_names_detected() {
        // Two distinct maps pre; a (hypothetical) colliding anonymizer
        // merges them post — the clause count survives but the distinct
        // count drops.
        let pre = "\
route-map A permit 10
route-map B permit 10
";
        let post = "\
route-map hX permit 10
route-map hX permit 10
";
        let r = compare_properties(
            &network_properties(&[Config::parse(pre)]),
            &network_properties(&[Config::parse(post)]),
        );
        assert!(r
            .differing_fields
            .contains(&"distinct_route_maps".to_string()));
    }
}
