//! Validation suite 2: routing-design equality.
//!
//! §5: "The second suite of tests consists of running our tools to
//! reverse engineer the routing design of a network and comparing the
//! extracted designs." The design is name-abstracted
//! ([`confanon_design::RoutingDesign`]), so a correct anonymization gives
//! exact equality; any inequality pinpoints the router whose structure
//! changed.

use confanon_design::{extract_design, RoutingDesign};
use confanon_iosparse::Config;
/// The outcome of a suite-2 comparison.
#[derive(Debug, Clone)]
pub struct Suite2Report {
    /// Whether the designs are identical.
    pub equal: bool,
    /// Routers whose extracted designs differ (indices).
    pub differing_routers: Vec<usize>,
    /// Whether the physical adjacency sets differ.
    pub adjacency_differs: bool,
    /// Whether the BGP session structure differs.
    pub sessions_differ: bool,
}

impl Suite2Report {
    /// True when the designs match exactly.
    pub fn passed(&self) -> bool {
        self.equal
    }
}

/// Extracts and compares the designs of the pre- and post-anonymization
/// configs of one network.
pub fn compare_designs(pre: &[Config], post: &[Config]) -> Suite2Report {
    let a = extract_design(pre);
    let b = extract_design(post);
    report(&a, &b)
}

fn report(a: &RoutingDesign, b: &RoutingDesign) -> Suite2Report {
    let differing_routers: Vec<usize> = (0..a.routers.len().max(b.routers.len()))
        .filter(|&i| a.routers.get(i) != b.routers.get(i))
        .collect();
    Suite2Report {
        equal: a == b,
        differing_routers,
        adjacency_differs: a.adjacencies != b.adjacencies,
        sessions_differ: a.internal_bgp_sessions != b.internal_bgp_sessions
            || a.external_bgp_sessions != b.external_bgp_sessions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NET: &str = "\
interface Serial0
 ip address 10.0.0.1 255.255.255.252
router bgp 65000
 neighbor 10.0.0.2 remote-as 701
";

    #[test]
    fn identical_sides_pass() {
        let pre = vec![Config::parse(NET)];
        let post = vec![Config::parse(NET)];
        let r = compare_designs(&pre, &post);
        assert!(r.passed());
        assert!(r.differing_routers.is_empty());
    }

    #[test]
    fn renamed_but_structure_preserving_sides_pass() {
        // A faithful anonymization changes names and numbers but not
        // structure: different address, same /30; different peer ASN,
        // still external.
        let post_text = NET
            .replace("10.0.0.1", "87.12.44.9")
            .replace("10.0.0.2", "87.12.44.10")
            .replace("701", "31337");
        let r = compare_designs(&[Config::parse(NET)], &[Config::parse(&post_text)]);
        assert!(r.passed(), "{r:?}");
    }

    #[test]
    fn broken_prefix_preservation_fails() {
        // If the anonymizer split the /30 (mask changed), suite 2 sees a
        // different design... via suite1's histogram; here we break the
        // iBGP relation instead: remote-as no longer equals the process
        // AS, flipping the ibgp flag.
        let post_text = NET.replace("remote-as 701", "remote-as 65000");
        let r = compare_designs(&[Config::parse(NET)], &[Config::parse(&post_text)]);
        assert!(!r.passed());
        assert_eq!(r.differing_routers, vec![0]);
    }

    #[test]
    fn lost_router_detected() {
        let r = compare_designs(&[Config::parse(NET)], &[]);
        assert!(!r.passed());
        assert_eq!(r.differing_routers, vec![0]);
    }
}
