//! # confanon-validate — the paper's validation and attack-analysis suites
//!
//! §5: "we use end-to-end tests that compare attributes of the configs
//! pre- and post-anonymization."
//!
//! * [`suite1`] — independent characteristics: number of BGP speakers,
//!   number of interfaces, and the structure of the address space (the
//!   number of subnets of each size), computed identically on the
//!   original and anonymized configs and diffed;
//! * [`suite2`] — routing-design equality: run
//!   `confanon_design::extract_design` on both sides and compare the
//!   name-abstracted designs bit for bit;
//! * [`fingerprint`] — the §6.2/§6.3 security analyses the paper poses as
//!   future work, made concrete: how unique are subnet-size-histogram and
//!   peering-structure fingerprints across a population of networks?
//! * [`probe`] — the §6.2 *measurement* side of the attack, simulated:
//!   can an attacker pinging consecutive addresses actually recover the
//!   histogram the fingerprint needs?

#![deny(rustdoc::broken_intra_doc_links)]

pub mod fingerprint;
pub mod probe;
pub mod suite1;
pub mod suite2;

pub use fingerprint::{
    peering_fingerprint, subnet_fingerprint, FingerprintIndex, FingerprintMatch,
    FingerprintStudy, PeeringFingerprint,
};
pub use probe::{run_probe_study, ProbeModel, ProbeStudy};
pub use suite1::{compare_properties, network_properties, NetworkProperties, Suite1Report};
pub use suite2::{compare_designs, Suite2Report};
