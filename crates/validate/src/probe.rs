//! The §6.2 external-measurement attack, simulated end to end.
//!
//! The paper: "To determine the identity of the physical network that the
//! configs belong to, he could then send probe packets into candidate
//! physical networks attempting to measure how many subnets of different
//! sizes each candidate contains … Conceivably this could be done by
//! pinging every consecutive address in the address blocks announced by
//! the candidate network in BGP, and using heuristics such as *most
//! subnets have hosts clustered at the lower end of the subnet's address
//! range* to guess where subnet boundaries must lie."
//!
//! The paper leaves the feasibility question to "future work". This
//! module runs the attack: simulate host occupancy and ICMP responses for
//! each candidate network, let the attacker estimate a subnet-size
//! histogram from the responses alone, and check whether matching
//! estimated histograms against the (perfectly preserved) anonymized
//! histograms identifies the target.

use std::collections::BTreeMap;

use confanon_netprim::Prefix;
use crate::fingerprint::SubnetFingerprint;

/// Attack parameters.
#[derive(Debug, Clone, Copy)]
pub struct ProbeModel {
    /// Probability a live host answers a probe (firewalls, rate limits).
    pub response_rate: f64,
    /// Fraction of each subnet's low addresses occupied by hosts
    /// (the "clustered at the lower end" premise).
    pub occupancy: f64,
    /// Gap (in consecutive unanswered addresses) that makes the attacker
    /// declare a subnet boundary.
    pub boundary_gap: u32,
}

impl Default for ProbeModel {
    fn default() -> ProbeModel {
        ProbeModel {
            response_rate: 0.9,
            occupancy: 0.4,
            boundary_gap: 3,
        }
    }
}

/// Deterministic keyed coin for the simulation (no RNG dependency: the
/// study must be reproducible from its inputs alone).
fn coin(seed: u64, x: u64, p: f64) -> bool {
    // SplitMix64 scramble.
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) < p
}

/// Simulates which addresses of `subnets` answer probes: hosts occupy the
/// low end of each subnet, and each answers with `response_rate`.
/// Returns the sorted list of responding addresses (as u32).
pub fn simulate_responses(subnets: &[Prefix], model: &ProbeModel, seed: u64) -> Vec<u32> {
    let mut out = Vec::new();
    for s in subnets {
        if s.len() >= 31 {
            // /31 and /32: the address itself is the host.
            if coin(seed, u64::from(s.network().0), model.response_rate) {
                out.push(s.network().0);
            }
            continue;
        }
        let usable = s.size().saturating_sub(2); // network + broadcast
        let hosts = ((usable as f64 * model.occupancy).ceil() as u32).clamp(1, usable);
        for i in 1..=hosts {
            let addr = s.network().0 + i;
            if coin(seed, u64::from(addr), model.response_rate) {
                out.push(addr);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// The attacker's estimator: walk the sorted responses, split clusters at
/// gaps of `boundary_gap` or more, and round each cluster's host count up
/// through the "hosts cluster at the low end" premise to a subnet size.
pub fn estimate_histogram(responses: &[u32], model: &ProbeModel) -> SubnetFingerprint {
    let mut hist: SubnetFingerprint = BTreeMap::new();
    if responses.is_empty() {
        return hist;
    }
    let mut cluster_start = 0usize;
    for i in 1..=responses.len() {
        let boundary = i == responses.len()
            || responses[i] - responses[i - 1] > model.boundary_gap;
        if !boundary {
            continue;
        }
        let cluster = &responses[cluster_start..i];
        cluster_start = i;
        // Hosts occupy ~`occupancy` of the low end, starting at .1, so
        // estimated subnet size ≈ span / occupancy, rounded up to the
        // enclosing power of two.
        let observed = (cluster[cluster.len() - 1] - cluster[0] + 1).max(1);
        let est_size = (observed as f64 / model.occupancy).max(4.0);
        let bits = (est_size.log2().ceil() as u8).clamp(2, 32);
        let len = 32 - bits;
        *hist.entry(len).or_insert(0) += 1;
    }
    hist
}

/// L1 distance between two histograms (the attacker's matching metric).
pub fn histogram_distance(a: &SubnetFingerprint, b: &SubnetFingerprint) -> u64 {
    let mut d = 0u64;
    for len in 0..=32u8 {
        let x = *a.get(&len).unwrap_or(&0) as i64;
        let y = *b.get(&len).unwrap_or(&0) as i64;
        d += x.abs_diff(y);
    }
    d
}

/// Outcome of the full attack over a population.
#[derive(Debug, Clone)]
pub struct ProbeStudy {
    /// Population size.
    pub networks: usize,
    /// Networks the attacker identified (its estimated histogram was
    /// strictly closest to the target's true histogram).
    pub identified: usize,
    /// Networks where the true target tied with others.
    pub ambiguous: usize,
    /// Mean L1 distance between estimated and true histograms (estimator
    /// quality, independent of matching).
    pub mean_estimation_error: f64,
}

/// Runs the attack: for each network (its true subnet list), simulate
/// probing, estimate a histogram, and match against every candidate's
/// *true* histogram (which anonymization preserves exactly, §6.2).
pub fn run_probe_study(
    candidates: &[(Vec<Prefix>, SubnetFingerprint)],
    model: &ProbeModel,
    seed: u64,
) -> ProbeStudy {
    let mut identified = 0;
    let mut ambiguous = 0;
    let mut err_sum = 0u64;
    for (target_idx, (subnets, true_hist)) in candidates.iter().enumerate() {
        let responses = simulate_responses(subnets, model, seed ^ target_idx as u64);
        let est = estimate_histogram(&responses, model);
        err_sum += histogram_distance(&est, true_hist);
        let mut best = u64::MAX;
        let mut best_ids: Vec<usize> = Vec::new();
        for (j, (_, cand_hist)) in candidates.iter().enumerate() {
            let d = histogram_distance(&est, cand_hist);
            if d < best {
                best = d;
                best_ids = vec![j];
            } else if d == best {
                best_ids.push(j);
            }
        }
        if best_ids == [target_idx] {
            identified += 1;
        } else if best_ids.contains(&target_idx) {
            ambiguous += 1;
        }
    }
    ProbeStudy {
        networks: candidates.len(),
        identified,
        ambiguous,
        mean_estimation_error: err_sum as f64 / candidates.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn responses_cluster_at_low_end() {
        let model = ProbeModel {
            response_rate: 1.0,
            occupancy: 0.25,
            boundary_gap: 8,
        };
        let r = simulate_responses(&[pfx("10.0.0.0/24")], &model, 1);
        // 25% of 254 usable → ~64 hosts at .1...
        assert!(!r.is_empty());
        assert_eq!(r[0], pfx("10.0.0.0/24").network().0 + 1);
        assert!(r.len() >= 60 && r.len() <= 66, "{}", r.len());
    }

    #[test]
    fn estimator_recovers_sizes_under_ideal_conditions() {
        let model = ProbeModel {
            response_rate: 1.0,
            occupancy: 0.5,
            boundary_gap: 8,
        };
        let subnets = vec![pfx("10.0.0.0/24"), pfx("10.0.4.0/28"), pfx("10.0.8.0/26")];
        let r = simulate_responses(&subnets, &model, 2);
        let est = estimate_histogram(&r, &model);
        // Three clusters must be found, with sizes in the right ballpark
        // (within one bit of /24, /28, /26).
        let total: usize = est.values().sum();
        assert_eq!(total, 3, "{est:?}");
        for (len, _) in est.iter() {
            assert!(
                [23u8, 24, 25, 26, 27, 28].contains(len),
                "estimated /{len}: {est:?}"
            );
        }
    }

    #[test]
    fn firewalled_network_defeats_estimation() {
        // §6.3: compartmentalized networks drop probes entirely.
        let model = ProbeModel {
            response_rate: 0.0,
            ..Default::default()
        };
        let r = simulate_responses(&[pfx("10.0.0.0/24")], &model, 3);
        assert!(r.is_empty());
        assert!(estimate_histogram(&r, &model).is_empty());
    }

    #[test]
    fn distance_is_a_metric_on_samples() {
        let a: SubnetFingerprint = [(24u8, 3usize), (30, 5)].into_iter().collect();
        let b: SubnetFingerprint = [(24u8, 1usize), (28, 2)].into_iter().collect();
        assert_eq!(histogram_distance(&a, &a), 0);
        assert_eq!(histogram_distance(&a, &b), histogram_distance(&b, &a));
        assert_eq!(histogram_distance(&a, &b), 2 + 2 + 5);
    }

    #[test]
    fn distinctive_populations_are_identified() {
        // Three networks with very different subnet mixes: the attack
        // should identify most of them.
        let mk = |subs: &[&str]| -> (Vec<Prefix>, SubnetFingerprint) {
            let subnets: Vec<Prefix> = subs.iter().map(|s| pfx(s)).collect();
            let mut hist = SubnetFingerprint::new();
            for s in &subnets {
                *hist.entry(s.len()).or_insert(0) += 1;
            }
            (subnets, hist)
        };
        let candidates = vec![
            mk(&["10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24"]),
            mk(&["10.1.0.0/28", "10.1.0.16/28", "10.1.0.64/28", "10.1.0.128/28"]),
            mk(&["10.2.0.0/22"]),
        ];
        let study = run_probe_study(&candidates, &ProbeModel::default(), 7);
        assert_eq!(study.networks, 3);
        assert!(
            study.identified >= 2,
            "attack should identify most distinctive networks: {study:?}"
        );
    }

    #[test]
    fn identical_populations_are_ambiguous() {
        let mk = || -> (Vec<Prefix>, SubnetFingerprint) {
            let subnets = vec![pfx("10.0.0.0/24")];
            let hist: SubnetFingerprint = [(24u8, 1usize)].into_iter().collect();
            (subnets, hist)
        };
        let candidates = vec![mk(), mk(), mk()];
        let study = run_probe_study(&candidates, &ProbeModel::default(), 7);
        assert_eq!(study.identified, 0, "{study:?}");
        assert_eq!(study.ambiguous, 3);
    }
}
