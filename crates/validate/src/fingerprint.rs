//! The §6.2 / §6.3 fingerprinting analyses.
//!
//! §6.2: "because the IP address anonymization is structure preserving,
//! the number of subnets of different sizes is the same in pre- and
//! post-anonymization configs. This means an attacker could construct a
//! fingerprint of a network via counting up how many subnets of different
//! sizes (/30s, /29s, /28s, etc.) appear in the anonymized configs. …
//! The remaining question that we will experimentally evaluate in future
//! work is whether address space usage fingerprints are sufficiently
//! unique to enable the identification of networks."
//!
//! §6.3 raises the same question for peering structure: "anonymized
//! configs accurately represent the number of routers at which the
//! anonymized network peers with other networks, and the number of
//! peering sessions that terminate on each of those routers."
//!
//! This module runs both experiments over a population of networks:
//! compute each network's fingerprint, then measure how identifying the
//! fingerprints are (exact-collision classes and Shannon entropy).

use std::collections::BTreeMap;

use confanon_design::extract_design;
use confanon_iosparse::Config;
use crate::suite1::network_properties;

/// The §6.2 fingerprint: distinct-subnet counts per prefix length.
pub type SubnetFingerprint = BTreeMap<u8, usize>;

/// Computes the subnet-size fingerprint of a network.
pub fn subnet_fingerprint(configs: &[Config]) -> SubnetFingerprint {
    network_properties(configs).subnet_histogram
}

/// The §6.3 fingerprint: peering attachment structure.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeeringFingerprint {
    /// Number of routers terminating at least one external BGP session.
    pub peering_routers: usize,
    /// Sorted multiset of external-session counts per peering router.
    pub sessions_per_router: Vec<usize>,
}

/// Computes the peering fingerprint of a network.
pub fn peering_fingerprint(configs: &[Config]) -> PeeringFingerprint {
    let design = extract_design(configs);
    let mut per_router: Vec<usize> = design
        .routers
        .iter()
        .map(|r| r.neighbors.iter().filter(|n| !n.internal_endpoint).count())
        .filter(|&c| c > 0)
        .collect();
    per_router.sort_unstable();
    PeeringFingerprint {
        peering_routers: per_router.len(),
        sessions_per_router: per_router,
    }
}

/// Aggregate uniqueness statistics for a population of fingerprints.
#[derive(Debug, Clone)]
pub struct FingerprintStudy {
    /// Population size.
    pub networks: usize,
    /// Number of distinct fingerprints.
    pub distinct: usize,
    /// Networks whose fingerprint is unique in the population (the ones
    /// the attack could identify with certainty).
    pub uniquely_identified: usize,
    /// Size of the largest anonymity set (collision class).
    pub largest_class: usize,
    /// Shannon entropy of the fingerprint distribution, in bits. The
    /// maximum (`log2(networks)`) means every fingerprint is unique.
    pub entropy_bits: f64,
    /// `log2(networks)`, for comparison.
    pub max_entropy_bits: f64,
}

impl FingerprintStudy {
    /// Builds the study from a list of fingerprint keys (any `Ord` value
    /// rendered to a comparable string).
    pub fn from_keys(keys: &[String]) -> FingerprintStudy {
        let n = keys.len();
        let mut classes: BTreeMap<&str, usize> = BTreeMap::new();
        for k in keys {
            *classes.entry(k.as_str()).or_insert(0) += 1;
        }
        let distinct = classes.len();
        let uniquely_identified = classes.values().filter(|&&c| c == 1).count();
        let largest_class = classes.values().copied().max().unwrap_or(0);
        let entropy_bits = if n == 0 {
            0.0
        } else {
            classes
                .values()
                .map(|&c| {
                    let p = c as f64 / n as f64;
                    -p * p.log2()
                })
                .sum()
        };
        FingerprintStudy {
            networks: n,
            distinct,
            uniquely_identified,
            largest_class,
            entropy_bits,
            max_entropy_bits: if n == 0 { 0.0 } else { (n as f64).log2() },
        }
    }
}

/// One candidate returned by [`FingerprintIndex::match_top_k`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerprintMatch {
    /// The candidate's name.
    pub name: String,
    /// L1 distance between the probe and the candidate fingerprint.
    pub distance: u64,
}

/// A reusable cross-corpus matching index over subnet fingerprints —
/// the §6.2 attack made operational.
///
/// The fingerprint *study* ([`FingerprintStudy`]) measures how unique
/// fingerprints are within one population; the *index* answers the
/// attacker's actual question: given an anonymized network's
/// fingerprint, which member of a public candidate set is it? Both the
/// validation suites and the `confanon audit --risk` red team share
/// this entry point instead of re-walking the subnet trie themselves.
///
/// Matching is deterministic: candidates are ranked by L1 distance
/// over the union of prefix lengths, ties broken by candidate name, so
/// the same probe against the same index always returns the same
/// ranking.
#[derive(Debug, Clone, Default)]
pub struct FingerprintIndex {
    /// Candidate fingerprints, keyed by name (sorted — determinism).
    entries: BTreeMap<String, SubnetFingerprint>,
}

impl FingerprintIndex {
    /// An empty index.
    pub fn new() -> FingerprintIndex {
        FingerprintIndex::default()
    }

    /// Adds (or replaces) a named candidate fingerprint.
    pub fn insert(&mut self, name: &str, fp: SubnetFingerprint) {
        self.entries.insert(name.to_string(), fp);
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// L1 distance between two fingerprints over the union of their
    /// prefix lengths (absent = count 0).
    pub fn distance(a: &SubnetFingerprint, b: &SubnetFingerprint) -> u64 {
        let mut d = 0u64;
        let mut seen = std::collections::BTreeSet::new();
        for len in a.keys().chain(b.keys()) {
            if seen.insert(*len) {
                let ca = a.get(len).copied().unwrap_or(0) as u64;
                let cb = b.get(len).copied().unwrap_or(0) as u64;
                d = d.saturating_add(ca.abs_diff(cb));
            }
        }
        d
    }

    /// The `k` nearest candidates to `probe`, ranked by (distance,
    /// name).
    pub fn match_top_k(&self, probe: &SubnetFingerprint, k: usize) -> Vec<FingerprintMatch> {
        let mut ranked: Vec<FingerprintMatch> = self
            .entries
            .iter()
            .map(|(name, fp)| FingerprintMatch {
                name: name.clone(),
                distance: Self::distance(probe, fp),
            })
            .collect();
        ranked.sort_by(|x, y| (x.distance, &x.name).cmp(&(y.distance, &y.name)));
        ranked.truncate(k);
        ranked
    }

    /// The unique exact match: `Some(name)` iff exactly one candidate
    /// sits at distance 0 from the probe — the certain-identification
    /// criterion the §6.2 analysis asks about.
    pub fn exact_unique(&self, probe: &SubnetFingerprint) -> Option<&str> {
        let mut hit: Option<&str> = None;
        for (name, fp) in &self.entries {
            if Self::distance(probe, fp) == 0 {
                if hit.is_some() {
                    return None;
                }
                hit = Some(name.as_str());
            }
        }
        hit
    }
}

/// Renders a subnet fingerprint to a stable string key.
pub fn subnet_key(fp: &SubnetFingerprint) -> String {
    fp.iter()
        .map(|(len, count)| format!("/{len}:{count}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders a peering fingerprint to a stable string key.
pub fn peering_key(fp: &PeeringFingerprint) -> String {
    format!(
        "r{}:{:?}",
        fp.peering_routers,
        fp.sessions_per_router
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subnet_fingerprint_counts_sizes() {
        let cfg = Config::parse(
            "interface a\n ip address 10.0.0.1 255.255.255.252\ninterface b\n ip address 10.0.1.1 255.255.255.0\n",
        );
        let fp = subnet_fingerprint(&[cfg]);
        assert_eq!(fp[&30], 1);
        assert_eq!(fp[&24], 1);
    }

    #[test]
    fn peering_fingerprint_shape() {
        let cfg = Config::parse(
            "router bgp 65000\n neighbor 9.9.9.9 remote-as 701\n neighbor 8.8.8.8 remote-as 1239\n",
        );
        let fp = peering_fingerprint(&[cfg]);
        assert_eq!(fp.peering_routers, 1);
        assert_eq!(fp.sessions_per_router, vec![2]);
    }

    #[test]
    fn study_all_unique() {
        let keys: Vec<String> = (0..8).map(|i| format!("k{i}")).collect();
        let s = FingerprintStudy::from_keys(&keys);
        assert_eq!(s.distinct, 8);
        assert_eq!(s.uniquely_identified, 8);
        assert_eq!(s.largest_class, 1);
        assert!((s.entropy_bits - 3.0).abs() < 1e-9);
        assert!((s.max_entropy_bits - 3.0).abs() < 1e-9);
    }

    #[test]
    fn study_all_identical() {
        let keys = vec!["same".to_string(); 8];
        let s = FingerprintStudy::from_keys(&keys);
        assert_eq!(s.distinct, 1);
        assert_eq!(s.uniquely_identified, 0);
        assert_eq!(s.largest_class, 8);
        assert_eq!(s.entropy_bits, 0.0);
    }

    #[test]
    fn study_mixed() {
        let keys = vec![
            "a".to_string(),
            "a".to_string(),
            "b".to_string(),
            "c".to_string(),
        ];
        let s = FingerprintStudy::from_keys(&keys);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.uniquely_identified, 2);
        assert_eq!(s.largest_class, 2);
        assert!(s.entropy_bits > 1.0 && s.entropy_bits < 2.0);
    }

    #[test]
    fn empty_population() {
        let s = FingerprintStudy::from_keys(&[]);
        assert_eq!(s.networks, 0);
        assert_eq!(s.entropy_bits, 0.0);
    }

    fn fp(pairs: &[(u8, usize)]) -> SubnetFingerprint {
        pairs.iter().copied().collect()
    }

    #[test]
    fn index_distance_is_l1_over_the_union() {
        let a = fp(&[(24, 2), (30, 5)]);
        let b = fp(&[(24, 2), (30, 3), (28, 1)]);
        assert_eq!(FingerprintIndex::distance(&a, &b), 3);
        assert_eq!(FingerprintIndex::distance(&b, &a), 3, "symmetric");
        assert_eq!(FingerprintIndex::distance(&a, &a), 0);
        assert_eq!(FingerprintIndex::distance(&fp(&[]), &a), 7);
    }

    #[test]
    fn index_ranks_by_distance_then_name() {
        let mut idx = FingerprintIndex::new();
        idx.insert("net-b", fp(&[(24, 2)]));
        idx.insert("net-a", fp(&[(24, 2)]));
        idx.insert("net-c", fp(&[(24, 5)]));
        let ranked = idx.match_top_k(&fp(&[(24, 2)]), 2);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].name, "net-a");
        assert_eq!(ranked[0].distance, 0);
        assert_eq!(ranked[1].name, "net-b");
        assert_eq!(ranked[1].distance, 0);
    }

    #[test]
    fn index_exact_unique_requires_a_single_zero_distance_candidate() {
        let mut idx = FingerprintIndex::new();
        idx.insert("alone", fp(&[(30, 4)]));
        idx.insert("other", fp(&[(30, 7)]));
        assert_eq!(idx.exact_unique(&fp(&[(30, 4)])), Some("alone"));
        assert_eq!(idx.exact_unique(&fp(&[(30, 5)])), None, "no exact hit");
        idx.insert("twin", fp(&[(30, 4)]));
        assert_eq!(idx.exact_unique(&fp(&[(30, 4)])), None, "collision class");
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
    }

    #[test]
    fn index_matches_across_pre_and_post_corpora() {
        // Structure preservation means the anonymized network's
        // fingerprint equals its own pre fingerprint: the index built
        // from "public" candidates re-identifies it exactly.
        let pre = Config::parse(
            "interface a\n ip address 10.0.0.1 255.255.255.252\ninterface b\n ip address 10.0.1.1 255.255.255.0\n",
        );
        let mut idx = FingerprintIndex::new();
        idx.insert("victim", subnet_fingerprint(std::slice::from_ref(&pre)));
        idx.insert("distractor", fp(&[(16, 1)]));
        let probe = subnet_fingerprint(&[pre]);
        assert_eq!(idx.exact_unique(&probe), Some("victim"));
    }

    #[test]
    fn keys_are_stable() {
        let mut fp = SubnetFingerprint::new();
        fp.insert(30, 5);
        fp.insert(24, 2);
        assert_eq!(subnet_key(&fp), "/24:2,/30:5");
        let p = PeeringFingerprint {
            peering_routers: 2,
            sessions_per_router: vec![1, 3],
        };
        assert_eq!(peering_key(&p), "r2:[1, 3]");
    }
}
