//! The §6.2 / §6.3 fingerprinting analyses.
//!
//! §6.2: "because the IP address anonymization is structure preserving,
//! the number of subnets of different sizes is the same in pre- and
//! post-anonymization configs. This means an attacker could construct a
//! fingerprint of a network via counting up how many subnets of different
//! sizes (/30s, /29s, /28s, etc.) appear in the anonymized configs. …
//! The remaining question that we will experimentally evaluate in future
//! work is whether address space usage fingerprints are sufficiently
//! unique to enable the identification of networks."
//!
//! §6.3 raises the same question for peering structure: "anonymized
//! configs accurately represent the number of routers at which the
//! anonymized network peers with other networks, and the number of
//! peering sessions that terminate on each of those routers."
//!
//! This module runs both experiments over a population of networks:
//! compute each network's fingerprint, then measure how identifying the
//! fingerprints are (exact-collision classes and Shannon entropy).

use std::collections::BTreeMap;

use confanon_design::extract_design;
use confanon_iosparse::Config;
use crate::suite1::network_properties;

/// The §6.2 fingerprint: distinct-subnet counts per prefix length.
pub type SubnetFingerprint = BTreeMap<u8, usize>;

/// Computes the subnet-size fingerprint of a network.
pub fn subnet_fingerprint(configs: &[Config]) -> SubnetFingerprint {
    network_properties(configs).subnet_histogram
}

/// The §6.3 fingerprint: peering attachment structure.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeeringFingerprint {
    /// Number of routers terminating at least one external BGP session.
    pub peering_routers: usize,
    /// Sorted multiset of external-session counts per peering router.
    pub sessions_per_router: Vec<usize>,
}

/// Computes the peering fingerprint of a network.
pub fn peering_fingerprint(configs: &[Config]) -> PeeringFingerprint {
    let design = extract_design(configs);
    let mut per_router: Vec<usize> = design
        .routers
        .iter()
        .map(|r| r.neighbors.iter().filter(|n| !n.internal_endpoint).count())
        .filter(|&c| c > 0)
        .collect();
    per_router.sort_unstable();
    PeeringFingerprint {
        peering_routers: per_router.len(),
        sessions_per_router: per_router,
    }
}

/// Aggregate uniqueness statistics for a population of fingerprints.
#[derive(Debug, Clone)]
pub struct FingerprintStudy {
    /// Population size.
    pub networks: usize,
    /// Number of distinct fingerprints.
    pub distinct: usize,
    /// Networks whose fingerprint is unique in the population (the ones
    /// the attack could identify with certainty).
    pub uniquely_identified: usize,
    /// Size of the largest anonymity set (collision class).
    pub largest_class: usize,
    /// Shannon entropy of the fingerprint distribution, in bits. The
    /// maximum (`log2(networks)`) means every fingerprint is unique.
    pub entropy_bits: f64,
    /// `log2(networks)`, for comparison.
    pub max_entropy_bits: f64,
}

impl FingerprintStudy {
    /// Builds the study from a list of fingerprint keys (any `Ord` value
    /// rendered to a comparable string).
    pub fn from_keys(keys: &[String]) -> FingerprintStudy {
        let n = keys.len();
        let mut classes: BTreeMap<&str, usize> = BTreeMap::new();
        for k in keys {
            *classes.entry(k.as_str()).or_insert(0) += 1;
        }
        let distinct = classes.len();
        let uniquely_identified = classes.values().filter(|&&c| c == 1).count();
        let largest_class = classes.values().copied().max().unwrap_or(0);
        let entropy_bits = if n == 0 {
            0.0
        } else {
            classes
                .values()
                .map(|&c| {
                    let p = c as f64 / n as f64;
                    -p * p.log2()
                })
                .sum()
        };
        FingerprintStudy {
            networks: n,
            distinct,
            uniquely_identified,
            largest_class,
            entropy_bits,
            max_entropy_bits: if n == 0 { 0.0 } else { (n as f64).log2() },
        }
    }
}

/// Renders a subnet fingerprint to a stable string key.
pub fn subnet_key(fp: &SubnetFingerprint) -> String {
    fp.iter()
        .map(|(len, count)| format!("/{len}:{count}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders a peering fingerprint to a stable string key.
pub fn peering_key(fp: &PeeringFingerprint) -> String {
    format!(
        "r{}:{:?}",
        fp.peering_routers,
        fp.sessions_per_router
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subnet_fingerprint_counts_sizes() {
        let cfg = Config::parse(
            "interface a\n ip address 10.0.0.1 255.255.255.252\ninterface b\n ip address 10.0.1.1 255.255.255.0\n",
        );
        let fp = subnet_fingerprint(&[cfg]);
        assert_eq!(fp[&30], 1);
        assert_eq!(fp[&24], 1);
    }

    #[test]
    fn peering_fingerprint_shape() {
        let cfg = Config::parse(
            "router bgp 65000\n neighbor 9.9.9.9 remote-as 701\n neighbor 8.8.8.8 remote-as 1239\n",
        );
        let fp = peering_fingerprint(&[cfg]);
        assert_eq!(fp.peering_routers, 1);
        assert_eq!(fp.sessions_per_router, vec![2]);
    }

    #[test]
    fn study_all_unique() {
        let keys: Vec<String> = (0..8).map(|i| format!("k{i}")).collect();
        let s = FingerprintStudy::from_keys(&keys);
        assert_eq!(s.distinct, 8);
        assert_eq!(s.uniquely_identified, 8);
        assert_eq!(s.largest_class, 1);
        assert!((s.entropy_bits - 3.0).abs() < 1e-9);
        assert!((s.max_entropy_bits - 3.0).abs() < 1e-9);
    }

    #[test]
    fn study_all_identical() {
        let keys = vec!["same".to_string(); 8];
        let s = FingerprintStudy::from_keys(&keys);
        assert_eq!(s.distinct, 1);
        assert_eq!(s.uniquely_identified, 0);
        assert_eq!(s.largest_class, 8);
        assert_eq!(s.entropy_bits, 0.0);
    }

    #[test]
    fn study_mixed() {
        let keys = vec![
            "a".to_string(),
            "a".to_string(),
            "b".to_string(),
            "c".to_string(),
        ];
        let s = FingerprintStudy::from_keys(&keys);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.uniquely_identified, 2);
        assert_eq!(s.largest_class, 2);
        assert!(s.entropy_bits > 1.0 && s.entropy_bits < 2.0);
    }

    #[test]
    fn empty_population() {
        let s = FingerprintStudy::from_keys(&[]);
        assert_eq!(s.networks, 0);
        assert_eq!(s.entropy_bits, 0.0);
    }

    #[test]
    fn keys_are_stable() {
        let mut fp = SubnetFingerprint::new();
        fp.insert(30, 5);
        fp.insert(24, 2);
        assert_eq!(subnet_key(&fp), "/24:2,/30:5");
        let p = PeeringFingerprint {
            peering_routers: 2,
            sessions_per_router: vec![1, 3],
        };
        assert_eq!(peering_key(&p), "r2:[1, 3]");
    }
}
