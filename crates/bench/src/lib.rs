//! Shared workload builders for the wall-clock benches.
//!
//! Every bench regenerates a quantitative claim from the paper's
//! evaluation (see DESIGN.md's experiment index); the workloads here are
//! the corpora those benches run over, built once per process. The
//! benches themselves run on `confanon_testkit::bench::Runner` — plain
//! `fn main()` binaries with `harness = false`, no external harness.
//! Set `TESTKIT_BENCH_JSON_DIR=<dir>` to also write each suite's report
//! as JSON.

#![deny(rustdoc::broken_intra_doc_links)]

use confanon_confgen::{generate_dataset, Dataset, DatasetSpec};
use confanon_testkit::bench::Runner;

/// A small but representative dataset: 8 networks, ~10 routers each.
pub fn bench_dataset() -> Dataset {
    generate_dataset(&DatasetSpec {
        seed: 0xBE7C,
        networks: 8,
        mean_routers: 10,
        backbone_fraction: 0.5,
    })
}

/// One mid-size router config (≈ the paper's median of ~340 lines).
pub fn median_router_config() -> String {
    let ds = bench_dataset();
    let mut configs: Vec<&str> = ds
        .networks
        .iter()
        .flat_map(|n| n.routers.iter().map(|r| r.config.as_str()))
        .collect();
    configs.sort_by_key(|c| c.lines().count());
    configs[configs.len() / 2].to_string()
}

/// A large router config (≥ 1000 lines, the paper's 90th percentile).
pub fn large_router_config() -> String {
    let ds = bench_dataset();
    ds.networks
        .iter()
        .flat_map(|n| n.routers.iter().map(|r| r.config.as_str()))
        .max_by_key(|c| c.lines().count())
        .expect("nonempty dataset")
        .to_string()
}

/// Standard epilogue for every bench binary: print the summary and, when
/// `TESTKIT_BENCH_JSON_DIR` is set, drop `<dir>/BENCH_<suite>.json`.
pub fn finish_suite(runner: &Runner, suite: &str) {
    runner.finish();
    if let Ok(dir) = std::env::var("TESTKIT_BENCH_JSON_DIR") {
        let path = std::path::Path::new(&dir).join(format!("BENCH_{suite}.json"));
        match runner.write_json(&path) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("bench: cannot write {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        let m = median_router_config();
        let l = large_router_config();
        assert!(m.lines().count() >= 50);
        assert!(l.lines().count() > m.lines().count());
    }
}
