//! E8 — regexp rewriting by language enumeration.
//!
//! §4.4's method enumerates "all 2^16 ASNs" per numeric atom. This bench
//! measures that enumeration for the paper's own pattern shapes (ranges,
//! wildcards, alternation), the cost of the optional minimal-DFA
//! compaction, and raw engine operations (compile, match, determinize).

use std::hint::black_box;

use confanon_asnanon::{
    rewrite_aspath_regex, rewrite_community_regex, AsnMap, CommunityMap, RewriteOptions,
};
use confanon_bench::finish_suite;
use confanon_regexlang::dfa::dfa_for;
use confanon_regexlang::{parse, Regex};
use confanon_testkit::bench::Runner;

const PATTERNS: &[(&str, &str)] = &[
    ("figure1_alt", "(_1239_|_70[2-5]_)"),
    ("range", "_70[1-5]_"),
    ("wildcard", "_123._"),
    ("plain", "_7018_"),
    ("private_range", "_6451[2-9]_"),
];

fn main() {
    let mut r = Runner::new("regex_rewrite");

    let map = AsnMap::new(b"bench");
    for &(label, pat) in PATTERNS {
        r.bench(&format!("rewrite/{label}"), || {
            black_box(
                rewrite_aspath_regex(pat, &map, RewriteOptions::default())
                    .expect("valid pattern"),
            )
        });
    }

    // The paper's proposed extension: minimal FA → regexp. More work per
    // rewrite, radically shorter output for big languages.
    let cm = CommunityMap::new(b"bench");
    r.bench("compact/aspath_range", || {
        black_box(
            rewrite_aspath_regex("_70[1-5]_", &map, RewriteOptions { compact: true })
                .expect("valid"),
        )
    });
    r.bench("compact/community_range", || {
        // 500-value language: the worst case Figure 1 produces.
        black_box(
            rewrite_community_regex("701:7[1-5]..", &cm, RewriteOptions::default())
                .expect("valid"),
        )
    });

    r.bench("engine/compile_figure1", || {
        black_box(Regex::compile("(_1239_|_70[2-5]_)").expect("valid"))
    });
    let re = Regex::compile("(_1239_|_70[2-5]_)").expect("valid");
    r.bench("engine/search_aspath", || {
        black_box(re.is_match("7018 3356 1239 701 65001"))
    });
    let ast = parse("(_1239_|_70[2-5]_)").expect("valid");
    r.bench("engine/determinize_minimize", || {
        black_box(dfa_for(&ast).minimize().len())
    });

    finish_suite(&r, "regex_rewrite");
}
