//! E8 — regexp rewriting by language enumeration.
//!
//! §4.4's method enumerates "all 2^16 ASNs" per numeric atom. This bench
//! measures that enumeration for the paper's own pattern shapes (ranges,
//! wildcards, alternation), the cost of the optional minimal-DFA
//! compaction, and raw engine operations (compile, match, determinize).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use confanon_asnanon::{rewrite_aspath_regex, rewrite_community_regex, AsnMap, CommunityMap, RewriteOptions};
use confanon_regexlang::dfa::dfa_for;
use confanon_regexlang::{parse, Regex};

const PATTERNS: &[(&str, &str)] = &[
    ("figure1_alt", "(_1239_|_70[2-5]_)"),
    ("range", "_70[1-5]_"),
    ("wildcard", "_123._"),
    ("plain", "_7018_"),
    ("private_range", "_6451[2-9]_"),
];

fn rewrite(c: &mut Criterion) {
    let map = AsnMap::new(b"bench");
    let mut g = c.benchmark_group("regex_rewrite");
    for &(label, pat) in PATTERNS {
        g.bench_with_input(BenchmarkId::from_parameter(label), pat, |b, pat| {
            b.iter(|| {
                black_box(
                    rewrite_aspath_regex(pat, &map, RewriteOptions::default())
                        .expect("valid pattern"),
                )
            });
        });
    }
    g.finish();
}

fn rewrite_compact(c: &mut Criterion) {
    // The paper's proposed extension: minimal FA → regexp. More work per
    // rewrite, radically shorter output for big languages.
    let map = AsnMap::new(b"bench");
    let cm = CommunityMap::new(b"bench");
    let mut g = c.benchmark_group("regex_rewrite_compact");
    g.sample_size(20);
    g.bench_function("aspath_range", |b| {
        b.iter(|| {
            black_box(
                rewrite_aspath_regex("_70[1-5]_", &map, RewriteOptions { compact: true })
                    .expect("valid"),
            )
        });
    });
    g.bench_function("community_range", |b| {
        // 500-value language: the worst case Figure 1 produces.
        b.iter(|| {
            black_box(
                rewrite_community_regex("701:7[1-5]..", &cm, RewriteOptions::default())
                    .expect("valid"),
            )
        });
    });
    g.finish();
}

fn engine_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("regex_engine");
    g.bench_function("compile_figure1", |b| {
        b.iter(|| black_box(Regex::compile("(_1239_|_70[2-5]_)").expect("valid")));
    });
    let re = Regex::compile("(_1239_|_70[2-5]_)").expect("valid");
    g.bench_function("search_aspath", |b| {
        b.iter(|| black_box(re.is_match("7018 3356 1239 701 65001")));
    });
    g.bench_function("determinize_minimize", |b| {
        let ast = parse("(_1239_|_70[2-5]_)").expect("valid");
        b.iter(|| black_box(dfa_for(&ast).minimize().len()));
    });
    g.finish();
}

criterion_group!(benches, rewrite, rewrite_compact, engine_primitives);
criterion_main!(benches);
