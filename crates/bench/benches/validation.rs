//! E5/E6 — cost of the validation suites.
//!
//! §5's methodology reruns the comparisons for every network on every
//! anonymizer change, so suite runtime bounds the iteration loop's
//! turnaround. Measures property extraction (suite 1), design extraction
//! (suite 2), and the full pre/post comparison.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use confanon_bench::bench_dataset;
use confanon_design::extract_design;
use confanon_iosparse::Config;
use confanon_validate::{compare_designs, compare_properties, network_properties};

fn suites(c: &mut Criterion) {
    let ds = bench_dataset();
    let net = ds
        .networks
        .iter()
        .max_by_key(|n| n.routers.len())
        .expect("nonempty");
    let configs: Vec<Config> = net
        .routers
        .iter()
        .map(|r| Config::parse(&r.config))
        .collect();
    let lines: u64 = configs.iter().map(|c| c.len() as u64).sum();

    let mut g = c.benchmark_group("validation");
    g.throughput(Throughput::Elements(lines));
    g.bench_function("suite1_properties", |b| {
        b.iter(|| black_box(network_properties(&configs)));
    });
    g.bench_function("suite2_design_extract", |b| {
        b.iter(|| black_box(extract_design(&configs)));
    });
    g.bench_function("suite1_compare_pre_post", |b| {
        let p = network_properties(&configs);
        b.iter(|| black_box(compare_properties(&p, &p)));
    });
    g.bench_function("suite2_compare_pre_post", |b| {
        b.iter(|| black_box(compare_designs(&configs, &configs)));
    });
    g.finish();
}

fn config_parsing(c: &mut Criterion) {
    let ds = bench_dataset();
    let text = &ds.networks[0].routers[0].config;
    let mut g = c.benchmark_group("iosparse");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("parse_config", |b| {
        b.iter(|| black_box(Config::parse(text)));
    });
    g.finish();
}

criterion_group!(benches, suites, config_parsing);
criterion_main!(benches);
