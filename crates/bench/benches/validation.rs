//! E5/E6 — cost of the validation suites.
//!
//! §5's methodology reruns the comparisons for every network on every
//! anonymizer change, so suite runtime bounds the iteration loop's
//! turnaround. Measures property extraction (suite 1), design extraction
//! (suite 2), and the full pre/post comparison.

use std::hint::black_box;

use confanon_bench::{bench_dataset, finish_suite};
use confanon_design::extract_design;
use confanon_iosparse::Config;
use confanon_testkit::bench::Runner;
use confanon_validate::{compare_designs, compare_properties, network_properties};

fn main() {
    let mut r = Runner::new("validation");

    let ds = bench_dataset();
    let net = ds
        .networks
        .iter()
        .max_by_key(|n| n.routers.len())
        .expect("nonempty");
    let configs: Vec<Config> = net
        .routers
        .iter()
        .map(|c| Config::parse(&c.config))
        .collect();
    let lines: u64 = configs.iter().map(|c| c.len() as u64).sum();

    r.bench_elements("suite1_properties", lines, "lines", || {
        black_box(network_properties(&configs))
    });
    r.bench_elements("suite2_design_extract", lines, "lines", || {
        black_box(extract_design(&configs))
    });
    let p = network_properties(&configs);
    r.bench_elements("suite1_compare_pre_post", lines, "lines", || {
        black_box(compare_properties(&p, &p))
    });
    r.bench_elements("suite2_compare_pre_post", lines, "lines", || {
        black_box(compare_designs(&configs, &configs))
    });

    let text = &ds.networks[0].routers[0].config;
    r.bench_elements("parse_config", text.len() as u64, "bytes", || {
        black_box(Config::parse(text))
    });

    finish_suite(&r, "validation");
}
