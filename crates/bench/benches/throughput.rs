//! E9 — anonymization throughput.
//!
//! The paper's deployment anonymized "4.3 million lines of configuration
//! from 7655 routers" and insists the process "must be fully automated".
//! This bench measures pipeline throughput (lines and bytes per second)
//! on median (~p50) and large (~p90) router configs, per stage:
//! full pipeline, comment stripping only, and token hashing only — so the
//! cost profile of the 28 rules is visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use confanon_bench::{large_router_config, median_router_config};
use confanon_core::{Anonymizer, AnonymizerConfig, RuleId};

fn full_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("anonymize_full");
    for (label, cfg) in [
        ("median_router", median_router_config()),
        ("large_router", large_router_config()),
    ] {
        g.throughput(Throughput::Elements(cfg.lines().count() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter_batched(
                || Anonymizer::new(AnonymizerConfig::new(b"bench-secret".to_vec())),
                |mut anon| black_box(anon.anonymize_config(cfg)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn warm_state_pipeline(c: &mut Criterion) {
    // Re-anonymizing with a warm trie/permutation (the steady state when
    // processing thousands of routers of one network).
    let cfg = median_router_config();
    let mut g = c.benchmark_group("anonymize_warm");
    g.throughput(Throughput::Elements(cfg.lines().count() as u64));
    let mut anon = Anonymizer::new(AnonymizerConfig::new(b"bench-secret".to_vec()));
    anon.anonymize_config(&cfg); // warm the maps
    g.bench_function("median_router", |b| {
        b.iter(|| black_box(anon.anonymize_config(&cfg)));
    });
    g.finish();
}

fn ablated_stages(c: &mut Criterion) {
    // Cost attribution: pipeline with the expensive rule families turned
    // off, to expose what regexp rewriting and IP mapping cost.
    let cfg = median_router_config();
    let mut g = c.benchmark_group("anonymize_ablated");
    g.throughput(Throughput::Elements(cfg.lines().count() as u64));
    let variants: [(&str, Vec<RuleId>); 3] = [
        ("no_regexp_rules", vec![
            RuleId::R09AsPathAccessListRegex,
            RuleId::R12CommunityListPattern,
        ]),
        ("no_ip_rules", vec![RuleId::R22Ipv4Literal, RuleId::R23PrefixToken]),
        ("no_token_hashing", vec![RuleId::R26TokenHashing]),
    ];
    for (label, rules) in variants {
        g.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut c = AnonymizerConfig::new(b"bench-secret".to_vec());
                    c.disabled_rules = rules.iter().copied().collect();
                    Anonymizer::new(c)
                },
                |mut anon| black_box(anon.anonymize_config(&cfg)),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, full_pipeline, warm_state_pipeline, ablated_stages);
criterion_main!(benches);
