//! E9 — anonymization throughput.
//!
//! The paper's deployment anonymized "4.3 million lines of configuration
//! from 7655 routers" and insists the process "must be fully automated".
//! This bench measures pipeline throughput (lines per second) on median
//! (~p50) and large (~p90) router configs, per stage: full pipeline,
//! warm-state pipeline, and rule-family ablations — so the cost profile
//! of the 28 rules is visible.

use std::hint::black_box;

use confanon_bench::{finish_suite, large_router_config, median_router_config};
use confanon_core::{Anonymizer, AnonymizerConfig, RuleId};
use confanon_testkit::bench::Runner;

fn main() {
    let mut r = Runner::new("anonymize_throughput");

    for (label, cfg) in [
        ("full/median_router", median_router_config()),
        ("full/large_router", large_router_config()),
    ] {
        let lines = cfg.lines().count() as u64;
        r.bench_elements(label, lines, "lines", || {
            let mut anon = Anonymizer::new(AnonymizerConfig::new(b"bench-secret".to_vec()));
            black_box(anon.anonymize_config(&cfg))
        });
    }

    // Re-anonymizing with a warm trie/permutation (the steady state when
    // processing thousands of routers of one network).
    let cfg = median_router_config();
    let lines = cfg.lines().count() as u64;
    let mut warm = Anonymizer::new(AnonymizerConfig::new(b"bench-secret".to_vec()));
    warm.anonymize_config(&cfg);
    r.bench_elements("warm/median_router", lines, "lines", || {
        black_box(warm.anonymize_config(&cfg))
    });

    // Cost attribution: pipeline with the expensive rule families turned
    // off, to expose what regexp rewriting and IP mapping cost.
    let variants: [(&str, Vec<RuleId>); 3] = [
        ("ablated/no_regexp_rules", vec![
            RuleId::R09AsPathAccessListRegex,
            RuleId::R12CommunityListPattern,
        ]),
        ("ablated/no_ip_rules", vec![RuleId::R22Ipv4Literal, RuleId::R23PrefixToken]),
        ("ablated/no_token_hashing", vec![RuleId::R26TokenHashing]),
    ];
    for (label, rules) in variants {
        r.bench_elements(label, lines, "lines", || {
            let mut c = AnonymizerConfig::new(b"bench-secret".to_vec());
            c.disabled_rules = rules.iter().copied().collect();
            let mut anon = Anonymizer::new(c);
            black_box(anon.anonymize_config(&cfg))
        });
    }

    finish_suite(&r, "throughput");
}
