//! E12/E13 — IP anonymization schemes.
//!
//! §4.3 contrasts Xu's stateless scheme ("very little state must be
//! shared … amenable to parallelization") with Minshall's table-based
//! scheme, which the paper extends because "using a data-structure-based
//! mapping scheme makes it easier to implement these requirements". The
//! trade-off is measurable: per-address cost (cold and warm trie vs
//! stateless PRF chain) and the memory the table accumulates.

use std::hint::black_box;

use confanon_bench::finish_suite;
use confanon_ipanon::{CryptoPan, Ip6Anonymizer, IpAnonymizer};
use confanon_netprim::{Ip, Ip6};
use confanon_testkit::bench::Runner;

/// A deterministic pseudo-random address stream (ordinary addresses).
fn addresses(n: usize) -> Vec<Ip> {
    (0..n as u32)
        .map(|i| Ip(i.wrapping_mul(2_654_435_761) | 0x0800_0000))
        .collect()
}

fn main() {
    let mut r = Runner::new("ipanon");

    let addrs = addresses(1024);
    r.bench_elements("trie_cold_1k", addrs.len() as u64, "addrs", || {
        let mut anon = IpAnonymizer::new(b"bench");
        for &ip in &addrs {
            black_box(anon.anonymize(ip));
        }
    });

    let mut warm = IpAnonymizer::new(b"bench");
    for &ip in &addrs {
        warm.anonymize(ip);
    }
    r.bench_elements("trie_warm_1k", addrs.len() as u64, "addrs", || {
        for &ip in &addrs {
            black_box(warm.anonymize(ip));
        }
    });

    let cp = CryptoPan::new(b"bench");
    r.bench_elements("cryptopan_1k", addrs.len() as u64, "addrs", || {
        for &ip in &addrs {
            black_box(cp.anonymize(ip));
        }
    });

    // The shared-state cost the paper attributes to table schemes: nodes
    // allocated per fresh address at several table sizes.
    for n in [256usize, 4096] {
        let addrs = addresses(n);
        r.bench_elements(&format!("insert_{n}"), n as u64, "addrs", || {
            let mut anon = IpAnonymizer::new(b"bench");
            for &ip in &addrs {
                anon.anonymize(ip);
            }
            black_box(anon.node_count())
        });
    }

    // The IPv6 extension: 4× the depth, same construction.
    let addrs6: Vec<Ip6> = (0..256u128)
        .map(|i| Ip6((0x2400u128 << 112) | (i * 0x9E37_79B9_7F4A_7C15)))
        .collect();
    r.bench_elements("trie6_cold_256", addrs6.len() as u64, "addrs", || {
        let mut anon = Ip6Anonymizer::new(b"bench");
        for &ip in &addrs6 {
            black_box(anon.anonymize(ip));
        }
    });
    let mut warm6 = Ip6Anonymizer::new(b"bench");
    for &ip in &addrs6 {
        warm6.anonymize(ip);
    }
    r.bench_elements("trie6_warm_256", addrs6.len() as u64, "addrs", || {
        for &ip in &addrs6 {
            black_box(warm6.anonymize(ip));
        }
    });

    finish_suite(&r, "ipanon");
}
