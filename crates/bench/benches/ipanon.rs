//! E12/E13 — IP anonymization schemes.
//!
//! §4.3 contrasts Xu's stateless scheme ("very little state must be
//! shared … amenable to parallelization") with Minshall's table-based
//! scheme, which the paper extends because "using a data-structure-based
//! mapping scheme makes it easier to implement these requirements". The
//! trade-off is measurable: per-address cost (cold and warm trie vs
//! stateless PRF chain) and the memory the table accumulates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use confanon_ipanon::{CryptoPan, Ip6Anonymizer, IpAnonymizer};
use confanon_netprim::{Ip, Ip6};

/// A deterministic pseudo-random address stream (ordinary addresses).
fn addresses(n: usize) -> Vec<Ip> {
    (0..n as u32)
        .map(|i| Ip(i.wrapping_mul(2_654_435_761) | 0x0800_0000))
        .collect()
}

fn trie_cold(c: &mut Criterion) {
    let addrs = addresses(1024);
    let mut g = c.benchmark_group("ipanon");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("trie_cold_1k", |b| {
        b.iter_batched(
            || IpAnonymizer::new(b"bench"),
            |mut anon| {
                for &ip in &addrs {
                    black_box(anon.anonymize(ip));
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn trie_warm(c: &mut Criterion) {
    let addrs = addresses(1024);
    let mut anon = IpAnonymizer::new(b"bench");
    for &ip in &addrs {
        anon.anonymize(ip);
    }
    let mut g = c.benchmark_group("ipanon");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("trie_warm_1k", |b| {
        b.iter(|| {
            for &ip in &addrs {
                black_box(anon.anonymize(ip));
            }
        });
    });
    g.finish();
}

fn cryptopan(c: &mut Criterion) {
    let addrs = addresses(1024);
    let cp = CryptoPan::new(b"bench");
    let mut g = c.benchmark_group("ipanon");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("cryptopan_1k", |b| {
        b.iter(|| {
            for &ip in &addrs {
                black_box(cp.anonymize(ip));
            }
        });
    });
    g.finish();
}

fn trie_state_growth(c: &mut Criterion) {
    // The shared-state cost the paper attributes to table schemes: nodes
    // allocated per fresh address at several table sizes.
    let mut g = c.benchmark_group("ipanon_state");
    for &n in &[256usize, 4096] {
        let addrs = addresses(n);
        g.bench_function(format!("insert_{n}"), |b| {
            b.iter_batched(
                || IpAnonymizer::new(b"bench"),
                |mut anon| {
                    for &ip in &addrs {
                        anon.anonymize(ip);
                    }
                    black_box(anon.node_count())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn trie6(c: &mut Criterion) {
    // The IPv6 extension: 4× the depth, same construction.
    let addrs: Vec<Ip6> = (0..256u128)
        .map(|i| Ip6((0x2400u128 << 112) | (i * 0x9E37_79B9_7F4A_7C15)))
        .collect();
    let mut g = c.benchmark_group("ipanon6");
    g.throughput(Throughput::Elements(addrs.len() as u64));
    g.bench_function("trie6_cold_256", |b| {
        b.iter_batched(
            || Ip6Anonymizer::new(b"bench"),
            |mut anon| {
                for &ip in &addrs {
                    black_box(anon.anonymize(ip));
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    let mut warm = Ip6Anonymizer::new(b"bench");
    for &ip in &addrs {
        warm.anonymize(ip);
    }
    g.bench_function("trie6_warm_256", |b| {
        b.iter(|| {
            for &ip in &addrs {
                black_box(warm.anonymize(ip));
            }
        });
    });
    g.finish();
}

criterion_group!(benches, trie_cold, trie_warm, cryptopan, trie_state_growth, trie6);
criterion_main!(benches);
