//! Primitive costs: SHA-1, HMAC, token hashing, ASN permutation.
//!
//! Every non-pass-list token costs one salted SHA-1 (§4.1); every located
//! ASN costs a Feistel walk. These numbers bound the whole pipeline.

use std::hint::black_box;

use confanon_asnanon::AsnMap;
use confanon_bench::finish_suite;
use confanon_crypto::{FeistelPermutation, HmacSha1, Sha1, TokenHasher};
use confanon_testkit::bench::Runner;

fn main() {
    let mut r = Runner::new("crypto");

    for n in [64usize, 1024, 65536] {
        let data = vec![0xABu8; n];
        r.bench_elements(&format!("sha1_digest_{n}B"), n as u64, "bytes", || {
            black_box(Sha1::digest(&data))
        });
    }

    let mac = HmacSha1::new(b"owner-secret");
    r.bench("hmac_short", || black_box(mac.mac(b"UUNET-import")));
    let hasher = TokenHasher::new(b"owner-secret");
    r.bench("hash_token", || black_box(hasher.hash_token("UUNET-import")));

    let p = FeistelPermutation::new(b"owner-secret", "asn");
    let mut x = 0u16;
    r.bench("feistel_apply", || {
        x = x.wrapping_add(1);
        black_box(p.apply(x))
    });
    let m = AsnMap::new(b"owner-secret");
    let mut y = 1u16;
    r.bench("asn_map_public", || {
        y = (y % 64000).wrapping_add(1);
        black_box(m.map(y))
    });

    finish_suite(&r, "crypto");
}
