//! Primitive costs: SHA-1, HMAC, token hashing, ASN permutation.
//!
//! Every non-pass-list token costs one salted SHA-1 (§4.1); every located
//! ASN costs a Feistel walk. These numbers bound the whole pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use confanon_asnanon::AsnMap;
use confanon_crypto::{FeistelPermutation, HmacSha1, Sha1, TokenHasher};

fn sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto_sha1");
    for &n in &[64usize, 1024, 65536] {
        let data = vec![0xABu8; n];
        g.throughput(Throughput::Bytes(n as u64));
        g.bench_function(format!("digest_{n}B"), |b| {
            b.iter(|| black_box(Sha1::digest(&data)));
        });
    }
    g.finish();
}

fn hmac_and_tokens(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto_tokens");
    let mac = HmacSha1::new(b"owner-secret");
    g.bench_function("hmac_short", |b| {
        b.iter(|| black_box(mac.mac(b"UUNET-import")));
    });
    let hasher = TokenHasher::new(b"owner-secret");
    g.bench_function("hash_token", |b| {
        b.iter(|| black_box(hasher.hash_token("UUNET-import")));
    });
    g.finish();
}

fn permutations(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto_permutation");
    let p = FeistelPermutation::new(b"owner-secret", "asn");
    g.bench_function("feistel_apply", |b| {
        let mut x = 0u16;
        b.iter(|| {
            x = x.wrapping_add(1);
            black_box(p.apply(x))
        });
    });
    let m = AsnMap::new(b"owner-secret");
    g.bench_function("asn_map_public", |b| {
        let mut x = 1u16;
        b.iter(|| {
            x = (x % 64000).wrapping_add(1);
            black_box(m.map(x))
        });
    });
    g.finish();
}

criterion_group!(benches, sha1, hmac_and_tokens, permutations);
criterion_main!(benches);
