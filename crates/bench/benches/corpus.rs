//! E1/E10/E11 — corpus generation and fingerprinting costs.
//!
//! Generating the dataset substitution must stay cheap enough that the
//! paper-scale corpus (7655 routers, 4.3M lines) is regenerable on a
//! laptop; fingerprint studies run once per population.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use confanon_bench::bench_dataset;
use confanon_confgen::{generate_dataset, DatasetSpec};
use confanon_iosparse::Config;
use confanon_validate::fingerprint::{peering_key, subnet_key};
use confanon_validate::{peering_fingerprint, subnet_fingerprint, FingerprintStudy};

fn generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("confgen");
    g.sample_size(10);
    let spec = DatasetSpec {
        seed: 7,
        networks: 4,
        mean_routers: 12,
        backbone_fraction: 0.5,
    };
    // Report throughput in config lines produced.
    let lines = generate_dataset(&spec).total_lines() as u64;
    g.throughput(Throughput::Elements(lines));
    g.bench_function("generate_4nets", |b| {
        b.iter(|| black_box(generate_dataset(&spec).total_lines()));
    });
    g.finish();
}

fn fingerprints(c: &mut Criterion) {
    let ds = bench_dataset();
    let per_network: Vec<Vec<Config>> = ds
        .networks
        .iter()
        .map(|n| n.routers.iter().map(|r| Config::parse(&r.config)).collect())
        .collect();
    let mut g = c.benchmark_group("fingerprint");
    g.bench_function("subnet_study", |b| {
        b.iter(|| {
            let keys: Vec<String> = per_network
                .iter()
                .map(|cfgs| subnet_key(&subnet_fingerprint(cfgs)))
                .collect();
            black_box(FingerprintStudy::from_keys(&keys))
        });
    });
    g.bench_function("peering_study", |b| {
        b.iter(|| {
            let keys: Vec<String> = per_network
                .iter()
                .map(|cfgs| peering_key(&peering_fingerprint(cfgs)))
                .collect();
            black_box(FingerprintStudy::from_keys(&keys))
        });
    });
    g.finish();
}

criterion_group!(benches, generation, fingerprints);
criterion_main!(benches);
