//! E1/E10/E11 — corpus generation and fingerprinting costs.
//!
//! Generating the dataset substitution must stay cheap enough that the
//! paper-scale corpus (7655 routers, 4.3M lines) is regenerable on a
//! laptop; fingerprint studies run once per population.

use std::hint::black_box;

use confanon_bench::{bench_dataset, finish_suite};
use confanon_confgen::{generate_dataset, DatasetSpec};
use confanon_iosparse::Config;
use confanon_testkit::bench::Runner;
use confanon_validate::fingerprint::{peering_key, subnet_key};
use confanon_validate::{peering_fingerprint, subnet_fingerprint, FingerprintStudy};

fn main() {
    let mut r = Runner::new("corpus");

    let spec = DatasetSpec {
        seed: 7,
        networks: 4,
        mean_routers: 12,
        backbone_fraction: 0.5,
    };
    // Report throughput in config lines produced.
    let lines = generate_dataset(&spec).total_lines() as u64;
    r.bench_elements("generate_4nets", lines, "lines", || {
        black_box(generate_dataset(&spec).total_lines())
    });

    let ds = bench_dataset();
    let per_network: Vec<Vec<Config>> = ds
        .networks
        .iter()
        .map(|n| n.routers.iter().map(|c| Config::parse(&c.config)).collect())
        .collect();
    r.bench("subnet_study", || {
        let keys: Vec<String> = per_network
            .iter()
            .map(|cfgs| subnet_key(&subnet_fingerprint(cfgs)))
            .collect();
        black_box(FingerprintStudy::from_keys(&keys))
    });
    r.bench("peering_study", || {
        let keys: Vec<String> = per_network
            .iter()
            .map(|cfgs| peering_key(&peering_fingerprint(cfgs)))
            .collect();
        black_box(FingerprintStudy::from_keys(&keys))
    });

    finish_suite(&r, "corpus");
}
