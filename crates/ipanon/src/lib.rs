//! # confanon-ipanon — structure-preserving IP address anonymization
//!
//! Paper §4.3. Two schemes are implemented:
//!
//! * [`IpAnonymizer`] — the scheme the paper ships: an extended version of
//!   Minshall's tcpdpriv `-a50` table-based prefix-preserving mapping.
//!   "We have found that using a data-structure-based mapping scheme makes
//!   it easier to implement these requirements. By controlling how new
//!   entries are added to the data-structure, we can shape the mapping to
//!   have the needed properties while maintaining as much of the
//!   randomness needed for security as possible." The extensions:
//!
//!   1. **class preserving** — the class-defining leading bits (1 for A,
//!      2 for B, 3 for C, 4 for D/E) map identically;
//!   2. **special addresses pass through** — netmask-valued quads,
//!      wildcard-valued quads, multicast, reserved, loopback, and
//!      link-local are returned unchanged and never entered in the trie;
//!   3. **collision remapping** — when an ordinary address's image lands
//!      on a special value, the image is recursively re-mapped "until
//!      there is no collision". Termination and injectivity are argued in
//!      [`IpAnonymizer::anonymize`]'s docs and enforced by tests;
//!   4. **subnet-address preserving** — an address whose host part is all
//!      zeros maps to another all-zeros-suffix address whenever the trie
//!      nodes for that suffix are first created by it (best-effort, as in
//!      the paper: a readability property, not a guarantee).
//!
//! * [`CryptoPan`] — the stateless cryptographic scheme of Xu et al.,
//!   which the paper credits with "very little state must be shared to
//!   consistently map addresses, making it amenable to parallelization",
//!   but which cannot express the class/special constraints. It serves as
//!   the comparison baseline for experiment E13.
//!
//! A third mapping, [`RandomScramble`], is the *negative control*: fully
//! anonymous, zero structure. Experiment E15 runs the validation suites
//! over it to quantify what prefix preservation buys.
//!
//! All schemes are keyed by the owner secret and fully deterministic, so
//! re-running the anonymizer on the same network maps it consistently.

#![deny(rustdoc::broken_intra_doc_links)]

mod cryptopan;
mod scramble;
mod trie;
mod trie6;

pub use cryptopan::CryptoPan;
pub use scramble::RandomScramble;
pub use trie::IpAnonymizer;
pub use trie6::Ip6Anonymizer;

#[cfg(test)]
mod property_tests {
    use super::*;
    use confanon_netprim::{special_kind, Ip};
    use confanon_testkit::props::{any, assume, vec_of};

    confanon_testkit::props! {
        cases = 256;

        /// The headline guarantee: for ordinary addresses whose images do
        /// not collide with specials (the overwhelmingly common case),
        /// the longest common prefix of the images equals the longest
        /// common prefix of the inputs.
        fn trie_prefix_preserving(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
            let (a, b) = (Ip(a), Ip(b));
            assume(special_kind(a).is_none() && special_kind(b).is_none());
            let mut anon = IpAnonymizer::new(&seed.to_be_bytes());
            let fa = anon.map_raw(a);
            let fb = anon.map_raw(b);
            assert_eq!(a.common_prefix_len(b), fa.common_prefix_len(fb));
        }

        /// Class preservation on the raw map.
        fn trie_class_preserving(a in any::<u32>(), seed in any::<u64>()) {
            let a = Ip(a);
            assume(special_kind(a).is_none());
            let mut anon = IpAnonymizer::new(&seed.to_be_bytes());
            assert_eq!(anon.anonymize(a).class(), a.class());
        }

        /// End-to-end map (with remapping) never outputs a special
        /// address for an ordinary input, and is injective over a batch.
        fn trie_total_map_avoids_specials(addrs in vec_of(any::<u32>(), 1usize..200), seed in any::<u64>()) {
            let mut anon = IpAnonymizer::new(&seed.to_be_bytes());
            let mut seen = std::collections::HashMap::new();
            for &raw in &addrs {
                let ip = Ip(raw);
                let out = anon.anonymize(ip);
                if special_kind(ip).is_some() {
                    assert_eq!(out, ip);
                } else {
                    assert!(special_kind(out).is_none(), "{ip} -> {out} is special");
                }
                if let Some(prev) = seen.insert(ip, out) {
                    assert_eq!(prev, out, "inconsistent mapping for {ip}");
                }
            }
            // Injectivity: distinct inputs, distinct outputs.
            let mut by_out = std::collections::HashMap::new();
            for (i, o) in &seen {
                if let Some(other) = by_out.insert(*o, *i) {
                    assert_eq!(other, *i, "two inputs map to {o}");
                }
            }
        }

        /// Crypto-PAn baseline: prefix preserving and stateless
        /// (order-independent).
        fn cryptopan_prefix_preserving(a in any::<u32>(), b in any::<u32>(), seed in any::<u64>()) {
            let (a, b) = (Ip(a), Ip(b));
            let cp = CryptoPan::new(&seed.to_be_bytes());
            assert_eq!(
                a.common_prefix_len(b),
                cp.anonymize(a).common_prefix_len(cp.anonymize(b))
            );
        }

        /// The two schemes agree on the *shape* requirement (prefix
        /// preservation) while producing different mappings — they are
        /// genuinely distinct implementations.
        fn schemes_are_distinct(seed in any::<u64>()) {
            let mut trie = IpAnonymizer::new(&seed.to_be_bytes());
            let cp = CryptoPan::new(&seed.to_be_bytes());
            let sample: Vec<Ip> = (0..64u32).map(|i| Ip(0x0A00_0000 + i * 65537)).collect();
            let differs = sample
                .iter()
                .any(|&ip| trie.anonymize(ip) != cp.anonymize(ip));
            assert!(differs);
        }
    }
}

#[cfg(test)]
mod property_tests6 {
    use super::*;
    use confanon_netprim::{special6_kind, Ip6};
    use confanon_testkit::props::{any, assume};

    confanon_testkit::props! {
        cases = 256;

        /// 128-bit prefix preservation for ordinary global-unicast pairs.
        fn trie6_prefix_preserving(a in any::<u128>(), b in any::<u128>(), seed in any::<u64>()) {
            // Constrain to global unicast (2000::/3) — the space configs
            // actually use; region pinning makes other spaces special-ish.
            let a = Ip6((a & !(0b111u128 << 125)) | (0b001u128 << 125));
            let b = Ip6((b & !(0b111u128 << 125)) | (0b001u128 << 125));
            assume(special6_kind(a).is_none() && special6_kind(b).is_none());
            let mut anon = Ip6Anonymizer::new(&seed.to_be_bytes());
            let fa = anon.map_raw(a);
            let fb = anon.map_raw(b);
            assert_eq!(a.common_prefix_len(b), fa.common_prefix_len(fb));
        }

        /// The total v6 map never outputs a special for ordinary input
        /// and stays consistent.
        fn trie6_total_map(a in any::<u128>(), seed in any::<u64>()) {
            let a = Ip6(a);
            let mut anon = Ip6Anonymizer::new(&seed.to_be_bytes());
            let out = anon.anonymize(a);
            if special6_kind(a).is_some() {
                assert_eq!(out, a);
            } else {
                assert!(special6_kind(out).is_none());
                assert_eq!(anon.anonymize(a), out);
            }
        }
    }
}
