//! Negative control: a per-address random scramble.
//!
//! Every anonymity property of §4.3 and *none* of the structure: each
//! distinct address maps to an independent pseudo-random address
//! (injectively, via cycle-walked 32-bit Feistel), so prefixes,
//! classes, and subnet relationships are destroyed. This is the
//! strawman the paper's whole design argues against — experiment E15
//! runs the validation suites over it and watches them fail, which is
//! the quantified justification for prefix preservation.

use confanon_crypto::FeistelPermutation32;
use confanon_netprim::{special_kind, Ip};

/// A structure-destroying (but injective and keyed) address mapping.
///
/// Specials still pass through — otherwise netmask tokens would break
/// the config *syntax*, and the point of the control is to break the
/// *semantics* only.
#[derive(Clone)]
pub struct RandomScramble {
    perm: FeistelPermutation32,
}

impl RandomScramble {
    /// Creates a scrambler keyed by the owner secret.
    pub fn new(owner_secret: &[u8]) -> RandomScramble {
        RandomScramble {
            perm: FeistelPermutation32::new(owner_secret, "scramble"),
        }
    }

    /// Maps one address with no structural guarantees.
    pub fn anonymize(&self, ip: Ip) -> Ip {
        if special_kind(ip).is_some() {
            return ip;
        }
        let mut y = Ip(self.perm.apply(ip.0));
        // Keep the image ordinary so it cannot masquerade as a netmask.
        while special_kind(y).is_some() {
            y = Ip(self.perm.apply(y.0));
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injective_and_keyed() {
        let s = RandomScramble::new(b"k");
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            let ip = Ip(i.wrapping_mul(2_654_435_761));
            if special_kind(ip).is_none() {
                assert!(seen.insert(s.anonymize(ip)));
            }
        }
        let t = RandomScramble::new(b"other");
        let ip = Ip(0x0A00_0001);
        assert_ne!(s.anonymize(ip), t.anonymize(ip));
    }

    #[test]
    fn destroys_prefix_relationships() {
        // The defining anti-property: sibling addresses land far apart.
        let s = RandomScramble::new(b"k");
        let a: Ip = "10.1.2.3".parse().unwrap();
        let b: Ip = "10.1.2.4".parse().unwrap();
        let shared = s.anonymize(a).common_prefix_len(s.anonymize(b));
        // 30 shared input bits; a structure-preserving map would keep all
        // 30. Pseudo-random images share ~1 bit in expectation; allow a
        // generous margin.
        assert!(shared < 16, "scramble preserved {shared} bits");
    }

    #[test]
    fn specials_still_pass() {
        let s = RandomScramble::new(b"k");
        let m: Ip = "255.255.255.0".parse().unwrap();
        assert_eq!(s.anonymize(m), m);
    }
}
