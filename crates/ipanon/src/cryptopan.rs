//! The stateless cryptographic scheme (Xu et al.), our comparison baseline.
//!
//! Each output bit is `input_bit ⊕ F(key, input_prefix)` where `F` is a
//! keyed PRF of the bits above the current position. Consistency across
//! machines requires sharing only the key — the property the paper credits
//! to Xu's scheme ("very little state must be shared …, making it amenable
//! to parallelization") — but there is no table to *shape*, so the
//! class-preservation, special-passthrough, and subnet-address rules of
//! §4.3 cannot be expressed. Experiment E13 benchmarks this trade-off.

use confanon_crypto::Prf;
use confanon_netprim::Ip;

/// Stateless prefix-preserving anonymizer.
pub struct CryptoPan {
    prf: Prf,
}

impl CryptoPan {
    /// Creates an instance keyed by the owner secret.
    pub fn new(owner_secret: &[u8]) -> CryptoPan {
        CryptoPan {
            prf: Prf::new(owner_secret),
        }
    }

    /// Maps one address. Pure function of `(key, ip)` — no interior state.
    pub fn anonymize(&self, ip: Ip) -> Ip {
        let mut out = 0u32;
        let mut prefix = 0u32;
        for depth in 0u8..32 {
            let in_bit = ip.bit(depth);
            // PRF input: the bits above `depth`, left-aligned, plus the
            // depth itself (distinguishes equal left-aligned prefixes of
            // different lengths).
            let mut msg = [0u8; 5];
            msg[..4].copy_from_slice(&prefix.to_be_bytes());
            msg[4] = depth;
            let flip = self.prf.bit("cryptopan", &msg);
            out = (out << 1) | u32::from(in_bit ^ flip);
            prefix |= u32::from(in_bit) << (31 - depth);
        }
        Ip(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_stateless() {
        let cp = CryptoPan::new(b"k");
        let ip: Ip = "12.126.236.17".parse().unwrap();
        assert_eq!(cp.anonymize(ip), cp.anonymize(ip));
        // A second instance (fresh "machine") agrees: only the key is
        // shared state.
        let cp2 = CryptoPan::new(b"k");
        assert_eq!(cp.anonymize(ip), cp2.anonymize(ip));
    }

    #[test]
    fn keyed() {
        let ip: Ip = "12.126.236.17".parse().unwrap();
        assert_ne!(
            CryptoPan::new(b"k1").anonymize(ip),
            CryptoPan::new(b"k2").anonymize(ip)
        );
    }

    #[test]
    fn prefix_preserving_concrete() {
        let cp = CryptoPan::new(b"k");
        let a: Ip = "10.1.2.3".parse().unwrap();
        let b: Ip = "10.1.2.200".parse().unwrap();
        let c: Ip = "10.1.99.1".parse().unwrap();
        assert_eq!(
            a.common_prefix_len(b),
            cp.anonymize(a).common_prefix_len(cp.anonymize(b))
        );
        assert_eq!(
            a.common_prefix_len(c),
            cp.anonymize(a).common_prefix_len(cp.anonymize(c))
        );
    }

    #[test]
    fn bijective_on_a_sample() {
        // Injectivity spot check over 10k inputs.
        let cp = CryptoPan::new(b"k");
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            let out = cp.anonymize(Ip(i.wrapping_mul(2_654_435_761)));
            assert!(seen.insert(out.0));
        }
    }

    #[test]
    fn does_not_preserve_class_in_general() {
        // The documented limitation (why the paper uses the trie scheme):
        // the flip of bit 0 is one per-key coin, so across a handful of
        // keys some key must move 10.0.0.0 out of class A.
        let ip = Ip(0x0A00_0000);
        let changed = (0u8..16).any(|k| {
            CryptoPan::new(&[k]).anonymize(ip).class() != ip.class()
        });
        assert!(changed, "implausible: class preserved under all 16 keys");
    }
}
