//! The table-based (binary trie) prefix-preserving mapping.
//!
//! Every trie node corresponds to an input bit-prefix `p` and stores one
//! bit `flip`: the output bit at depth `|p|` is `input_bit ⊕ flip`. Two
//! addresses sharing a k-bit input prefix walk the same k nodes and hence
//! share exactly k output bits — prefix preservation by construction.
//!
//! The paper's extensions are implemented as constraints on `flip` when a
//! node is first created:
//!
//! * **class bits** — `flip = 0` at depth 0 and at depths 1..4 while the
//!   path so far is all ones (those are the class-defining bits);
//! * **special prefix regions** — `flip = 0` while the path is a proper
//!   prefix of 127/8 or 169.254/16, so each region maps onto itself and
//!   ordinary inputs can never land inside one (multicast 224/4 and
//!   reserved 240/4 are already pinned by the class bits);
//! * **trailing zeros** — if the address being inserted ends in `t` zero
//!   bits, nodes created in the last `t` levels get `flip = 0`, mapping
//!   subnet addresses to subnet addresses when first seen;
//! * otherwise `flip` is a keyed PRF bit of the input path — deterministic
//!   per owner secret but unpredictable without it.
//!
//! Point specials (netmask- and wildcard-valued quads) are not prefix
//! regions and are instead handled by the §4.3 recursive remap in
//! [`IpAnonymizer::anonymize`].

use confanon_crypto::Prf;
use confanon_netprim::{special_kind, Ip};

/// Sentinel for "no child".
const NONE: u32 = u32::MAX;

/// One trie node.
#[derive(Clone, Copy)]
struct Node {
    /// Output-bit flip at this node's depth.
    flip: bool,
    /// Children indexed by the input bit.
    child: [u32; 2],
}

/// The extended `-a50` anonymizer (see module docs).
#[derive(Clone)]
pub struct IpAnonymizer {
    prf: Prf,
    nodes: Vec<Node>,
    preserve_trailing_zeros: bool,
    /// [`IpAnonymizer::depth_salt`] for depths 0..=32, computed once at
    /// construction: the salt is a pure function of (secret, depth), and
    /// paying one HMAC per *fresh trie node* for one of 33 values was
    /// measurably the second-largest cost of corpus discovery.
    depth_salts: [bool; 33],
}

/// The two special *prefix regions* that must map to themselves and that
/// ordinary traffic must therefore avoid: loopback and link-local.
/// Encoded as (bits, length).
const REGIONS: [(u32, u8); 2] = [
    (0x7F00_0000, 8),  // 127.0.0.0/8
    (0xA9FE_0000, 16), // 169.254.0.0/16
];

impl IpAnonymizer {
    /// Creates an anonymizer keyed by the owner secret (with the paper's
    /// subnet-address preservation on).
    pub fn new(owner_secret: &[u8]) -> IpAnonymizer {
        IpAnonymizer::with_options(owner_secret, true)
    }

    /// Like [`IpAnonymizer::new`], optionally disabling the
    /// subnet-address (trailing-zero) preservation of §3.2 — rule R24's
    /// ablation switch. Prefix/class/special guarantees are unaffected.
    pub fn with_options(owner_secret: &[u8], preserve_trailing_zeros: bool) -> IpAnonymizer {
        let prf = Prf::new(owner_secret);
        let mut depth_salts = [false; 33];
        for (depth, salt) in depth_salts.iter_mut().enumerate() {
            *salt = Self::depth_salt(&prf, depth as u8);
        }
        let mut a = IpAnonymizer {
            prf,
            nodes: Vec::with_capacity(1024),
            preserve_trailing_zeros,
            depth_salts,
        };
        a.nodes.push(Node {
            flip: false, // depth-0 bit is class-defining: identity
            child: [NONE, NONE],
        });
        a
    }

    /// Number of trie nodes allocated (size of the shared state the paper
    /// contrasts against Xu's stateless scheme).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// FNV-1a digest of the full node table — flip bit and child ids in
    /// allocation order — so a persisted-state load can verify that its
    /// journal replay rebuilt the trie node-for-node.
    pub fn structure_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        };
        for node in &self.nodes {
            mix(u8::from(node.flip));
            for child in node.child {
                for b in child.to_be_bytes() {
                    mix(b);
                }
            }
        }
        h
    }

    /// Whether a freshly created node at `depth` (with input path
    /// `path_bits`, the bits above `depth`) must have `flip = 0`.
    fn forced_identity(path_bits: u32, depth: u8, trailing_zero_from: u8) -> bool {
        // Class-defining bits: depth 0 always; depths 1..4 when every bit
        // of the path so far is 1.
        if depth == 0 {
            return true;
        }
        if depth < 4 {
            let ones = path_bits >> (32 - depth);
            if ones == (1u32 << depth) - 1 {
                return true;
            }
        }
        // Proper prefix of a protected region.
        for (bits, len) in REGIONS {
            if depth < len && (path_bits ^ bits) >> (32 - depth) == 0 {
                return true;
            }
        }
        // Trailing-zero (subnet address) preservation.
        depth >= trailing_zero_from
    }

    /// The raw trie map: prefix-, class-, and region-preserving, but with
    /// no passthrough or collision handling. Exposed for the property
    /// tests and benchmarks; production callers use
    /// [`IpAnonymizer::anonymize`].
    ///
    /// When the computed image collides with a *point* special (the
    /// trailing-zero rule can steer an image onto `0.0.0.0` or a
    /// mask-valued quad), the walk repairs itself **at creation time**:
    /// it re-flips one freshly created node — deepest first, skipping
    /// class/region-pinned depths — until the image is ordinary. Fresh
    /// nodes are not yet shared with any other mapping, so the repair
    /// never disturbs an established prefix relation; this is how the
    /// paper's claim that collision handling "maintains the
    /// structure-preserving property" is realized. (The recursive remap
    /// in [`IpAnonymizer::anonymize`] remains as a last-resort fallback.)
    pub fn map_raw(&mut self, ip: Ip) -> Ip {
        // Depth at which the trailing zero run of `ip` begins (32 = none).
        let tz = if self.preserve_trailing_zeros {
            ip.0.trailing_zeros().min(32) as u8
        } else {
            0
        };
        let trailing_zero_from = 32 - tz;

        let mut out = 0u32;
        let mut node = 0usize;
        let mut path = 0u32; // input bits consumed so far, left-aligned
        // Node id visited at each depth, plus whether it was created by
        // *this* walk (fresh nodes are repairable, below).
        let mut visited: [(u32, bool); 32] = [(0, false); 32];
        for depth in 0u8..32 {
            let in_bit = ip.bit(depth);
            visited[depth as usize].0 = node as u32;
            let flip = self.nodes[node].flip;
            let out_bit = in_bit ^ flip;
            out = (out << 1) | u32::from(out_bit);

            // Descend, creating the child if needed.
            let idx = usize::from(in_bit);
            let next_path = path | (u32::from(in_bit) << (31 - depth));
            if depth < 31 {
                if self.nodes[node].child[idx] == NONE {
                    let flip = if Self::forced_identity(next_path, depth + 1, trailing_zero_from)
                    {
                        false
                    } else {
                        self.prf.bit("iptrie", &next_path.to_be_bytes()[..])
                            ^ self.depth_salts[usize::from(depth) + 1]
                    };
                    self.nodes.push(Node {
                        flip,
                        child: [NONE, NONE],
                    });
                    let new_id = (self.nodes.len() - 1) as u32;
                    self.nodes[node].child[idx] = new_id;
                    visited[depth as usize + 1].1 = true; // fresh
                }
                node = self.nodes[node].child[idx] as usize;
            }
            path = next_path;
        }

        // Point-special escape: re-flip one fresh, unpinned node (deepest
        // first). Never touches class bits, protected regions, or any
        // node another mapping already walked.
        if special_kind(Ip(out)).is_some() {
            for depth in (0u8..32).rev() {
                let (node_id, fresh) = visited[depth as usize];
                if !fresh || Self::pinned(ip, depth) {
                    continue;
                }
                let candidate = out ^ (1u32 << (31 - depth));
                if special_kind(Ip(candidate)).is_none() {
                    self.nodes[node_id as usize].flip ^= true;
                    out = candidate;
                    break;
                }
            }
        }
        Ip(out)
    }

    /// Whether the node at `depth` on `ip`'s path is pinned by the class
    /// or protected-region rules (and therefore may never be re-flipped).
    fn pinned(ip: Ip, depth: u8) -> bool {
        if depth == 0 {
            return true;
        }
        let path = if depth == 0 { 0 } else { ip.0 & (u32::MAX << (32 - depth)) };
        if depth < 4 && path >> (32 - depth) == (1u32 << depth) - 1 {
            return true;
        }
        for (bits, len) in REGIONS {
            if depth < len && (path ^ bits) >> (32 - depth) == 0 {
                return true;
            }
        }
        false
    }

    /// Extra keyed diffusion so `flip` is not a function of the path bits
    /// alone across different depths with equal left-aligned paths (e.g.
    /// the path `1` at depth 1 vs `10` at depth 2 share the left-aligned
    /// encoding; mixing the depth in removes the aliasing).
    fn depth_salt(prf: &Prf, depth: u8) -> bool {
        prf.bit("iptrie-depth", &[depth])
    }

    /// The full §4.3 scheme: specials pass through unchanged; ordinary
    /// addresses go through the trie; if the image collides with a special
    /// value it is recursively re-mapped until ordinary.
    ///
    /// **Termination**: the realized trie map is a bijection on `u32`
    /// (each level XORs a path-determined bit), so iterating it from `a`
    /// walks a finite cycle through `a`; because `a` itself is ordinary,
    /// the walk meets an ordinary value after at most
    /// `|specials-on-cycle| + 1` steps. **Injectivity**: if two ordinary
    /// inputs reached the same final image, the earlier one on the shared
    /// cycle suffix would itself have been an (ordinary) intermediate of
    /// the other — contradicting that only special values are re-mapped.
    pub fn anonymize(&mut self, ip: Ip) -> Ip {
        if special_kind(ip).is_some() {
            return ip;
        }
        let mut out = self.map_raw(ip);
        let mut guard = 0;
        while special_kind(out).is_some() {
            out = self.map_raw(out);
            guard += 1;
            assert!(
                guard <= 128,
                "collision remapping failed to terminate for {ip}"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confanon_netprim::{AddrClass, Prefix};

    fn anon() -> IpAnonymizer {
        IpAnonymizer::new(b"unit-test-secret")
    }

    #[test]
    fn deterministic_and_consistent() {
        let mut a = anon();
        let ip: Ip = "12.126.236.17".parse().unwrap();
        let first = a.anonymize(ip);
        assert_eq!(a.anonymize(ip), first);
        // Fresh instance with the same secret reproduces the mapping.
        let mut b = anon();
        assert_eq!(b.anonymize(ip), first);
    }

    #[test]
    fn different_secrets_different_mappings() {
        let ip: Ip = "12.126.236.17".parse().unwrap();
        let x = IpAnonymizer::new(b"s1").anonymize(ip);
        let y = IpAnonymizer::new(b"s2").anonymize(ip);
        assert_ne!(x, y);
    }

    #[test]
    fn specials_pass_through() {
        let mut a = anon();
        for s in [
            "255.255.255.0",
            "0.0.0.255",
            "224.0.0.5",
            "127.0.0.1",
            "169.254.1.1",
            "0.0.0.0",
            "255.255.255.255",
        ] {
            let ip: Ip = s.parse().unwrap();
            assert_eq!(a.anonymize(ip), ip, "{s}");
        }
    }

    #[test]
    fn class_preserved_for_every_class() {
        let mut a = anon();
        for (s, c) in [
            ("10.20.30.40", AddrClass::A),
            ("150.60.70.80", AddrClass::B),
            ("200.90.100.110", AddrClass::C),
        ] {
            let out = a.anonymize(s.parse().unwrap());
            assert_eq!(out.class(), c, "{s} -> {out}");
        }
    }

    #[test]
    fn subnet_contains_preserved() {
        // The Figure 1 relationship: 1.0.0.0/8 contains 1.1.1.1; the
        // anonymized pair must preserve containment.
        let mut a = anon();
        let net = a.anonymize("1.0.0.0".parse().unwrap());
        let host = a.anonymize("1.1.1.1".parse().unwrap());
        let net_pfx = Prefix::new(net, 8);
        assert!(net_pfx.contains(host));
    }

    #[test]
    fn subnet_address_maps_to_subnet_address() {
        // First-seen subnet addresses keep their zero host parts.
        let mut a = anon();
        for s in ["10.2.3.0", "172.20.0.0", "192.200.4.0", "1.0.0.0"] {
            let ip: Ip = s.parse().unwrap();
            let out = a.anonymize(ip);
            let tz_in = ip.0.trailing_zeros();
            let tz_out = out.0.trailing_zeros();
            assert!(
                tz_out >= tz_in,
                "{s} (tz {tz_in}) -> {out} (tz {tz_out})"
            );
        }
    }

    #[test]
    fn ordinary_never_maps_into_loopback_or_linklocal() {
        // 1/128 of random class A images would land in 127/8 without the
        // region pinning; with it, none may.
        let mut a = anon();
        for i in 0..4096u32 {
            let ip = Ip(0x0100_0000u32.wrapping_add(i.wrapping_mul(2_654_435_761)) & 0x7FFF_FFFF);
            if special_kind(ip).is_some() {
                continue;
            }
            let out = a.anonymize(ip);
            assert!(
                !Prefix::new(Ip(0x7F00_0000), 8).contains(out),
                "{ip} -> {out} in 127/8"
            );
            assert!(
                !Prefix::new(Ip(0xA9FE_0000), 16).contains(out),
                "{ip} -> {out} in 169.254/16"
            );
        }
    }

    #[test]
    fn loopback_region_maps_to_itself_conceptually() {
        // Addresses in 127/8 are special and pass through — the region
        // maps to itself trivially; this documents the invariant.
        let mut a = anon();
        let ip: Ip = "127.5.6.7".parse().unwrap();
        assert_eq!(a.anonymize(ip), ip);
    }

    #[test]
    fn prefix_structure_of_a_realistic_plan_is_preserved() {
        // Carve a /16 into /24s and check the images still share the /16
        // image and are distinct /24s: the "number of subnets of each
        // size" validation property (paper §5) in miniature.
        let mut a = anon();
        let base: Ip = "10.50.0.0".parse().unwrap();
        let out_base = a.anonymize(base);
        let mut images = std::collections::HashSet::new();
        for i in 0..32u32 {
            let sub = Ip(base.0 + (i << 8));
            let out = a.anonymize(sub);
            assert!(
                out.common_prefix_len(out_base) >= 16,
                "{sub} escaped the /16"
            );
            images.insert(out.0 >> 8);
        }
        assert_eq!(images.len(), 32, "images collided at /24 granularity");
    }

    #[test]
    fn node_count_grows_linearly() {
        let mut a = anon();
        let before = a.node_count();
        a.anonymize("10.0.0.1".parse().unwrap());
        let after_one = a.node_count();
        assert!(after_one > before);
        a.anonymize("10.0.0.1".parse().unwrap());
        assert_eq!(a.node_count(), after_one, "re-mapping allocates nothing");
        a.anonymize("10.0.0.2".parse().unwrap());
        assert!(a.node_count() <= after_one + 2, "shared path re-used");
    }

    #[test]
    fn remap_guard_is_untriggered_on_saturation() {
        // Map a large batch; the guard assertion inside anonymize must
        // never fire and all outputs must be ordinary.
        let mut a = anon();
        for i in 0..10_000u32 {
            let ip = Ip(i.wrapping_mul(2_654_435_761));
            if special_kind(ip).is_none() {
                let out = a.anonymize(ip);
                assert!(special_kind(out).is_none());
            }
        }
    }
}

#[cfg(test)]
mod repair_tests {
    use super::*;
    use confanon_netprim::Prefix;

    /// The scenario that motivated creation-time repair: interfaces in
    /// `10.x` are mapped first, then the classful `network 10.0.0.0`
    /// statement. With unlucky flips the network address's image is
    /// `0.0.0.0` (first-octet image 0 + trailing-zero preservation) —
    /// a special — and a naive remap would tear it away from the
    /// interfaces it must still contain. The repair keeps containment
    /// for every key, so this exhaustively checks many keys.
    #[test]
    fn classful_network_stays_containing_after_collision_repair() {
        for seed in 0u32..64 {
            let mut a = IpAnonymizer::new(&seed.to_be_bytes());
            let host = a.anonymize("10.181.0.18".parse().unwrap());
            let net = a.anonymize("10.0.0.0".parse().unwrap());
            assert!(
                special_kind(net).is_none(),
                "seed {seed}: network image {net} still special"
            );
            // Classful containment: same class-A network.
            assert_eq!(
                Prefix::new(net, 8).network(),
                Prefix::new(host, 8).network(),
                "seed {seed}: {net} vs {host} lost the /8 relation"
            );
        }
    }

    /// The repair must never disturb an *established* mapping: images
    /// computed before a colliding insertion stay bit-identical.
    #[test]
    fn repair_never_changes_prior_mappings() {
        for seed in 0u32..32 {
            let mut reference = IpAnonymizer::new(&seed.to_be_bytes());
            let h1 = reference.anonymize("10.181.0.18".parse().unwrap());
            let h2 = reference.anonymize("10.44.7.9".parse().unwrap());

            let mut with_collider = IpAnonymizer::new(&seed.to_be_bytes());
            assert_eq!(with_collider.anonymize("10.181.0.18".parse().unwrap()), h1);
            assert_eq!(with_collider.anonymize("10.44.7.9".parse().unwrap()), h2);
            with_collider.anonymize("10.0.0.0".parse().unwrap());
            // Re-mapping the earlier addresses still yields the same images.
            assert_eq!(with_collider.anonymize("10.181.0.18".parse().unwrap()), h1);
            assert_eq!(with_collider.anonymize("10.44.7.9".parse().unwrap()), h2);
        }
    }
}
