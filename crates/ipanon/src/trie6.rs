//! IPv6 prefix-preserving anonymization — the 128-bit generalization of
//! the paper's extended `-a50` scheme.
//!
//! Identical construction to [`crate::IpAnonymizer`], minus classful
//! addressing (IPv6 has none) and plus the IPv6 special regions: the
//! global-unicast `2000::/3` leading bits are pinned (so anonymized
//! addresses remain plausibly global unicast), link-local `fe80::/10`
//! and multicast `ff00::/8` regions map to themselves, and trailing
//! zeros are preserved at first sight (subnet-address readability, §3.2).

use confanon_crypto::Prf;
use confanon_netprim::{special6_kind, Ip6};

/// Sentinel for "no child".
const NONE: u32 = u32::MAX;

#[derive(Clone, Copy)]
struct Node {
    flip: bool,
    child: [u32; 2],
}

/// The IPv6 trie anonymizer.
#[derive(Clone)]
pub struct Ip6Anonymizer {
    prf: Prf,
    nodes: Vec<Node>,
    /// Per-depth PRF salt, precomputed once (pure function of the secret
    /// and depth — see [`crate::IpAnonymizer`]'s identical cache).
    depth_salts: [bool; 129],
}

/// Protected prefix regions: (leading bits left-aligned in u128, length).
/// Inputs inside them are special (passthrough); the pinning guarantees
/// ordinary inputs can never map *into* them.
const REGIONS6: [(u128, u8); 2] = [
    (0xfe80u128 << 112, 10), // fe80::/10 link-local
    (0xffu128 << 120, 8),    // ff00::/8 multicast
];

impl Ip6Anonymizer {
    /// Creates an anonymizer keyed by the owner secret.
    pub fn new(owner_secret: &[u8]) -> Ip6Anonymizer {
        let prf = Prf::new(owner_secret);
        let mut depth_salts = [false; 129];
        for (depth, salt) in depth_salts.iter_mut().enumerate() {
            *salt = prf.bit("ip6trie-depth", &[depth as u8]);
        }
        let mut a = Ip6Anonymizer {
            prf,
            nodes: Vec::with_capacity(1024),
            depth_salts,
        };
        a.nodes.push(Node {
            flip: false, // bit 0 pinned (see `forced_identity`)
            child: [NONE, NONE],
        });
        a
    }

    /// Number of trie nodes allocated.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// FNV-1a digest of the node table (see
    /// [`crate::IpAnonymizer::structure_digest`]): the post-replay check
    /// that persisted state reconstructed this trie node-for-node.
    pub fn structure_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        };
        for node in &self.nodes {
            mix(u8::from(node.flip));
            for child in node.child {
                for b in child.to_be_bytes() {
                    mix(b);
                }
            }
        }
        h
    }

    /// Whether a fresh node must have `flip = 0`.
    fn forced_identity(path_bits: u128, depth: u8, trailing_zero_from: u8) -> bool {
        // Pin the first three bits: `2000::/3` (global unicast) maps to
        // itself, the address-family analogue of v4 class preservation.
        if depth < 3 {
            return true;
        }
        for (bits, len) in REGIONS6 {
            if depth < len && (path_bits ^ bits) >> (128 - depth) == 0 {
                return true;
            }
        }
        depth >= trailing_zero_from
    }

    /// The raw trie map (no passthrough / collision handling).
    pub fn map_raw(&mut self, ip: Ip6) -> Ip6 {
        let tz = ip.0.trailing_zeros().min(128) as u8;
        let trailing_zero_from = 128 - tz;

        let mut out: u128 = 0;
        let mut node = 0usize;
        let mut path: u128 = 0;
        let mut visited: [(u32, bool); 128] = [(0, false); 128];
        for depth in 0u8..128 {
            let in_bit = ip.bit(depth);
            visited[depth as usize].0 = node as u32;
            let flip = self.nodes[node].flip;
            out = (out << 1) | u128::from(in_bit ^ flip);

            let idx = usize::from(in_bit);
            let next_path = path | (u128::from(in_bit) << (127 - depth));
            if depth < 127 {
                if self.nodes[node].child[idx] == NONE {
                    let flip = if Self::forced_identity(next_path, depth + 1, trailing_zero_from)
                    {
                        false
                    } else {
                        self.prf.bit("ip6trie", &next_path.to_be_bytes()[..])
                            ^ self.depth_salts[usize::from(depth) + 1]
                    };
                    self.nodes.push(Node {
                        flip,
                        child: [NONE, NONE],
                    });
                    let new_id = (self.nodes.len() - 1) as u32;
                    self.nodes[node].child[idx] = new_id;
                    visited[depth as usize + 1].1 = true;
                }
                node = self.nodes[node].child[idx] as usize;
            }
            path = next_path;
        }

        // Point-special escape at creation time (same argument as the v4
        // trie: fresh nodes are unshared, so one deep re-flip preserves
        // every established prefix relation).
        if special6_kind(Ip6(out)).is_some() {
            for depth in (0u8..128).rev() {
                let (node_id, fresh) = visited[depth as usize];
                if !fresh || Self::pinned(ip, depth) {
                    continue;
                }
                let candidate = out ^ (1u128 << (127 - depth));
                if special6_kind(Ip6(candidate)).is_none() {
                    self.nodes[node_id as usize].flip ^= true;
                    out = candidate;
                    break;
                }
            }
        }
        Ip6(out)
    }

    /// Whether the node at `depth` on `ip`'s path is pinned (address-family
    /// bits or a protected region) and may never be re-flipped.
    fn pinned(ip: Ip6, depth: u8) -> bool {
        if depth < 3 {
            return true;
        }
        let path = ip.0 & (u128::MAX << (128 - depth));
        for (bits, len) in REGIONS6 {
            if depth < len && (path ^ bits) >> (128 - depth) == 0 {
                return true;
            }
        }
        false
    }

    /// The full scheme: specials pass through; ordinary addresses map,
    /// with recursive remapping on (point-)special collisions. The same
    /// bijection-orbit argument as the v4 scheme bounds the loop.
    pub fn anonymize(&mut self, ip: Ip6) -> Ip6 {
        if special6_kind(ip).is_some() {
            return ip;
        }
        let mut out = self.map_raw(ip);
        let mut guard = 0;
        while special6_kind(out).is_some() {
            out = self.map_raw(out);
            guard += 1;
            assert!(guard <= 256, "collision remapping failed for {ip}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anon() -> Ip6Anonymizer {
        Ip6Anonymizer::new(b"v6-test-secret")
    }

    fn ip(s: &str) -> Ip6 {
        s.parse().unwrap()
    }

    #[test]
    fn deterministic_and_keyed() {
        let mut a = anon();
        let x = a.anonymize(ip("2001:db8::1"));
        assert_eq!(anon().anonymize(ip("2001:db8::1")), x);
        assert_ne!(
            Ip6Anonymizer::new(b"other").anonymize(ip("2001:db8::1")),
            x
        );
    }

    #[test]
    fn prefix_preserving() {
        let mut a = anon();
        let x = a.anonymize(ip("2001:db8:1:2::1"));
        let y = a.anonymize(ip("2001:db8:1:2::2"));
        let z = a.anonymize(ip("2001:db8:9::1"));
        assert_eq!(
            ip("2001:db8:1:2::1").common_prefix_len(ip("2001:db8:1:2::2")),
            x.common_prefix_len(y)
        );
        assert_eq!(
            ip("2001:db8:1:2::1").common_prefix_len(ip("2001:db8:9::1")),
            x.common_prefix_len(z)
        );
    }

    #[test]
    fn specials_pass_through() {
        let mut a = anon();
        for s in ["::", "::1", "fe80::1", "ff02::5", "::ffff:192.0.2.1"] {
            assert_eq!(a.anonymize(ip(s)), ip(s), "{s}");
        }
    }

    #[test]
    fn global_unicast_stays_global_unicast() {
        let mut a = anon();
        for s in ["2001:db8::1", "2400:cb00::1", "3fff:ffff::9"] {
            let out = a.anonymize(ip(s));
            assert_eq!(out.0 >> 125, 0b001, "{s} -> {out} left 2000::/3");
        }
    }

    #[test]
    fn ordinary_never_maps_into_protected_regions() {
        let mut a = anon();
        for i in 0..512u32 {
            let addr = Ip6((0x2001u128 << 112) | (u128::from(i) * 0x9E37_79B9) << 40 | 1);
            let out = a.anonymize(addr);
            assert!(out.0 >> 118 != 0x3fa, "{addr} -> {out} in fe80::/10");
            assert!(out.0 >> 120 != 0xff, "{addr} -> {out} in ff00::/8");
        }
    }

    #[test]
    fn trailing_zeros_preserved_first_seen() {
        let mut a = anon();
        let out = a.anonymize(ip("2001:db8:42::"));
        assert!(out.0.trailing_zeros() >= 80, "{out}");
    }

    #[test]
    fn injective_on_a_batch() {
        let mut a = anon();
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000u128 {
            let addr = Ip6((0x2400u128 << 112) | (i * 0x0001_0001_0001));
            assert!(seen.insert(a.anonymize(addr)));
        }
    }
}
