//! # confanon-design — routing-design extraction
//!
//! The paper's second validation suite (§5) runs "our tools to reverse
//! engineer the routing design \[1\] of a network" over both the original
//! and the anonymized configurations and compares the results:
//! "Extracting the routing design makes an excellent test case, as it
//! depends on many aspects of the configuration files being consistent
//! inside each file and across all the files in the network, including
//! physical topology, routing protocol configuration, routing process
//! adjacencies, routing policies, and address space utilization."
//!
//! [`extract_design`] computes a *name-abstracted* design: every quantity
//! in [`RoutingDesign`] is defined through relations (subnet containment,
//! shared link subnets, referential identity of policy names) rather than
//! raw identifiers, so a correct structure-preserving anonymization
//! yields a bit-identical design and any breakage (a split /30, a
//! classful network that changed class, a route-map whose name hashed
//! inconsistently) shows up as an inequality.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod extract;
pub mod model;
pub mod report;

pub use extract::extract_design;
pub use report::DesignSummary;
pub use model::{IgpKind, NeighborPolicy, RouterDesign, RoutingDesign};
