//! Cross-network design summaries: the research the anonymizer enables.
//!
//! The paper's motivation (§1) is that config access would let researchers
//! study routing designs at scale — the authors' own companion study
//! ("Routing design in operational networks: A look from the inside",
//! SIGCOMM 2004) is reference \[1\]. This module computes the kind of
//! per-network summary such a study tabulates, from *anonymized* configs:
//! every metric is a function of the name-abstracted
//! [`RoutingDesign`], so the numbers are identical pre- and
//! post-anonymization — which is precisely the paper's value proposition.

use crate::model::{IgpKind, RoutingDesign};

/// A per-network design summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSummary {
    /// Routers.
    pub routers: usize,
    /// Addressed interfaces.
    pub interfaces: usize,
    /// Physical adjacencies (distinct shared link subnets).
    pub adjacencies: usize,
    /// Degree statistics over the physical topology: (min, mean, max).
    pub degree: (usize, f64, usize),
    /// IGPs in use anywhere in the network.
    pub igps: Vec<IgpKind>,
    /// Fraction of addressed interfaces covered by an IGP `network`
    /// statement (address-space discipline).
    pub igp_coverage: f64,
    /// BGP speakers.
    pub bgp_speakers: usize,
    /// iBGP mesh completeness: internal sessions / (speakers choose 2).
    /// 1.0 is a full mesh; missing sessions are a design smell the
    /// companion study hunts for.
    pub ibgp_mesh_completeness: f64,
    /// External (eBGP) sessions.
    pub ebgp_sessions: usize,
    /// Total route-map clauses attached to BGP neighbors.
    pub policy_clauses: usize,
    /// Neighbor route-map attachments whose map is not defined in the
    /// same config (dangling references — configuration bugs the paper
    /// notes configs "expose").
    pub dangling_policy_refs: usize,
}

impl DesignSummary {
    /// Summarizes one extracted design.
    pub fn from_design(d: &RoutingDesign) -> DesignSummary {
        let n = d.routers.len();
        let mut degree = vec![0usize; n];
        for &(a, b) in &d.adjacencies {
            degree[a] += 1;
            degree[b] += 1;
        }
        let (dmin, dmax) = degree
            .iter()
            .fold((usize::MAX, 0), |(lo, hi), &x| (lo.min(x), hi.max(x)));
        let dmean = if n == 0 {
            0.0
        } else {
            degree.iter().sum::<usize>() as f64 / n as f64
        };

        let mut igps: Vec<IgpKind> = d
            .routers
            .iter()
            .flat_map(|r| r.igps.iter().copied())
            .collect();
        igps.sort();
        igps.dedup();

        let covered: usize = d.routers.iter().map(|r| r.igp_covered_interfaces).sum();
        let interfaces = d.interface_count();

        let speakers = d.bgp_speaker_count();
        let possible = speakers * speakers.saturating_sub(1) / 2;
        let mesh = if possible == 0 {
            1.0
        } else {
            d.internal_bgp_sessions.len() as f64 / possible as f64
        };

        let mut policy_clauses = 0usize;
        let mut dangling = 0usize;
        for r in &d.routers {
            for nb in &r.neighbors {
                for (_, sig) in &nb.maps {
                    match sig {
                        Some(s) => policy_clauses += s.clauses.len(),
                        None => dangling += 1,
                    }
                }
            }
        }

        DesignSummary {
            routers: n,
            interfaces,
            adjacencies: d.adjacencies.len(),
            degree: (if n == 0 { 0 } else { dmin }, dmean, dmax),
            igps,
            igp_coverage: if interfaces == 0 {
                0.0
            } else {
                covered as f64 / interfaces as f64
            },
            bgp_speakers: speakers,
            ibgp_mesh_completeness: mesh.min(1.0),
            ebgp_sessions: d.external_bgp_sessions,
            policy_clauses,
            dangling_policy_refs: dangling,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_design;
    use confanon_iosparse::Config;

    const R1: &str = "\
interface Serial0/0
 ip address 10.0.0.1 255.255.255.252
interface Loopback0
 ip address 10.9.0.1 255.255.255.255
router rip
 network 10.0.0.0
router bgp 65000
 neighbor 10.0.0.2 remote-as 65000
 neighbor 172.30.1.1 remote-as 701
 neighbor 172.30.1.1 route-map PEER-in in
route-map PEER-in deny 10
route-map PEER-in permit 20
";

    const R2: &str = "\
interface Serial0/0
 ip address 10.0.0.2 255.255.255.252
router rip
 network 10.0.0.0
router bgp 65000
 neighbor 10.0.0.1 remote-as 65000
 neighbor 1.2.3.4 remote-as 1299
 neighbor 1.2.3.4 route-map GHOST out
";

    fn summary() -> DesignSummary {
        let design = extract_design(&[Config::parse(R1), Config::parse(R2)]);
        DesignSummary::from_design(&design)
    }

    #[test]
    fn counts() {
        let s = summary();
        assert_eq!(s.routers, 2);
        assert_eq!(s.interfaces, 3);
        assert_eq!(s.adjacencies, 1);
        assert_eq!(s.bgp_speakers, 2);
        assert_eq!(s.ebgp_sessions, 2);
        assert_eq!(s.igps, vec![IgpKind::Rip]);
    }

    #[test]
    fn mesh_completeness() {
        let s = summary();
        // 2 speakers, 1 internal session, full mesh of 2 = 1 session.
        assert!((s.ibgp_mesh_completeness - 1.0).abs() < 1e-9);
    }

    #[test]
    fn policy_and_dangling() {
        let s = summary();
        assert_eq!(s.policy_clauses, 2); // PEER-in has two clauses
        assert_eq!(s.dangling_policy_refs, 1); // GHOST is undefined
    }

    #[test]
    fn degree_stats() {
        let s = summary();
        assert_eq!(s.degree.0, 1);
        assert_eq!(s.degree.2, 1);
        assert!((s.degree.1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_design() {
        let s = DesignSummary::from_design(&RoutingDesign::default());
        assert_eq!(s.routers, 0);
        assert_eq!(s.igp_coverage, 0.0);
        assert_eq!(s.ibgp_mesh_completeness, 1.0);
    }

    #[test]
    fn summary_is_anonymization_invariant_by_construction() {
        // Renaming-only changes to the configs leave the summary intact.
        let renamed1 = R1
            .replace("PEER-in", "hdeadbeef-in")
            .replace("10.0.0.", "87.1.1.")
            .replace("10.9.0.1", "87.2.0.9")
            .replace("701", "31337");
        let renamed2 = R2
            .replace("GHOST", "hfeedface")
            .replace("10.0.0.", "87.1.1.");
        let a = summary();
        let design = extract_design(&[Config::parse(&renamed1), Config::parse(&renamed2)]);
        let b = DesignSummary::from_design(&design);
        assert_eq!(a, b);
    }
}
