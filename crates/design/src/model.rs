//! The name-abstracted routing-design model.
//!
//! Everything here is `PartialEq + Ord`-friendly so pre/post designs
//! compare with `==` and diffs are printable. Identifiers (route-map
//! names, ASNs, addresses) never appear directly — only the relations
//! they induce.

use std::collections::BTreeSet;

/// Which IGP a router runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IgpKind {
    /// OSPF.
    Ospf,
    /// RIP.
    Rip,
    /// EIGRP.
    Eigrp,
}

/// One BGP neighbor's policy attachment, name-abstracted.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct NeighborPolicy {
    /// True for iBGP (remote AS equals the local process AS — a relation
    /// preserved by any consistent permutation).
    pub ibgp: bool,
    /// Whether the neighbor address resolves to another router of this
    /// network (by interface or loopback), i.e. an internal session.
    pub internal_endpoint: bool,
    /// For each attached route-map, in direction order (`in` then `out`):
    /// the clause signature of the referenced map, or `None` when the
    /// referenced map is not defined in the config (a dangling reference
    /// — itself a preserved property).
    pub maps: Vec<(MapDirection, Option<MapSignature>)>,
}

/// Direction of a neighbor route-map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MapDirection {
    /// Inbound policy.
    In,
    /// Outbound policy.
    Out,
}

/// The structure of a route-map: its clauses in sequence order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct MapSignature {
    /// Per clause: (permit?, match kinds with resolved-reference flags,
    /// set kinds).
    pub clauses: Vec<ClauseSignature>,
}

/// One route-map clause, name-abstracted.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct ClauseSignature {
    /// `permit` (true) or `deny`.
    pub permit: bool,
    /// Match statements: kind plus whether every referenced list is
    /// defined in the same config.
    pub matches: Vec<(MatchKind, bool)>,
    /// Set statements (kinds only; values are anonymized).
    pub sets: Vec<SetKind>,
}

/// Kinds of `match` statements the extractor models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MatchKind {
    /// `match ip address <acl>`.
    IpAddress,
    /// `match as-path <n>`.
    AsPath,
    /// `match community <n>`.
    Community,
}

/// Kinds of `set` statements the extractor models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SetKind {
    /// `set community …`.
    Community,
    /// `set local-preference …`.
    LocalPreference,
}

/// One router's extracted design.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouterDesign {
    /// Number of addressed interfaces.
    pub interface_count: usize,
    /// IGP processes running here.
    pub igps: BTreeSet<IgpKind>,
    /// Number of addressed interfaces covered by an IGP `network`
    /// statement — the *subnet contains* relation (classful for
    /// RIP/EIGRP, wildcard for OSPF), which breaks if anonymization is
    /// not class- and prefix-preserving.
    pub igp_covered_interfaces: usize,
    /// True when a `router bgp` process exists.
    pub bgp_speaker: bool,
    /// Neighbor policies, sorted (order-insensitive comparison).
    pub neighbors: Vec<NeighborPolicy>,
}

/// The whole network's extracted design.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RoutingDesign {
    /// Per-router designs, in file order (stable across anonymization).
    pub routers: Vec<RouterDesign>,
    /// Physical adjacencies: router-index pairs sharing a link subnet.
    pub adjacencies: BTreeSet<(usize, usize)>,
    /// Internal BGP sessions: (speaker index, endpoint router index).
    pub internal_bgp_sessions: BTreeSet<(usize, usize)>,
    /// Count of BGP sessions to addresses outside the network (eBGP
    /// peerings — the §6.3 fingerprint input).
    pub external_bgp_sessions: usize,
}

impl RoutingDesign {
    /// Number of BGP speakers (validation suite 1 also reports this).
    pub fn bgp_speaker_count(&self) -> usize {
        self.routers.iter().filter(|r| r.bgp_speaker).count()
    }

    /// Total addressed interfaces.
    pub fn interface_count(&self) -> usize {
        self.routers.iter().map(|r| r.interface_count).sum()
    }

    /// Enumerates the design as a set of atomic, name-abstracted facts —
    /// the §5 "extraction facts" a researcher would tabulate. Each fact
    /// is a stable string, so pre/post fact sets diff with plain set
    /// operations and the surviving fraction is the utility score the
    /// risk–utility audit reports.
    ///
    /// Router facts are keyed by file-order index, which anonymization
    /// preserves; whole-network facts (adjacency set, session sets) are
    /// single atoms, so a run that perturbs any part of them loses the
    /// whole fact — the conservative direction for a utility *score*.
    pub fn facts(&self) -> BTreeSet<String> {
        let mut facts = BTreeSet::new();
        for (i, r) in self.routers.iter().enumerate() {
            facts.insert(format!("router{i}:interfaces={}", r.interface_count));
            facts.insert(format!("router{i}:igps={:?}", r.igps));
            facts.insert(format!(
                "router{i}:igp_covered={}",
                r.igp_covered_interfaces
            ));
            facts.insert(format!("router{i}:bgp_speaker={}", r.bgp_speaker));
            facts.insert(format!("router{i}:neighbors={}", r.neighbors.len()));
            facts.insert(format!(
                "router{i}:ibgp_neighbors={}",
                r.neighbors.iter().filter(|n| n.ibgp).count()
            ));
        }
        facts.insert(format!("adjacencies={:?}", self.adjacencies));
        facts.insert(format!("ibgp_sessions={:?}", self.internal_bgp_sessions));
        facts.insert(format!("ebgp_sessions={}", self.external_bgp_sessions));
        facts.insert(format!("bgp_speakers={}", self.bgp_speaker_count()));
        facts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designs_compare_structurally() {
        let a = RoutingDesign::default();
        let b = RoutingDesign::default();
        assert_eq!(a, b);
        let c = RoutingDesign {
            external_bgp_sessions: 1,
            ..Default::default()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn aggregates() {
        let d = RoutingDesign {
            routers: vec![
                RouterDesign {
                    interface_count: 3,
                    bgp_speaker: true,
                    ..Default::default()
                },
                RouterDesign {
                    interface_count: 2,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(d.bgp_speaker_count(), 1);
        assert_eq!(d.interface_count(), 5);
    }

    #[test]
    fn facts_enumerate_and_diff() {
        let a = RoutingDesign {
            routers: vec![RouterDesign {
                interface_count: 3,
                bgp_speaker: true,
                ..Default::default()
            }],
            external_bgp_sessions: 2,
            ..Default::default()
        };
        let fa = a.facts();
        assert!(fa.contains("router0:interfaces=3"));
        assert!(fa.contains("ebgp_sessions=2"));
        assert_eq!(fa, a.clone().facts(), "pure function of the design");

        let mut b = a.clone();
        b.external_bgp_sessions = 0;
        let fb = b.facts();
        let preserved = fa.intersection(&fb).count();
        assert_eq!(fa.len() - preserved, 1, "exactly the session fact differs");
    }
}
