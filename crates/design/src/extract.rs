//! Extraction of the routing design from a set of configurations.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use confanon_iosparse::{parse_command, Command, Config, Direction};
use confanon_netprim::{AddrClass, Ip, Prefix, WildcardMask};

use crate::model::{
    ClauseSignature, IgpKind, MapDirection, MapSignature, MatchKind, NeighborPolicy,
    RouterDesign, RoutingDesign, SetKind,
};

/// Per-config intermediate facts.
#[derive(Default)]
struct Facts {
    /// Addressed interfaces: (address, prefix length).
    interfaces: Vec<(Ip, u8)>,
    /// IGPs with their `network` statements.
    igps: Vec<(IgpKind, Vec<IgpNet>)>,
    /// BGP process AS (if any).
    bgp_asn: Option<u32>,
    /// `neighbor <ip> remote-as <asn>`.
    neighbor_as: BTreeMap<Ip, u32>,
    /// `neighbor <ip> route-map <name> <dir>` in line order.
    neighbor_maps: Vec<(Ip, String, MapDirection)>,
    /// Route-map clauses by name, in line order.
    maps: BTreeMap<String, MapSignature>,
    /// Defined filter lists.
    acls: HashSet<u32>,
    aspath_lists: HashSet<u32>,
    community_lists: HashSet<u32>,
    /// Match references awaiting resolution (lists may be defined later
    /// in the file): (map name, kind, list number).
    pending: Vec<(String, MatchKind, u32)>,
}

/// An IGP `network` statement's coverage predicate.
enum IgpNet {
    /// Classful (RIP/EIGRP): IOS normalizes the statement's address to
    /// its classful network, so an address is covered when the *classful
    /// networks* coincide. (Comparing against the raw statement address
    /// would spuriously fail on anonymized configs, where a
    /// prefix-preserving map keeps the class bits but not the zero host
    /// part of a shared path — exactly the normalization IOS applies.)
    Classful(Ip),
    /// OSPF: address matches under the wildcard.
    Wildcard(Ip, WildcardMask),
}

impl IgpNet {
    fn covers(&self, ip: Ip) -> bool {
        match self {
            IgpNet::Classful(net) => classful(ip) == classful(*net),
            IgpNet::Wildcard(addr, w) => w.matches(*addr, ip),
        }
    }
}

/// The classful network containing `ip`.
fn classful(ip: Ip) -> Ip {
    let len = match ip.class() {
        AddrClass::A => 8,
        AddrClass::B => 16,
        _ => 24,
    };
    Prefix::new(ip, len).network()
}

fn gather(config: &Config) -> Facts {
    let mut f = Facts::default();
    let mut current_igp: Option<usize> = None;
    let mut in_bgp = false;
    let mut current_map: Option<String> = None;

    for line in config.lines() {
        let cmd = parse_command(line);
        let top_level = !line.starts_with(' ') && !line.starts_with('\t');
        if top_level {
            // Leaving any section unless this re-enters one below.
            current_igp = None;
            in_bgp = false;
            current_map = None;
        }
        match cmd {
            Command::IpAddress { addr, mask } => f.interfaces.push((addr, mask.len())),
            Command::RouterRip => {
                f.igps.push((IgpKind::Rip, Vec::new()));
                current_igp = Some(f.igps.len() - 1);
            }
            Command::RouterEigrp(_) => {
                f.igps.push((IgpKind::Eigrp, Vec::new()));
                current_igp = Some(f.igps.len() - 1);
            }
            Command::RouterOspf(_) => {
                f.igps.push((IgpKind::Ospf, Vec::new()));
                current_igp = Some(f.igps.len() - 1);
            }
            Command::RouterBgp(asn) => {
                f.bgp_asn = Some(asn);
                in_bgp = true;
            }
            Command::NetworkClassful(ip) => {
                if let Some(i) = current_igp {
                    f.igps[i].1.push(IgpNet::Classful(ip));
                }
            }
            Command::NetworkOspf { addr, wildcard, .. } => {
                if let Some(i) = current_igp {
                    f.igps[i].1.push(IgpNet::Wildcard(addr, wildcard));
                }
            }
            Command::NeighborRemoteAs { peer, asn }
                if in_bgp => {
                    f.neighbor_as.insert(peer, asn);
                }
            Command::NeighborRouteMap { peer, map, dir }
                if in_bgp => {
                    let d = match dir {
                        Direction::In => MapDirection::In,
                        Direction::Out => MapDirection::Out,
                    };
                    f.neighbor_maps.push((peer, map, d));
                }
            Command::RouteMap { name, action, .. } => {
                let sig = f.maps.entry(name.clone()).or_default();
                sig.clauses.push(ClauseSignature {
                    permit: action == confanon_iosparse::commands::Action::Permit,
                    matches: Vec::new(),
                    sets: Vec::new(),
                });
                current_map = Some(name);
            }
            Command::MatchIpAddress(refs) => {
                push_match(&mut f, &current_map, MatchKind::IpAddress, refs);
            }
            Command::MatchAsPath(refs) => {
                push_match(&mut f, &current_map, MatchKind::AsPath, refs);
            }
            Command::MatchCommunity(refs) => {
                push_match(&mut f, &current_map, MatchKind::Community, refs);
            }
            Command::SetCommunity(_) => push_set(&mut f, &current_map, SetKind::Community),
            Command::SetLocalPreference(_) => {
                push_set(&mut f, &current_map, SetKind::LocalPreference)
            }
            Command::AccessList { num, .. } => {
                f.acls.insert(num);
            }
            Command::AsPathAccessList { num, .. } => {
                f.aspath_lists.insert(num);
            }
            Command::CommunityList { num, .. } => {
                f.community_lists.insert(num);
            }
            _ => {}
        }
    }
    f
}

fn push_match(f: &mut Facts, current_map: &Option<String>, kind: MatchKind, refs: Vec<u32>) {
    let Some(name) = current_map else { return };
    // Resolution is deferred (the list may be defined later in the file):
    // push a placeholder flag now, remember the raw reference, and fix up
    // in `resolve_matches`.
    let placed = {
        let Some(clause) = f.maps.get_mut(name).and_then(|s| s.clauses.last_mut()) else {
            return;
        };
        for _ in &refs {
            clause.matches.push((kind, false));
        }
        true
    };
    if placed {
        for r in refs {
            f.pending.push((name.clone(), kind, r));
        }
    }
}

fn push_set(f: &mut Facts, current_map: &Option<String>, kind: SetKind) {
    if let Some(name) = current_map {
        if let Some(sig) = f.maps.get_mut(name) {
            if let Some(clause) = sig.clauses.last_mut() {
                clause.sets.push(kind);
            }
        }
    }
}

/// Second pass: mark each match statement with whether its referenced
/// list exists in the same config.
fn resolve_matches(f: &mut Facts) {
    let pending = std::mem::take(&mut f.pending);
    // Rebuild match flags per map/kind in order.
    let mut cursor: HashMap<(String, MatchKind), usize> = HashMap::new();
    for (name, kind, list) in pending {
        let exists = match kind {
            MatchKind::IpAddress => f.acls.contains(&list),
            MatchKind::AsPath => f.aspath_lists.contains(&list),
            MatchKind::Community => f.community_lists.contains(&list),
        };
        let k = (name.clone(), kind);
        let skip = *cursor.get(&k).unwrap_or(&0);
        cursor.insert(k, skip + 1);
        if let Some(sig) = f.maps.get_mut(&name) {
            // Find the (skip+1)-th match of this kind across clauses.
            let mut seen = 0;
            'outer: for clause in &mut sig.clauses {
                for m in &mut clause.matches {
                    if m.0 == kind {
                        if seen == skip {
                            m.1 = exists;
                            break 'outer;
                        }
                        seen += 1;
                    }
                }
            }
        }
    }
}

/// Extracts the name-abstracted routing design of a network from the
/// configs of all its routers (in stable file order).
pub fn extract_design(configs: &[Config]) -> RoutingDesign {
    let mut all_facts: Vec<Facts> = configs
        .iter()
        .map(|c| {
            let mut f = gather(c);
            resolve_matches(&mut f);
            f
        })
        .collect();

    // Address ownership index: which router owns each address.
    let mut owner: HashMap<Ip, usize> = HashMap::new();
    for (i, f) in all_facts.iter().enumerate() {
        for &(ip, _) in &f.interfaces {
            owner.insert(ip, i);
        }
    }

    // Physical adjacency: two routers with addresses in one /30 or /31.
    let mut adjacencies: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut by_subnet: HashMap<Prefix, Vec<usize>> = HashMap::new();
    for (i, f) in all_facts.iter().enumerate() {
        for &(ip, len) in &f.interfaces {
            if len >= 30 {
                by_subnet.entry(Prefix::new(ip, len)).or_default().push(i);
            }
        }
    }
    for members in by_subnet.values() {
        for a in 0..members.len() {
            for b in a + 1..members.len() {
                if members[a] != members[b] {
                    let (x, y) = (members[a].min(members[b]), members[a].max(members[b]));
                    adjacencies.insert((x, y));
                }
            }
        }
    }

    // BGP sessions.
    let mut internal_bgp_sessions = BTreeSet::new();
    let mut external_bgp_sessions = 0usize;
    let mut routers = Vec::with_capacity(all_facts.len());

    for (i, f) in all_facts.iter().enumerate() {
        let mut neighbors = Vec::new();
        for (&peer, &asn) in &f.neighbor_as {
            let internal = owner.get(&peer).copied();
            if let Some(j) = internal {
                let (x, y) = (i.min(j), i.max(j));
                internal_bgp_sessions.insert((x, y));
            } else {
                external_bgp_sessions += 1;
            }
            let mut maps: Vec<(MapDirection, Option<MapSignature>)> = f
                .neighbor_maps
                .iter()
                .filter(|(p, _, _)| *p == peer)
                .map(|(_, name, d)| (*d, f.maps.get(name).cloned()))
                .collect();
            maps.sort();
            neighbors.push(NeighborPolicy {
                ibgp: f.bgp_asn == Some(asn),
                internal_endpoint: internal.is_some(),
                maps,
            });
        }
        neighbors.sort();

        let igps: BTreeSet<IgpKind> = f.igps.iter().map(|(k, _)| *k).collect();
        let covered = f
            .interfaces
            .iter()
            .filter(|&&(ip, _)| {
                f.igps
                    .iter()
                    .any(|(_, nets)| nets.iter().any(|n| n.covers(ip)))
            })
            .count();

        routers.push(RouterDesign {
            interface_count: f.interfaces.len(),
            igps,
            igp_covered_interfaces: covered,
            bgp_speaker: f.bgp_asn.is_some(),
            neighbors,
        });
    }
    // `all_facts` consumed implicitly above; keep borrowck happy.
    all_facts.clear();

    RoutingDesign {
        routers,
        adjacencies,
        internal_bgp_sessions,
        external_bgp_sessions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(text: &str) -> Config {
        Config::parse(text)
    }

    const R1: &str = "\
hostname r1
interface Serial0/0
 ip address 10.0.0.1 255.255.255.252
interface Loopback0
 ip address 10.9.0.1 255.255.255.255
router rip
 network 10.0.0.0
router bgp 65000
 neighbor 10.0.0.2 remote-as 65000
 neighbor 172.30.1.1 remote-as 701
 neighbor 172.30.1.1 route-map PEER-in in
route-map PEER-in deny 10
 match as-path 50
route-map PEER-in permit 20
 set community 65000:100
ip as-path access-list 50 permit _701_
";

    const R2: &str = "\
hostname r2
interface Serial0/0
 ip address 10.0.0.2 255.255.255.252
interface Loopback0
 ip address 10.9.0.2 255.255.255.255
router rip
 network 10.0.0.0
router bgp 65000
 neighbor 10.0.0.1 remote-as 65000
";

    #[test]
    fn extracts_topology_and_sessions() {
        let d = extract_design(&[cfg(R1), cfg(R2)]);
        assert_eq!(d.routers.len(), 2);
        assert_eq!(d.adjacencies, BTreeSet::from([(0, 1)]));
        assert_eq!(d.internal_bgp_sessions, BTreeSet::from([(0, 1)]));
        assert_eq!(d.external_bgp_sessions, 1);
        assert_eq!(d.bgp_speaker_count(), 2);
        assert_eq!(d.interface_count(), 4);
    }

    #[test]
    fn igp_coverage_uses_classful_containment() {
        let d = extract_design(&[cfg(R1)]);
        // Both 10.0.0.1 and 10.9.0.1 are inside classful 10.0.0.0/8.
        assert_eq!(d.routers[0].igp_covered_interfaces, 2);
        assert!(d.routers[0].igps.contains(&IgpKind::Rip));
    }

    #[test]
    fn ibgp_flag_from_as_equality() {
        let d = extract_design(&[cfg(R1), cfg(R2)]);
        let r1 = &d.routers[0];
        let ibgp: Vec<bool> = r1.neighbors.iter().map(|n| n.ibgp).collect();
        assert!(ibgp.contains(&true) && ibgp.contains(&false));
    }

    #[test]
    fn route_map_signature_resolved() {
        let d = extract_design(&[cfg(R1)]);
        let ext = d.routers[0]
            .neighbors
            .iter()
            .find(|n| !n.ibgp)
            .unwrap();
        let (_, sig) = &ext.maps[0];
        let sig = sig.as_ref().expect("map defined");
        assert_eq!(sig.clauses.len(), 2);
        assert!(!sig.clauses[0].permit);
        assert_eq!(sig.clauses[0].matches, vec![(MatchKind::AsPath, true)]);
        assert_eq!(sig.clauses[1].sets, vec![SetKind::Community]);
    }

    #[test]
    fn dangling_map_reference_detected() {
        let text = "\
router bgp 65000
 neighbor 1.2.3.4 remote-as 701
 neighbor 1.2.3.4 route-map NOPE in
";
        let d = extract_design(&[cfg(text)]);
        let n = &d.routers[0].neighbors[0];
        assert_eq!(n.maps[0].1, None);
    }

    #[test]
    fn ospf_wildcard_coverage() {
        let text = "\
interface e0
 ip address 10.1.2.3 255.255.255.0
interface e1
 ip address 10.99.2.3 255.255.255.0
router ospf 1
 network 10.1.0.0 0.0.255.255 area 0
";
        let d = extract_design(&[cfg(text)]);
        assert_eq!(d.routers[0].igp_covered_interfaces, 1);
    }

    #[test]
    fn empty_network() {
        let d = extract_design(&[]);
        assert_eq!(d, RoutingDesign::default());
    }
}
