//! The run clock: one epoch per run, shared by every shard.
//!
//! All span timestamps are nanosecond offsets from the epoch captured
//! when the clock was created, so spans recorded on different worker
//! threads land on one common timeline (what Chrome's trace viewer
//! expects). The clock doubles as the observability on/off switch: a
//! [`Clock::disabled`] clock makes every recording call on a shard a
//! no-op, which is the "stripped" half of the overhead benchmark.

use std::time::Instant;

/// A copyable run-epoch clock.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    epoch: Instant,
    enabled: bool,
}

impl Clock {
    /// A live clock; its epoch is the moment of this call.
    pub fn new() -> Clock {
        Clock {
            epoch: Instant::now(),
            enabled: true,
        }
    }

    /// A disabled clock: shards built on it record nothing.
    pub fn disabled() -> Clock {
        Clock {
            epoch: Instant::now(),
            enabled: false,
        }
    }

    /// Is observability on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Nanoseconds since the epoch (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        if self.enabled {
            // A u64 of nanoseconds covers ~584 years of run time.
            self.epoch.elapsed().as_nanos() as u64
        } else {
            0
        }
    }
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_clock_advances() {
        let c = Clock::new();
        assert!(c.enabled());
        let a = c.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(c.now_ns() > a);
    }

    #[test]
    fn disabled_clock_reads_zero() {
        let c = Clock::disabled();
        assert!(!c.enabled());
        assert_eq!(c.now_ns(), 0);
    }
}
