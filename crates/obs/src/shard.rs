//! The recorder: one shard per thread, merged deterministically.
//!
//! A shard owns three stores:
//!
//! * **counters** — `BTreeMap<String, u64>` sums (sorted keys, so
//!   serialization is deterministic);
//! * **histograms** — fixed-bucket [`Histogram`]s keyed the same way;
//! * **spans** — timed regions on the shared [`Clock`] timeline, for
//!   the timing section and the Chrome trace export only.
//!
//! Worker threads each record into a private shard; the owner merges
//! them afterwards. Counter and histogram merges are sums, so the merge
//! result is independent of worker scheduling; spans are concatenated
//! and sorted by `(start_ns, tid, name)` purely for stable display.

use std::collections::BTreeMap;

use confanon_testkit::json::Json;

use crate::clock::Clock;
use crate::hist::Histogram;

/// One timed region of the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Event name (a phase name or a file name).
    pub name: String,
    /// Category (e.g. `"phase"`, `"discover"`, `"rewrite"`).
    pub cat: &'static str,
    /// Logical thread lane: 0 = the sequential pipeline thread,
    /// 1.. = rewrite workers.
    pub tid: u32,
    /// Start offset from the run epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// A per-thread observability recorder.
#[derive(Debug, Clone)]
pub struct ObsShard {
    clock: Clock,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    spans: Vec<Span>,
}

impl ObsShard {
    /// A shard on `clock`'s timeline. A disabled clock makes every
    /// recording method a no-op.
    pub fn new(clock: Clock) -> ObsShard {
        ObsShard {
            clock,
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            spans: Vec::new(),
        }
    }

    /// The shared clock (hand it to worker shards).
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Adds `n` to counter `key`.
    pub fn count(&mut self, key: &str, n: u64) {
        if self.clock.enabled() {
            *self.counters.entry(key.to_string()).or_insert(0) += n;
        }
    }

    /// Records `value` into histogram `key`.
    pub fn record(&mut self, key: &str, value: u64) {
        if self.clock.enabled() {
            self.hists.entry(key.to_string()).or_default().record(value);
        }
    }

    /// Marks a span start; pass the result to [`ObsShard::span_end`].
    pub fn span_start(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Closes a span opened at `start_ns`.
    pub fn span_end(&mut self, name: &str, cat: &'static str, tid: u32, start_ns: u64) {
        if self.clock.enabled() {
            let end = self.clock.now_ns();
            self.spans.push(Span {
                name: name.to_string(),
                cat,
                tid,
                start_ns,
                dur_ns: end.saturating_sub(start_ns),
            });
        }
    }

    /// Merges another shard into this one: counters and histogram
    /// buckets are summed (commutative — worker scheduling cannot
    /// change the result), spans concatenated and re-sorted.
    pub fn merge(&mut self, other: &ObsShard) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
        self.spans.extend(other.spans.iter().cloned());
        self.spans
            .sort_by(|a, b| (a.start_ns, a.tid, &a.name).cmp(&(b.start_ns, b.tid, &b.name)));
    }

    /// One counter's value (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// All counters, sorted by key.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// One histogram, if any sample was recorded under `key`.
    pub fn hist(&self, key: &str) -> Option<&Histogram> {
        self.hists.get(key)
    }

    /// All recorded spans (sorted after a merge).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Counters whose keys start with `prefix`, as a JSON object in key
    /// order — the building block of the deterministic section.
    pub fn counters_json(&self, prefix: &str) -> Json {
        let mut obj = Json::obj();
        for (k, v) in self.counters.range(prefix.to_string()..) {
            if !k.starts_with(prefix) {
                break;
            }
            obj.set(k, *v);
        }
        obj
    }

    /// All histograms as a JSON object in key order.
    pub fn hists_json(&self) -> Json {
        let mut obj = Json::obj();
        for (k, h) in &self.hists {
            obj.set(k, h.to_json());
        }
        obj
    }

    /// Per-category span aggregates (count, total/max duration) as a
    /// JSON object — the timing section's summary view. Wall-clock
    /// derived: never include this in the deterministic section.
    pub fn span_summary_json(&self) -> Json {
        let mut agg: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = agg.entry(s.cat).or_insert((0, 0, 0));
            e.0 += 1;
            e.1 += s.dur_ns;
            e.2 = e.2.max(s.dur_ns);
        }
        let mut obj = Json::obj();
        for (cat, (count, total, max)) in agg {
            obj.set(
                cat,
                Json::obj()
                    .with("spans", count)
                    .with("total_ns", total)
                    .with("max_ns", max),
            );
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hists_accumulate() {
        let mut s = ObsShard::new(Clock::new());
        s.count("a.files", 2);
        s.count("a.files", 3);
        s.record("lines", 10);
        s.record("lines", 20);
        assert_eq!(s.counter("a.files"), 5);
        assert_eq!(s.hist("lines").map(Histogram::count), Some(2));
        assert_eq!(s.counter("untouched"), 0);
    }

    #[test]
    fn disabled_shard_records_nothing() {
        let mut s = ObsShard::new(Clock::disabled());
        s.count("a", 1);
        s.record("h", 1);
        let t = s.span_start();
        s.span_end("x", "phase", 0, t);
        assert_eq!(s.counter("a"), 0);
        assert!(s.hist("h").is_none());
        assert!(s.spans().is_empty());
    }

    #[test]
    fn merge_is_order_independent_for_counts() {
        let clock = Clock::new();
        let mk = |pairs: &[(&str, u64)]| {
            let mut s = ObsShard::new(clock);
            for (k, v) in pairs {
                s.count(k, *v);
                s.record("h", *v);
            }
            s
        };
        let a = mk(&[("x", 1), ("y", 2)]);
        let b = mk(&[("x", 10), ("z", 5)]);
        let mut ab = ObsShard::new(clock);
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = ObsShard::new(clock);
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.counters(), ba.counters());
        assert_eq!(
            ab.hists_json().to_string_pretty(),
            ba.hists_json().to_string_pretty()
        );
    }

    #[test]
    fn spans_land_on_one_timeline_and_summarize() {
        let mut s = ObsShard::new(Clock::new());
        let t0 = s.span_start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        s.span_end("discover", "phase", 0, t0);
        let t1 = s.span_start();
        s.span_end("r1.cfg", "rewrite", 1, t1);
        assert_eq!(s.spans().len(), 2);
        assert!(s.spans()[0].dur_ns >= 1_000_000);
        let summary = s.span_summary_json();
        assert_eq!(
            summary
                .get("phase")
                .and_then(|p| p.get("spans"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert!(summary.get("rewrite").is_some());
    }

    #[test]
    fn counters_json_filters_by_prefix() {
        let mut s = ObsShard::new(Clock::new());
        s.count("phase.discover.files", 4);
        s.count("phase.rewrite.files", 4);
        s.count("gate.clean", 3);
        let j = s.counters_json("phase.discover.");
        assert_eq!(j.get("phase.discover.files").and_then(Json::as_u64), Some(4));
        assert!(j.get("phase.rewrite.files").is_none());
        assert!(j.get("gate.clean").is_none());
    }
}
