//! # confanon-obs — deterministic observability for the anonymization pipeline
//!
//! The paper's method is only trustworthy at corpus scale if operators
//! can *see* what the anonymizer did: which of the 28 contextual rules
//! fired, how many identifiers each phase touched, and where the
//! wall-clock goes. This crate is the measurement substrate: a std-only
//! span/counter/histogram recorder whose per-worker shards merge
//! deterministically, plus exporters for the two artifacts the CLI
//! surfaces:
//!
//! * **`metrics.json`** (schema [`METRICS_SCHEMA`]) — split into a
//!   **deterministic** section (counts and histogram-bucket totals that
//!   must be byte-identical across `--jobs` values and across
//!   resumed-vs-uninterrupted runs; `tests/metrics_invariants.rs`
//!   enforces this) and a **timing** section that is explicitly
//!   *excluded* from any determinism guarantee (wall-clock durations,
//!   worker counts, durability counters that vary under `--resume`).
//! * **Chrome trace-event JSON** (`--trace FILE`, conventionally
//!   `*.trace.json`) — loadable in `chrome://tracing` or Perfetto, one
//!   complete event per span.
//!
//! ## Determinism model
//!
//! Counters and histograms record *what happened* (integers derived
//! from the input corpus); spans record *when* (wall-clock offsets from
//! a run [`Clock`] epoch). Merging shards only ever sums counters and
//! histogram buckets — sums commute, so any worker interleaving yields
//! the same merged values. Span timestamps are inherently
//! non-deterministic and are only ever exported through the timing
//! section and the trace file.
//!
//! The whole recorder can be disabled ([`Clock::disabled`]): every
//! record call becomes a no-op, which is what the `--bench-json`
//! instrumented-vs-stripped overhead comparison measures against.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod clock;
pub mod hist;
pub mod shard;
pub mod trace;

pub use clock::Clock;
pub use hist::Histogram;
pub use shard::{ObsShard, Span};
pub use trace::{chrome_trace_json, validate_trace};

use confanon_testkit::json::Json;

/// Schema identifier of the `--metrics` document.
pub const METRICS_SCHEMA: &str = "confanon-metrics-v1";

/// Conventional file name for the metrics document when it is written
/// next to released outputs; `confanon validate` skips it by this name.
pub const METRICS_FILE_NAME: &str = "metrics.json";

/// Conventional suffix of Chrome trace files (`--trace run.trace.json`);
/// `confanon validate` and batch input discovery skip files by it.
pub const TRACE_SUFFIX: &str = ".trace.json";

/// True for file names that are observability artifacts rather than
/// configuration data: the metrics document and trace files. Corpus
/// discovery and post-run validation must never treat these as configs,
/// exactly as they already skip the run journal.
pub fn is_observability_artifact(file_name: &str) -> bool {
    file_name == METRICS_FILE_NAME
        || file_name == "trace.json"
        || file_name.ends_with(TRACE_SUFFIX)
}

/// Assembles the two sections into the versioned metrics document.
pub fn metrics_doc(deterministic: Json, timing: Json) -> Json {
    Json::obj()
        .with("schema", METRICS_SCHEMA)
        .with("deterministic", deterministic)
        .with("timing", timing)
}

/// Validates the shape of a parsed metrics document: schema marker plus
/// both sections present as objects. (Anything deeper is a consumer
/// concern; the split itself is the contract.)
pub fn validate_metrics(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(METRICS_SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema {other:?}")),
        None => return Err("missing \"schema\" member".to_string()),
    }
    for section in ["deterministic", "timing"] {
        match doc.get(section) {
            Some(Json::Obj(_)) => {}
            Some(_) => return Err(format!("\"{section}\" is not an object")),
            None => return Err(format!("missing \"{section}\" section")),
        }
    }
    Ok(())
}

/// Schema identifier of the serve-mode `STATS` frame payload.
pub const SERVE_METRICS_SCHEMA: &str = "confanon-serve-metrics-v1";

/// Assembles the serve stats frame: per-tenant snapshots (an object
/// keyed by tenant name) plus daemon-wide counters.
pub fn serve_metrics_doc(tenants: Json, daemon: Json) -> Json {
    Json::obj()
        .with("schema", SERVE_METRICS_SCHEMA)
        .with("tenants", tenants)
        .with("daemon", daemon)
}

/// Validates the shape of a parsed serve stats frame: schema marker,
/// both sections present as objects, and every tenant snapshot carrying
/// a `health` string (the field quarantine-aware clients branch on).
pub fn validate_serve_metrics(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(SERVE_METRICS_SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema {other:?}")),
        None => return Err("missing \"schema\" member".to_string()),
    }
    for section in ["tenants", "daemon"] {
        match doc.get(section) {
            Some(Json::Obj(_)) => {}
            Some(_) => return Err(format!("\"{section}\" is not an object")),
            None => return Err(format!("missing \"{section}\" section")),
        }
    }
    if let Some(Json::Obj(members)) = doc.get("tenants") {
        for (name, snap) in members {
            if snap.get("health").and_then(Json::as_str).is_none() {
                return Err(format!("tenant {name:?} snapshot lacks \"health\""));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_are_recognized() {
        assert!(is_observability_artifact("metrics.json"));
        assert!(is_observability_artifact("trace.json"));
        assert!(is_observability_artifact("run.trace.json"));
        assert!(!is_observability_artifact("r1.cfg"));
        assert!(!is_observability_artifact("metrics.json.cfg"));
        assert!(!is_observability_artifact("leak_report.json"));
    }

    #[test]
    fn metrics_doc_round_trips_and_validates() {
        let doc = metrics_doc(Json::obj().with("x", 1u64), Json::obj());
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).expect("parses");
        assert!(validate_metrics(&parsed).is_ok());
        assert_eq!(parsed, doc);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_metrics(&Json::obj()).is_err());
        assert!(validate_metrics(&Json::obj().with("schema", "other-v9")).is_err());
        let missing_timing = Json::obj()
            .with("schema", METRICS_SCHEMA)
            .with("deterministic", Json::obj());
        assert!(validate_metrics(&missing_timing).is_err());
        let wrong_type = Json::obj()
            .with("schema", METRICS_SCHEMA)
            .with("deterministic", 3u64)
            .with("timing", Json::obj());
        assert!(validate_metrics(&wrong_type).is_err());
    }

    #[test]
    fn serve_metrics_round_trip_and_rejection() {
        let doc = serve_metrics_doc(
            Json::obj().with("alpha", Json::obj().with("health", "serving")),
            Json::obj().with("connections", 3u64),
        );
        let parsed = Json::parse(&doc.to_string_pretty()).expect("parses");
        assert!(validate_serve_metrics(&parsed).is_ok());

        assert!(validate_serve_metrics(&Json::obj()).is_err());
        assert!(validate_serve_metrics(
            &Json::obj().with("schema", METRICS_SCHEMA)
        )
        .is_err());
        let healthless = serve_metrics_doc(
            Json::obj().with("alpha", Json::obj().with("requests", 1u64)),
            Json::obj(),
        );
        assert!(validate_serve_metrics(&healthless)
            .unwrap_err()
            .contains("health"));
    }
}
