//! # confanon-obs — deterministic observability for the anonymization pipeline
//!
//! The paper's method is only trustworthy at corpus scale if operators
//! can *see* what the anonymizer did: which of the 28 contextual rules
//! fired, how many identifiers each phase touched, and where the
//! wall-clock goes. This crate is the measurement substrate: a std-only
//! span/counter/histogram recorder whose per-worker shards merge
//! deterministically, plus exporters for the two artifacts the CLI
//! surfaces:
//!
//! * **`metrics.json`** (schema [`METRICS_SCHEMA`]) — split into a
//!   **deterministic** section (counts and histogram-bucket totals that
//!   must be byte-identical across `--jobs` values and across
//!   resumed-vs-uninterrupted runs; `tests/metrics_invariants.rs`
//!   enforces this) and a **timing** section that is explicitly
//!   *excluded* from any determinism guarantee (wall-clock durations,
//!   worker counts, durability counters that vary under `--resume`).
//! * **Chrome trace-event JSON** (`--trace FILE`, conventionally
//!   `*.trace.json`) — loadable in `chrome://tracing` or Perfetto, one
//!   complete event per span.
//!
//! ## Determinism model
//!
//! Counters and histograms record *what happened* (integers derived
//! from the input corpus); spans record *when* (wall-clock offsets from
//! a run [`Clock`] epoch). Merging shards only ever sums counters and
//! histogram buckets — sums commute, so any worker interleaving yields
//! the same merged values. Span timestamps are inherently
//! non-deterministic and are only ever exported through the timing
//! section and the trace file.
//!
//! The whole recorder can be disabled ([`Clock::disabled`]): every
//! record call becomes a no-op, which is what the `--bench-json`
//! instrumented-vs-stripped overhead comparison measures against.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod clock;
pub mod hist;
pub mod shard;
pub mod trace;

pub use clock::Clock;
pub use hist::Histogram;
pub use shard::{ObsShard, Span};
pub use trace::{chrome_trace_json, validate_trace};

use confanon_testkit::json::Json;

/// Schema identifier of the `--metrics` document.
pub const METRICS_SCHEMA: &str = "confanon-metrics-v1";

/// Conventional file name for the metrics document when it is written
/// next to released outputs; `confanon validate` skips it by this name.
pub const METRICS_FILE_NAME: &str = "metrics.json";

/// Conventional suffix of Chrome trace files (`--trace run.trace.json`);
/// `confanon validate` and batch input discovery skip files by it.
pub const TRACE_SUFFIX: &str = ".trace.json";

/// Conventional file name of the risk–utility audit report written by
/// `confanon audit --risk` (schema `confanon-risk-v1`); corpus
/// discovery and `confanon validate` skip it by this name.
pub const RISK_REPORT_FILE_NAME: &str = "risk_report.json";

/// True for file names that are observability artifacts rather than
/// configuration data: the metrics document, trace files, and the
/// risk-audit report. Corpus discovery and post-run validation must
/// never treat these as configs, exactly as they already skip the run
/// journal.
pub fn is_observability_artifact(file_name: &str) -> bool {
    file_name == METRICS_FILE_NAME
        || file_name == "trace.json"
        || file_name == RISK_REPORT_FILE_NAME
        || file_name.ends_with(TRACE_SUFFIX)
}

/// The deterministic counters every risk-audit run records into its
/// report's `counters` object (DESIGN §16): corpus shape and attack
/// volume, so two reports can be compared for coverage before their
/// rates are compared for risk. All are integers derived from the
/// input corpus — never wall-clock.
pub const AUDIT_COUNTERS: [&str; 4] = [
    "audit.networks",
    "audit.routers",
    "audit.attack_trials",
    "audit.tradeoff_rows",
];

/// Assembles the two sections into the versioned metrics document.
pub fn metrics_doc(deterministic: Json, timing: Json) -> Json {
    Json::obj()
        .with("schema", METRICS_SCHEMA)
        .with("deterministic", deterministic)
        .with("timing", timing)
}

/// Validates the shape of a parsed metrics document: schema marker plus
/// both sections present as objects. (Anything deeper is a consumer
/// concern; the split itself is the contract.)
pub fn validate_metrics(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(METRICS_SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema {other:?}")),
        None => return Err("missing \"schema\" member".to_string()),
    }
    for section in ["deterministic", "timing"] {
        match doc.get(section) {
            Some(Json::Obj(_)) => {}
            Some(_) => return Err(format!("\"{section}\" is not an object")),
            None => return Err(format!("missing \"{section}\" section")),
        }
    }
    Ok(())
}

/// Schema identifier of the serve-mode `STATS` frame payload.
pub const SERVE_METRICS_SCHEMA: &str = "confanon-serve-metrics-v1";

/// Assembles the serve stats frame: per-tenant snapshots (an object
/// keyed by tenant name) plus daemon-wide counters.
pub fn serve_metrics_doc(tenants: Json, daemon: Json) -> Json {
    Json::obj()
        .with("schema", SERVE_METRICS_SCHEMA)
        .with("tenants", tenants)
        .with("daemon", daemon)
}

/// The fault counters every serve stats frame must carry in its
/// `daemon.faults` object (DESIGN §15): the hostile-wire and
/// self-healing taxonomy, so dashboards can alert on them by name.
pub const SERVE_FAULT_COUNTERS: [&str; 6] = [
    "frames_rejected",
    "read_timeouts",
    "idle_closed",
    "connections_shed",
    "recoveries",
    "degraded_transitions",
];

/// Validates the shape of a parsed serve stats frame: schema marker,
/// both sections present as objects, every tenant snapshot carrying a
/// `health` string (the field quarantine-aware clients branch on), and
/// the daemon section carrying a `faults` object with every
/// [`SERVE_FAULT_COUNTERS`] member as an integer.
pub fn validate_serve_metrics(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(SERVE_METRICS_SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema {other:?}")),
        None => return Err("missing \"schema\" member".to_string()),
    }
    for section in ["tenants", "daemon"] {
        match doc.get(section) {
            Some(Json::Obj(_)) => {}
            Some(_) => return Err(format!("\"{section}\" is not an object")),
            None => return Err(format!("missing \"{section}\" section")),
        }
    }
    if let Some(Json::Obj(members)) = doc.get("tenants") {
        for (name, snap) in members {
            if snap.get("health").and_then(Json::as_str).is_none() {
                return Err(format!("tenant {name:?} snapshot lacks \"health\""));
            }
        }
    }
    let faults = match doc.get("daemon").and_then(|d| d.get("faults")) {
        Some(f @ Json::Obj(_)) => f,
        Some(_) => return Err("\"daemon\".\"faults\" is not an object".to_string()),
        None => return Err("daemon section lacks \"faults\"".to_string()),
    };
    for key in SERVE_FAULT_COUNTERS {
        if faults.get(key).and_then(Json::as_u64).is_none() {
            return Err(format!("\"daemon\".\"faults\" lacks counter {key:?}"));
        }
    }
    Ok(())
}

/// Builds a fully-populated `faults` object for the daemon section —
/// the serve layer fills it from its atomics; tests build minimal valid
/// frames with it.
pub fn serve_faults_json(counts: [u64; 6]) -> Json {
    let mut obj = Json::obj();
    for (key, v) in SERVE_FAULT_COUNTERS.iter().zip(counts) {
        obj.set(key, v);
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_names_are_recognized() {
        assert!(is_observability_artifact("metrics.json"));
        assert!(is_observability_artifact("trace.json"));
        assert!(is_observability_artifact("run.trace.json"));
        assert!(is_observability_artifact("risk_report.json"));
        assert!(!is_observability_artifact("r1.cfg"));
        assert!(!is_observability_artifact("metrics.json.cfg"));
        assert!(!is_observability_artifact("leak_report.json"));
    }

    #[test]
    fn metrics_doc_round_trips_and_validates() {
        let doc = metrics_doc(Json::obj().with("x", 1u64), Json::obj());
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).expect("parses");
        assert!(validate_metrics(&parsed).is_ok());
        assert_eq!(parsed, doc);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_metrics(&Json::obj()).is_err());
        assert!(validate_metrics(&Json::obj().with("schema", "other-v9")).is_err());
        let missing_timing = Json::obj()
            .with("schema", METRICS_SCHEMA)
            .with("deterministic", Json::obj());
        assert!(validate_metrics(&missing_timing).is_err());
        let wrong_type = Json::obj()
            .with("schema", METRICS_SCHEMA)
            .with("deterministic", 3u64)
            .with("timing", Json::obj());
        assert!(validate_metrics(&wrong_type).is_err());
    }

    #[test]
    fn serve_metrics_round_trip_and_rejection() {
        let doc = serve_metrics_doc(
            Json::obj().with("alpha", Json::obj().with("health", "serving")),
            Json::obj()
                .with("connections", 3u64)
                .with("faults", serve_faults_json([0, 1, 2, 3, 4, 5])),
        );
        let parsed = Json::parse(&doc.to_string_pretty()).expect("parses");
        assert!(validate_serve_metrics(&parsed).is_ok());

        assert!(validate_serve_metrics(&Json::obj()).is_err());
        assert!(validate_serve_metrics(
            &Json::obj().with("schema", METRICS_SCHEMA)
        )
        .is_err());
        let healthless = serve_metrics_doc(
            Json::obj().with("alpha", Json::obj().with("requests", 1u64)),
            Json::obj().with("faults", serve_faults_json([0; 6])),
        );
        assert!(validate_serve_metrics(&healthless)
            .unwrap_err()
            .contains("health"));
    }

    #[test]
    fn serve_metrics_require_the_fault_taxonomy() {
        let tenants = Json::obj().with("alpha", Json::obj().with("health", "serving"));
        let faultless = serve_metrics_doc(tenants.clone(), Json::obj().with("connections", 1u64));
        assert!(validate_serve_metrics(&faultless)
            .unwrap_err()
            .contains("faults"));

        // Every counter in the taxonomy is individually required.
        for missing in SERVE_FAULT_COUNTERS {
            let mut faults = Json::obj();
            for key in SERVE_FAULT_COUNTERS {
                if key != missing {
                    faults.set(key, 0u64);
                }
            }
            let doc = serve_metrics_doc(tenants.clone(), Json::obj().with("faults", faults));
            assert!(
                validate_serve_metrics(&doc).unwrap_err().contains(missing),
                "dropping {missing:?} must fail validation by name"
            );
        }
    }
}
