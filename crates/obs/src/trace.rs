//! Chrome trace-event export.
//!
//! Emits the JSON Object Format of the Trace Event specification —
//! `{"traceEvents": [...]}` — using complete (`"ph": "X"`) events, one
//! per recorded [`Span`], plus metadata events naming the process and
//! each logical lane. The output loads directly in `chrome://tracing`
//! and Perfetto. Timestamps are microseconds from the run epoch, as the
//! format requires; they are wall-clock data and therefore carry no
//! determinism guarantee.

use confanon_testkit::json::Json;

use crate::shard::Span;

/// Builds the trace document for a run's spans. `lanes` names the
/// logical thread ids (tid 0 is always the sequential pipeline thread;
/// rewrite workers are 1..).
pub fn chrome_trace_json(spans: &[Span], lanes: &[(u32, &str)]) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(spans.len() + lanes.len() + 1);
    events.push(metadata_event("process_name", 0, "confanon batch"));
    for (tid, name) in lanes {
        events.push(metadata_event("thread_name", *tid, name));
    }
    let mut sorted: Vec<&Span> = spans.iter().collect();
    sorted.sort_by(|a, b| (a.start_ns, a.tid, &a.name).cmp(&(b.start_ns, b.tid, &b.name)));
    for s in sorted {
        events.push(
            Json::obj()
                .with("name", s.name.as_str())
                .with("cat", s.cat)
                .with("ph", "X")
                .with("ts", s.start_ns as f64 / 1_000.0)
                .with("dur", s.dur_ns as f64 / 1_000.0)
                .with("pid", 1u64)
                .with("tid", u64::from(s.tid)),
        );
    }
    Json::obj()
        .with("traceEvents", Json::Arr(events))
        .with("displayTimeUnit", "ms")
}

fn metadata_event(kind: &str, tid: u32, name: &str) -> Json {
    Json::obj()
        .with("name", kind)
        .with("ph", "M")
        .with("pid", 1u64)
        .with("tid", u64::from(tid))
        .with("args", Json::obj().with("name", name))
}

/// Validates the shape of a parsed trace document: a `traceEvents`
/// array whose members all carry `name`, `ph`, `pid`, and `tid`, with
/// `ts`/`dur` present on every complete (`"X"`) event.
pub fn validate_trace(doc: &Json) -> Result<(), String> {
    let Some(events) = doc.get("traceEvents").and_then(Json::as_array) else {
        return Err("missing \"traceEvents\" array".to_string());
    };
    for (i, e) in events.iter().enumerate() {
        for key in ["name", "ph", "pid", "tid"] {
            if e.get(key).is_none() {
                return Err(format!("event {i} missing {key:?}"));
            }
        }
        if e.get("ph").and_then(Json::as_str) == Some("X")
            && (e.get("ts").and_then(Json::as_f64).is_none()
                || e.get("dur").and_then(Json::as_f64).is_none())
        {
            return Err(format!("complete event {i} missing ts/dur"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, cat: &'static str, tid: u32, start_ns: u64, dur_ns: u64) -> Span {
        Span {
            name: name.to_string(),
            cat,
            tid,
            start_ns,
            dur_ns,
        }
    }

    #[test]
    fn trace_round_trips_and_validates() {
        let spans = vec![
            span("discover", "phase", 0, 0, 5_000),
            span("r1.cfg", "rewrite", 1, 6_000, 2_500),
        ];
        let doc = chrome_trace_json(&spans, &[(0, "pipeline"), (1, "worker-1")]);
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).expect("parses");
        assert!(validate_trace(&parsed).is_ok());
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("events");
        // 1 process + 2 thread metadata + 2 complete events.
        assert_eq!(events.len(), 5);
        let complete: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        assert_eq!(complete[0].get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(complete[1].get("dur").and_then(Json::as_f64), Some(2.5));
    }

    #[test]
    fn events_are_sorted_by_start_time() {
        let spans = vec![
            span("later", "phase", 0, 9_000, 1),
            span("earlier", "phase", 0, 1_000, 1),
        ];
        let doc = chrome_trace_json(&spans, &[]);
        let names: Vec<String> = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("events")
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| e.get("name").and_then(Json::as_str).expect("name").to_string())
            .collect();
        assert_eq!(names, vec!["earlier".to_string(), "later".to_string()]);
    }

    #[test]
    fn validate_rejects_malformed_traces() {
        assert!(validate_trace(&Json::obj()).is_err());
        let bad = Json::obj().with(
            "traceEvents",
            Json::Arr(vec![Json::obj().with("name", "x")]),
        );
        assert!(validate_trace(&bad).is_err());
    }
}
