//! Deterministic power-of-two histograms.
//!
//! Buckets are fixed at construction-free powers of two (`le_1`, `le_2`,
//! `le_4`, … `le_2^31`, plus an overflow bucket), so two histograms of
//! the same values always serialize identically — no adaptive resizing,
//! no floating-point bucket math. Merging adds bucket counts, which
//! commutes: the merge order of worker shards cannot change the result.

use confanon_testkit::json::Json;

/// Number of power-of-two buckets before the overflow bucket.
const POW2_BUCKETS: usize = 32;

/// A fixed-bucket histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts samples `v` with `v <= 2^i` (first match
    /// wins); `buckets[POW2_BUCKETS]` counts the rest.
    buckets: [u64; POW2_BUCKETS + 1],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; POW2_BUCKETS + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (0..POW2_BUCKETS)
            .find(|&i| value <= 1u64 << i)
            .unwrap_or(POW2_BUCKETS);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Adds another histogram's buckets into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The histogram as JSON: summary fields plus the non-empty buckets
    /// (in ascending bound order, so serialization is deterministic).
    pub fn to_json(&self) -> Json {
        let mut buckets = Json::obj();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if i < POW2_BUCKETS {
                buckets.set(&format!("le_{}", 1u64 << i), n);
            } else {
                buckets.set("le_inf", n);
            }
        }
        Json::obj()
            .with("count", self.count)
            .with("sum", self.sum)
            .with("max", self.max)
            .with("buckets", buckets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.record(v);
        }
        let j = h.to_json();
        let b = j.get("buckets").expect("buckets");
        // 0 and 1 both land in le_1; 2 in le_2; 3 and 4 in le_4.
        assert_eq!(b.get("le_1").and_then(Json::as_u64), Some(2));
        assert_eq!(b.get("le_2").and_then(Json::as_u64), Some(1));
        assert_eq!(b.get("le_4").and_then(Json::as_u64), Some(2));
        assert_eq!(b.get("le_1024").and_then(Json::as_u64), Some(1));
        assert_eq!(b.get("le_inf").and_then(Json::as_u64), Some(1));
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn merge_commutes() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [1, 5, 9000] {
            a.record(v);
        }
        for v in [2, 5, 1 << 40] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_json().to_string_pretty(), ba.to_json().to_string_pretty());
        assert_eq!(ab.count(), 6);
    }

    #[test]
    fn empty_histogram_serializes_empty_buckets() {
        let h = Histogram::default();
        assert_eq!(
            h.to_json().to_string_compact(),
            r#"{"count":0,"sum":0,"max":0,"buckets":{}}"#
        );
    }
}
