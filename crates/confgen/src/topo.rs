//! Network planning: topology, roles, addressing, protocol placement.
//!
//! A network is planned as a whole (routers, links, LANs, BGP borders,
//! policy names) and then each router's configuration text is emitted by
//! [`crate::emit`]. Planning and emission share one seeded RNG stream, so
//! a dataset is a pure function of `(spec, seed)`.

use confanon_netprim::{Ip, Netmask, Prefix};
use confanon_testkit::rng::Rng;

use crate::addr::Allocator;
use crate::features::NetworkFeatures;
use crate::names::{self, pick, pick_u16};
use crate::truth::GroundTruth;
use crate::versions::{sample_version, VersionQuirks};

/// Backbone (carrier) or enterprise network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkProfile {
    /// Carrier: public address space, many BGP speakers, transit policy.
    Backbone,
    /// Enterprise: RFC 1918 core plus a public block, few borders.
    Enterprise,
}

/// Router roles in the planned topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterRole {
    /// Core: densely connected, always a BGP speaker in backbones.
    Core,
    /// Aggregation: connects cores to edges.
    Aggregation,
    /// Edge: hosts LANs; runs the IGP only (unless a border).
    Edge,
}

/// The IGP a network runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Igp {
    /// OSPF with areas.
    Ospf,
    /// Classful RIP (exercises class preservation).
    Rip,
    /// EIGRP with an AS tag.
    Eigrp,
}

/// One planned interface.
#[derive(Debug, Clone)]
pub struct IfPlan {
    /// Interface name (version-quirk dependent, e.g. `Serial1/0`).
    pub name: String,
    /// Assigned address.
    pub addr: Ip,
    /// Mask.
    pub mask: Netmask,
    /// Description text (identity-bearing on purpose), if any.
    pub description: Option<String>,
}

/// One planned eBGP peering.
#[derive(Debug, Clone)]
pub struct PeerPlan {
    /// Peer address (on a /30 toward the carrier).
    pub addr: Ip,
    /// Peer public ASN.
    pub asn: u16,
    /// Carrier name (for route-map names and descriptions).
    pub carrier: &'static str,
}

/// One planned router.
#[derive(Debug, Clone)]
pub struct RouterPlan {
    /// `cr1.lax.foocorp.com`-style hostname.
    pub hostname: String,
    /// Role.
    pub role: RouterRole,
    /// City code.
    pub city: &'static str,
    /// Version quirks.
    pub quirks: VersionQuirks,
    /// Loopback address.
    pub loopback: Ip,
    /// Interfaces (links + LANs).
    pub interfaces: Vec<IfPlan>,
    /// LAN subnets homed here (for IGP network statements).
    pub lans: Vec<Prefix>,
    /// Link subnets incident here (for IGP network statements).
    pub link_subnets: Vec<Prefix>,
    /// Whether this router speaks BGP.
    pub bgp: bool,
    /// eBGP peers terminating here.
    pub peers: Vec<PeerPlan>,
    /// Target config length in lines (paper size distribution).
    pub target_lines: usize,
}

/// A fully planned network (pre-emission).
pub struct NetworkPlan {
    /// Network name (owner corp).
    pub corp: &'static str,
    /// Profile.
    pub profile: NetworkProfile,
    /// The owner's public ASN.
    pub asn: u16,
    /// IGP choice.
    pub igp: Igp,
    /// EIGRP/OSPF process id.
    pub igp_pid: u16,
    /// Feature flags.
    pub features: NetworkFeatures,
    /// Per-network comment-word rate (mean 1.5%, p90 6% across networks).
    pub comment_rate: f64,
    /// Router plans.
    pub routers: Vec<RouterPlan>,
    /// Loopbacks of all BGP speakers (for iBGP meshes).
    pub bgp_loopbacks: Vec<Ip>,
    /// Route-reflector loopbacks (empty = full mesh). Large networks
    /// reflect instead of meshing — real design diversity the atlas
    /// metrics (iBGP mesh completeness) should surface.
    pub route_reflectors: Vec<Ip>,
    /// The network's IPv6 global-unicast /32, if it is dual-stacked.
    pub v6_block: Option<u128>,
    /// Ground truth accumulated during planning (emission adds more).
    pub truth: GroundTruth,
}

/// A generated router: plan metadata plus the emitted text.
#[derive(Debug, Clone)]
pub struct Router {
    /// Hostname.
    pub hostname: String,
    /// IOS version string.
    pub ios_version: String,
    /// Role.
    pub role: RouterRole,
    /// The configuration text.
    pub config: String,
}

/// A generated network.
#[derive(Debug, Clone)]
pub struct Network {
    /// Network name (owner corp).
    pub name: String,
    /// Profile.
    pub profile: NetworkProfile,
    /// The owner's public ASN.
    pub asn: u16,
    /// Feature flags.
    pub features: NetworkFeatures,
    /// Routers with emitted configs.
    pub routers: Vec<Router>,
    /// Everything identity-bearing the generator planted.
    pub ground_truth: GroundTruth,
}

impl Network {
    /// Total config lines across all routers.
    pub fn total_lines(&self) -> usize {
        self.routers
            .iter()
            .map(|r| r.config.lines().count())
            .sum()
    }
}

/// Samples a per-router config size from the paper's distribution:
/// log-normal fit through p25 = 183 and p90 = 1123, clamped to 50..10,000.
pub fn sample_config_lines<R: Rng>(rng: &mut R) -> usize {
    // z(0.25) = -0.6745, z(0.90) = 1.2816.
    const MU: f64 = 5.835; // ln(183) + 0.6745 * sigma
    const SIGMA: f64 = 0.928;
    let z = normal(rng);
    let lines = (MU + SIGMA * z).exp();
    lines.clamp(50.0, 10_000.0) as usize
}

/// Samples a per-network comment-word rate with mean ≈ 1.5% and 90th
/// percentile ≈ 5–6% across networks (the paper's aggregate: "an average
/// of 1.5% of the words were found to be comments (90th percentile 6%)").
///
/// No single lognormal admits a p90/mean ratio of 4 (the ratio
/// `exp(1.2816σ − σ²/2)` peaks at ≈ 2.27), so the population is a
/// mixture: most networks comment sparsely, a minority comment heavily —
/// which also matches operational reality.
pub fn sample_comment_rate<R: Rng>(rng: &mut R) -> f64 {
    let heavy = rng.gen_bool(0.13);
    let (median, sigma) = if heavy { (0.100, 0.45) } else { (0.0034, 0.60) };
    (median * (sigma * normal(rng)).exp()).min(0.30)
}

/// Standard normal via Box–Muller.
fn normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Plans one network.
pub fn plan_network<R: Rng>(
    rng: &mut R,
    corp_idx: usize,
    profile: NetworkProfile,
    n_routers: usize,
    features: NetworkFeatures,
) -> NetworkPlan {
    let corp = names::CORPS[corp_idx % names::CORPS.len()];
    let mut truth = GroundTruth::default();
    truth.owner_words.insert(corp.to_string());

    // The owner's public ASN: avoid the carrier pool so peers differ.
    let asn = loop {
        let a = rng.gen_range(1000..64000u16);
        if !names::PEER_ASNS.contains(&a) {
            break a;
        }
    };
    truth.own_asns.insert(asn.to_string());

    // Address blocks.
    let (mut link_alloc, mut lan_alloc, mut loop_alloc) = match profile {
        NetworkProfile::Backbone => {
            // A public /14-ish presence: carve three blocks out of
            // classful space (class A for links keeps RIP interesting).
            let a = rng.gen_range(5u8..120);
            let b = rng.gen_range(1u8..250);
            (
                Allocator::new(Prefix::new(Ip::from_octets(a, b, 0, 0), 16)),
                Allocator::new(Prefix::new(Ip::from_octets(a, b.wrapping_add(1), 0, 0), 16)),
                Allocator::new(Prefix::new(Ip::from_octets(a, b.wrapping_add(2), 0, 0), 24)),
            )
        }
        NetworkProfile::Enterprise => {
            let site = rng.gen_range(0u8..200);
            (
                Allocator::new(Prefix::new(Ip::from_octets(10, site, 0, 0), 16)),
                Allocator::new(
                    Prefix::new(Ip::from_octets(172, 16 + (site % 16), 0, 0), 16),
                ),
                Allocator::new(Prefix::new(Ip::from_octets(192, 168, site, 0), 24)),
            )
        }
    };

    let igp = match rng.gen_range(0..3) {
        0 => Igp::Ospf,
        1 => Igp::Rip,
        _ => Igp::Eigrp,
    };
    let igp_pid = rng.gen_range(1..100u16);
    let comment_rate = sample_comment_rate(rng);

    // Roles.
    let n_core = (n_routers / 6).max(2).min(n_routers);
    let n_agg = (n_routers / 3).min(n_routers - n_core);
    let mut routers: Vec<RouterPlan> = (0..n_routers)
        .map(|i| {
            let role = if i < n_core {
                RouterRole::Core
            } else if i < n_core + n_agg {
                RouterRole::Aggregation
            } else {
                RouterRole::Edge
            };
            let city = pick(rng, names::CITIES);
            truth.city_words.insert(city.to_string());
            let prefix = match role {
                RouterRole::Core => "cr",
                RouterRole::Aggregation => "ar",
                RouterRole::Edge => "er",
            };
            let hostname = format!("{prefix}{}.{}.{}.com", i + 1, city, corp);
            let loopback = loop_alloc
                .alloc(32)
                .map(|p| p.network())
                .unwrap_or(Ip::from_octets(192, 0, 2, (i % 250) as u8 + 1));
            truth.addresses.insert(loopback.to_string());
            RouterPlan {
                hostname,
                role,
                city,
                quirks: sample_version(rng),
                loopback,
                interfaces: Vec::new(),
                lans: Vec::new(),
                link_subnets: Vec::new(),
                bgp: false,
                peers: Vec::new(),
                target_lines: sample_config_lines(rng),
            }
        })
        .collect();

    // Links: core ring + chords, aggs to two cores, edges to one or two
    // aggs (or cores when there are no aggs).
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..n_core {
        edges.push((i, (i + 1) % n_core));
    }
    if n_core > 3 {
        edges.push((0, n_core / 2));
    }
    for i in n_core..n_core + n_agg {
        let c1 = rng.gen_range(0..n_core);
        let mut c2 = rng.gen_range(0..n_core);
        if c2 == c1 {
            c2 = (c1 + 1) % n_core;
        }
        edges.push((i, c1));
        edges.push((i, c2));
    }
    let attach_pool_end = if n_agg > 0 { n_core + n_agg } else { n_core };
    for i in n_core + n_agg..n_routers {
        let a1 = rng.gen_range(0..attach_pool_end);
        edges.push((i, a1));
        if rng.gen_bool(0.35) {
            let a2 = rng.gen_range(0..attach_pool_end);
            if a2 != a1 {
                edges.push((i, a2));
            }
        }
    }
    edges.retain(|&(a, b)| a != b);
    edges.sort_unstable();
    edges.dedup();

    // Assign /30s to links.
    let mut if_counter = vec![0usize; n_routers];
    for &(a, b) in &edges {
        let Some(subnet) = link_alloc.alloc(30) else {
            break;
        };
        let ip_a = subnet.host(1);
        let ip_b = subnet.host(2);
        truth.addresses.insert(ip_a.to_string());
        truth.addresses.insert(ip_b.to_string());
        for (me, other, ip) in [(a, b, ip_a), (b, a, ip_b)] {
            let peer_host = routers[other].hostname.clone();
            let name = link_if_name(&routers[me].quirks, &mut if_counter[me]);
            routers[me].interfaces.push(IfPlan {
                name,
                addr: ip,
                mask: Netmask::from_len(30),
                description: Some(format!("link to {peer_host}")),
            });
            routers[me].link_subnets.push(subnet);
        }
    }

    // LANs on edges (and the odd aggregation router).
    for i in 0..n_routers {
        let n_lans = match routers[i].role {
            RouterRole::Edge => rng.gen_range(1..=3),
            RouterRole::Aggregation => usize::from(rng.gen_bool(0.3)),
            RouterRole::Core => 0,
        };
        for _ in 0..n_lans {
            let Some(lan) = lan_alloc.alloc(rng.gen_range(24..=28)) else {
                break;
            };
            let addr = lan.host(1);
            truth.addresses.insert(addr.to_string());
            let name = lan_if_name(&routers[i].quirks, &mut if_counter[i]);
            let city = routers[i].city;
            routers[i].interfaces.push(IfPlan {
                name,
                addr,
                mask: lan.netmask(),
                description: Some(format!("{corp} {city} office lan")),
            });
            routers[i].lans.push(lan);
        }
    }

    // BGP speakers and eBGP peers.
    let n_borders = match profile {
        NetworkProfile::Backbone => (n_routers / 8).max(2),
        NetworkProfile::Enterprise => 1 + usize::from(n_routers > 10),
    };
    for r in routers.iter_mut() {
        if r.role == RouterRole::Core {
            r.bgp = matches!(profile, NetworkProfile::Backbone);
        }
    }
    for k in 0..n_borders {
        let idx = k % n_core;
        routers[idx].bgp = true;
        let n_peers = rng.gen_range(1..=3);
        for _ in 0..n_peers {
            let peer_asn = pick_u16(rng, names::PEER_ASNS);
            let carrier = carrier_for_asn(peer_asn);
            // Peer link out of a dedicated corner of the link block.
            let Some(subnet) = link_alloc.alloc(30) else {
                break;
            };
            let my_ip = subnet.host(1);
            let peer_ip = subnet.host(2);
            truth.addresses.insert(my_ip.to_string());
            truth.addresses.insert(peer_ip.to_string());
            truth.peer_asns.insert(peer_asn.to_string());
            truth.carrier_words.insert(carrier.to_string());
            let name = link_if_name(&routers[idx].quirks, &mut if_counter[idx]);
            routers[idx].interfaces.push(IfPlan {
                name,
                addr: my_ip,
                mask: Netmask::from_len(30),
                description: Some(format!("{carrier} peering")),
            });
            routers[idx].link_subnets.push(subnet);
            routers[idx].peers.push(PeerPlan {
                addr: peer_ip,
                asn: peer_asn,
                carrier,
            });
        }
    }

    let bgp_loopbacks: Vec<Ip> = routers
        .iter()
        .filter(|r| r.bgp)
        .map(|r| r.loopback)
        .collect();
    // Above ~6 speakers a full mesh is operationally painful; reflect.
    let route_reflectors: Vec<Ip> = if bgp_loopbacks.len() > 6 {
        bgp_loopbacks.iter().take(2).copied().collect()
    } else {
        Vec::new()
    };

    // About a third of networks are dual-stacked (2000s-era adoption);
    // each gets a global-unicast /32 out of 2000::/3.
    let v6_block = if rng.gen_bool(0.35) {
        let hi: u16 = 0x2000 | (rng.gen_range(0x400..0x1FFFu16) & 0x1FFF);
        let lo: u16 = rng.gen_range(1..0xFFFF);
        Some(((hi as u128) << 112) | ((lo as u128) << 96))
    } else {
        None
    };

    NetworkPlan {
        corp,
        profile,
        asn,
        igp,
        igp_pid,
        features,
        comment_rate,
        routers,
        bgp_loopbacks,
        route_reflectors,
        v6_block,
        truth,
    }
}

/// Maps a peer ASN back to its carrier name (for descriptions/map names).
pub fn carrier_for_asn(asn: u16) -> &'static str {
    match asn {
        701..=705 => "uunet",
        1239 => "sprint",
        7018 => "att",
        3356 | 3549 => "level3",
        1 => "genuity",
        16631 => "cogent",
        2914 => "verio",
        209 | 3561 => "qwest",
        _ => "teleglobe",
    }
}

fn link_if_name(q: &VersionQuirks, counter: &mut usize) -> String {
    let i = *counter;
    *counter += 1;
    // Ancient trains number serial ports flat (`Serial3`); modern ones
    // use slot/port.
    if q.ancient {
        format!("Serial{i}")
    } else {
        format!("Serial{}/{}", i / 4, i % 4)
    }
}

fn lan_if_name(q: &VersionQuirks, counter: &mut usize) -> String {
    let i = *counter;
    *counter += 1;
    let kind = if q.gig_interfaces {
        "GigabitEthernet"
    } else if q.fast_interfaces {
        "FastEthernet"
    } else {
        "Ethernet"
    };
    format!("{kind}{}/{}", i / 4, i % 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use confanon_testkit::rng::{SeedableRng, StdRng};

    fn plan(n: usize, profile: NetworkProfile) -> NetworkPlan {
        let mut rng = StdRng::seed_from_u64(21);
        plan_network(&mut rng, 0, profile, n, NetworkFeatures::default())
    }

    #[test]
    fn roles_partition() {
        let p = plan(24, NetworkProfile::Backbone);
        let core = p.routers.iter().filter(|r| r.role == RouterRole::Core).count();
        let agg = p
            .routers
            .iter()
            .filter(|r| r.role == RouterRole::Aggregation)
            .count();
        assert!(core >= 2);
        assert!(agg >= 1);
        assert_eq!(p.routers.len(), 24);
    }

    #[test]
    fn every_router_is_connected() {
        let p = plan(20, NetworkProfile::Backbone);
        for r in &p.routers {
            assert!(
                !r.interfaces.is_empty(),
                "{} has no interfaces",
                r.hostname
            );
        }
    }

    #[test]
    fn links_are_consistent_point_to_points() {
        let p = plan(12, NetworkProfile::Enterprise);
        // Every /30 link subnet appears on exactly two routers.
        let mut counts = std::collections::HashMap::new();
        for r in &p.routers {
            for s in &r.link_subnets {
                *counts.entry(s.to_string()).or_insert(0) += 1;
            }
        }
        // Peer links appear once (the carrier side is not ours).
        for (s, c) in counts {
            assert!(c == 2 || c == 1, "{s} appears {c} times");
        }
    }

    #[test]
    fn backbone_has_multiple_bgp_speakers() {
        let p = plan(24, NetworkProfile::Backbone);
        assert!(p.bgp_loopbacks.len() >= 2);
        let peers: usize = p.routers.iter().map(|r| r.peers.len()).sum();
        assert!(peers >= 2);
    }

    #[test]
    fn ground_truth_collects_identity() {
        let p = plan(10, NetworkProfile::Backbone);
        assert!(!p.truth.owner_words.is_empty());
        assert!(!p.truth.peer_asns.is_empty());
        assert!(!p.truth.addresses.is_empty());
        assert!(p.truth.own_asns.contains(&p.asn.to_string()));
    }

    #[test]
    fn config_size_distribution_matches_paper_quartiles() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut sizes: Vec<usize> = (0..20_000).map(|_| sample_config_lines(&mut rng)).collect();
        sizes.sort_unstable();
        let p25 = sizes[sizes.len() / 4];
        let p90 = sizes[sizes.len() * 9 / 10];
        assert!((150..=220).contains(&p25), "p25 = {p25}");
        assert!((950..=1350).contains(&p90), "p90 = {p90}");
        assert!(*sizes.first().unwrap() >= 50);
        assert!(*sizes.last().unwrap() <= 10_000);
    }

    #[test]
    fn comment_rate_distribution_matches_paper() {
        let mut rng = StdRng::seed_from_u64(100);
        let mut rates: Vec<f64> = (0..20_000).map(|_| sample_comment_rate(&mut rng)).collect();
        rates.sort_by(f64::total_cmp);
        let mean: f64 = rates.iter().sum::<f64>() / rates.len() as f64;
        let p90 = rates[rates.len() * 9 / 10];
        // Solved so the mixture hits the paper's aggregate exactly;
        // emission is budget-gated, so realized fractions track these
        // from just below (corpus_stats / E2 is the end-to-end check).
        assert!((0.013..=0.023).contains(&mean), "mean = {mean}");
        assert!((0.050..=0.090).contains(&p90), "p90 = {p90}");
    }

    #[test]
    fn carrier_names_match_figure1_world() {
        assert_eq!(carrier_for_asn(701), "uunet");
        assert_eq!(carrier_for_asn(1239), "sprint");
        assert_eq!(carrier_for_asn(1), "genuity");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = plan(8, NetworkProfile::Enterprise);
        let b = plan(8, NetworkProfile::Enterprise);
        assert_eq!(a.routers.len(), b.routers.len());
        assert_eq!(a.routers[0].hostname, b.routers[0].hostname);
        assert_eq!(a.asn, b.asn);
    }
}
