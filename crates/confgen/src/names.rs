//! Name pools: the identity-bearing strings the generator plants.
//!
//! Realism matters for the *leak* experiments: the paper's motivating
//! examples are `global crossing` in a comment, UUNET's ASN, Foo Corp's
//! hostname. The pools below mix the paper's own examples with other
//! well-known (historical) carrier names, US city codes, and corporate
//! names, so anonymized output can be audited for the same classes of
//! leak the paper worried about.

use confanon_testkit::rng::Rng;

/// Fictional owner corporations (the "Foo Corp" role).
pub const CORPS: &[&str] = &[
    "foocorp", "acmenet", "globex", "initech", "umbrella", "wayne", "stark", "tyrell",
    "cyberdyne", "hooli", "piedpiper", "wonka", "oscorp", "dunder", "vandelay", "prestige",
    "duff", "monarch", "sirius", "zorg", "virtucon", "gringotts", "macguffin", "contoso",
    "fabrikam", "northwind", "ollivander", "aperture", "blackmesa", "weyland", "yutani",
];

/// Real (historical) carrier names — the strings that must never survive
/// in comments. `global` + `crossing` is the paper's own example.
pub const CARRIERS: &[&str] = &[
    "uunet", "sprint", "sprintlink", "genuity", "globalcrossing", "level3", "qwest", "mci",
    "att", "verio", "abovenet", "exodus", "psinet", "cogent", "teleglobe", "cablewireless",
];

/// Airport-style city codes used in router hostnames.
pub const CITIES: &[&str] = &[
    "lax", "sfo", "nyc", "chi", "dfw", "atl", "sea", "bos", "iad", "den", "mia", "phx", "msp",
    "det", "stl", "pit", "phl", "san", "pdx", "slc", "hou", "mci2", "bna", "clt", "rdu", "aus",
];

/// Public AS numbers of well-known (2004-era) carriers, used as eBGP
/// peers. 701..705 is the UUNET block the paper's Figure 1 references;
/// 1239 is Sprint; 1 is Genuity (the paper's grep-caveat footnote).
/// Note: AS 174 (Cogent's short ASN) is deliberately absent — like AS 1
/// (Genuity), it collides with ubiquitous plain integers (extended ACL
/// numbers run 100..=199) and poisons grep-style leak scanning; we plant
/// Cogent's post-merger ASN 16631 instead.
pub const PEER_ASNS: &[u16] = &[
    701, 702, 703, 704, 705, 1239, 7018, 3356, 3549, 16631, 2914, 6453, 209, 3561, 4323, 6461,
    2828, 852, 577,
];

/// Genuity's AS number. Deliberately *not* in [`PEER_ASNS`]: the paper's
/// §6.1 footnote observes that grep-style leak scanning "would work
/// poorly for Genuity customers as Genuity's AS number (AS 1) will appear
/// in many unrelated config lines". The `genuity_caveat` test reproduces
/// that observation explicitly.
pub const GENUITY_ASN: u16 = 1;

/// Words used to build route-map and filter names (mixed with carrier
/// names so that policy names leak identity the way `UUNET-import` does).
pub const POLICY_WORDS: &[&str] = &[
    "import", "export", "transit", "customer", "peerfilter", "backbone", "blackhole",
    "martians", "bogons", "preferred", "backup", "primary", "localpref", "prepend",
];

/// First names for `username` lines (identity-bearing).
pub const USERNAMES: &[&str] = &[
    "jsmith", "agreenberg", "dmaltz", "jrexford", "hzhang", "gxie", "jzhan", "opsadmin",
    "netops", "jdoe",
];

/// Picks one element of `pool` uniformly.
pub fn pick<'a, R: Rng>(rng: &mut R, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// Picks one u16 of `pool` uniformly.
pub fn pick_u16<R: Rng>(rng: &mut R, pool: &[u16]) -> u16 {
    pool[rng.gen_range(0..pool.len())]
}

/// A ten-digit North-American phone number.
pub fn phone<R: Rng>(rng: &mut R) -> String {
    format!(
        "1{}{}",
        rng.gen_range(200..999),
        rng.gen_range(1_000_000..9_999_999)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use confanon_testkit::rng::{SeedableRng, StdRng};

    #[test]
    fn pools_are_nonempty_and_lowercase() {
        for pool in [CORPS, CARRIERS, CITIES, POLICY_WORDS, USERNAMES] {
            assert!(!pool.is_empty());
            for w in pool {
                assert_eq!(*w, w.to_ascii_lowercase(), "{w}");
            }
        }
    }

    #[test]
    fn peer_asns_are_public() {
        for &a in PEER_ASNS {
            assert!(a != 0 && a < 64512, "{a}");
        }
    }

    #[test]
    fn uunet_block_present_for_figure1_style_policies() {
        for a in [701u16, 702, 703, 704, 705, 1239] {
            assert!(PEER_ASNS.contains(&a));
        }
    }

    #[test]
    fn phone_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = phone(&mut rng);
        assert_eq!(p.len(), 11);
        assert!(p.starts_with('1'));
        assert!(p.bytes().all(|b| b.is_ascii_digit()));
    }

    #[test]
    fn pick_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(pick(&mut a, CORPS), pick(&mut b, CORPS));
        }
    }
}
