//! # confanon-confgen — synthetic router-configuration corpus generator
//!
//! The paper's dataset — 7655 routers in 31 backbone and enterprise
//! networks, 4.3 million lines across 200+ IOS versions — is proprietary
//! carrier data. This crate is the documented substitution (DESIGN.md §5):
//! a deterministic generator whose output matches the dataset's *published
//! marginals*:
//!
//! * per-router config sizes log-normally distributed through the paper's
//!   quartiles (25th percentile 183 lines, 90th percentile 1123, clamped
//!   to the reported 50..10,000 range);
//! * comment mass averaging 1.5% of words (90th percentile 6%);
//! * per-network policy-regexp incidence: ranges/wildcards over public
//!   ASNs in 2 of 31 networks, over private ASNs in 3 of 31, alternation
//!   in 10 of 31, community regexps in 5 of 31 (ranges in 2), internal
//!   compartmentalization in 10 of 31 (§4.4, §4.5, §6.3);
//! * an IOS-version quirk matrix yielding 200+ distinct version strings
//!   with syntax differences (banner delimiters, interface naming,
//!   `ip classless`, …).
//!
//! Each network carries machine-readable [`GroundTruth`] — every
//! identity-bearing string the generator planted — so experiments can
//! verify the anonymizer removed all of it without trusting the
//! anonymizer's own bookkeeping.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod addr;
pub mod emit;
pub mod features;
pub mod names;
pub mod spec;
pub mod topo;
pub mod truth;
pub mod versions;

pub use features::NetworkFeatures;
pub use spec::{
    generate_dataset, generate_decoy_routers, paper_dataset_spec, small_dataset_spec, Dataset,
    DatasetSpec,
};
pub use topo::{Network, NetworkProfile, Router, RouterRole};
pub use truth::GroundTruth;
