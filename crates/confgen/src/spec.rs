//! Dataset specifications and top-level generation.

use confanon_testkit::rng::{Rng, SeedableRng, StdRng};

use crate::emit::emit_router;
use crate::features::{assign_features, FeatureCensus};
use crate::topo::{plan_network, Network, NetworkProfile, Router};

/// Parameters of a dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// RNG seed: the dataset is a pure function of the spec.
    pub seed: u64,
    /// Number of networks.
    pub networks: usize,
    /// Mean routers per network (sampled per network around this).
    pub mean_routers: usize,
    /// Fraction of networks that are backbones (the rest enterprise).
    pub backbone_fraction: f64,
}

/// The paper's dataset shape: 31 networks, 7655 routers total
/// (≈ 247 per network), a mix of backbone and enterprise.
pub fn paper_dataset_spec(seed: u64) -> DatasetSpec {
    DatasetSpec {
        seed,
        networks: 31,
        mean_routers: 247,
        backbone_fraction: 0.35,
    }
}

/// A small dataset for tests and examples: 31 networks held (so the
/// incidence counts stay exact) but only a handful of routers each.
pub fn small_dataset_spec(seed: u64) -> DatasetSpec {
    DatasetSpec {
        seed,
        networks: 31,
        mean_routers: 8,
        backbone_fraction: 0.35,
    }
}

/// A generated dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The spec that produced it.
    pub spec: DatasetSpec,
    /// The networks.
    pub networks: Vec<Network>,
}

impl Dataset {
    /// Total routers.
    pub fn total_routers(&self) -> usize {
        self.networks.iter().map(|n| n.routers.len()).sum()
    }

    /// Total config lines.
    pub fn total_lines(&self) -> usize {
        self.networks.iter().map(Network::total_lines).sum()
    }

    /// Tallies the per-network feature flags (experiment E4/E14).
    pub fn feature_census(&self) -> FeatureCensus {
        let f: Vec<_> = self.networks.iter().map(|n| n.features).collect();
        FeatureCensus::tally(&f)
    }
}

/// Generates a dataset from a spec.
pub fn generate_dataset(spec: &DatasetSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let features = assign_features(&mut rng, spec.networks);
    let mut networks = Vec::with_capacity(spec.networks);

    #[allow(clippy::needless_range_loop)] // i doubles as the corp index
    for i in 0..spec.networks {
        let profile = if (i as f64 + 0.5) / spec.networks as f64 <= spec.backbone_fraction {
            NetworkProfile::Backbone
        } else {
            NetworkProfile::Enterprise
        };
        // Router counts vary ×[0.3, 2.2] around the mean; backbones lean
        // larger.
        let scale: f64 = rng.gen_range(0.3..2.2)
            * if profile == NetworkProfile::Backbone {
                1.3
            } else {
                0.8
            };
        let n_routers = ((spec.mean_routers as f64 * scale) as usize).max(3);

        let plan = plan_network(&mut rng, i, profile, n_routers, features[i]);
        let mut truth = plan.truth.clone();
        let routers: Vec<Router> = (0..plan.routers.len())
            .map(|ri| {
                let config = emit_router(&plan, ri, &mut rng, &mut truth);
                Router {
                    hostname: plan.routers[ri].hostname.clone(),
                    ios_version: plan.routers[ri].quirks.version.clone(),
                    role: plan.routers[ri].role,
                    config,
                }
            })
            .collect();

        networks.push(Network {
            name: format!("{}-{}", plan.corp, i),
            profile,
            asn: plan.asn,
            features: features[i],
            routers,
            ground_truth: truth,
        });
    }

    Dataset {
        spec: spec.clone(),
        networks,
    }
}

/// Generates `count` synthetic decoy routers — NetCloak-style chaff a
/// corpus owner injects into a released set to dilute structural
/// fingerprints. A pure function of `(seed, count)`: the same arguments
/// always yield the same routers, which is what lets `--resume` and
/// incremental runs regenerate an identical decoy set.
///
/// The decoys are ordinary [`Router`]s from the same generator the
/// validation corpus uses, so they are statistically indistinguishable
/// from real synthetic routers and anonymize through the normal
/// pipeline like any other input.
pub fn generate_decoy_routers(seed: u64, count: usize) -> Vec<Router> {
    if count == 0 {
        return Vec::new();
    }
    // One enterprise-profile network sized so the scale jitter
    // ([0.3, 2.2] x 0.8 around the mean) can never undershoot `count`.
    let ds = generate_dataset(&DatasetSpec {
        seed,
        networks: 1,
        mean_routers: count * 4 + 3,
        backbone_fraction: 0.0,
    });
    let mut routers = ds.networks.into_iter().next().map(|n| n.routers).unwrap_or_default();
    routers.truncate(count);
    routers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoys_are_deterministic_and_sized() {
        let a = generate_decoy_routers(99, 3);
        let b = generate_decoy_routers(99, 3);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.hostname, y.hostname);
            assert_eq!(x.config, y.config);
        }
        assert_ne!(
            generate_decoy_routers(100, 3)[0].config, a[0].config,
            "different seed, different chaff"
        );
        assert!(generate_decoy_routers(1, 0).is_empty());
    }

    #[test]
    fn small_dataset_generates() {
        let ds = generate_dataset(&small_dataset_spec(1));
        assert_eq!(ds.networks.len(), 31);
        assert!(ds.total_routers() >= 31 * 3);
        assert!(ds.total_lines() > 10_000);
    }

    #[test]
    fn deterministic() {
        let a = generate_dataset(&small_dataset_spec(7));
        let b = generate_dataset(&small_dataset_spec(7));
        assert_eq!(a.total_lines(), b.total_lines());
        assert_eq!(
            a.networks[0].routers[0].config,
            b.networks[0].routers[0].config
        );
    }

    #[test]
    fn seeds_differ() {
        let a = generate_dataset(&small_dataset_spec(7));
        let b = generate_dataset(&small_dataset_spec(8));
        assert_ne!(
            a.networks[0].routers[0].config,
            b.networks[0].routers[0].config
        );
    }

    #[test]
    fn census_matches_paper_at_31() {
        let ds = generate_dataset(&small_dataset_spec(3));
        let c = ds.feature_census();
        assert_eq!(c.networks, 31);
        assert_eq!(c.public_asn_ranges, 2);
        assert_eq!(c.private_asn_ranges, 3);
        assert_eq!(c.asn_alternation, 10);
        assert_eq!(c.community_regexps, 5);
        assert_eq!(c.community_ranges, 2);
        assert_eq!(c.compartmentalized, 10);
    }

    #[test]
    fn mixes_profiles() {
        let ds = generate_dataset(&small_dataset_spec(2));
        let backbones = ds
            .networks
            .iter()
            .filter(|n| n.profile == NetworkProfile::Backbone)
            .count();
        assert!((5..=20).contains(&backbones), "{backbones}");
    }

    #[test]
    fn version_diversity_reaches_paper_scale_on_full_dataset() {
        // Only the paper-scale dataset needs 200+ versions; the small one
        // just needs diversity.
        let ds = generate_dataset(&small_dataset_spec(4));
        let versions: std::collections::HashSet<&str> = ds
            .networks
            .iter()
            .flat_map(|n| n.routers.iter().map(|r| r.ios_version.as_str()))
            .collect();
        assert!(versions.len() > 50, "{}", versions.len());
    }

    #[test]
    fn ground_truth_nonempty_everywhere() {
        let ds = generate_dataset(&small_dataset_spec(5));
        for n in &ds.networks {
            assert!(!n.ground_truth.addresses.is_empty(), "{}", n.name);
            assert!(!n.ground_truth.own_asns.is_empty(), "{}", n.name);
        }
    }
}
