//! Ground truth: every identity-bearing string a generated network
//! contains, recorded by the generator itself.
//!
//! The leak experiments must not trust the anonymizer's own bookkeeping
//! (that would be circular); the generator knows exactly what it planted.

use std::collections::BTreeSet;

/// Identity-bearing content planted in one network's configs.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// The owner's corporate name and derived words.
    pub owner_words: BTreeSet<String>,
    /// Carrier names dropped into comments/descriptions.
    pub carrier_words: BTreeSet<String>,
    /// City codes in hostnames and descriptions.
    pub city_words: BTreeSet<String>,
    /// The owner's public ASN(s), decimal.
    pub own_asns: BTreeSet<String>,
    /// Public peer ASNs, decimal.
    pub peer_asns: BTreeSet<String>,
    /// Every IPv4 literal planted (ordinary addresses only).
    pub addresses: BTreeSet<String>,
    /// Every IPv6 literal planted (canonical RFC 5952 text).
    pub v6_addresses: BTreeSet<String>,
    /// Phone numbers in dialer strings / banners.
    pub phone_numbers: BTreeSet<String>,
    /// SNMP communities, passwords, keys.
    pub secrets: BTreeSet<String>,
    /// Usernames.
    pub usernames: BTreeSet<String>,
}

impl GroundTruth {
    /// All public ASN strings (own + peers).
    pub fn all_asns(&self) -> BTreeSet<String> {
        self.own_asns.union(&self.peer_asns).cloned().collect()
    }

    /// All identity words (owner, carriers, cities, usernames).
    pub fn all_words(&self) -> BTreeSet<String> {
        let mut w = self.owner_words.clone();
        w.extend(self.carrier_words.iter().cloned());
        w.extend(self.city_words.iter().cloned());
        w.extend(self.usernames.iter().cloned());
        w.extend(self.secrets.iter().cloned());
        w
    }

    /// Converts to the `confanon-core` leak-record shape (as plain sets;
    /// the dependency points the other way, so this stays stringly). The
    /// first component is every identity-bearing *digit string* — public
    /// ASNs and phone numbers — which the scanner matches against whole
    /// digit runs.
    pub fn record_tuple(&self) -> (BTreeSet<String>, BTreeSet<String>, BTreeSet<String>) {
        let mut numbers = self.all_asns();
        numbers.extend(self.phone_numbers.iter().cloned());
        let mut addrs = self.addresses.clone();
        // IPv6 literals are matched as whole whitespace tokens by the
        // scanner, same as quads.
        addrs.extend(self.v6_addresses.iter().cloned());
        (numbers, addrs, self.all_words())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_cover_components() {
        let mut t = GroundTruth::default();
        t.own_asns.insert("1111".into());
        t.peer_asns.insert("701".into());
        t.owner_words.insert("foocorp".into());
        t.city_words.insert("lax".into());
        assert_eq!(t.all_asns().len(), 2);
        assert!(t.all_words().contains("lax"));
        let (asns, _, words) = t.record_tuple();
        assert!(asns.contains("701") && words.contains("foocorp"));
    }
}
