//! The addressing plan: sequential subnet allocation within owner blocks.
//!
//! Networks own a handful of address blocks (public space for backbones,
//! RFC 1918 plus a public block for enterprises). Links take /30s, LANs
//! /24s, loopbacks /32s — the size mix is what gives each network the
//! subnet-size histogram that experiment E10 fingerprints.

use confanon_netprim::{Ip, Prefix};

/// Sequential allocator of equal-or-varying-size subnets from one block.
#[derive(Debug, Clone)]
pub struct Allocator {
    block: Prefix,
    /// Next free address (cursor), relative to the block start.
    cursor: u64,
}

impl Allocator {
    /// Creates an allocator over `block`.
    pub fn new(block: Prefix) -> Allocator {
        Allocator { block, cursor: 0 }
    }

    /// The underlying block.
    pub fn block(&self) -> Prefix {
        self.block
    }

    /// Allocates the next aligned subnet of length `len`, or `None` when
    /// the block is exhausted.
    pub fn alloc(&mut self, len: u8) -> Option<Prefix> {
        assert!(len >= self.block.len() && len <= 32);
        let size = 1u64 << (32 - len);
        // Align the cursor up to a multiple of the subnet size.
        let aligned = self.cursor.div_ceil(size) * size;
        let total: u64 = if self.block.len() == 0 {
            1 << 32
        } else {
            1u64 << (32 - self.block.len())
        };
        if aligned + size > total {
            return None;
        }
        self.cursor = aligned + size;
        let addr = Ip((u64::from(self.block.network().0) + aligned) as u32);
        Some(Prefix::new(addr, len))
    }

    /// Fraction of the block consumed.
    pub fn utilization(&self) -> f64 {
        let total: u64 = if self.block.len() == 0 {
            1 << 32
        } else {
            1u64 << (32 - self.block.len())
        };
        self.cursor as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_non_overlapping() {
        let mut a = Allocator::new("10.0.0.0/16".parse().unwrap());
        let s1 = a.alloc(30).unwrap();
        let s2 = a.alloc(30).unwrap();
        assert_eq!(s1.to_string(), "10.0.0.0/30");
        assert_eq!(s2.to_string(), "10.0.0.4/30");
        assert!(!s1.contains_prefix(s2));
    }

    #[test]
    fn alignment_after_mixed_sizes() {
        let mut a = Allocator::new("10.0.0.0/16".parse().unwrap());
        a.alloc(30).unwrap(); // 10.0.0.0/30
        let lan = a.alloc(24).unwrap(); // must skip to the next /24 boundary
        assert_eq!(lan.to_string(), "10.0.1.0/24");
        let link = a.alloc(30).unwrap();
        assert_eq!(link.to_string(), "10.0.2.0/30");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = Allocator::new("10.0.0.0/30".parse().unwrap());
        assert!(a.alloc(30).is_some());
        assert!(a.alloc(30).is_none());
        assert!(a.alloc(32).is_none());
    }

    #[test]
    fn host_prefixes() {
        let mut a = Allocator::new("192.0.2.0/24".parse().unwrap());
        let l0 = a.alloc(32).unwrap();
        let l1 = a.alloc(32).unwrap();
        assert_eq!(l0.to_string(), "192.0.2.0/32");
        assert_eq!(l1.to_string(), "192.0.2.1/32");
    }

    #[test]
    fn utilization_grows() {
        let mut a = Allocator::new("10.0.0.0/24".parse().unwrap());
        assert_eq!(a.utilization(), 0.0);
        a.alloc(25).unwrap();
        assert!((a.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn allocations_stay_inside_block() {
        let block: Prefix = "172.16.0.0/20".parse().unwrap();
        let mut a = Allocator::new(block);
        while let Some(s) = a.alloc(26) {
            assert!(block.contains_prefix(s), "{s} outside {block}");
        }
    }
}
