//! Configuration text emission.
//!
//! Renders one planned router to IOS-style text, honouring version
//! quirks, injecting identity-bearing comments at the network's comment
//! rate, planting the policy regexps the network's feature flags call
//! for, and padding with realistic filler (ACL entries, static routes)
//! toward the router's sampled target length.

use confanon_netprim::{Ip, Ip6, Prefix, WildcardMask};
use confanon_testkit::rng::Rng;

use crate::names::{self, phone, pick};
use crate::topo::{Igp, NetworkPlan, NetworkProfile, RouterRole};
use crate::truth::GroundTruth;

/// Emits the configuration for router `idx` of `plan`, extending the
/// network's ground truth with anything identity-bearing it plants.
pub fn emit_router<R: Rng>(
    plan: &NetworkPlan,
    idx: usize,
    rng: &mut R,
    truth: &mut GroundTruth,
) -> String {
    let r = &plan.routers[idx];
    let q = &r.quirks;
    let corp = plan.corp;
    let mut out = Lines::new(plan.comment_rate, corp);

    out.push(format!("version {}", strip_suffix(&q.version)));
    if !q.ancient {
        out.push("service timestamps debug uptime".to_string());
        out.push("service timestamps log uptime".to_string());
    }
    out.push("service password-encryption".to_string());
    out.push("!".to_string());
    out.push(format!("hostname {}", r.hostname));
    out.push("!".to_string());

    // Banner — only where the comment budget can afford ~20 words over
    // the router's expected size (heavy-commenting networks, mostly).
    let expected_words = r.target_lines * 4;
    if rng.gen_bool(0.6) && plan.comment_rate * expected_words as f64 > 24.0 {
        let d = q.banner_delim;
        let contact = format!("noc@{corp}.com");
        let ph = phone(rng);
        truth.phone_numbers.insert(ph.clone());
        // Banner text must not contain the delimiter character — IOS
        // terminates the banner at its first occurrence.
        let d1 = d.chars().last().unwrap_or('#');
        let body1 = format!("{corp} network operations - contact {contact}").replace(d1, "-");
        let body2 = format!("or call {ph}").replace(d1, "-");
        out.push(format!("banner motd {d}"));
        out.force_comment_line(body1);
        out.force_comment_line(body2);
        out.force_comment_line("Access strictly prohibited!".to_string());
        out.push(d.to_string());
        out.push("!".to_string());
    }

    // Secrets.
    let secret = format!("{}{}", pick(rng, names::CORPS), rng.gen_range(100..999));
    truth.secrets.insert(secret.clone());
    out.push(format!("enable secret 5 {secret}"));
    let user = pick(rng, names::USERNAMES);
    truth.usernames.insert(user.to_string());
    out.push(format!("username {user} password 7 {secret}"));
    if q.emits_subnet_zero {
        out.push("ip subnet-zero".to_string());
    }
    if q.emits_ip_classless {
        out.push("ip classless".to_string());
    }
    out.push(format!("ip domain-name {corp}.com"));
    out.push("!".to_string());

    // Loopback.
    out.push("interface Loopback0".to_string());
    out.push(format!(" ip address {} 255.255.255.255", r.loopback));
    out.push("!".to_string());

    // Dual stack on modern images only.
    let dual_stack = plan.v6_block.is_some() && q.gig_interfaces;
    if dual_stack {
        out.push("ipv6 unicast-routing".to_string());
        out.push("!".to_string());
    }

    // Interfaces.
    for (if_idx, ifp) in r.interfaces.iter().enumerate() {
        out.push(format!("interface {}", ifp.name));
        if let Some(d) = &ifp.description {
            out.push_comment_line(format!(" description {d}"));
        }
        out.push(format!(" ip address {} {}", ifp.addr, ifp.mask));
        if dual_stack {
            // One /64 per (router, interface) out of the network's /32.
            let block = plan.v6_block.expect("dual_stack implies block");
            let subnet = block
                | ((idx as u128 & 0xFFFF) << 80)
                | ((if_idx as u128 & 0xFFFF) << 64);
            let addr6 = Ip6(subnet | 1);
            truth.v6_addresses.insert(addr6.to_string());
            out.push(format!(" ipv6 address {addr6}/64"));
        }
        if plan.features.compartmentalized && rng.gen_bool(0.3) {
            out.push(" ip nat inside".to_string());
        }
        if rng.gen_bool(0.2) {
            out.push(" no ip directed-broadcast".to_string());
        }
        out.push("!".to_string());
    }

    // IGP.
    match plan.igp {
        Igp::Ospf => {
            out.push(format!("router ospf {}", plan.igp_pid));
            let area = match r.role {
                RouterRole::Core => 0,
                RouterRole::Aggregation => 0,
                RouterRole::Edge => idx % 4,
            };
            for s in r.link_subnets.iter().chain(&r.lans) {
                let w = WildcardMask::from_prefix_len(s.len());
                out.push(format!(" network {} {} area {}", s.network(), w, area));
            }
            out.push(format!(
                " network {} 0.0.0.0 area 0",
                r.loopback
            ));
        }
        Igp::Rip => {
            out.push("router rip".to_string());
            // Classful: advertise the classful networks containing our
            // subnets (this is why class preservation matters).
            let mut nets: Vec<String> = r
                .link_subnets
                .iter()
                .chain(&r.lans)
                .map(|s| classful_network(s.network()).to_string())
                .collect();
            nets.push(classful_network(r.loopback).to_string());
            nets.sort();
            nets.dedup();
            for n in nets {
                out.push(format!(" network {n}"));
            }
        }
        Igp::Eigrp => {
            out.push(format!("router eigrp {}", plan.igp_pid));
            let mut nets: Vec<String> = r
                .link_subnets
                .iter()
                .chain(&r.lans)
                .map(|s| classful_network(s.network()).to_string())
                .collect();
            nets.sort();
            nets.dedup();
            for n in nets {
                out.push(format!(" network {n}"));
            }
            out.push(" no auto-summary".to_string());
        }
    }
    out.push("!".to_string());

    // BGP.
    if r.bgp {
        out.push(format!("router bgp {}", plan.asn));
        if q.emits_bgp_log_neighbor {
            out.push(" bgp log-neighbor-changes".to_string());
        }
        // Large backbones run confederations: the public identifier and
        // the private member ASNs both appear (locators R10/R11).
        if plan.profile == NetworkProfile::Backbone && plan.routers.len() >= 12 {
            out.push(format!(" bgp confederation identifier {}", plan.asn));
            out.push(format!(
                " bgp confederation peers {} {}",
                64512 + (idx % 8) as u16,
                64520 + (idx % 4) as u16
            ));
        }
        if plan.igp == Igp::Rip && rng.gen_bool(0.3) {
            out.push(" redistribute rip".to_string());
        }
        for lan in &r.lans {
            out.push(format!(
                " network {} mask {}",
                lan.network(),
                lan.netmask()
            ));
        }
        // iBGP sessions: full mesh in small networks; hub-and-spoke via
        // route reflectors in large ones.
        let is_rr = plan.route_reflectors.contains(&r.loopback);
        for &lb in &plan.bgp_loopbacks {
            if lb == r.loopback {
                continue;
            }
            let session_wanted = plan.route_reflectors.is_empty()
                || is_rr
                || plan.route_reflectors.contains(&lb);
            if !session_wanted {
                continue;
            }
            out.push(format!(" neighbor {lb} remote-as {}", plan.asn));
            out.push(format!(" neighbor {lb} update-source Loopback0"));
            if is_rr && !plan.route_reflectors.contains(&lb) {
                out.push(format!(" neighbor {lb} route-reflector-client"));
            }
        }
        // eBGP peers with policy. Map names are fixed per peer here and
        // reused by the definitions below — referential integrity is a
        // property the validation suites check, so the generator must
        // produce it.
        let peer_maps: Vec<String> = r
            .peers
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                format!(
                    "{}-{}-{}",
                    p.carrier.to_uppercase(),
                    pick(rng, names::POLICY_WORDS),
                    pi
                )
            })
            .collect();
        for (pi, (p, map)) in r.peers.iter().zip(&peer_maps).enumerate() {
            out.push(format!(" neighbor {} remote-as {}", p.addr, p.asn));
            if rng.gen_bool(0.4) {
                out.push(format!(" neighbor {} prefix-list PL-{} in", p.addr, pi));
            }
            out.push_comment_line(format!(" neighbor {} description {} transit", p.addr, p.carrier));
            if rng.gen_bool(0.15) {
                // Legacy-AS migration: the session presents the old
                // public ASN via local-as (locator R15).
                out.push(format!(" neighbor {} local-as {}", p.addr, plan.asn.wrapping_add(7)));
            }
            out.push(format!(" neighbor {} route-map {map}-in in", p.addr));
            out.push(format!(" neighbor {} route-map {map}-out out", p.addr));
        }
        out.push("!".to_string());

        // Policy sections for each peer, reusing the attachment names.
        for (pi, (p, map)) in r.peers.iter().zip(&peer_maps).enumerate() {
            let aclnum = 100 + pi * 3;
            let aspath = 50 + pi;
            let commlist = 80 + pi;

            out.push(format!("route-map {map}-in deny 10"));
            out.push(format!(" match as-path {aspath}"));
            out.push(format!("route-map {map}-in permit 20"));
            out.push(format!(" set local-preference {}", 80 + pi * 10));
            out.push(format!(" set community {}:{}", plan.asn, 100 + pi));
            out.push(format!("route-map {map}-out permit 10"));
            out.push(format!(" match ip address {aclnum}"));
            if rng.gen_bool(0.4) {
                // Outbound traffic engineering: prepend our own ASN
                // (locator R08).
                out.push(format!(
                    " set as-path prepend {0} {0}",
                    plan.asn
                ));
            }
            if plan.features.compartmentalized && rng.gen_bool(0.3) {
                // VPN-ish route targets (locator R17).
                out.push(format!(" set extcommunity rt {}:{}", plan.asn, 400 + pi));
            }
            if plan.features.asn_alternation && rng.gen_bool(0.8) {
                let other = names::PEER_ASNS[(pi + 3) % names::PEER_ASNS.len()];
                truth.peer_asns.insert(other.to_string());
                out.push(format!(
                    "ip as-path access-list {aspath} permit (_{}_|_{}_)",
                    p.asn, other
                ));
            } else if plan.features.public_asn_ranges && p.asn >= 701 && p.asn <= 705 {
                // The UUNET block: a range regexp over public ASNs.
                for a in 701..=705u16 {
                    truth.peer_asns.insert(a.to_string());
                }
                out.push(format!(
                    "ip as-path access-list {aspath} permit _70[1-5]_"
                ));
            } else {
                out.push(format!(
                    "ip as-path access-list {aspath} permit _{}_",
                    p.asn
                ));
            }
            if plan.features.private_asn_ranges && rng.gen_bool(0.5) {
                out.push(format!(
                    "ip as-path access-list {} deny _6451[2-9]_",
                    aspath
                ));
            }
            if plan.features.community_regexps {
                if plan.features.community_ranges {
                    out.push(format!(
                        "ip community-list {commlist} permit {}:7[1-5]..",
                        p.asn
                    ));
                } else {
                    out.push(format!(
                        "ip community-list {commlist} permit {}:[0-9]+",
                        p.asn
                    ));
                }
            } else {
                out.push(format!(
                    "ip community-list {commlist} permit {}:{}",
                    p.asn,
                    7000 + pi
                ));
            }
            // A prefix-list admitting only our blocks from this peer
            // (exercises the R23 prefix-token rule on policy objects).
            if let Some(lan) = r.lans.first() {
                out.push(format!(
                    "ip prefix-list PL-{pi} seq 5 permit {lan} le 28"
                ));
            }
            out.push(format!("ip prefix-list PL-{pi} seq 10 deny 0.0.0.0/0 le 32"));
            // The export ACL covering our LANs.
            if let Some(lan) = r.lans.first() {
                out.push(format!(
                    "access-list {aclnum} permit ip {} {} any",
                    lan.network(),
                    WildcardMask::from_prefix_len(lan.len())
                ));
            } else {
                out.push(format!("access-list {aclnum} permit ip any any"));
            }
            out.push("!".to_string());
        }
    }

    // Compartmentalization markers (§6.3): NAT pools and probe-dropping.
    if plan.features.compartmentalized && matches!(r.role, RouterRole::Edge) {
        out.push(format!(
            "ip nat pool {}-pool {} {} netmask 255.255.255.0",
            corp,
            Ip::from_octets(10, 200, idx as u8, 1),
            Ip::from_octets(10, 200, idx as u8, 254),
        ));
        out.push("access-list 199 deny icmp any any traceroute".to_string());
        out.push("access-list 199 permit ip any any".to_string());
        out.push("!".to_string());
    }

    // Dual-stack static routes toward the core.
    if dual_stack && !r.interfaces.is_empty() {
        let block = plan.v6_block.expect("dual_stack implies block");
        let target = Ip6(block | ((idx as u128 & 0xFFFF) << 80) | 2);
        truth.v6_addresses.insert(target.to_string());
        out.push(format!("ipv6 route {}/48 {target}", Ip6(block)));
        out.push("!".to_string());
    }

    // Management plumbing.
    let snmp = format!("{}snmp{}", corp, rng.gen_range(10..99));
    truth.secrets.insert(snmp.clone());
    out.push(format!("snmp-server community {snmp} RO"));
    out.push(format!("snmp-server location {} pop", r.city));
    out.push(format!("ntp server {}", Ip::from_octets(192, 5, 41, 40)));
    if rng.gen_bool(0.1) {
        let ph = phone(rng);
        truth.phone_numbers.insert(ph.clone());
        out.push(format!("dialer string {ph}"));
    }
    out.push("line vty 0 4".to_string());
    out.push(format!(" password {secret}"));
    out.push(" login".to_string());
    out.push("!".to_string());

    // Filler toward the target length: static routes and ACL entries
    // into our own space (keeps the address census realistic).
    let mut filler_acl = 150;
    while out.len() + 1 < r.target_lines {
        match rng.gen_range(0..3) {
            0 => {
                let s = r
                    .lans
                    .first()
                    .copied()
                    .unwrap_or_else(|| Prefix::new(r.loopback, 24));
                let host = s.host(rng.gen_range(0..s.size().min(200)));
                truth.addresses.insert(host.to_string());
                out.push(format!(
                    "ip route {} 255.255.255.255 {}",
                    host,
                    r.interfaces
                        .first()
                        .map(|i| i.addr)
                        .unwrap_or(r.loopback)
                ));
            }
            1 => {
                // Ordinary (non-special) addresses only: loopback or
                // multicast hosts would legitimately pass through the
                // anonymizer unchanged and carry no identity anyway.
                let a = loop {
                    let cand = Ip(rng.gen::<u32>() & 0x7FFF_FFFF);
                    if confanon_netprim::special_kind(cand).is_none() {
                        break cand;
                    }
                };
                out.push(format!(
                    "access-list {filler_acl} deny ip host {a} any log"
                ));
                truth.addresses.insert(a.to_string());
                if rng.gen_bool(0.05) {
                    // Extended ACLs live in 100..=199; cycle within the
                    // filler sub-range.
                    filler_acl = 150 + (filler_acl - 149) % 49;
                }
            }
            _ => {
                out.push_comment_line(format!(
                    "! {} {} capacity notes - call {}",
                    pick(rng, names::CARRIERS),
                    r.city,
                    phone(rng)
                ));
            }
        }
    }
    out.push("end".to_string());

    // Record the carrier words the comment generator used.
    for w in out.carrier_words_used.drain(..) {
        truth.carrier_words.insert(w);
    }
    out.finish()
}

/// Classful containing network of `ip` (A → /8, B → /16, C → /24).
fn classful_network(ip: Ip) -> Ip {
    use confanon_netprim::AddrClass;
    let len = match ip.class() {
        AddrClass::A => 8,
        AddrClass::B => 16,
        _ => 24,
    };
    Prefix::new(ip, len).network()
}

/// Strips feature-set suffixes for the `version` line (`12.2(13)T` is the
/// image name; `version 12.2` is what configs carry).
fn strip_suffix(v: &str) -> &str {
    v.split('(').next().unwrap_or(v)
}

/// Line accumulator that occasionally injects comment lines to hit the
/// network's comment-word rate.
struct Lines {
    lines: Vec<String>,
    comment_rate: f64,
    corp: &'static str,
    /// Comment words injected so far / total words, tracked approximately.
    words: usize,
    comment_words: usize,
    carrier_words_used: Vec<String>,
    /// Cheap deterministic counter-based injection (no RNG needed here).
    tick: usize,
}

impl Lines {
    fn new(comment_rate: f64, corp: &'static str) -> Lines {
        Lines {
            lines: Vec::new(),
            comment_rate,
            corp,
            words: 0,
            comment_words: 0,
            carrier_words_used: Vec::new(),
            tick: 0,
        }
    }

    fn len(&self) -> usize {
        self.lines.len()
    }

    fn push(&mut self, line: String) {
        self.words += line.split_whitespace().count();
        self.lines.push(line);
        self.maybe_comment();
    }

    /// Whether the comment budget allows `extra` more comment words.
    /// Keeps the realized comment fraction at or below the network's
    /// sampled rate (the injector in `maybe_comment` tops it up from
    /// below, so per-network fractions converge to the rate).
    fn budget_allows(&self, extra: usize) -> bool {
        (self.comment_words + extra) as f64 <= self.comment_rate * (self.words + extra) as f64
    }

    /// Pushes a line that is itself comment-ish (descriptions) if the
    /// budget allows; returns whether it was emitted.
    fn push_comment_line(&mut self, line: String) -> bool {
        let w = line.split_whitespace().count();
        if !self.budget_allows(w) {
            return false;
        }
        self.words += w;
        self.comment_words += w;
        self.lines.push(line);
        true
    }

    /// Unconditionally pushes a comment-ish line (banner bodies: the
    /// block-level decision already consulted the budget).
    fn force_comment_line(&mut self, line: String) {
        let w = line.split_whitespace().count();
        self.words += w;
        self.comment_words += w;
        self.lines.push(line);
    }

    /// Injects `!` comment lines to steer toward the target rate.
    fn maybe_comment(&mut self) {
        let carrier = names::CARRIERS[self.tick % names::CARRIERS.len()];
        let line = format!("! {} circuit via {carrier} - ask {} noc", self.corp, carrier);
        let w = line.split_whitespace().count();
        if self.budget_allows(w) {
            self.tick += 1;
            self.words += w;
            self.comment_words += w;
            self.carrier_words_used.push(carrier.to_string());
            self.lines.push(line);
        }
    }

    fn finish(self) -> String {
        let mut s = self.lines.join("\n");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::NetworkFeatures;
    use crate::topo::{plan_network, NetworkProfile};
    use confanon_testkit::rng::{SeedableRng, StdRng};

    fn emit_one(features: NetworkFeatures) -> (String, GroundTruth) {
        let mut rng = StdRng::seed_from_u64(31);
        let plan = plan_network(&mut rng, 0, NetworkProfile::Backbone, 12, features);
        let mut truth = plan.truth.clone();
        let cfg = emit_router(&plan, 0, &mut rng, &mut truth);
        (cfg, truth)
    }

    #[test]
    fn emits_core_sections() {
        let (cfg, _) = emit_one(NetworkFeatures::default());
        assert!(cfg.contains("hostname cr1."));
        assert!(cfg.contains("interface Loopback0"));
        assert!(cfg.contains("router bgp"));
        assert!(cfg.lines().count() >= 50);
        assert!(cfg.ends_with("end\n"));
    }

    #[test]
    fn interfaces_carry_addresses() {
        let (cfg, truth) = emit_one(NetworkFeatures::default());
        let addr_lines = cfg.lines().filter(|l| l.trim().starts_with("ip address")).count();
        assert!(addr_lines >= 3);
        assert!(!truth.addresses.is_empty());
    }

    #[test]
    fn alternation_feature_plants_alternation() {
        let f = NetworkFeatures {
            asn_alternation: true,
            ..Default::default()
        };
        let (cfg, _) = emit_one(f);
        assert!(
            cfg.contains("permit (_") || cfg.contains("_|_"),
            "no alternation regexp:\n{cfg}"
        );
    }

    #[test]
    fn community_range_feature_plants_range_pattern() {
        let f = NetworkFeatures {
            community_regexps: true,
            community_ranges: true,
            ..Default::default()
        };
        let (cfg, _) = emit_one(f);
        assert!(cfg.contains(":7[1-5].."), "{cfg}");
    }

    #[test]
    fn compartmentalization_markers_present() {
        let mut rng = StdRng::seed_from_u64(77);
        let f = NetworkFeatures {
            compartmentalized: true,
            ..Default::default()
        };
        let plan = plan_network(&mut rng, 1, NetworkProfile::Enterprise, 10, f);
        let mut truth = plan.truth.clone();
        // Find an edge router.
        let edge = plan
            .routers
            .iter()
            .position(|r| r.role == RouterRole::Edge)
            .unwrap();
        let cfg = emit_router(&plan, edge, &mut rng, &mut truth);
        assert!(cfg.contains("ip nat pool"));
        assert!(cfg.contains("deny icmp any any traceroute"));
    }

    #[test]
    fn classful_network_by_class() {
        assert_eq!(classful_network("10.5.6.7".parse().unwrap()).to_string(), "10.0.0.0");
        assert_eq!(
            classful_network("172.20.6.7".parse().unwrap()).to_string(),
            "172.20.0.0"
        );
        assert_eq!(
            classful_network("192.168.6.7".parse().unwrap()).to_string(),
            "192.168.6.0"
        );
    }

    #[test]
    fn target_lines_respected_approximately() {
        let mut rng = StdRng::seed_from_u64(55);
        let plan = plan_network(
            &mut rng,
            2,
            NetworkProfile::Backbone,
            8,
            NetworkFeatures::default(),
        );
        let mut truth = plan.truth.clone();
        for (i, r) in plan.routers.iter().enumerate() {
            let cfg = emit_router(&plan, i, &mut rng, &mut truth);
            let lines = cfg.lines().count();
            // Must reach the target unless the base config already
            // overshoots it.
            assert!(
                lines + 5 >= r.target_lines.min(10_000) || lines >= r.target_lines,
                "{}: {lines} vs target {}",
                r.hostname,
                r.target_lines
            );
        }
    }

    #[test]
    fn ground_truth_is_superset_of_planted_leaks() {
        let (cfg, truth) = emit_one(NetworkFeatures::default());
        // The snmp community string planted must be in truth.
        let snmp_line = cfg
            .lines()
            .find(|l| l.starts_with("snmp-server community"))
            .unwrap();
        let community = snmp_line.split_whitespace().nth(2).unwrap();
        assert!(truth.secrets.contains(community), "{community}");
    }
}
