//! Per-network feature flags, matched to the paper's incidence counts.
//!
//! §4.4: digit wildcards/ranges over public ASNs in 2 of 31 networks,
//! over private ASNs in 3 of 31, alternation in 10 of 31. §4.5: community
//! regexps in 5 of 31, with range expressions in 2 of those. §6.3:
//! internal compartmentalization in 10 of 31.

use confanon_testkit::rng::{Rng, SliceRandom};

/// Which policy-language features a network's configs exercise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkFeatures {
    /// Range/wildcard regexps over *public* ASNs (paper: 2/31).
    pub public_asn_ranges: bool,
    /// Range regexps over *private* ASNs (paper: 3/31).
    pub private_asn_ranges: bool,
    /// Alternation regexps over ASNs (paper: 10/31).
    pub asn_alternation: bool,
    /// Community regexps at all (paper: 5/31).
    pub community_regexps: bool,
    /// Community regexps with ranges (paper: 2/31, subset of the above).
    pub community_ranges: bool,
    /// Internal compartmentalization: NAT splits, probe-dropping ACLs
    /// (paper: 10/31).
    pub compartmentalized: bool,
}

/// Counts over a dataset (for the census experiment E4/E14).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeatureCensus {
    /// Networks in the dataset.
    pub networks: usize,
    /// Count with [`NetworkFeatures::public_asn_ranges`].
    pub public_asn_ranges: usize,
    /// Count with [`NetworkFeatures::private_asn_ranges`].
    pub private_asn_ranges: usize,
    /// Count with [`NetworkFeatures::asn_alternation`].
    pub asn_alternation: usize,
    /// Count with [`NetworkFeatures::community_regexps`].
    pub community_regexps: usize,
    /// Count with [`NetworkFeatures::community_ranges`].
    pub community_ranges: usize,
    /// Count with [`NetworkFeatures::compartmentalized`].
    pub compartmentalized: usize,
}

impl FeatureCensus {
    /// Tallies a set of per-network features.
    pub fn tally(features: &[NetworkFeatures]) -> FeatureCensus {
        FeatureCensus {
            networks: features.len(),
            public_asn_ranges: features.iter().filter(|f| f.public_asn_ranges).count(),
            private_asn_ranges: features.iter().filter(|f| f.private_asn_ranges).count(),
            asn_alternation: features.iter().filter(|f| f.asn_alternation).count(),
            community_regexps: features.iter().filter(|f| f.community_regexps).count(),
            community_ranges: features.iter().filter(|f| f.community_ranges).count(),
            compartmentalized: features.iter().filter(|f| f.compartmentalized).count(),
        }
    }
}

/// Assigns features to `n` networks with incidence scaled from the
/// paper's 31-network counts (exact when `n == 31`).
pub fn assign_features<R: Rng>(rng: &mut R, n: usize) -> Vec<NetworkFeatures> {
    let scale = |count31: usize| -> usize {
        if n == 31 {
            count31
        } else {
            ((count31 * n) as f64 / 31.0).round() as usize
        }
    };

    let mut features = vec![NetworkFeatures::default(); n];

    // Each feature gets an independent shuffled assignment so features
    // overlap the way independent adoption would.
    fn mark<R: Rng>(
        rng: &mut R,
        features: &mut [NetworkFeatures],
        k: usize,
        f: impl Fn(&mut NetworkFeatures),
    ) {
        let mut order: Vec<usize> = (0..features.len()).collect();
        order.shuffle(rng);
        for &i in order.iter().take(k.min(features.len())) {
            f(&mut features[i]);
        }
    }

    mark(rng, &mut features, scale(2), |f| f.public_asn_ranges = true);
    mark(rng, &mut features, scale(3), |f| f.private_asn_ranges = true);
    mark(rng, &mut features, scale(10), |f| f.asn_alternation = true);
    mark(rng, &mut features, scale(10), |f| f.compartmentalized = true);

    // Community regexps: 5 networks, 2 of which use ranges.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    for (j, &i) in order.iter().take(scale(5)).enumerate() {
        features[i].community_regexps = true;
        if j < scale(2) {
            features[i].community_ranges = true;
        }
    }

    features
}

#[cfg(test)]
mod tests {
    use super::*;
    use confanon_testkit::rng::{SeedableRng, StdRng};

    #[test]
    fn exact_at_31_networks() {
        let mut rng = StdRng::seed_from_u64(9);
        let f = assign_features(&mut rng, 31);
        let c = FeatureCensus::tally(&f);
        assert_eq!(c.networks, 31);
        assert_eq!(c.public_asn_ranges, 2);
        assert_eq!(c.private_asn_ranges, 3);
        assert_eq!(c.asn_alternation, 10);
        assert_eq!(c.community_regexps, 5);
        assert_eq!(c.community_ranges, 2);
        assert_eq!(c.compartmentalized, 10);
    }

    #[test]
    fn community_ranges_subset_of_community_regexps() {
        let mut rng = StdRng::seed_from_u64(10);
        for f in assign_features(&mut rng, 31) {
            if f.community_ranges {
                assert!(f.community_regexps);
            }
        }
    }

    #[test]
    fn scales_for_other_sizes() {
        let mut rng = StdRng::seed_from_u64(11);
        let f = assign_features(&mut rng, 62);
        let c = FeatureCensus::tally(&f);
        assert_eq!(c.asn_alternation, 20);
        assert_eq!(c.community_regexps, 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = assign_features(&mut StdRng::seed_from_u64(5), 31);
        let b = assign_features(&mut StdRng::seed_from_u64(5), 31);
        assert_eq!(a, b);
    }

    #[test]
    fn small_n_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(6);
        let f = assign_features(&mut rng, 2);
        assert_eq!(f.len(), 2);
    }
}
