//! The IOS-version quirk matrix.
//!
//! "The routers in our dataset run over 200 different IOS versions" and
//! "small, but syntactically significant changes occur between Cisco IOS
//! versions" (§3.1). We generate version strings from a train × release ×
//! rebuild × feature-set grid (well over 200 combinations) and derive the
//! syntax quirks deterministically from the string, so two routers on the
//! same version always agree.

use confanon_testkit::rng::Rng;

/// Syntax differences the emitter honours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionQuirks {
    /// The version string for the `version` line (e.g. `12.2(13)T1`).
    pub version: String,
    /// Banner delimiter this operator/IOS combination uses.
    pub banner_delim: &'static str,
    /// Interface naming: `Ethernet` vs `FastEthernet` vs `GigabitEthernet`.
    pub fast_interfaces: bool,
    /// Gigabit interfaces available (12.2+).
    pub gig_interfaces: bool,
    /// Emits `ip classless` (11.3+ default-on, printed explicitly by some
    /// trains).
    pub emits_ip_classless: bool,
    /// Emits `bgp log-neighbor-changes` inside `router bgp`.
    pub emits_bgp_log_neighbor: bool,
    /// Uses `ip subnet-zero` line.
    pub emits_subnet_zero: bool,
    /// Writes no `service timestamps` lines (very old trains).
    pub ancient: bool,
}

/// The release trains we draw from.
const TRAINS: &[(u8, u8)] = &[
    (11, 0),
    (11, 1),
    (11, 2),
    (11, 3),
    (12, 0),
    (12, 1),
    (12, 2),
    (12, 3),
    (12, 4),
];

/// Feature-set suffixes.
const SUFFIXES: &[&str] = &["", "T", "S", "E", "T1", "S2", "E3", "M"];

/// Deterministically derives quirks from train/release/suffix choices.
pub fn sample_version<R: Rng>(rng: &mut R) -> VersionQuirks {
    let (major, minor) = TRAINS[rng.gen_range(0..TRAINS.len())];
    let release = rng.gen_range(1..=25u8);
    let suffix = SUFFIXES[rng.gen_range(0..SUFFIXES.len())];
    let version = format!("{major}.{minor}({release}){suffix}");

    let modernity = u32::from(major) * 10 + u32::from(minor); // 110..=124
    // Banner delimiter varies by operator habit; keyed off the release so
    // it is stable per version string.
    let banner_delim = match release % 4 {
        0 => "^C",
        1 => "#",
        2 => "~",
        _ => "@",
    };
    VersionQuirks {
        banner_delim,
        fast_interfaces: modernity >= 113,
        gig_interfaces: modernity >= 122,
        emits_ip_classless: modernity >= 113,
        emits_bgp_log_neighbor: modernity >= 120,
        emits_subnet_zero: modernity >= 120 && release % 2 == 0,
        ancient: modernity < 112,
        version,
    }
}

/// Upper bound on distinct version strings the grid can produce
/// (trains × releases × suffixes).
pub fn grid_size() -> usize {
    TRAINS.len() * 25 * SUFFIXES.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use confanon_testkit::rng::{SeedableRng, StdRng};
    use std::collections::HashSet;

    #[test]
    fn grid_exceeds_two_hundred() {
        assert!(grid_size() > 200, "{}", grid_size());
    }

    #[test]
    fn sampling_reaches_two_hundred_distinct_versions() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        for _ in 0..5000 {
            seen.insert(sample_version(&mut rng).version);
        }
        assert!(seen.len() > 200, "only {} distinct versions", seen.len());
    }

    #[test]
    fn quirks_are_deterministic_per_string() {
        // Two samples yielding the same version string must agree on all
        // quirks (quirks derive from the string's components).
        let mut rng = StdRng::seed_from_u64(2);
        let mut by_version = std::collections::HashMap::new();
        for _ in 0..3000 {
            let q = sample_version(&mut rng);
            if let Some(prev) = by_version.insert(q.version.clone(), q.clone()) {
                assert_eq!(prev, q, "quirks diverged for {}", q.version);
            }
        }
    }

    #[test]
    fn modern_trains_have_modern_features() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let q = sample_version(&mut rng);
            if q.gig_interfaces {
                assert!(q.fast_interfaces, "{}", q.version);
                assert!(q.emits_ip_classless);
            }
            if q.ancient {
                assert!(!q.emits_bgp_log_neighbor);
            }
        }
    }
}
