//! # confanon-iosparse — a tolerant token/line model of IOS configurations
//!
//! The paper is explicit that a grammar-driven parser is the *wrong* tool:
//! no complete public grammar exists, 200+ IOS versions coexist in one
//! network, and only a small fraction of commands matter for research
//! (§3.1). The anonymizer therefore works on a token stream. This crate
//! provides:
//!
//! * [`token`] — whitespace-preserving line tokenization plus the paper's
//!   two *word segmentation* rules (§4.2): `Ethernet0/0` splits into the
//!   alphabetic token `Ethernet` (checked against the pass-list) and the
//!   non-alphabetic remainder `0/0` (never anonymized);
//! * [`line`](mod@line) — line classification with the stateful banner scanner
//!   (multi-line `banner motd ^C … ^C` blocks, `!` comments,
//!   `description`/`remark` free text);
//! * [`config`] — the config as a list of classified lines plus an
//!   indentation-based section view;
//! * [`commands`] — typed recognizers for the commands the *validation*
//!   suites need (interfaces, addresses, routing processes, BGP neighbors,
//!   route-maps, filter lists). The anonymizer itself never requires these;
//!   they exist so pre/post comparisons can be computed the same way the
//!   paper's colleague-run test suites did (§5).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod commands;
pub mod config;
pub mod line;
pub mod token;

pub use commands::{parse_command, Action, Command, Direction};
pub use config::{Config, Section};
pub use line::{banner_delimiter, banner_self_closes, classify_lines, LineKind};
pub use token::{
    rebuild, rebuild_sparse, segment, segment_chars, tokenize, tokenize_chars, Segment, Token,
    BYTE_CLASS, CLASS_ALPHA, CLASS_DIGIT, CLASS_WS,
};
