//! The configuration file model: raw lines plus a section view.
//!
//! IOS configs are flat text with one-space indentation marking mode
//! context (`router bgp 1111` followed by ` neighbor … remote-as 701`).
//! The anonymizer never needs the hierarchy — that robustness is the
//! paper's point — but the validation and design-extraction crates do, so
//! [`Config::sections`] groups each top-level command with its indented
//! children.

use crate::line::{classify_lines, LineKind};

/// A router configuration: raw lines plus cached per-line classification.
#[derive(Debug, Clone)]
pub struct Config {
    lines: Vec<String>,
    kinds: Vec<LineKind>,
}

impl Config {
    /// Parses a config from text. Never fails: unknown constructs are
    /// simply lines (tolerance across 200+ IOS versions is a requirement,
    /// §3.1).
    pub fn parse(text: &str) -> Config {
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let kinds = classify_lines(&lines);
        Config { lines, kinds }
    }

    /// Builds a config from pre-split lines.
    pub fn from_lines(lines: Vec<String>) -> Config {
        let kinds = classify_lines(&lines);
        Config { lines, kinds }
    }

    /// The raw lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The classification of each line (parallel to [`Config::lines`]).
    pub fn kinds(&self) -> &[LineKind] {
        &self.kinds
    }

    /// Renders back to text (joined with `\n`, trailing newline included).
    pub fn to_text(&self) -> String {
        let mut s = self.lines.join("\n");
        s.push('\n');
        s
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True for an empty config.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Groups the config into top-level sections: each unindented command
    /// line starts a section containing every following indented line.
    /// Comments, blanks, and banner bodies break sections but belong to
    /// none.
    pub fn sections(&self) -> Vec<Section<'_>> {
        let mut out: Vec<Section<'_>> = Vec::new();
        let mut current: Option<Section<'_>> = None;
        for (i, line) in self.lines.iter().enumerate() {
            match self.kinds[i] {
                LineKind::Command => {
                    let indented = line.starts_with(' ') || line.starts_with('\t');
                    if indented {
                        if let Some(sec) = &mut current {
                            sec.children.push(line.as_str());
                            continue;
                        }
                        // Indented line with no open section: treat as its
                        // own headless section so nothing is lost.
                    }
                    if let Some(sec) = current.take() {
                        out.push(sec);
                    }
                    current = Some(Section {
                        header: line.as_str(),
                        start_line: i,
                        children: Vec::new(),
                    });
                }
                LineKind::FreeText => {
                    // Free text (descriptions) is always a child when a
                    // section is open.
                    if let Some(sec) = &mut current {
                        sec.children.push(line.as_str());
                    }
                }
                _ => {
                    if let Some(sec) = current.take() {
                        out.push(sec);
                    }
                }
            }
        }
        if let Some(sec) = current.take() {
            out.push(sec);
        }
        out
    }
}

/// A top-level command with its indented child lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section<'a> {
    /// The unindented section-opening line.
    pub header: &'a str,
    /// Index of the header within [`Config::lines`].
    pub start_line: usize,
    /// The indented lines belonging to the section, in order.
    pub children: Vec<&'a str>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
hostname cr1.lax.foo.com
!
interface Ethernet0
 description Foo Corp's LAX Main St offices
 ip address 1.1.1.1 255.255.255.0
!
router bgp 1111
 redistribute rip
 neighbor 12.126.236.17 remote-as 701
!
router rip
 network 1.0.0.0
";

    #[test]
    fn parse_round_trips_text() {
        let cfg = Config::parse(SAMPLE);
        assert_eq!(cfg.to_text(), SAMPLE);
        assert_eq!(cfg.len(), 12);
    }

    #[test]
    fn sections_group_children() {
        let cfg = Config::parse(SAMPLE);
        let secs = cfg.sections();
        let headers: Vec<&str> = secs.iter().map(|s| s.header).collect();
        assert_eq!(
            headers,
            [
                "hostname cr1.lax.foo.com",
                "interface Ethernet0",
                "router bgp 1111",
                "router rip"
            ]
        );
        assert_eq!(secs[1].children.len(), 2);
        assert_eq!(secs[2].children.len(), 2);
        assert_eq!(secs[3].children, [" network 1.0.0.0"]);
    }

    #[test]
    fn comments_split_sections() {
        let cfg = Config::parse("interface e0\n ip address 1.1.1.1 255.0.0.0\n!\n shutdown\n");
        let secs = cfg.sections();
        // The indented `shutdown` after the `!` must not attach to the
        // interface.
        assert_eq!(secs[0].children.len(), 1);
    }

    #[test]
    fn banner_bodies_are_not_sections() {
        let cfg = Config::parse("banner motd ^C\ninterface fake\n^C\nhostname r1\n");
        let secs = cfg.sections();
        let headers: Vec<&str> = secs.iter().map(|s| s.header).collect();
        // Banner lines (header and body) never form or join sections.
        assert_eq!(headers, ["hostname r1"]);
    }

    #[test]
    fn empty_config() {
        let cfg = Config::parse("");
        assert!(cfg.is_empty());
        assert!(cfg.sections().is_empty());
    }

    #[test]
    fn headless_indented_line_survives() {
        let cfg = Config::parse("!\n shutdown\n");
        let secs = cfg.sections();
        assert_eq!(secs.len(), 1);
        assert_eq!(secs[0].header.trim(), "shutdown");
    }
}
