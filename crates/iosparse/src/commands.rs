//! Typed recognizers for the commands the validation suites consume.
//!
//! The anonymizer does *not* use these — its robustness comes from
//! operating "across commands mostly without grammatical or semantic
//! discrimination" (paper §3.1). But the paper's validation methodology
//! (§5) compares pre/post properties such as the number of BGP speakers,
//! the number of interfaces, and the extracted routing design, and those
//! comparisons need structured views of a handful of commands. Unknown or
//! malformed lines parse to [`Command::Other`], never an error.

use confanon_netprim::{Ip, Ip6, Netmask, WildcardMask};

use crate::token::tokenize;

/// Route-map / filter actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// `permit`
    Permit,
    /// `deny`
    Deny,
}

/// Direction of a BGP neighbor policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `in`
    In,
    /// `out`
    Out,
}

/// A structurally recognized configuration command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `hostname <name>`
    Hostname(String),
    /// `interface <name>`
    Interface(String),
    /// `ip address <addr> <mask>` (inside an interface)
    IpAddress { addr: Ip, mask: Netmask },
    /// `ipv6 address <addr>/<len>` (inside an interface; extension)
    Ipv6Address {
        /// The interface address.
        addr: Ip6,
        /// Prefix length.
        len: u8,
    },
    /// `shutdown`
    Shutdown,
    /// `router bgp <asn>`
    RouterBgp(u32),
    /// `router ospf <pid>`
    RouterOspf(u32),
    /// `router rip`
    RouterRip,
    /// `router eigrp <asn>`
    RouterEigrp(u32),
    /// `neighbor <ip> remote-as <asn>`
    NeighborRemoteAs { peer: Ip, asn: u32 },
    /// `neighbor <ip> route-map <name> in|out`
    NeighborRouteMap {
        /// Peer address.
        peer: Ip,
        /// Route-map name.
        map: String,
        /// Policy direction.
        dir: Direction,
    },
    /// `network <addr>` (classful, RIP/EIGRP style)
    NetworkClassful(Ip),
    /// `network <addr> <wildcard> area <area>` (OSPF style)
    NetworkOspf {
        /// Network address.
        addr: Ip,
        /// Wildcard mask.
        wildcard: WildcardMask,
        /// OSPF area.
        area: u32,
    },
    /// `network <addr> mask <mask>` (BGP style)
    NetworkBgp {
        /// Network address.
        addr: Ip,
        /// Mask.
        mask: Netmask,
    },
    /// `redistribute <protocol>`
    Redistribute(String),
    /// `route-map <name> permit|deny <seq>`
    RouteMap {
        /// Route-map name.
        name: String,
        /// Permit or deny.
        action: Action,
        /// Sequence number.
        seq: u32,
    },
    /// `match ip address <acl>…`
    MatchIpAddress(Vec<u32>),
    /// `match as-path <list>…`
    MatchAsPath(Vec<u32>),
    /// `match community <list>…`
    MatchCommunity(Vec<u32>),
    /// `set community <asn>:<value>…`
    SetCommunity(Vec<String>),
    /// `set local-preference <value>`
    SetLocalPreference(u32),
    /// `access-list <num> permit|deny ip <addr> <wildcard>` (and simpler
    /// single-address forms)
    AccessList {
        /// List number.
        num: u32,
        /// Permit or deny.
        action: Action,
        /// Matched address, if present.
        addr: Option<Ip>,
        /// Wildcard, if present.
        wildcard: Option<WildcardMask>,
    },
    /// `ip as-path access-list <num> permit|deny <regexp>`
    AsPathAccessList {
        /// List number.
        num: u32,
        /// Permit or deny.
        action: Action,
        /// The regular expression text.
        regex: String,
    },
    /// `ip community-list <num> permit|deny <pattern>`
    CommunityList {
        /// List number.
        num: u32,
        /// Permit or deny.
        action: Action,
        /// Community pattern (literal or regexp).
        pattern: String,
    },
    /// `ip prefix-list <name> seq <n> permit|deny <prefix>`
    PrefixList {
        /// List name.
        name: String,
        /// Permit or deny.
        action: Action,
        /// The prefix text (left raw; netprim parses it downstream).
        prefix: String,
    },
    /// `snmp-server community <string> …`
    SnmpCommunity(String),
    /// Anything else.
    Other,
}

/// Parses one line into a [`Command`]. Total: unknown lines yield
/// [`Command::Other`].
pub fn parse_command(line: &str) -> Command {
    let toks = tokenize(line);
    let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
    parse_tokens(&texts)
}

fn action(tok: &str) -> Option<Action> {
    match tok {
        "permit" => Some(Action::Permit),
        "deny" => Some(Action::Deny),
        _ => None,
    }
}

fn parse_tokens(t: &[&str]) -> Command {
    match t {
        ["hostname", name, ..] => Command::Hostname((*name).to_string()),
        ["interface", rest @ ..] if !rest.is_empty() => Command::Interface(rest.join(" ")),
        ["ip", "address", a, m, ..] => match (a.parse(), m.parse()) {
            (Ok(addr), Ok(mask)) => Command::IpAddress { addr, mask },
            _ => Command::Other,
        },
        ["ipv6", "address", a, ..] => match a.rsplit_once('/') {
            Some((addr, len)) => match (addr.parse(), len.parse::<u8>()) {
                (Ok(addr), Ok(len)) if len <= 128 => Command::Ipv6Address { addr, len },
                _ => Command::Other,
            },
            None => Command::Other,
        },
        ["shutdown"] => Command::Shutdown,
        ["router", "bgp", asn, ..] => num(asn).map_or(Command::Other, Command::RouterBgp),
        ["router", "ospf", pid, ..] => num(pid).map_or(Command::Other, Command::RouterOspf),
        ["router", "rip", ..] => Command::RouterRip,
        ["router", "eigrp", asn, ..] => num(asn).map_or(Command::Other, Command::RouterEigrp),
        ["neighbor", peer, "remote-as", asn, ..] => match (peer.parse(), num(asn)) {
            (Ok(peer), Some(asn)) => Command::NeighborRemoteAs { peer, asn },
            _ => Command::Other,
        },
        ["neighbor", peer, "route-map", map, dir, ..] => {
            let d = match *dir {
                "in" => Some(Direction::In),
                "out" => Some(Direction::Out),
                _ => None,
            };
            match (peer.parse(), d) {
                (Ok(peer), Some(dir)) => Command::NeighborRouteMap {
                    peer,
                    map: (*map).to_string(),
                    dir,
                },
                _ => Command::Other,
            }
        }
        ["network", a, w, "area", area, ..] => match (a.parse(), w.parse(), num(area)) {
            (Ok(addr), Ok(wildcard), Some(area)) => Command::NetworkOspf {
                addr,
                wildcard,
                area,
            },
            _ => Command::Other,
        },
        ["network", a, "mask", m, ..] => match (a.parse(), m.parse()) {
            (Ok(addr), Ok(mask)) => Command::NetworkBgp { addr, mask },
            _ => Command::Other,
        },
        ["network", a] => a.parse().map_or(Command::Other, Command::NetworkClassful),
        ["redistribute", proto, ..] => Command::Redistribute((*proto).to_string()),
        ["route-map", name, act, seq, ..] => match (action(act), num(seq)) {
            (Some(action), Some(seq)) => Command::RouteMap {
                name: (*name).to_string(),
                action,
                seq,
            },
            _ => Command::Other,
        },
        ["match", "ip", "address", rest @ ..] => {
            Command::MatchIpAddress(rest.iter().filter_map(|s| num(s)).collect())
        }
        ["match", "as-path", rest @ ..] => {
            Command::MatchAsPath(rest.iter().filter_map(|s| num(s)).collect())
        }
        ["match", "community", rest @ ..] => {
            Command::MatchCommunity(rest.iter().filter_map(|s| num(s)).collect())
        }
        ["set", "community", rest @ ..] if !rest.is_empty() => {
            Command::SetCommunity(rest.iter().map(|s| (*s).to_string()).collect())
        }
        ["set", "local-preference", v, ..] => {
            num(v).map_or(Command::Other, Command::SetLocalPreference)
        }
        ["access-list", n, act, rest @ ..] => match (num(n), action(act)) {
            (Some(num), Some(action)) => {
                // Accept `… ip <addr> <wildcard> …`, `… <addr> <wildcard>`,
                // and `… host <addr>` / `… <addr>` forms.
                let rest: Vec<&str> = rest
                    .iter()
                    .copied()
                    .filter(|s| !matches!(*s, "ip" | "tcp" | "udp" | "host" | "any"))
                    .collect();
                let addr = rest.first().and_then(|s| s.parse().ok());
                let wildcard = rest.get(1).and_then(|s| s.parse().ok());
                Command::AccessList {
                    num,
                    action,
                    addr,
                    wildcard,
                }
            }
            _ => Command::Other,
        },
        ["ip", "as-path", "access-list", n, act, rest @ ..] if !rest.is_empty() => {
            match (num(n), action(act)) {
                (Some(num), Some(action)) => Command::AsPathAccessList {
                    num,
                    action,
                    regex: rest.join(" "),
                },
                _ => Command::Other,
            }
        }
        ["ip", "community-list", n, act, rest @ ..] if !rest.is_empty() => {
            match (num(n), action(act)) {
                (Some(num), Some(action)) => Command::CommunityList {
                    num,
                    action,
                    pattern: rest.join(" "),
                },
                _ => Command::Other,
            }
        }
        ["ip", "prefix-list", name, "seq", _, act, pfx, ..] => match action(act) {
            Some(action) => Command::PrefixList {
                name: (*name).to_string(),
                action,
                prefix: (*pfx).to_string(),
            },
            None => Command::Other,
        },
        ["snmp-server", "community", s, ..] => Command::SnmpCommunity((*s).to_string()),
        _ => Command::Other,
    }
}

fn num(s: &str) -> Option<u32> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_lines_parse() {
        assert_eq!(
            parse_command("hostname cr1.lax.foo.com"),
            Command::Hostname("cr1.lax.foo.com".into())
        );
        assert_eq!(
            parse_command("interface Serial1/0.5 point-to-point"),
            Command::Interface("Serial1/0.5 point-to-point".into())
        );
        assert_eq!(
            parse_command(" ip address 1.1.1.1 255.255.255.0"),
            Command::IpAddress {
                addr: "1.1.1.1".parse().unwrap(),
                mask: "255.255.255.0".parse().unwrap()
            }
        );
        assert_eq!(parse_command("router bgp 1111"), Command::RouterBgp(1111));
        assert_eq!(
            parse_command(" neighbor 12.126.236.17 remote-as 701"),
            Command::NeighborRemoteAs {
                peer: "12.126.236.17".parse().unwrap(),
                asn: 701
            }
        );
        assert_eq!(
            parse_command(" neighbor 12.126.236.17 route-map UUNET-import in"),
            Command::NeighborRouteMap {
                peer: "12.126.236.17".parse().unwrap(),
                map: "UUNET-import".into(),
                dir: Direction::In
            }
        );
        assert_eq!(
            parse_command("route-map UUNET-import deny 10"),
            Command::RouteMap {
                name: "UUNET-import".into(),
                action: Action::Deny,
                seq: 10
            }
        );
        assert_eq!(parse_command(" match as-path 50"), Command::MatchAsPath(vec![50]));
        assert_eq!(
            parse_command(" match community 100"),
            Command::MatchCommunity(vec![100])
        );
        assert_eq!(
            parse_command(" set community 701:120"),
            Command::SetCommunity(vec!["701:120".into()])
        );
        assert_eq!(
            parse_command("access-list 143 permit ip 1.1.1.0 0.0.0.255"),
            Command::AccessList {
                num: 143,
                action: Action::Permit,
                addr: Some("1.1.1.0".parse().unwrap()),
                wildcard: Some("0.0.0.255".parse().unwrap()),
            }
        );
        assert_eq!(
            parse_command("ip community-list 100 permit 701:7[1-5].."),
            Command::CommunityList {
                num: 100,
                action: Action::Permit,
                pattern: "701:7[1-5]..".into()
            }
        );
        assert_eq!(
            parse_command("ip as-path access-list 50 permit (_1239_|_70[2-5]_)"),
            Command::AsPathAccessList {
                num: 50,
                action: Action::Permit,
                regex: "(_1239_|_70[2-5]_)".into()
            }
        );
        assert_eq!(parse_command("router rip"), Command::RouterRip);
        assert_eq!(
            parse_command(" network 1.0.0.0"),
            Command::NetworkClassful("1.0.0.0".parse().unwrap())
        );
    }

    #[test]
    fn ipv6_address_form() {
        assert_eq!(
            parse_command(" ipv6 address 2001:db8:1::1/64"),
            Command::Ipv6Address {
                addr: "2001:db8:1::1".parse().unwrap(),
                len: 64
            }
        );
        assert_eq!(parse_command(" ipv6 address autoconfig"), Command::Other);
        assert_eq!(parse_command(" ipv6 address 2001:db8::1/200"), Command::Other);
    }

    #[test]
    fn ospf_and_bgp_network_forms() {
        assert_eq!(
            parse_command(" network 10.1.0.0 0.0.255.255 area 0"),
            Command::NetworkOspf {
                addr: "10.1.0.0".parse().unwrap(),
                wildcard: "0.0.255.255".parse().unwrap(),
                area: 0
            }
        );
        assert_eq!(
            parse_command(" network 10.1.0.0 mask 255.255.0.0"),
            Command::NetworkBgp {
                addr: "10.1.0.0".parse().unwrap(),
                mask: "255.255.0.0".parse().unwrap()
            }
        );
    }

    #[test]
    fn malformed_lines_are_other_not_errors() {
        for l in [
            "ip address banana split",
            "router bgp notanumber",
            "neighbor x.y.z.w remote-as 1",
            "route-map X permit notseq",
            "",
            "some future command we have never seen",
        ] {
            assert_eq!(parse_command(l), Command::Other, "{l:?}");
        }
    }

    #[test]
    fn snmp_and_prefix_list() {
        assert_eq!(
            parse_command("snmp-server community s3cr3t RO"),
            Command::SnmpCommunity("s3cr3t".into())
        );
        assert_eq!(
            parse_command("ip prefix-list CUST seq 5 permit 10.0.0.0/8"),
            Command::PrefixList {
                name: "CUST".into(),
                action: Action::Permit,
                prefix: "10.0.0.0/8".into()
            }
        );
    }

    #[test]
    fn access_list_host_form() {
        assert_eq!(
            parse_command("access-list 10 permit host 1.2.3.4"),
            Command::AccessList {
                num: 10,
                action: Action::Permit,
                addr: Some("1.2.3.4".parse().unwrap()),
                wildcard: None,
            }
        );
    }

    #[test]
    fn eigrp_and_ospf_headers() {
        assert_eq!(parse_command("router eigrp 100"), Command::RouterEigrp(100));
        assert_eq!(parse_command("router ospf 1"), Command::RouterOspf(1));
        assert_eq!(
            parse_command(" redistribute rip"),
            Command::Redistribute("rip".into())
        );
    }
}
