//! Whitespace-preserving tokenization and word segmentation.
//!
//! The anonymizer rewrites configs token by token and must reproduce the
//! file byte-for-byte where nothing changed (operators diff pre/post
//! configs to audit the tool), so tokens carry their positions and the
//! inter-token whitespace is reconstructable.
//!
//! Scanning is byte-table dispatched: one 256-entry class table
//! ([`BYTE_CLASS`]) answers "is this byte whitespace?" and "is this byte
//! alphabetic?" with a single indexed load, so [`tokenize`] and
//! [`segment`] advance through a line without per-byte predicate calls
//! or branching on byte ranges. The per-char reference scanners
//! ([`tokenize_chars`], [`segment_chars`]) are kept in-tree as the
//! differential baseline: the property suite proves both pairs agree on
//! arbitrary (including chaos-mutated) input.

use std::borrow::Cow;

/// [`BYTE_CLASS`] bit: the byte is ASCII whitespace (what
/// `u8::is_ascii_whitespace` accepts: space, tab, LF, FF, CR).
pub const CLASS_WS: u8 = 1 << 0;

/// [`BYTE_CLASS`] bit: the byte is an ASCII letter.
pub const CLASS_ALPHA: u8 = 1 << 1;

/// [`BYTE_CLASS`] bit: the byte is an ASCII digit.
pub const CLASS_DIGIT: u8 = 1 << 2;

/// The byte-class dispatch table: `BYTE_CLASS[b]` is a bitset of
/// `CLASS_*` flags for byte `b`. One load replaces the range comparisons
/// of `is_ascii_whitespace`/`is_ascii_alphabetic` on the tokenizer's and
/// segmenter's hot loops, and the rule prefilter reuses the same idea
/// for its head-byte table (`confanon-core`'s `rules` module).
pub static BYTE_CLASS: [u8; 256] = build_byte_class();

const fn build_byte_class() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut b = 0usize;
    while b < 256 {
        let byte = b as u8;
        let mut class = 0u8;
        if byte.is_ascii_whitespace() {
            class |= CLASS_WS;
        }
        if byte.is_ascii_alphabetic() {
            class |= CLASS_ALPHA;
        }
        if byte.is_ascii_digit() {
            class |= CLASS_DIGIT;
        }
        table[b] = class;
        b += 1;
    }
    table
}

/// A whitespace-delimited token within one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text (no whitespace).
    pub text: &'a str,
    /// Byte offset of the token within the line.
    pub start: usize,
}

impl<'a> Token<'a> {
    /// Byte offset one past the end of the token.
    pub fn end(&self) -> usize {
        self.start + self.text.len()
    }
}

/// Splits `line` into whitespace-delimited tokens with positions.
///
/// ```
/// use confanon_iosparse::tokenize;
/// let toks = tokenize(" ip address 1.1.1.1 255.255.255.0");
/// let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
/// assert_eq!(texts, ["ip", "address", "1.1.1.1", "255.255.255.0"]);
/// assert_eq!(toks[0].start, 1);
/// ```
pub fn tokenize(line: &str) -> Vec<Token<'_>> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // Skip the whitespace run via the class table.
        while i < bytes.len() && BYTE_CLASS[bytes[i] as usize] & CLASS_WS != 0 {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        let start = i;
        while i < bytes.len() && BYTE_CLASS[bytes[i] as usize] & CLASS_WS == 0 {
            i += 1;
        }
        out.push(Token {
            text: &line[start..i],
            start,
        });
    }
    out
}

/// The per-char reference tokenizer: byte-for-byte the pre-dispatch
/// implementation, kept as the differential baseline for
/// [`tokenize`]. Equivalence on arbitrary input is a property-suite
/// invariant, not an assumption.
pub fn tokenize_chars(line: &str) -> Vec<Token<'_>> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        out.push(Token {
            text: &line[start..i],
            start,
        });
    }
    out
}

/// Rebuilds a line from (possibly rewritten) token texts, preserving the
/// original inter-token whitespace layout.
///
/// `originals` and `rewritten` must be parallel; where a rewritten token
/// has a different length the following whitespace is kept as a single
/// separator run copied from the original (so columns shift but
/// separators never vanish).
///
/// This is the always-allocating baseline assembler; the zero-copy
/// pipeline uses [`rebuild_sparse`] and reaches for this one only on the
/// `disable_zero_copy` differential path.
pub fn rebuild(line: &str, originals: &[Token<'_>], rewritten: &[String]) -> String {
    assert_eq!(originals.len(), rewritten.len());
    let mut out = String::with_capacity(line.len());
    let mut cursor = 0;
    for (tok, new) in originals.iter().zip(rewritten) {
        out.push_str(&line[cursor..tok.start]); // the whitespace run
        out.push_str(new);
        cursor = tok.end();
    }
    out.push_str(&line[cursor..]); // trailing whitespace, if any
    out
}

/// Borrow-or-own line assembly: rebuilds `line` from sparse rewrites,
/// allocating only when at least one token actually changed.
///
/// `rewritten[i]` is `Some(new_text)` where token `i` was rewritten and
/// `None` where it is kept verbatim. When every entry is `None` the
/// original line *is* the output — the untouched-line identity is
/// structural, not re-assembled: interleaving the original whitespace
/// runs with the original token slices reproduces `line`'s exact bytes
/// (`rebuild` with unchanged texts proves this; see DESIGN.md §17), so
/// returning `Cow::Borrowed(line)` skips both the allocation and the
/// copy without changing a byte.
///
/// ```
/// use std::borrow::Cow;
/// use confanon_iosparse::{rebuild_sparse, tokenize};
/// let line = " neighbor 12.126.236.17 remote-as 701 ";
/// let toks = tokenize(line);
/// let untouched = vec![None; toks.len()];
/// assert!(matches!(rebuild_sparse(line, &toks, &untouched), Cow::Borrowed(_)));
/// let mut one = vec![None; toks.len()];
/// one[3] = Some("1239".to_string());
/// assert_eq!(rebuild_sparse(line, &toks, &one), " neighbor 12.126.236.17 remote-as 1239 ");
/// ```
pub fn rebuild_sparse<'a>(
    line: &'a str,
    originals: &[Token<'_>],
    rewritten: &[Option<String>],
) -> Cow<'a, str> {
    assert_eq!(originals.len(), rewritten.len());
    if rewritten.iter().all(Option::is_none) {
        return Cow::Borrowed(line);
    }
    let mut out = String::with_capacity(line.len());
    let mut cursor = 0;
    for (tok, new) in originals.iter().zip(rewritten) {
        out.push_str(&line[cursor..tok.start]); // the whitespace run
        match new {
            Some(s) => out.push_str(s),
            None => out.push_str(tok.text),
        }
        cursor = tok.end();
    }
    out.push_str(&line[cursor..]); // trailing whitespace, if any
    Cow::Owned(out)
}

/// A segment of a word: a maximal run of alphabetic characters, or a
/// maximal run of everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment<'a> {
    /// Letters only — the part checked against the pass-list.
    Alpha(&'a str),
    /// Digits/punctuation — never anonymized on its own (paper §4.2:
    /// `0/0` of `Ethernet0/0` "doesn't need anonymization").
    Other(&'a str),
}

impl<'a> Segment<'a> {
    /// The underlying text.
    pub fn text(&self) -> &'a str {
        match self {
            Segment::Alpha(s) | Segment::Other(s) => s,
        }
    }
}

/// The paper's two segmentation rules: split a word into alphabetic and
/// non-alphabetic runs, so `ethernet0/0` → `ethernet` + `0/0` and
/// `cr1.lax.foo.com` → `cr` + `1.` + `lax` + `.` + `foo` + `.` + `com`.
///
/// ```
/// use confanon_iosparse::{segment, Segment};
/// let segs = segment("Serial1/0.5");
/// assert_eq!(segs, vec![Segment::Alpha("Serial"), Segment::Other("1/0.5")]);
/// ```
pub fn segment(word: &str) -> Vec<Segment<'_>> {
    let mut out = Vec::new();
    let bytes = word.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let alpha = BYTE_CLASS[bytes[i] as usize] & CLASS_ALPHA;
        while i < bytes.len() && BYTE_CLASS[bytes[i] as usize] & CLASS_ALPHA == alpha {
            i += 1;
        }
        let s = &word[start..i];
        out.push(if alpha != 0 {
            Segment::Alpha(s)
        } else {
            Segment::Other(s)
        });
    }
    out
}

/// The per-char reference segmenter, the differential baseline for
/// [`segment`] (see [`tokenize_chars`]).
pub fn segment_chars(word: &str) -> Vec<Segment<'_>> {
    let mut out = Vec::new();
    let bytes = word.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let alpha = bytes[i].is_ascii_alphabetic();
        while i < bytes.len() && bytes[i].is_ascii_alphabetic() == alpha {
            i += 1;
        }
        let s = &word[start..i];
        out.push(if alpha {
            Segment::Alpha(s)
        } else {
            Segment::Other(s)
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_class_table_matches_std_predicates() {
        for b in 0u16..256 {
            let byte = b as u8;
            assert_eq!(
                BYTE_CLASS[b as usize] & CLASS_WS != 0,
                byte.is_ascii_whitespace(),
                "WS flag wrong for byte {byte:#04x}"
            );
            assert_eq!(
                BYTE_CLASS[b as usize] & CLASS_ALPHA != 0,
                byte.is_ascii_alphabetic(),
                "ALPHA flag wrong for byte {byte:#04x}"
            );
            assert_eq!(
                BYTE_CLASS[b as usize] & CLASS_DIGIT != 0,
                byte.is_ascii_digit(),
                "DIGIT flag wrong for byte {byte:#04x}"
            );
        }
    }

    #[test]
    fn tokenize_empty_and_blank() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t ").is_empty());
    }

    #[test]
    fn tokenize_positions() {
        let toks = tokenize("a  bb\tccc");
        assert_eq!(toks.len(), 3);
        assert_eq!((toks[0].text, toks[0].start), ("a", 0));
        assert_eq!((toks[1].text, toks[1].start), ("bb", 3));
        assert_eq!((toks[2].text, toks[2].start), ("ccc", 6));
    }

    #[test]
    fn dispatch_and_reference_tokenizers_agree() {
        for line in [
            "",
            "   \t ",
            " ip address 1.1.1.1 255.255.255.0",
            "x",
            "trailing space ",
            "\tmixed\u{7f}bytes\u{b}here",
        ] {
            assert_eq!(tokenize(line), tokenize_chars(line), "line {line:?}");
        }
    }

    #[test]
    fn rebuild_identity() {
        let line = " neighbor 12.126.236.17 remote-as 701 ";
        let toks = tokenize(line);
        let same: Vec<String> = toks.iter().map(|t| t.text.to_string()).collect();
        assert_eq!(rebuild(line, &toks, &same), line);
    }

    #[test]
    fn rebuild_with_rewrites_preserves_separators() {
        let line = "  route-map UUNET-import deny 10";
        let toks = tokenize(line);
        let mut texts: Vec<String> = toks.iter().map(|t| t.text.to_string()).collect();
        texts[1] = "h0123456789abcdef".to_string();
        let rebuilt = rebuild(line, &toks, &texts);
        assert_eq!(rebuilt, "  route-map h0123456789abcdef deny 10");
    }

    #[test]
    fn rebuild_sparse_borrows_untouched_lines() {
        let line = "  access-list 143 permit ip 1.2.3.0 0.0.0.255 any ";
        let toks = tokenize(line);
        let untouched: Vec<Option<String>> = vec![None; toks.len()];
        let cow = rebuild_sparse(line, &toks, &untouched);
        assert!(matches!(cow, Cow::Borrowed(_)));
        assert_eq!(cow, line);
    }

    #[test]
    fn rebuild_sparse_matches_dense_rebuild_on_rewrites() {
        let line = "  route-map UUNET-import deny 10";
        let toks = tokenize(line);
        let mut sparse: Vec<Option<String>> = vec![None; toks.len()];
        sparse[1] = Some("h0123456789abcdef".to_string());
        let dense: Vec<String> = toks
            .iter()
            .zip(&sparse)
            .map(|(t, s)| s.clone().unwrap_or_else(|| t.text.to_string()))
            .collect();
        let cow = rebuild_sparse(line, &toks, &sparse);
        assert!(matches!(cow, Cow::Owned(_)));
        assert_eq!(cow, rebuild(line, &toks, &dense));
    }

    #[test]
    fn segment_interface_names() {
        assert_eq!(
            segment("Ethernet0"),
            vec![Segment::Alpha("Ethernet"), Segment::Other("0")]
        );
        assert_eq!(
            segment("Serial1/0.5"),
            vec![Segment::Alpha("Serial"), Segment::Other("1/0.5")]
        );
    }

    #[test]
    fn segment_hostnames() {
        let segs = segment("cr1.lax.foo.com");
        let texts: Vec<&str> = segs.iter().map(|s| s.text()).collect();
        assert_eq!(texts, ["cr", "1.", "lax", ".", "foo", ".", "com"]);
    }

    #[test]
    fn segment_pure_runs() {
        assert_eq!(segment("hostname"), vec![Segment::Alpha("hostname")]);
        assert_eq!(segment("10.1.2.3"), vec![Segment::Other("10.1.2.3")]);
        assert!(segment("").is_empty());
    }

    #[test]
    fn dispatch_and_reference_segmenters_agree() {
        for w in ["", "Ethernet0/0", "cr1.lax.foo.com", "AS701", "701:1234", "übergang"] {
            assert_eq!(segment(w), segment_chars(w), "word {w:?}");
        }
    }

    #[test]
    fn segments_reassemble_to_word() {
        for w in ["Ethernet0/0", "cr1.lax.foo.com", "AS701", "x", "701:1234"] {
            let joined: String = segment(w).iter().map(|s| s.text()).collect();
            assert_eq!(joined, w);
        }
    }
}
