//! Whitespace-preserving tokenization and word segmentation.
//!
//! The anonymizer rewrites configs token by token and must reproduce the
//! file byte-for-byte where nothing changed (operators diff pre/post
//! configs to audit the tool), so tokens carry their positions and the
//! inter-token whitespace is reconstructable.

/// A whitespace-delimited token within one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text (no whitespace).
    pub text: &'a str,
    /// Byte offset of the token within the line.
    pub start: usize,
}

impl<'a> Token<'a> {
    /// Byte offset one past the end of the token.
    pub fn end(&self) -> usize {
        self.start + self.text.len()
    }
}

/// Splits `line` into whitespace-delimited tokens with positions.
///
/// ```
/// use confanon_iosparse::tokenize;
/// let toks = tokenize(" ip address 1.1.1.1 255.255.255.0");
/// let texts: Vec<&str> = toks.iter().map(|t| t.text).collect();
/// assert_eq!(texts, ["ip", "address", "1.1.1.1", "255.255.255.0"]);
/// assert_eq!(toks[0].start, 1);
/// ```
pub fn tokenize(line: &str) -> Vec<Token<'_>> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        out.push(Token {
            text: &line[start..i],
            start,
        });
    }
    out
}

/// Rebuilds a line from (possibly rewritten) token texts, preserving the
/// original inter-token whitespace layout.
///
/// `originals` and `rewritten` must be parallel; where a rewritten token
/// has a different length the following whitespace is kept as a single
/// separator run copied from the original (so columns shift but
/// separators never vanish).
pub fn rebuild(line: &str, originals: &[Token<'_>], rewritten: &[String]) -> String {
    assert_eq!(originals.len(), rewritten.len());
    let mut out = String::with_capacity(line.len());
    let mut cursor = 0;
    for (tok, new) in originals.iter().zip(rewritten) {
        out.push_str(&line[cursor..tok.start]); // the whitespace run
        out.push_str(new);
        cursor = tok.end();
    }
    out.push_str(&line[cursor..]); // trailing whitespace, if any
    out
}

/// A segment of a word: a maximal run of alphabetic characters, or a
/// maximal run of everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment<'a> {
    /// Letters only — the part checked against the pass-list.
    Alpha(&'a str),
    /// Digits/punctuation — never anonymized on its own (paper §4.2:
    /// `0/0` of `Ethernet0/0` "doesn't need anonymization").
    Other(&'a str),
}

impl<'a> Segment<'a> {
    /// The underlying text.
    pub fn text(&self) -> &'a str {
        match self {
            Segment::Alpha(s) | Segment::Other(s) => s,
        }
    }
}

/// The paper's two segmentation rules: split a word into alphabetic and
/// non-alphabetic runs, so `ethernet0/0` → `ethernet` + `0/0` and
/// `cr1.lax.foo.com` → `cr` + `1.` + `lax` + `.` + `foo` + `.` + `com`.
///
/// ```
/// use confanon_iosparse::{segment, Segment};
/// let segs = segment("Serial1/0.5");
/// assert_eq!(segs, vec![Segment::Alpha("Serial"), Segment::Other("1/0.5")]);
/// ```
pub fn segment(word: &str) -> Vec<Segment<'_>> {
    let mut out = Vec::new();
    let bytes = word.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let alpha = bytes[i].is_ascii_alphabetic();
        while i < bytes.len() && bytes[i].is_ascii_alphabetic() == alpha {
            i += 1;
        }
        let s = &word[start..i];
        out.push(if alpha {
            Segment::Alpha(s)
        } else {
            Segment::Other(s)
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_empty_and_blank() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t ").is_empty());
    }

    #[test]
    fn tokenize_positions() {
        let toks = tokenize("a  bb\tccc");
        assert_eq!(toks.len(), 3);
        assert_eq!((toks[0].text, toks[0].start), ("a", 0));
        assert_eq!((toks[1].text, toks[1].start), ("bb", 3));
        assert_eq!((toks[2].text, toks[2].start), ("ccc", 6));
    }

    #[test]
    fn rebuild_identity() {
        let line = " neighbor 12.126.236.17 remote-as 701 ";
        let toks = tokenize(line);
        let same: Vec<String> = toks.iter().map(|t| t.text.to_string()).collect();
        assert_eq!(rebuild(line, &toks, &same), line);
    }

    #[test]
    fn rebuild_with_rewrites_preserves_separators() {
        let line = "  route-map UUNET-import deny 10";
        let toks = tokenize(line);
        let mut texts: Vec<String> = toks.iter().map(|t| t.text.to_string()).collect();
        texts[1] = "h0123456789abcdef".to_string();
        let rebuilt = rebuild(line, &toks, &texts);
        assert_eq!(rebuilt, "  route-map h0123456789abcdef deny 10");
    }

    #[test]
    fn segment_interface_names() {
        assert_eq!(
            segment("Ethernet0"),
            vec![Segment::Alpha("Ethernet"), Segment::Other("0")]
        );
        assert_eq!(
            segment("Serial1/0.5"),
            vec![Segment::Alpha("Serial"), Segment::Other("1/0.5")]
        );
    }

    #[test]
    fn segment_hostnames() {
        let segs = segment("cr1.lax.foo.com");
        let texts: Vec<&str> = segs.iter().map(|s| s.text()).collect();
        assert_eq!(texts, ["cr", "1.", "lax", ".", "foo", ".", "com"]);
    }

    #[test]
    fn segment_pure_runs() {
        assert_eq!(segment("hostname"), vec![Segment::Alpha("hostname")]);
        assert_eq!(segment("10.1.2.3"), vec![Segment::Other("10.1.2.3")]);
        assert!(segment("").is_empty());
    }

    #[test]
    fn segments_reassemble_to_word() {
        for w in ["Ethernet0/0", "cr1.lax.foo.com", "AS701", "x", "701:1234"] {
            let joined: String = segment(w).iter().map(|s| s.text()).collect();
            assert_eq!(joined, w);
        }
    }
}
