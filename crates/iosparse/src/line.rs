//! Line classification, including the stateful banner scanner.
//!
//! The anonymizer's comment-stripping rules (paper §4.2, three of the 28)
//! need to know, for every line, whether it is a `!` comment, free text
//! attached to a `description`/`remark`/`motd` command, part of a
//! multi-line `banner` block, or an ordinary command. Banner blocks are
//! the only construct requiring state across lines: `banner motd ^C`
//! opens a block terminated by the delimiter character chosen on the
//! opening line (which varies by operator and IOS version).

use crate::token::tokenize;

/// What a configuration line is, for anonymization purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineKind {
    /// A `!` comment line (possibly with text after the bang).
    Comment,
    /// A command that carries free text to end-of-line (e.g.
    /// `description Foo Corp's LAX office`, `remark …`).
    FreeText,
    /// The `banner <type> <delim>` opening line.
    BannerHeader,
    /// A line inside a banner block (arbitrary text).
    BannerBody,
    /// The line closing a banner block (contains the delimiter).
    BannerEnd,
    /// An ordinary configuration command.
    Command,
    /// An empty / whitespace-only line.
    Blank,
}

/// Commands whose remainder is free text to end of line.
const FREE_TEXT_HEADS: [&str; 2] = ["description", "remark"];

/// Classifies every line of a configuration, tracking banner state.
///
/// ```
/// use confanon_iosparse::{classify_lines, LineKind};
/// let cfg = ["banner motd ^C", "FooNet contact x@foo.com", "^C", "hostname r1"];
/// let lines: Vec<String> = cfg.iter().map(|s| s.to_string()).collect();
/// let kinds = classify_lines(&lines);
/// assert_eq!(kinds, [LineKind::BannerHeader, LineKind::BannerBody,
///                    LineKind::BannerEnd, LineKind::Command]);
/// ```
pub fn classify_lines<S: AsRef<str>>(lines: &[S]) -> Vec<LineKind> {
    let mut out = Vec::with_capacity(lines.len());
    // Some(delim) while inside a banner block.
    let mut banner_delim: Option<String> = None;

    for line in lines {
        let line = line.as_ref();
        if let Some(delim) = &banner_delim {
            if line.contains(delim.as_str()) {
                out.push(LineKind::BannerEnd);
                banner_delim = None;
            } else {
                out.push(LineKind::BannerBody);
            }
            continue;
        }

        let trimmed = line.trim();
        if trimmed.is_empty() {
            out.push(LineKind::Blank);
            continue;
        }
        if trimmed.starts_with('!') {
            out.push(LineKind::Comment);
            continue;
        }

        // Only the head token matters for every non-banner line, so the
        // full (allocating) tokenization is reserved for `banner` lines.
        let head = trimmed.split_ascii_whitespace().next().unwrap_or("");
        if FREE_TEXT_HEADS.iter().any(|h| head.eq_ignore_ascii_case(h)) {
            out.push(LineKind::FreeText);
            continue;
        }
        if head.eq_ignore_ascii_case("banner") {
            let toks = tokenize(line);
            // `banner <type> <delim>[text]` — the delimiter is the first
            // character of the token after the banner type (commonly `^C`,
            // written as caret-C, or any punctuation character).
            match banner_delimiter(&toks.iter().map(|t| t.text).collect::<Vec<_>>()) {
                Some(delim) => {
                    // A one-line banner (`banner motd #no access#`) closes
                    // itself when the delimiter appears again after the
                    // opening one.
                    out.push(LineKind::BannerHeader);
                    if !banner_self_closes(line, &delim) {
                        banner_delim = Some(delim);
                    }
                }
                None => out.push(LineKind::Command),
            }
            continue;
        }
        out.push(LineKind::Command);
    }
    out
}

/// Extracts the banner delimiter from the tokens of a `banner …` line.
///
/// IOS accepts `banner motd ^C`, `banner login #`, `banner exec ^`, and
/// (for real control characters) `banner motd <ETX>`. We take the third
/// token and treat `^X` two-character carets as a unit; otherwise the
/// first character is the delimiter.
pub fn banner_delimiter(tokens: &[&str]) -> Option<String> {
    let t = tokens.get(2)?;
    if t.len() >= 2 && t.starts_with('^') {
        Some(t[..2].to_string())
    } else {
        t.chars().next().map(|c| c.to_string())
    }
}

/// Whether a banner header line is a self-contained one-line banner:
/// the delimiter reappears after the opening one (`banner motd #text#`),
/// so no multi-line block is opened. Consumers replicating the banner
/// state machine (the anonymizer tracks the open delimiter to emit the
/// closing line) must agree with [`classify_lines`] on this.
pub fn banner_self_closes(line: &str, delim: &str) -> bool {
    delim_open_rest(line, delim).is_some_and(|rest| rest.contains(delim))
}

/// The text after the opening delimiter on the banner header line.
fn delim_open_rest<'a>(line: &'a str, delim: &str) -> Option<&'a str> {
    let pos = line.find(delim)?;
    Some(&line[pos + delim.len()..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify(src: &[&str]) -> Vec<LineKind> {
        let lines: Vec<String> = src.iter().map(|s| s.to_string()).collect();
        classify_lines(&lines)
    }

    #[test]
    fn figure1_banner_block() {
        // Lines 3-6 of the paper's Figure 1.
        let kinds = classify(&[
            "banner motd ^C",
            "FooNet contact xxx@foo.com",
            "Access strictly prohibited!",
            "^C",
        ]);
        assert_eq!(
            kinds,
            [
                LineKind::BannerHeader,
                LineKind::BannerBody,
                LineKind::BannerBody,
                LineKind::BannerEnd
            ]
        );
    }

    #[test]
    fn comment_lines() {
        let kinds = classify(&["!", "! owned by Foo Corp", "hostname r1"]);
        assert_eq!(
            kinds,
            [LineKind::Comment, LineKind::Comment, LineKind::Command]
        );
    }

    #[test]
    fn descriptions_are_free_text() {
        let kinds = classify(&[
            " description Foo Corp's LAX Main St offices",
            " ip address 1.1.1.1 255.255.255.0",
        ]);
        assert_eq!(kinds, [LineKind::FreeText, LineKind::Command]);
    }

    #[test]
    fn remark_is_free_text() {
        let kinds = classify(&["access-list 10 remark do not touch", " remark block Foo"]);
        // `access-list 10 remark …` head token is `access-list`, so it is
        // a command (the anonymizer's token rules still scrub it); a bare
        // `remark …` continuation is free text.
        assert_eq!(kinds, [LineKind::Command, LineKind::FreeText]);
    }

    #[test]
    fn banner_with_hash_delimiter() {
        let kinds = classify(&["banner login #", "keep out", "#", "hostname r1"]);
        assert_eq!(
            kinds,
            [
                LineKind::BannerHeader,
                LineKind::BannerBody,
                LineKind::BannerEnd,
                LineKind::Command
            ]
        );
    }

    #[test]
    fn one_line_banner_self_closes() {
        let kinds = classify(&["banner motd #unauthorized use prohibited#", "hostname r1"]);
        assert_eq!(kinds, [LineKind::BannerHeader, LineKind::Command]);
    }

    #[test]
    fn banner_body_containing_bang_is_not_a_comment() {
        let kinds = classify(&["banner motd ^C", "! still banner text", "^C"]);
        assert_eq!(kinds[1], LineKind::BannerBody);
    }

    #[test]
    fn blank_lines() {
        let kinds = classify(&["", "   ", "hostname r1"]);
        assert_eq!(kinds, [LineKind::Blank, LineKind::Blank, LineKind::Command]);
    }

    #[test]
    fn unterminated_banner_consumes_rest() {
        // Defensive: a corrupt config whose banner never closes must not
        // panic; everything after the header is body.
        let kinds = classify(&["banner motd ^C", "line a", "line b"]);
        assert_eq!(
            kinds,
            [
                LineKind::BannerHeader,
                LineKind::BannerBody,
                LineKind::BannerBody
            ]
        );
    }
}
