//! Property tests for tokenization: the byte-faithfulness contract that
//! lets operators diff pre/post configs meaningfully.

use proptest::prelude::*;

use confanon_iosparse::{rebuild, segment, tokenize, Config, Segment};

proptest! {
    /// Rebuilding a line from its own tokens is the identity.
    #[test]
    fn rebuild_identity(line in "[ -~]{0,120}") {
        let toks = tokenize(&line);
        let same: Vec<String> = toks.iter().map(|t| t.text.to_string()).collect();
        prop_assert_eq!(rebuild(&line, &toks, &same), line);
    }

    /// Tokens cover exactly the non-whitespace bytes, in order.
    #[test]
    fn tokens_cover_non_whitespace(line in "[ -~\t]{0,120}") {
        let toks = tokenize(&line);
        let mut covered = vec![false; line.len()];
        for t in &toks {
            prop_assert!(!t.text.contains(' ') && !t.text.contains('\t'));
            for c in covered.iter_mut().take(t.end()).skip(t.start) {
                *c = true;
            }
        }
        for (i, b) in line.bytes().enumerate() {
            prop_assert_eq!(covered[i], !b.is_ascii_whitespace(), "byte {}", i);
        }
    }

    /// Segments of a word concatenate back to the word, alternate between
    /// alpha and non-alpha, and are never empty.
    #[test]
    fn segmentation_laws(word in "[!-~]{1,40}") {
        let segs = segment(&word);
        let joined: String = segs.iter().map(|s| s.text()).collect();
        prop_assert_eq!(joined, word.clone());
        for pair in segs.windows(2) {
            let alpha = |s: &Segment<'_>| matches!(s, Segment::Alpha(_));
            prop_assert_ne!(alpha(&pair[0]), alpha(&pair[1]), "segments must alternate");
        }
        for s in &segs {
            prop_assert!(!s.text().is_empty());
        }
    }

    /// Config parse/print round trip (modulo a trailing newline).
    #[test]
    fn config_round_trip(text in "([ -~]{0,60}\n){0,10}") {
        let cfg = Config::parse(&text);
        let mut expect = text.clone();
        if !expect.is_empty() && !expect.ends_with('\n') {
            expect.push('\n');
        }
        if expect.is_empty() {
            prop_assert!(cfg.is_empty());
        } else {
            prop_assert_eq!(cfg.to_text(), expect);
        }
    }

    /// Classification is total and aligned.
    #[test]
    fn classification_total(text in "([ -~]{0,60}\n){0,10}") {
        let cfg = Config::parse(&text);
        prop_assert_eq!(cfg.kinds().len(), cfg.lines().len());
    }
}
