//! Property tests for tokenization: the byte-faithfulness contract that
//! lets operators diff pre/post configs meaningfully.

use confanon_iosparse::{rebuild, segment, tokenize, Config, Segment};
use confanon_testkit::props::pattern;

confanon_testkit::props! {
    cases = 256;

    /// Rebuilding a line from its own tokens is the identity.
    fn rebuild_identity(line in pattern("[ -~]{0,120}")) {
        let toks = tokenize(&line);
        let same: Vec<String> = toks.iter().map(|t| t.text.to_string()).collect();
        assert_eq!(rebuild(&line, &toks, &same), line);
    }

    /// Tokens cover exactly the non-whitespace bytes, in order.
    fn tokens_cover_non_whitespace(line in pattern("[ -~\t]{0,120}")) {
        let toks = tokenize(&line);
        let mut covered = vec![false; line.len()];
        for t in &toks {
            assert!(!t.text.contains(' ') && !t.text.contains('\t'));
            for c in covered.iter_mut().take(t.end()).skip(t.start) {
                *c = true;
            }
        }
        for (i, b) in line.bytes().enumerate() {
            assert_eq!(covered[i], !b.is_ascii_whitespace(), "byte {i}");
        }
    }

    /// Segments of a word concatenate back to the word, alternate between
    /// alpha and non-alpha, and are never empty.
    fn segmentation_laws(word in pattern("[!-~]{1,40}")) {
        let segs = segment(&word);
        let joined: String = segs.iter().map(|s| s.text()).collect();
        assert_eq!(joined, word.clone());
        for pair in segs.windows(2) {
            let alpha = |s: &Segment<'_>| matches!(s, Segment::Alpha(_));
            assert_ne!(alpha(&pair[0]), alpha(&pair[1]), "segments must alternate");
        }
        for s in &segs {
            assert!(!s.text().is_empty());
        }
    }

    /// Config parse/print round trip (modulo a trailing newline).
    fn config_round_trip(text in pattern("([ -~]{0,60}\n){0,10}")) {
        let cfg = Config::parse(&text);
        let mut expect = text.clone();
        if !expect.is_empty() && !expect.ends_with('\n') {
            expect.push('\n');
        }
        if expect.is_empty() {
            assert!(cfg.is_empty());
        } else {
            assert_eq!(cfg.to_text(), expect);
        }
    }

    /// Classification is total and aligned.
    fn classification_total(text in pattern("([ -~]{0,60}\n){0,10}")) {
        let cfg = Config::parse(&text);
        assert_eq!(cfg.kinds().len(), cfg.lines().len());
    }
}
