//! Netmasks and wildcard (inverse) masks.
//!
//! Configuration files contain both forms: `ip address 10.1.1.1
//! 255.255.255.0` uses a netmask, while `access-list 143 permit ip 1.1.1.0
//! 0.0.0.255 any` uses a wildcard mask. Both are *special* values the
//! anonymizer must pass through unchanged (paper §3.2), so recognizing them
//! reliably matters for correctness, not just convenience.

use std::fmt;
use std::str::FromStr;

use crate::addr::Ip;
use crate::error::ParseError;

/// A contiguous-ones netmask such as `255.255.255.0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Netmask {
    len: u8,
}

impl Netmask {
    /// Builds a netmask from a prefix length.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub const fn from_len(len: u8) -> Netmask {
        assert!(len <= 32);
        Netmask { len }
    }

    /// The prefix length (count of leading one bits).
    pub const fn len(self) -> u8 {
        self.len
    }

    /// True for the zero-length mask `0.0.0.0`.
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The mask as a 32-bit value with `len` leading ones.
    pub const fn to_u32(self) -> u32 {
        if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        }
    }

    /// The mask as an address value (useful for printing / passthrough).
    pub const fn to_ip(self) -> Ip {
        Ip(self.to_u32())
    }

    /// Interprets an arbitrary 32-bit value as a netmask if its ones are
    /// contiguous from the MSB.
    pub const fn from_u32(v: u32) -> Option<Netmask> {
        // A contiguous mask satisfies: !v + 1 is a power of two (or v == 0).
        let inv = !v;
        if inv & inv.wrapping_add(1) == 0 {
            Some(Netmask {
                len: v.count_ones() as u8,
            })
        } else {
            None
        }
    }

    /// Applies the mask: keeps the network part of `ip`.
    pub const fn apply(self, ip: Ip) -> Ip {
        Ip(ip.0 & self.to_u32())
    }
}

impl fmt::Display for Netmask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ip())
    }
}

impl FromStr for Netmask {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Netmask, ParseError> {
        let ip: Ip = s.parse()?;
        Netmask::from_u32(ip.0).ok_or_else(|| ParseError::NotAMask(s.to_string()))
    }
}

/// A wildcard (inverse) mask such as `0.0.0.255`, as used by access lists
/// and OSPF `network` statements.
///
/// Cisco semantics: a `1` bit means "don't care". Although arbitrary bit
/// patterns are legal, real configurations almost exclusively use
/// contiguous-ones-from-the-LSB wildcards; [`WildcardMask::prefix_len`]
/// reports the equivalent prefix length for those.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WildcardMask(pub u32);

impl WildcardMask {
    /// The wildcard equivalent to a prefix of length `len`
    /// (`len = 24` → `0.0.0.255`).
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub const fn from_prefix_len(len: u8) -> WildcardMask {
        assert!(len <= 32);
        WildcardMask(!Netmask::from_len(len).to_u32())
    }

    /// If this wildcard is contiguous (ones from the LSB), the equivalent
    /// prefix length.
    pub const fn prefix_len(self) -> Option<u8> {
        // Contiguous-from-LSB ones: v + 1 is a power of two (or v == 0).
        let v = self.0;
        if v & v.wrapping_add(1) == 0 {
            Some(32 - v.count_ones() as u8)
        } else {
            None
        }
    }

    /// True if `a` and `b` match under this wildcard (all "care" bits equal).
    pub const fn matches(self, a: Ip, b: Ip) -> bool {
        (a.0 ^ b.0) & !self.0 == 0
    }
}

impl fmt::Display for WildcardMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Ip(self.0))
    }
}

impl FromStr for WildcardMask {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<WildcardMask, ParseError> {
        let ip: Ip = s.parse()?;
        Ok(WildcardMask(ip.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netmask_round_trip_all_lengths() {
        for len in 0..=32u8 {
            let m = Netmask::from_len(len);
            assert_eq!(m.len(), len);
            let reparsed: Netmask = m.to_string().parse().unwrap();
            assert_eq!(reparsed, m);
            assert_eq!(Netmask::from_u32(m.to_u32()), Some(m));
        }
    }

    #[test]
    fn netmask_rejects_noncontiguous() {
        for s in ["255.0.255.0", "0.255.0.0", "255.255.0.255", "128.0.0.1"] {
            assert!(s.parse::<Netmask>().is_err(), "{s} is not a mask");
        }
    }

    #[test]
    fn netmask_common_values() {
        assert_eq!("255.255.255.0".parse::<Netmask>().unwrap().len(), 24);
        assert_eq!("255.255.255.252".parse::<Netmask>().unwrap().len(), 30);
        assert_eq!("0.0.0.0".parse::<Netmask>().unwrap().len(), 0);
        assert_eq!("255.255.255.255".parse::<Netmask>().unwrap().len(), 32);
    }

    #[test]
    fn netmask_apply() {
        let m: Netmask = "255.255.255.0".parse().unwrap();
        let ip: Ip = "10.1.2.3".parse().unwrap();
        assert_eq!(m.apply(ip).to_string(), "10.1.2.0");
    }

    #[test]
    fn wildcard_prefix_len() {
        assert_eq!(
            "0.0.0.255".parse::<WildcardMask>().unwrap().prefix_len(),
            Some(24)
        );
        assert_eq!(
            "0.0.0.3".parse::<WildcardMask>().unwrap().prefix_len(),
            Some(30)
        );
        assert_eq!(
            "255.255.255.255"
                .parse::<WildcardMask>()
                .unwrap()
                .prefix_len(),
            Some(0)
        );
        assert_eq!(
            "0.0.255.0".parse::<WildcardMask>().unwrap().prefix_len(),
            None
        );
    }

    #[test]
    fn wildcard_matches() {
        let w: WildcardMask = "0.0.0.255".parse().unwrap();
        let a: Ip = "10.1.2.3".parse().unwrap();
        let b: Ip = "10.1.2.200".parse().unwrap();
        let c: Ip = "10.1.3.3".parse().unwrap();
        assert!(w.matches(a, b));
        assert!(!w.matches(a, c));
    }

    #[test]
    fn wildcard_from_prefix_len_is_inverse_of_netmask() {
        for len in 0..=32u8 {
            let w = WildcardMask::from_prefix_len(len);
            assert_eq!(w.0, !Netmask::from_len(len).to_u32());
            assert_eq!(w.prefix_len(), Some(len));
        }
    }
}
