//! # confanon-netprim — IPv4 primitives for configuration anonymization
//!
//! Self-contained IPv4 address arithmetic used throughout the anonymizer:
//! addresses, netmasks and wildcard (inverse) masks, classful addressing
//! rules (the paper's anonymizer must be *class preserving* because older
//! commands such as `router rip` / `router eigrp` interpret addresses
//! classfully), prefixes with *subnet contains* semantics, and the taxonomy
//! of *special* addresses that must pass through anonymization unchanged
//! (netmask-valued dotted quads, multicast, loopback, broadcast, …).
//!
//! Everything here is implemented from scratch on top of a `u32` newtype so
//! the rest of the workspace never depends on `std::net` parsing behaviour.
//!
//! ```
//! use confanon_netprim::{Ip, Prefix, AddrClass};
//!
//! let ip: Ip = "10.1.2.3".parse().unwrap();
//! let pfx: Prefix = "10.1.2.0/24".parse().unwrap();
//! assert!(pfx.contains(ip));
//! assert_eq!(ip.class(), AddrClass::A);
//! ```

#![deny(rustdoc::broken_intra_doc_links)]

mod addr;
mod addr6;
mod class;
mod error;
mod mask;
mod prefix;
mod special;

pub use addr::Ip;
pub use addr6::{special6_kind, Ip6, Prefix6, Special6Kind};
pub use class::AddrClass;
pub use error::ParseError;
pub use mask::{Netmask, WildcardMask};
pub use prefix::Prefix;
pub use special::{special_kind, SpecialKind};
