//! The `Ip` newtype: a 32-bit IPv4 address with strict dotted-quad parsing.

use std::fmt;
use std::str::FromStr;

use crate::class::AddrClass;
use crate::error::ParseError;

/// An IPv4 address.
///
/// Stored in host integer order (the numerically natural order: `10.0.0.1`
/// is `0x0A000001`), which makes prefix arithmetic simple shifts and masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ip(pub u32);

impl Ip {
    /// `0.0.0.0`.
    pub const ZERO: Ip = Ip(0);
    /// `255.255.255.255`.
    pub const BROADCAST: Ip = Ip(u32::MAX);

    /// Builds an address from its four octets, most significant first.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Ip {
        Ip(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// The raw 32-bit value.
    pub const fn to_u32(self) -> u32 {
        self.0
    }

    /// The classful addressing class of this address (A–E).
    pub const fn class(self) -> AddrClass {
        AddrClass::of(self)
    }

    /// Returns the bit at position `i`, where bit 0 is the *most*
    /// significant bit. Prefix-preserving anonymization walks addresses
    /// MSB-first, so this is the natural indexing for the whole workspace.
    ///
    /// # Panics
    /// Panics if `i >= 32`.
    pub const fn bit(self, i: u8) -> bool {
        assert!(i < 32);
        (self.0 >> (31 - i)) & 1 == 1
    }

    /// Returns a copy with bit `i` (MSB-first indexing) set to `v`.
    pub const fn with_bit(self, i: u8, v: bool) -> Ip {
        assert!(i < 32);
        let mask = 1u32 << (31 - i);
        if v {
            Ip(self.0 | mask)
        } else {
            Ip(self.0 & !mask)
        }
    }

    /// Length of the longest common prefix of two addresses, in bits
    /// (0..=32). Used by the property tests that verify the
    /// prefix-preserving guarantee end to end.
    pub const fn common_prefix_len(self, other: Ip) -> u8 {
        (self.0 ^ other.0).leading_zeros() as u8
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl FromStr for Ip {
    type Err = ParseError;

    /// Parses a strict dotted quad: exactly four decimal components, each in
    /// `0..=255`, no leading `+`, no whitespace. Leading zeros are accepted
    /// (`010.1.1.1`) because they appear in real configs, but a component
    /// longer than 3 digits is rejected so tokens like `1234.5.6.7` are
    /// *not* mistaken for addresses.
    fn from_str(s: &str) -> Result<Ip, ParseError> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(ParseError::WrongComponentCount(parts.len()));
        }
        let mut v: u32 = 0;
        for p in parts {
            if p.is_empty() || p.len() > 3 || !p.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseError::BadOctet(p.to_string()));
            }
            let o: u32 = p.parse().expect("digits only");
            if o > 255 {
                return Err(ParseError::OctetOutOfRange(o));
            }
            v = (v << 8) | o;
        }
        Ok(Ip(v))
    }
}

impl From<u32> for Ip {
    fn from(v: u32) -> Ip {
        Ip(v)
    }
}

impl From<Ip> for u32 {
    fn from(ip: Ip) -> u32 {
        ip.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0.0.0.0", "10.1.2.3", "255.255.255.255", "192.168.0.1"] {
            let ip: Ip = s.parse().unwrap();
            assert_eq!(ip.to_string(), s);
        }
    }

    #[test]
    fn parse_accepts_leading_zeros() {
        let ip: Ip = "010.001.002.003".parse().unwrap();
        assert_eq!(ip, Ip::from_octets(10, 1, 2, 3));
    }

    #[test]
    fn parse_rejects_bad_forms() {
        for s in [
            "1.2.3",
            "1.2.3.4.5",
            "1.2.3.256",
            "1.2.3.4444",
            "a.b.c.d",
            "1.2.3.",
            "",
            "1.2.3.-4",
            " 1.2.3.4",
        ] {
            assert!(s.parse::<Ip>().is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn octet_round_trip() {
        let ip = Ip::from_octets(192, 0, 2, 17);
        assert_eq!(ip.octets(), [192, 0, 2, 17]);
        assert_eq!(ip.to_u32(), 0xC0000211);
    }

    #[test]
    fn bit_indexing_is_msb_first() {
        let ip: Ip = "128.0.0.1".parse().unwrap();
        assert!(ip.bit(0));
        assert!(!ip.bit(1));
        assert!(ip.bit(31));
    }

    #[test]
    fn with_bit_sets_and_clears() {
        let ip = Ip::ZERO.with_bit(0, true).with_bit(31, true);
        assert_eq!(ip.to_string(), "128.0.0.1");
        assert_eq!(ip.with_bit(0, false).to_string(), "0.0.0.1");
    }

    #[test]
    fn common_prefix_len_cases() {
        let a: Ip = "10.0.0.0".parse().unwrap();
        let b: Ip = "10.0.0.1".parse().unwrap();
        assert_eq!(a.common_prefix_len(b), 31);
        assert_eq!(a.common_prefix_len(a), 32);
        let c: Ip = "138.0.0.0".parse().unwrap();
        assert_eq!(a.common_prefix_len(c), 0);
    }
}
