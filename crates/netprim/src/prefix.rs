//! Prefixes (`10.1.2.0/24`) and the *subnet contains* relationship.
//!
//! Configuration files associate elements through containment: the paper's
//! example runs RIP over interface `Ethernet0` purely because `network
//! 1.0.0.0` contains `1.1.1.1`. The anonymizer must preserve that relation,
//! and the validation suite compares the *structure of the address space*
//! (number of subnets of each size) pre/post anonymization, so prefix
//! arithmetic is load-bearing for both correctness and evaluation.

use std::fmt;
use std::str::FromStr;

use crate::addr::Ip;
use crate::error::ParseError;
use crate::mask::Netmask;

/// A CIDR prefix: a network address and a length. The stored address is
/// always normalized (host bits zeroed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    addr: Ip,
    len: u8,
}

impl Prefix {
    /// Builds a prefix, zeroing any host bits of `addr`.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub const fn new(addr: Ip, len: u8) -> Prefix {
        assert!(len <= 32);
        Prefix {
            addr: Netmask::from_len(len).apply(addr),
            len,
        }
    }

    /// The (normalized) network address.
    pub const fn network(self) -> Ip {
        self.addr
    }

    /// The prefix length.
    #[allow(clippy::len_without_is_empty)] // a prefix is never "empty"
    pub const fn len(self) -> u8 {
        self.len
    }

    /// True only for `0.0.0.0/0`.
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// The netmask corresponding to this prefix length.
    pub const fn netmask(self) -> Netmask {
        Netmask::from_len(self.len)
    }

    /// The last address in the prefix (the directed broadcast address for
    /// lengths < 31).
    pub const fn last(self) -> Ip {
        Ip(self.addr.0 | !self.netmask().to_u32())
    }

    /// Number of addresses covered, saturating at `u32::MAX` for `/0`.
    pub const fn size(self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - self.len)
        }
    }

    /// Subnet-contains test for a single address.
    pub const fn contains(self, ip: Ip) -> bool {
        self.netmask().apply(ip).0 == self.addr.0
    }

    /// True if `other` is a (non-strict) subnet of `self`.
    pub const fn contains_prefix(self, other: Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// The immediate parent prefix (one bit shorter), or `None` for `/0`.
    pub const fn parent(self) -> Option<Prefix> {
        match self.len {
            0 => None,
            l => Some(Prefix::new(self.addr, l - 1)),
        }
    }

    /// The `i`-th host address within the prefix.
    ///
    /// # Panics
    /// Panics if `i` is outside the prefix.
    pub fn host(self, i: u32) -> Ip {
        assert!(self.len == 0 || u64::from(i) < (1u64 << (32 - self.len)));
        Ip(self.addr.0 + i)
    }

    /// Splits this prefix into its two children, or `None` for `/32`.
    pub const fn children(self) -> Option<(Prefix, Prefix)> {
        if self.len == 32 {
            return None;
        }
        let left = Prefix {
            addr: self.addr,
            len: self.len + 1,
        };
        let right = Prefix {
            addr: Ip(self.addr.0 | (1u32 << (31 - self.len))),
            len: self.len + 1,
        };
        Some((left, right))
    }

    /// Iterates over the subnets of `self` having length `sub_len`.
    ///
    /// # Panics
    /// Panics if `sub_len < self.len()` or `sub_len > 32`.
    pub fn subnets(self, sub_len: u8) -> impl Iterator<Item = Prefix> {
        assert!(sub_len >= self.len && sub_len <= 32);
        let count: u64 = 1u64 << (sub_len - self.len);
        let step: u64 = 1u64 << (32 - sub_len);
        let base = u64::from(self.addr.0);
        (0..count).map(move |i| Prefix::new(Ip((base + i * step) as u32), sub_len))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix {
    type Err = ParseError;

    /// Parses either `a.b.c.d/len` or the config-file pair-free shorthand
    /// `a.b.c.d` (taken as `/32`).
    fn from_str(s: &str) -> Result<Prefix, ParseError> {
        match s.split_once('/') {
            None => Ok(Prefix::new(s.parse()?, 32)),
            Some((a, l)) => {
                let addr: Ip = a.parse()?;
                let len: u8 = l
                    .parse()
                    .map_err(|_| ParseError::BadPrefixLen(l.to_string()))?;
                if len > 32 {
                    return Err(ParseError::BadPrefixLen(l.to_string()));
                }
                Ok(Prefix::new(addr, len))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_host_bits() {
        let p: Prefix = "10.1.2.3/24".parse().unwrap();
        assert_eq!(p.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn contains_and_edges() {
        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        assert!(p.contains("10.1.2.0".parse().unwrap()));
        assert!(p.contains("10.1.2.255".parse().unwrap()));
        assert!(!p.contains("10.1.3.0".parse().unwrap()));
        assert_eq!(p.last().to_string(), "10.1.2.255");
        assert_eq!(p.size(), 256);
    }

    #[test]
    fn contains_prefix_ordering() {
        let big: Prefix = "10.0.0.0/8".parse().unwrap();
        let small: Prefix = "10.200.0.0/16".parse().unwrap();
        assert!(big.contains_prefix(small));
        assert!(!small.contains_prefix(big));
        assert!(big.contains_prefix(big));
    }

    #[test]
    fn default_route() {
        let d: Prefix = "0.0.0.0/0".parse().unwrap();
        assert!(d.is_default());
        assert!(d.contains("203.0.113.7".parse().unwrap()));
        assert_eq!(d.size(), u32::MAX);
    }

    #[test]
    fn children_partition_parent() {
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        let (l, r) = p.children().unwrap();
        assert_eq!(l.to_string(), "192.0.2.0/25");
        assert_eq!(r.to_string(), "192.0.2.128/25");
        assert_eq!(l.parent(), Some(p));
        assert_eq!(r.parent(), Some(p));
        assert!("1.2.3.4/32".parse::<Prefix>().unwrap().children().is_none());
    }

    #[test]
    fn subnets_enumeration() {
        let p: Prefix = "10.0.0.0/30".parse().unwrap();
        let subs: Vec<String> = p.subnets(32).map(|s| s.to_string()).collect();
        assert_eq!(
            subs,
            ["10.0.0.0/32", "10.0.0.1/32", "10.0.0.2/32", "10.0.0.3/32"]
        );
        assert_eq!(p.subnets(30).count(), 1);
    }

    #[test]
    fn host_indexing() {
        let p: Prefix = "10.0.0.0/30".parse().unwrap();
        assert_eq!(p.host(1).to_string(), "10.0.0.1");
        assert_eq!(p.host(2).to_string(), "10.0.0.2");
    }

    #[test]
    fn parse_rejects_bad_lengths() {
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
        assert!("10.0.0/24".parse::<Prefix>().is_err());
    }

    #[test]
    fn bare_address_is_host_prefix() {
        let p: Prefix = "10.1.1.1".parse().unwrap();
        assert_eq!(p.len(), 32);
        assert_eq!(p.network().to_string(), "10.1.1.1");
    }
}
