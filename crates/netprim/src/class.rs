//! Classful addressing (RFC 791 classes A–E).
//!
//! The paper requires the IP anonymization to be *class preserving*: older
//! commands (`router rip`, `router eigrp <as>` with `network` statements)
//! implicitly interpret addresses classfully, so an address in class A must
//! map to another class A address or those commands change meaning.

use crate::addr::Ip;

/// The classful address class of an IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrClass {
    /// `0.0.0.0/1` — leading bits `0…`; 8-bit network part.
    A,
    /// `128.0.0.0/2` — leading bits `10…`; 16-bit network part.
    B,
    /// `192.0.0.0/3` — leading bits `110…`; 24-bit network part.
    C,
    /// `224.0.0.0/4` — leading bits `1110…`; multicast.
    D,
    /// `240.0.0.0/4` — leading bits `1111…`; reserved.
    E,
}

impl AddrClass {
    /// Determines the class of `ip` from its leading bits.
    pub const fn of(ip: Ip) -> AddrClass {
        let v = ip.0;
        if v >> 31 == 0 {
            AddrClass::A
        } else if v >> 30 == 0b10 {
            AddrClass::B
        } else if v >> 29 == 0b110 {
            AddrClass::C
        } else if v >> 28 == 0b1110 {
            AddrClass::D
        } else {
            AddrClass::E
        }
    }

    /// Number of leading bits that *define* the class (the bits an
    /// anonymizer must copy unchanged to stay class preserving).
    ///
    /// Class A is defined by 1 bit (`0`), B by 2 (`10`), C by 3 (`110`),
    /// D and E by 4.
    pub const fn defining_bits(self) -> u8 {
        match self {
            AddrClass::A => 1,
            AddrClass::B => 2,
            AddrClass::C => 3,
            AddrClass::D | AddrClass::E => 4,
        }
    }

    /// Length of the classful *network* part in bits, or `None` for the
    /// classes that do not partition into networks (D, E).
    pub const fn network_bits(self) -> Option<u8> {
        match self {
            AddrClass::A => Some(8),
            AddrClass::B => Some(16),
            AddrClass::C => Some(24),
            AddrClass::D | AddrClass::E => None,
        }
    }
}

impl std::fmt::Display for AddrClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = match self {
            AddrClass::A => 'A',
            AddrClass::B => 'B',
            AddrClass::C => 'C',
            AddrClass::D => 'D',
            AddrClass::E => 'E',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_of(s: &str) -> AddrClass {
        s.parse::<Ip>().unwrap().class()
    }

    #[test]
    fn boundaries() {
        assert_eq!(class_of("0.0.0.0"), AddrClass::A);
        assert_eq!(class_of("127.255.255.255"), AddrClass::A);
        assert_eq!(class_of("128.0.0.0"), AddrClass::B);
        assert_eq!(class_of("191.255.255.255"), AddrClass::B);
        assert_eq!(class_of("192.0.0.0"), AddrClass::C);
        assert_eq!(class_of("223.255.255.255"), AddrClass::C);
        assert_eq!(class_of("224.0.0.0"), AddrClass::D);
        assert_eq!(class_of("239.255.255.255"), AddrClass::D);
        assert_eq!(class_of("240.0.0.0"), AddrClass::E);
        assert_eq!(class_of("255.255.255.255"), AddrClass::E);
    }

    #[test]
    fn network_bits_match_tradition() {
        assert_eq!(AddrClass::A.network_bits(), Some(8));
        assert_eq!(AddrClass::B.network_bits(), Some(16));
        assert_eq!(AddrClass::C.network_bits(), Some(24));
        assert_eq!(AddrClass::D.network_bits(), None);
        assert_eq!(AddrClass::E.network_bits(), None);
    }

    #[test]
    fn defining_bits_identify_class() {
        // Copying `defining_bits` leading bits from any address pins its
        // class: flipping any later bit must not change the class.
        for s in ["10.0.0.0", "150.1.1.1", "200.2.2.2", "230.3.3.3", "250.4.4.4"] {
            let ip: Ip = s.parse().unwrap();
            let k = ip.class().defining_bits();
            for b in k..32 {
                let flipped = ip.with_bit(b, !ip.bit(b));
                assert_eq!(flipped.class(), ip.class(), "{s} bit {b}");
            }
        }
    }
}
