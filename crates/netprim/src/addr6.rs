//! IPv6 addresses and prefixes — the obvious post-paper extension.
//!
//! The paper (2004) treats IPv4 only, but IOS shipped IPv6 support well
//! before it, and any contemporary anonymizer must cover `ipv6 address
//! 2001:db8::1/64`. The same design carries over unchanged: a
//! prefix-preserving map over 128 bits with special-region passthrough.
//!
//! Parsing accepts the RFC 4291 text forms (full, `::`-compressed, and
//! the embedded-IPv4 tail); display produces the canonical RFC 5952 form
//! (lowercase, longest zero run compressed, leftmost on ties, no
//! single-group `::`).

use std::fmt;
use std::str::FromStr;

use crate::error::ParseError;

/// An IPv6 address (host integer order, MSB first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ip6(pub u128);

impl Ip6 {
    /// `::`.
    pub const UNSPECIFIED: Ip6 = Ip6(0);
    /// `::1`.
    pub const LOOPBACK: Ip6 = Ip6(1);

    /// Builds from eight 16-bit groups, most significant first.
    pub const fn from_segments(s: [u16; 8]) -> Ip6 {
        let mut v: u128 = 0;
        let mut i = 0;
        while i < 8 {
            v = (v << 16) | s[i] as u128;
            i += 1;
        }
        Ip6(v)
    }

    /// The eight 16-bit groups, most significant first.
    pub const fn segments(self) -> [u16; 8] {
        let v = self.0;
        [
            (v >> 112) as u16,
            (v >> 96) as u16,
            (v >> 80) as u16,
            (v >> 64) as u16,
            (v >> 48) as u16,
            (v >> 32) as u16,
            (v >> 16) as u16,
            v as u16,
        ]
    }

    /// Bit at position `i`, MSB-first (0..128).
    ///
    /// # Panics
    /// Panics if `i >= 128`.
    pub const fn bit(self, i: u8) -> bool {
        assert!(i < 128);
        (self.0 >> (127 - i)) & 1 == 1
    }

    /// Copy with bit `i` set to `v` (MSB-first indexing).
    pub const fn with_bit(self, i: u8, v: bool) -> Ip6 {
        assert!(i < 128);
        let mask = 1u128 << (127 - i);
        if v {
            Ip6(self.0 | mask)
        } else {
            Ip6(self.0 & !mask)
        }
    }

    /// Length of the longest common prefix with `other`, in bits (0..=128).
    pub const fn common_prefix_len(self, other: Ip6) -> u8 {
        (self.0 ^ other.0).leading_zeros() as u8
    }
}

impl fmt::Display for Ip6 {
    /// Canonical RFC 5952 text form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let segs = self.segments();
        // Longest run of zero groups, length >= 2, leftmost on ties.
        let (mut best_start, mut best_len) = (0usize, 0usize);
        let mut i = 0;
        while i < 8 {
            if segs[i] == 0 {
                let start = i;
                while i < 8 && segs[i] == 0 {
                    i += 1;
                }
                let len = i - start;
                if len > best_len {
                    best_start = start;
                    best_len = len;
                }
            } else {
                i += 1;
            }
        }
        if best_len < 2 {
            // No compression.
            for (j, s) in segs.iter().enumerate() {
                if j > 0 {
                    write!(f, ":")?;
                }
                write!(f, "{s:x}")?;
            }
            return Ok(());
        }
        for (j, s) in segs.iter().enumerate().take(best_start) {
            if j > 0 {
                write!(f, ":")?;
            }
            write!(f, "{s:x}")?;
        }
        write!(f, "::")?;
        for (j, s) in segs.iter().enumerate().skip(best_start + best_len) {
            if j > best_start + best_len {
                write!(f, ":")?;
            }
            write!(f, "{s:x}")?;
        }
        Ok(())
    }
}

impl FromStr for Ip6 {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Ip6, ParseError> {
        if s.is_empty() || s.len() > 45 {
            return Err(ParseError::BadOctet(s.to_string()));
        }
        // Split at most one `::`.
        let parts: Vec<&str> = s.splitn(2, "::").collect();
        let (head, tail) = match parts.as_slice() {
            [h] => (*h, None),
            [h, t] => (*h, Some(*t)),
            _ => unreachable!("splitn(2)"),
        };
        if tail.is_none() && s.contains("::") {
            return Err(ParseError::BadOctet(s.to_string()));
        }

        let head_groups = parse_groups(head)?;
        let tail_groups = match tail {
            Some(t) => parse_groups(t)?,
            None => Vec::new(),
        };

        let total = head_groups.len() + tail_groups.len();
        let v = match tail {
            None => {
                if total != 8 {
                    return Err(ParseError::WrongComponentCount(total));
                }
                let mut segs = [0u16; 8];
                segs.copy_from_slice(&head_groups);
                return Ok(Ip6::from_segments(segs));
            }
            Some(_) => {
                if total > 7 {
                    // `::` must stand for at least one zero group — except
                    // the degenerate full-zero forms already covered.
                    return Err(ParseError::WrongComponentCount(total));
                }
                let mut segs = [0u16; 8];
                segs[..head_groups.len()].copy_from_slice(&head_groups);
                segs[8 - tail_groups.len()..].copy_from_slice(&tail_groups);
                segs
            }
        };
        Ok(Ip6::from_segments(v))
    }
}

/// Parses colon-separated hex groups, allowing an embedded IPv4 tail.
fn parse_groups(s: &str) -> Result<Vec<u16>, ParseError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let pieces: Vec<&str> = s.split(':').collect();
    for (i, p) in pieces.iter().enumerate() {
        if p.contains('.') {
            // Embedded IPv4 — only legal as the last piece.
            if i != pieces.len() - 1 {
                return Err(ParseError::BadOctet((*p).to_string()));
            }
            let v4: crate::addr::Ip = p.parse()?;
            out.push((v4.0 >> 16) as u16);
            out.push(v4.0 as u16);
            continue;
        }
        if p.is_empty() || p.len() > 4 || !p.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(ParseError::BadOctet((*p).to_string()));
        }
        out.push(u16::from_str_radix(p, 16).expect("hex digits"));
    }
    Ok(out)
}

/// An IPv6 CIDR prefix (normalized: host bits zeroed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix6 {
    addr: Ip6,
    len: u8,
}

impl Prefix6 {
    /// Builds a prefix, zeroing host bits.
    ///
    /// # Panics
    /// Panics if `len > 128`.
    pub const fn new(addr: Ip6, len: u8) -> Prefix6 {
        assert!(len <= 128);
        let mask: u128 = if len == 0 { 0 } else { u128::MAX << (128 - len) };
        Prefix6 {
            addr: Ip6(addr.0 & mask),
            len,
        }
    }

    /// The network address.
    pub const fn network(self) -> Ip6 {
        self.addr
    }

    /// The prefix length.
    #[allow(clippy::len_without_is_empty)] // a prefix is never "empty"
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Containment test.
    pub const fn contains(self, ip: Ip6) -> bool {
        let mask: u128 = if self.len == 0 {
            0
        } else {
            u128::MAX << (128 - self.len)
        };
        ip.0 & mask == self.addr.0
    }
}

impl fmt::Display for Prefix6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Prefix6 {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Prefix6, ParseError> {
        let (a, l) = s
            .split_once('/')
            .ok_or_else(|| ParseError::BadPrefixLen(s.to_string()))?;
        let addr: Ip6 = a.parse()?;
        let len: u8 = l
            .parse()
            .map_err(|_| ParseError::BadPrefixLen(l.to_string()))?;
        if len > 128 {
            return Err(ParseError::BadPrefixLen(l.to_string()));
        }
        Ok(Prefix6::new(addr, len))
    }
}

/// Why an IPv6 address passes through anonymization unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special6Kind {
    /// `::`.
    Unspecified,
    /// `::1`.
    Loopback,
    /// `fe80::/10`.
    LinkLocal,
    /// `ff00::/8` (all multicast, including the protocol groups).
    Multicast,
    /// `::ffff:0:0/96` — IPv4-mapped; the v4 tail is handled by the v4 map.
    V4Mapped,
}

/// Classifies special IPv6 addresses (`None` = ordinary, anonymizable).
///
/// Note `2001:db8::/32` (documentation space) is *not* special: real
/// configs should never carry it, and if they do it is as identifying as
/// any other prefix.
pub fn special6_kind(ip: Ip6) -> Option<Special6Kind> {
    if ip == Ip6::UNSPECIFIED {
        return Some(Special6Kind::Unspecified);
    }
    if ip == Ip6::LOOPBACK {
        return Some(Special6Kind::Loopback);
    }
    if Prefix6::new(Ip6(0xfe80u128 << 112), 10).contains(ip) {
        return Some(Special6Kind::LinkLocal);
    }
    if Prefix6::new(Ip6(0xffu128 << 120), 8).contains(ip) {
        return Some(Special6Kind::Multicast);
    }
    if Prefix6::new(Ip6(0xffffu128 << 32), 96).contains(ip) {
        return Some(Special6Kind::V4Mapped);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(s: &str) -> String {
        s.parse::<Ip6>().unwrap().to_string()
    }

    #[test]
    fn parse_and_canonicalize() {
        assert_eq!(rt("2001:db8::1"), "2001:db8::1");
        assert_eq!(rt("2001:0db8:0000:0000:0000:0000:0000:0001"), "2001:db8::1");
        assert_eq!(rt("::"), "::");
        assert_eq!(rt("::1"), "::1");
        assert_eq!(rt("2001:DB8::A"), "2001:db8::a");
        assert_eq!(rt("1:0:0:2:0:0:0:3"), "1:0:0:2::3"); // longest run wins
        assert_eq!(rt("1:0:0:2:0:0:3:4"), "1::2:0:0:3:4"); // leftmost on tie
    }

    #[test]
    fn no_single_group_compression() {
        // RFC 5952 §4.2.2: one zero group is not compressed.
        assert_eq!(rt("2001:db8:0:1:1:1:1:1"), "2001:db8:0:1:1:1:1:1");
    }

    #[test]
    fn embedded_ipv4() {
        let ip: Ip6 = "::ffff:192.0.2.1".parse().unwrap();
        assert_eq!(ip.segments()[6], 0xc000);
        assert_eq!(ip.segments()[7], 0x0201);
        assert_eq!(special6_kind(ip), Some(Special6Kind::V4Mapped));
    }

    #[test]
    fn zone_ids_are_rejected() {
        // `%zone` suffixes never appear in configs; reject rather than
        // silently strip.
        assert!("fe80::1%eth0".parse::<Ip6>().is_err());
    }

    #[test]
    fn parse_rejections() {
        for s in [
            "",
            ":::",
            "1:2:3:4:5:6:7",        // too few, no ::
            "1:2:3:4:5:6:7:8:9",    // too many
            "1::2::3",              // two ::
            "12345::",              // group too long
            "g::1",                 // non-hex
            "1:2:3:4:5:6:7:8::",    // :: of zero groups after full count
            "::1.2.3.4.5",
        ] {
            assert!(s.parse::<Ip6>().is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn bits_and_lcp() {
        let a: Ip6 = "2001:db8::1".parse().unwrap();
        let b: Ip6 = "2001:db8::2".parse().unwrap();
        assert_eq!(a.common_prefix_len(b), 126);
        assert!(a.bit(127));
        assert!(!a.bit(0));
        assert_eq!(a.with_bit(127, false), "2001:db8::".parse().unwrap());
    }

    #[test]
    fn prefix6_contains() {
        let p: Prefix6 = "2001:db8:aa00::/40".parse().unwrap();
        assert!(p.contains("2001:db8:aaff::1".parse().unwrap()));
        assert!(!p.contains("2001:db8:ab00::1".parse().unwrap()));
        assert_eq!(p.to_string(), "2001:db8:aa00::/40");
    }

    #[test]
    fn specials() {
        assert_eq!(special6_kind("::".parse().unwrap()), Some(Special6Kind::Unspecified));
        assert_eq!(special6_kind("::1".parse().unwrap()), Some(Special6Kind::Loopback));
        assert_eq!(
            special6_kind("fe80::dead:beef".parse().unwrap()),
            Some(Special6Kind::LinkLocal)
        );
        assert_eq!(
            special6_kind("ff02::5".parse().unwrap()),
            Some(Special6Kind::Multicast)
        );
        assert_eq!(special6_kind("2001:db8::1".parse().unwrap()), None);
        assert_eq!(special6_kind("2400:cb00::1".parse().unwrap()), None);
    }

    #[test]
    fn ordering_matches_numeric() {
        let a: Ip6 = "::1".parse().unwrap();
        let b: Ip6 = "::2".parse().unwrap();
        assert!(a < b);
    }
}
