//! The taxonomy of *special* addresses that anonymization must leave alone.
//!
//! Paper §3.2 / §4.3: "Some addresses used in configuration files have
//! special meanings and must not be modified at all, e.g., netmasks …
//! [and] all special IP addresses (e.g., netmasks, multicast) are passed
//! through unchanged." We implement the full set the extended `-a50`
//! algorithm exempts. The anonymizer recursively remaps any *ordinary*
//! address whose image collides with this set, so membership must be a
//! cheap, total predicate.

use crate::addr::Ip;
use crate::mask::Netmask;
use crate::prefix::Prefix;

/// Why an address is special (and therefore passed through unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialKind {
    /// The dotted quad is a contiguous-ones netmask value such as
    /// `255.255.255.0`. This also covers `0.0.0.0` and
    /// `255.255.255.255` (the all-zeros / all-ones masks), which double
    /// as the unspecified and limited-broadcast addresses.
    MaskValued,
    /// Class D multicast, `224.0.0.0/4` (OSPF's `224.0.0.5`, RIP's
    /// `224.0.0.9`, and friends must survive verbatim).
    Multicast,
    /// Class E reserved space, `240.0.0.0/4`, excluding
    /// `255.255.255.255` which reports as [`SpecialKind::MaskValued`].
    Reserved,
    /// Loopback, `127.0.0.0/8`.
    Loopback,
    /// Link-local, `169.254.0.0/16`.
    LinkLocal,
    /// The wildcard-valued quads used by access lists, recognized when the
    /// ones are contiguous from the LSB (e.g. `0.0.0.255`, `0.0.3.255`).
    WildcardValued,
}

/// Classifies `ip`, returning `None` for ordinary (anonymizable) addresses.
///
/// Note that RFC 1918 private space (`10/8`, `172.16/12`, `192.168/16`) is
/// deliberately *not* special: the paper anonymizes private addresses like
/// any other because their internal structure still describes the owner's
/// network (only AS numbers get the public/private exemption).
pub fn special_kind(ip: Ip) -> Option<SpecialKind> {
    const LOOPBACK: Prefix = Prefix::new(Ip::from_octets(127, 0, 0, 0), 8);
    const LINK_LOCAL: Prefix = Prefix::new(Ip::from_octets(169, 254, 0, 0), 16);
    const MULTICAST: Prefix = Prefix::new(Ip::from_octets(224, 0, 0, 0), 4);
    const RESERVED: Prefix = Prefix::new(Ip::from_octets(240, 0, 0, 0), 4);

    if Netmask::from_u32(ip.0).is_some() {
        return Some(SpecialKind::MaskValued);
    }
    if MULTICAST.contains(ip) {
        return Some(SpecialKind::Multicast);
    }
    if RESERVED.contains(ip) {
        return Some(SpecialKind::Reserved);
    }
    if LOOPBACK.contains(ip) {
        return Some(SpecialKind::Loopback);
    }
    if LINK_LOCAL.contains(ip) {
        return Some(SpecialKind::LinkLocal);
    }
    // Wildcard-valued: ones contiguous from the LSB. 0.0.0.0 and
    // 255.255.255.255 already matched as masks; values like 0.0.0.3
    // appear constantly in ACLs and must pass through.
    if ip.0 & ip.0.wrapping_add(1) == 0 {
        return Some(SpecialKind::WildcardValued);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind(s: &str) -> Option<SpecialKind> {
        special_kind(s.parse().unwrap())
    }

    #[test]
    fn masks_are_special() {
        assert_eq!(kind("255.255.255.0"), Some(SpecialKind::MaskValued));
        assert_eq!(kind("255.255.255.252"), Some(SpecialKind::MaskValued));
        assert_eq!(kind("0.0.0.0"), Some(SpecialKind::MaskValued));
        assert_eq!(kind("255.255.255.255"), Some(SpecialKind::MaskValued));
        assert_eq!(kind("128.0.0.0"), Some(SpecialKind::MaskValued));
    }

    #[test]
    fn wildcards_are_special() {
        assert_eq!(kind("0.0.0.255"), Some(SpecialKind::WildcardValued));
        assert_eq!(kind("0.0.0.3"), Some(SpecialKind::WildcardValued));
        assert_eq!(kind("0.255.255.255"), Some(SpecialKind::WildcardValued));
    }

    #[test]
    fn protocol_multicast_is_special() {
        assert_eq!(kind("224.0.0.5"), Some(SpecialKind::Multicast));
        assert_eq!(kind("224.0.0.9"), Some(SpecialKind::Multicast));
        assert_eq!(kind("239.1.2.3"), Some(SpecialKind::Multicast));
    }

    #[test]
    fn loopback_and_linklocal() {
        assert_eq!(kind("127.0.0.1"), Some(SpecialKind::Loopback));
        assert_eq!(kind("169.254.10.20"), Some(SpecialKind::LinkLocal));
    }

    #[test]
    fn class_e_is_reserved() {
        assert_eq!(kind("240.0.0.1"), Some(SpecialKind::Reserved));
        assert_eq!(kind("254.1.2.3"), Some(SpecialKind::Reserved));
    }

    #[test]
    fn ordinary_addresses_are_not_special() {
        for s in [
            "10.1.2.3",
            "192.168.1.1",
            "172.16.5.5",
            "8.8.8.8",
            "203.0.113.99",
            "1.1.1.1",
        ] {
            assert_eq!(kind(s), None, "{s} should be ordinary");
        }
    }

    #[test]
    fn special_set_is_stable_under_reporting() {
        // Every special address classifies identically on repeated calls
        // (pure function) — guards against accidental interior state.
        let ip: Ip = "224.0.0.5".parse().unwrap();
        assert_eq!(special_kind(ip), special_kind(ip));
    }
}
