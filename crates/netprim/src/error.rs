//! Parse errors for the textual address forms found in configuration files.

use std::fmt;

/// Error returned when a dotted-quad, netmask, or prefix fails to parse.
///
/// The anonymizer treats parse failure as "this token is not an address" and
/// falls through to the generic string rules, so the variants carry enough
/// information for diagnostics but no heap allocation beyond the offending
/// input length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The string did not have exactly four dot-separated components.
    WrongComponentCount(usize),
    /// A component was empty or contained a non-digit character.
    BadOctet(String),
    /// A numeric component exceeded 255.
    OctetOutOfRange(u32),
    /// A prefix length was missing or not in `0..=32`.
    BadPrefixLen(String),
    /// The dotted quad was not a contiguous-ones netmask.
    NotAMask(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::WrongComponentCount(n) => {
                write!(f, "expected 4 dotted components, found {n}")
            }
            ParseError::BadOctet(s) => write!(f, "invalid octet {s:?}"),
            ParseError::OctetOutOfRange(v) => write!(f, "octet {v} out of range 0..=255"),
            ParseError::BadPrefixLen(s) => write!(f, "invalid prefix length {s:?}"),
            ParseError::NotAMask(s) => write!(f, "{s:?} is not a contiguous netmask"),
        }
    }
}

impl std::error::Error for ParseError {}
