//! Property tests for the IPv4 primitives: the algebraic laws every
//! higher layer silently depends on.

use confanon_netprim::{Ip, Netmask, Prefix, WildcardMask};
use confanon_testkit::props::any;

confanon_testkit::props! {
    cases = 256;

    /// Display/parse round trip for every address.
    fn ip_round_trip(raw in any::<u32>()) {
        let ip = Ip(raw);
        let back: Ip = ip.to_string().parse().expect("display parses");
        assert_eq!(back, ip);
    }

    /// Bit accessors are consistent with the integer value.
    fn bit_accessors(raw in any::<u32>(), i in 0u8..32) {
        let ip = Ip(raw);
        assert_eq!(ip.bit(i), (raw >> (31 - i)) & 1 == 1);
        assert_eq!(ip.with_bit(i, ip.bit(i)), ip);
        assert_ne!(ip.with_bit(i, !ip.bit(i)), ip);
    }

    /// `common_prefix_len` is symmetric, bounded, and consistent with
    /// prefix containment.
    fn lcp_laws(a in any::<u32>(), b in any::<u32>(), len in 0u8..=32) {
        let (a, b) = (Ip(a), Ip(b));
        let l = a.common_prefix_len(b);
        assert_eq!(l, b.common_prefix_len(a));
        assert!(l <= 32);
        let p = Prefix::new(a, len);
        if l >= len {
            assert!(p.contains(b), "lcp {l} >= {len} but {p} !contains {b}");
        }
        if p.contains(b) {
            assert!(l >= len);
        }
    }

    /// A prefix contains exactly its `size()` addresses (checked via the
    /// boundary addresses for tractability).
    fn prefix_boundaries(raw in any::<u32>(), len in 1u8..=32) {
        let p = Prefix::new(Ip(raw), len);
        assert!(p.contains(p.network()));
        assert!(p.contains(p.last()));
        if p.last().0 < u32::MAX {
            assert!(!p.contains(Ip(p.last().0 + 1)));
        }
        if p.network().0 > 0 {
            assert!(!p.contains(Ip(p.network().0 - 1)));
        }
    }

    /// Children partition their parent exactly.
    fn children_partition(raw in any::<u32>(), len in 0u8..32) {
        let p = Prefix::new(Ip(raw), len);
        let (l, r) = p.children().expect("len < 32");
        assert!(p.contains_prefix(l) && p.contains_prefix(r));
        assert!(!l.contains_prefix(r) && !r.contains_prefix(l));
        // `size()` saturates at u32::MAX for /0, so compare against the
        // true address count.
        let true_size = 1u64 << (32 - len);
        assert_eq!(u64::from(l.size()) + u64::from(r.size()), true_size);
    }

    /// Netmask and wildcard are exact complements at every length.
    fn mask_wildcard_duality(len in 0u8..=32) {
        let m = Netmask::from_len(len);
        let w = WildcardMask::from_prefix_len(len);
        assert_eq!(m.to_u32(), !w.0);
        assert_eq!(w.prefix_len(), Some(len));
        let reparsed: Netmask = m.to_string().parse().expect("mask reparses");
        assert_eq!(reparsed, m);
    }

    /// Wildcard match agrees with prefix containment for aligned bases.
    fn wildcard_matches_containment(raw in any::<u32>(), other in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(Ip(raw), len);
        let w = WildcardMask::from_prefix_len(len);
        assert_eq!(w.matches(p.network(), Ip(other)), p.contains(Ip(other)));
    }
}
