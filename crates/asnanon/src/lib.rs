//! # confanon-asnanon — AS number and BGP community anonymization
//!
//! Paper §4.4–§4.5. "Public ASNs need to be anonymized because they are
//! globally unique and the mapping between public ASN and network owner
//! can be obtained from many sources. There are no semantics and no
//! relationships embedded in public ASNs, so a random permutation can be
//! used to anonymize them. Since private ASNs are not globally unique and
//! do not leak identity information, they are not anonymized."
//!
//! * [`AsnMap`] — keyed permutation of the public range (1..=64511) by
//!   cycle-walking a Feistel bijection; private ASNs (64512..=65535) and
//!   the reserved ASN 0 pass through;
//! * [`CommunityMap`] — `asn:value` anonymization: the ASN half goes
//!   through [`AsnMap`], the value half through an independent keyed
//!   permutation of `u16` (a permutation rather than a hash so distinct
//!   communities never merge — merging would fabricate relationships);
//! * [`rewrite`] — the §4.4 regexp machinery: enumerate the language a
//!   numeric atom accepts over all 2^16 ASNs, map it, and rebuild the
//!   pattern as the alternation of the image (optionally compacted
//!   through the minimal-DFA → regexp pipeline of `confanon-regexlang`).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod map;
pub mod map32;
pub mod rewrite;

pub use map::{is_public, AsnMap, CommunityMap, LargeCommunityMap, PRIVATE_ASN_START, PUBLIC_ASN_COUNT};
pub use map32::{is_public32, AsnMap32, AS_TRANS, PRIVATE_ASN32_START};
pub use rewrite::{
    rewrite_aspath_regex, rewrite_aspath_regex32, rewrite_community_regex, Rewrite32Error,
    RewriteOptions,
};
