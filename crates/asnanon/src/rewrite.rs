//! Regexp rewriting: the §4.4 language-enumeration method.
//!
//! A policy regexp such as `(_1239_|_70[2-5]_)` must accept, after
//! anonymization, exactly the images of the ASNs it accepted before. The
//! algorithm (verbatim from the paper):
//!
//! 1. locate the *numeric atoms* — the maximal subpatterns standing in a
//!    number position (between delimiters like `_`, `^`, `$`, `:`, or
//!    alternation boundaries);
//! 2. enumerate the language of each atom by "simply applying the regexp
//!    to a list of all 2^16 ASNs and seeing which it accepts";
//! 3. if the language contains only private ASNs, leave the atom alone;
//!    otherwise map every accepted number (public through the
//!    permutation, private to itself) and replace the atom with the
//!    alternation of the image set — `70[1-3]` becomes, e.g.,
//!    `14041|2212|33618`;
//! 4. optionally compact the alternation through minimal-DFA → regexp
//!    synthesis ([`RewriteOptions::compact`], the paper's proposed
//!    extension).
//!
//! Inside a numeric atom, `.` is a *digit* wildcard (`7[1-5]..` accepts
//! 7100..=7599): enumeration over decimal strings makes this exact. A
//! repeated dot (`.*`, `.+`) is path-level glue, never part of an atom.
//!
//! Community regexps (`701:7[1-5]..`) are handled the same way with the
//! `:` literal splitting ASN-domain atoms from value-domain atoms (§4.5).
//!
//! **Semantic model.** Enumeration treats an atom as matching *whole*
//! numbers, exactly as the paper's example does ("70[1-3], becomes
//! 701|702|703"). POSIX unanchored search would additionally let an
//! unanchored atom match a digit substring of a longer number
//! (`7[1-5]..` against `71234`); neither the paper nor this
//! implementation models that corner, and well-formed policies always
//! delimit number positions with `_`, `^`, `$`, or `:` anyway.

use confanon_regexlang::ast::Ast;
use confanon_regexlang::dfa::dfa_for;
use confanon_regexlang::lang::{accepted_asns, alternation_of};
use confanon_regexlang::synth::synthesize;
use confanon_regexlang::{parse, CharClass, ParseErr};

use crate::map::{is_public, AsnMap, CommunityMap};

/// Options controlling the rewriting.
#[derive(Debug, Clone, Copy, Default)]
pub struct RewriteOptions {
    /// Re-synthesize each rewritten atom from its minimal DFA instead of
    /// emitting the raw alternation. "The resulting regexps could be very
    /// long, but this is not a problem when anonymized configs are
    /// primarily analyzed by software tools" — so the paper left this
    /// off; we implement it as the documented extension.
    pub compact: bool,
}

/// Which permutation applies to an atom.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Domain {
    AsPath,
    CommunityAsn,
    CommunityValue,
}

/// A rewriting result: the new pattern plus the public ASNs the original
/// pattern named (the pre-image language of its ASN-domain atoms), which
/// the leak recorder of the §6.1 methodology needs.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The rewritten pattern text.
    pub pattern: String,
    /// Public ASNs accepted by the original pattern's ASN-position atoms
    /// (empty for universal atoms, which name nobody in particular).
    pub public_asns_named: Vec<u16>,
}

/// Rewrites an AS-path regexp (e.g. from `ip as-path access-list`).
pub fn rewrite_aspath_regex(
    pattern: &str,
    map: &AsnMap,
    opts: RewriteOptions,
) -> Result<String, ParseErr> {
    rewrite_aspath_regex_full(pattern, map, opts).map(|o| o.pattern)
}

/// Like [`rewrite_aspath_regex`] but also reports the named public ASNs.
pub fn rewrite_aspath_regex_full(
    pattern: &str,
    map: &AsnMap,
    opts: RewriteOptions,
) -> Result<RewriteOutcome, ParseErr> {
    let ast = parse(pattern)?;
    let mut ctx = Ctx {
        asn: map,
        community: None,
        opts,
        named: Vec::new(),
    };
    let pattern = ctx.rewrite(&ast, Domain::AsPath).to_pattern();
    Ok(RewriteOutcome {
        pattern,
        public_asns_named: ctx.named,
    })
}

/// Rewrites a community regexp (e.g. from `ip community-list`): atoms left
/// of the top-level `:` use the ASN permutation, atoms right of it the
/// value permutation.
pub fn rewrite_community_regex(
    pattern: &str,
    map: &CommunityMap,
    opts: RewriteOptions,
) -> Result<String, ParseErr> {
    rewrite_community_regex_full(pattern, map, opts).map(|o| o.pattern)
}

/// Like [`rewrite_community_regex`] but also reports the named public ASNs.
pub fn rewrite_community_regex_full(
    pattern: &str,
    map: &CommunityMap,
    opts: RewriteOptions,
) -> Result<RewriteOutcome, ParseErr> {
    let ast = parse(pattern)?;
    let mut ctx = Ctx {
        asn: map.asn_map(),
        community: Some(map),
        opts,
        named: Vec::new(),
    };
    let pattern = ctx.rewrite(&ast, Domain::CommunityAsn).to_pattern();
    Ok(RewriteOutcome {
        pattern,
        public_asns_named: ctx.named,
    })
}

struct Ctx<'a> {
    asn: &'a AsnMap,
    community: Option<&'a CommunityMap>,
    opts: RewriteOptions,
    /// Public ASNs named by ASN-domain atoms, for the leak recorder.
    named: Vec<u16>,
}

impl Ctx<'_> {
    fn rewrite(&mut self, ast: &Ast, domain: Domain) -> Ast {
        // Normalize so the scanner always sees a concat sequence.
        let parts: Vec<Ast> = match ast {
            Ast::Concat(v) => v.clone(),
            Ast::Alt(v) => {
                return Ast::alt(v.iter().map(|p| self.rewrite(p, domain)).collect());
            }
            other => vec![other.clone()],
        };

        let mut out: Vec<Ast> = Vec::with_capacity(parts.len());
        let mut run: Vec<Ast> = Vec::new();
        let mut dom = domain;
        for p in &parts {
            if is_atomish(p) {
                run.push(p.clone());
                continue;
            }
            self.flush_run(&mut run, dom, &mut out);
            // A `:` literal switches community regexps to the value
            // domain for the remainder of this concat.
            if dom == Domain::CommunityAsn && is_colon(p) && self.community.is_some() {
                dom = Domain::CommunityValue;
            }
            // Non-atom structure: recurse (alternations / groups may hold
            // their own atoms).
            out.push(match p {
                Ast::Alt(_) | Ast::Concat(_) => self.rewrite(p, dom),
                Ast::Star(a) => Ast::Star(Box::new(self.rewrite(a, dom))),
                Ast::Plus(a) => Ast::Plus(Box::new(self.rewrite(a, dom))),
                Ast::Opt(a) => Ast::Opt(Box::new(self.rewrite(a, dom))),
                other => other.clone(),
            });
        }
        self.flush_run(&mut run, dom, &mut out);
        Ast::concat(out)
    }

    /// Rewrites and emits a pending numeric run.
    fn flush_run(&mut self, run: &mut Vec<Ast>, domain: Domain, out: &mut Vec<Ast>) {
        if run.is_empty() {
            return;
        }
        let atom = Ast::concat(std::mem::take(run));
        // Runs that contain no digit at all (e.g. a lone `.` between
        // underscores) are glue, not numbers.
        if !contains_digit(&atom) {
            out.push(atom);
            return;
        }
        out.push(self.rewrite_atom(&atom, domain));
    }

    fn rewrite_atom(&mut self, atom: &Ast, domain: Domain) -> Ast {
        let lang = accepted_asns(atom);
        if lang.is_empty() {
            // Accepts nothing in the 16-bit universe (e.g. a 6+ digit
            // pattern): nothing to anonymize.
            return atom.clone();
        }
        if lang.len() == 1 << 16 {
            // Universal over the universe (e.g. `[0-9]+`): the image set
            // equals the pre-image set under any permutation.
            return atom.clone();
        }
        let mapped: Vec<u16> = match domain {
            Domain::AsPath | Domain::CommunityAsn => {
                if lang.iter().all(|&a| !is_public(a)) {
                    // Only private ASNs: "no changes are required".
                    return atom.clone();
                }
                self.named.extend(lang.iter().copied().filter(|&a| is_public(a)));
                lang.iter().map(|&a| self.asn.map(a)).collect()
            }
            Domain::CommunityValue => {
                let cm = self.community.expect("value domain implies community");
                lang.iter().map(|&v| cm.map_value(v)).collect()
            }
        };
        let mut mapped = mapped;
        mapped.sort_unstable();
        let alt = alternation_of(&mapped).expect("nonempty language");
        if self.opts.compact {
            let dfa = dfa_for(&alt).minimize();
            if let Some(compact) = synthesize(&dfa) {
                // Use the compact form only when it actually is smaller.
                if compact.to_pattern().len() < alt.to_pattern().len() {
                    return compact;
                }
            }
        }
        alt
    }
}

/// True for nodes that can belong to a numeric atom: digit classes, the
/// single (un-repeated) dot, and any combination thereof. Repeats are
/// allowed only when their body contains a digit (`(0)*` yes, `.*` no).
fn is_atomish(ast: &Ast) -> bool {
    match ast {
        Ast::Epsilon => true,
        Ast::Class(c) => c.is_digit_subset() && !c.is_empty() || *c == CharClass::dot(),
        Ast::Concat(v) | Ast::Alt(v) => v.iter().all(is_atomish),
        Ast::Star(a) | Ast::Plus(a) | Ast::Opt(a) => is_atomish(a) && contains_digit(a),
    }
}

/// True if the subtree contains at least one digit-only class.
fn contains_digit(ast: &Ast) -> bool {
    match ast {
        Ast::Epsilon => false,
        Ast::Class(c) => c.is_digit_subset() && !c.is_empty(),
        Ast::Concat(v) | Ast::Alt(v) => v.iter().any(contains_digit),
        Ast::Star(a) | Ast::Plus(a) | Ast::Opt(a) => contains_digit(a),
    }
}

/// True for the literal `:` class.
fn is_colon(ast: &Ast) -> bool {
    matches!(ast, Ast::Class(c) if *c == CharClass::single(b':'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use confanon_regexlang::Regex;

    fn maps() -> (AsnMap, CommunityMap) {
        (AsnMap::new(b"secret"), CommunityMap::new(b"secret"))
    }

    /// Oracle check: for every ASN in the universe, `rewritten` accepts
    /// `map(asn)` exactly when `original` accepts `asn` (as a full
    /// number, in as-path position).
    fn check_aspath_language(original: &str, rewritten: &str, m: &AsnMap) {
        let pre = Regex::compile(original).unwrap();
        let post = Regex::compile(rewritten).unwrap();
        for asn in 0..=u16::MAX {
            let s = asn.to_string();
            let t = m.map(asn).to_string();
            assert_eq!(
                pre.is_match(&s),
                post.is_match(&t),
                "{original} vs {rewritten} at asn {asn}"
            );
        }
    }

    #[test]
    fn range_atom_becomes_image_alternation() {
        let (m, _) = maps();
        let out = rewrite_aspath_regex("70[1-3]", &m, RewriteOptions::default()).unwrap();
        let mut want: Vec<String> = [701u16, 702, 703].iter().map(|&a| m.map(a).to_string()).collect();
        want.sort_by_key(|s| s.parse::<u16>().unwrap());
        assert_eq!(out, want.join("|"));
    }

    #[test]
    fn figure1_aspath_regexp_language_preserved() {
        let (m, _) = maps();
        let pat = "(_1239_|_70[2-5]_)";
        let out = rewrite_aspath_regex(pat, &m, RewriteOptions::default()).unwrap();
        // The delimiters must survive.
        assert!(out.contains('_'));
        check_aspath_language(pat, &out, &m);
    }

    #[test]
    fn digit_wildcard_is_enumerated() {
        let (m, _) = maps();
        let pat = "_123._"; // 1230..=1239 in as-path position
        let out = rewrite_aspath_regex(pat, &m, RewriteOptions::default()).unwrap();
        check_aspath_language(pat, &out, &m);
    }

    #[test]
    fn private_only_atoms_unchanged() {
        let (m, _) = maps();
        // 65000..=65009: all private.
        let pat = "_6500[0-9]_";
        let out = rewrite_aspath_regex(pat, &m, RewriteOptions::default()).unwrap();
        assert_eq!(out, pat);
    }

    #[test]
    fn mixed_public_private_maps_public_keeps_private() {
        let (m, _) = maps();
        // 64510 public, 64512+ private: pattern accepting 64510..=64513.
        let pat = "6451[0-3]";
        let out = rewrite_aspath_regex(pat, &m, RewriteOptions::default()).unwrap();
        let post = Regex::compile(&out).unwrap();
        assert!(post.is_full_match(&m.map(64510).to_string()));
        assert!(post.is_full_match(&m.map(64511).to_string()));
        assert!(post.is_full_match("64512"));
        assert!(post.is_full_match("64513"));
    }

    #[test]
    fn dot_star_glue_untouched() {
        let (m, _) = maps();
        let pat = "^701_.*";
        let out = rewrite_aspath_regex(pat, &m, RewriteOptions::default()).unwrap();
        assert!(out.ends_with(".*"), "glue lost: {out}");
        assert!(out.starts_with('^'));
        check_aspath_language_prefixed(pat, &out, &m);
    }

    /// Like `check_aspath_language` but tests paths with a suffix, since
    /// `.*` patterns are about multi-ASN paths.
    fn check_aspath_language_prefixed(original: &str, rewritten: &str, m: &AsnMap) {
        let pre = Regex::compile(original).unwrap();
        let post = Regex::compile(rewritten).unwrap();
        for asn in (0..=u16::MAX).step_by(127) {
            let s = format!("{} 100", asn);
            let t = format!("{} 100", m.map(asn));
            assert_eq!(pre.is_match(&s), post.is_match(&t), "at asn {asn}");
        }
    }

    #[test]
    fn alternation_of_plain_asns() {
        // "The use of alternation in regexps (e.g., (701|1239).*) is very
        // common … easily handled by anonymizing each ASN individually."
        let (m, _) = maps();
        let pat = "(701|1239).*";
        let out = rewrite_aspath_regex(pat, &m, RewriteOptions::default()).unwrap();
        let a = m.map(701);
        let b = m.map(1239);
        assert!(out.contains(&a.to_string()), "{out}");
        assert!(out.contains(&b.to_string()), "{out}");
        assert!(out.ends_with(".*"));
    }

    #[test]
    fn community_regexp_both_halves() {
        let (_, cm) = maps();
        let pat = "701:7[1-5]..";
        let out = rewrite_community_regex(pat, &cm, RewriteOptions::default()).unwrap();
        let post = Regex::compile(&out).unwrap();
        let pre = Regex::compile(pat).unwrap();
        // For a sample of values, pre accepts `701:v` iff post accepts
        // `map(701):map_value(v)`.
        // Whole-community semantics (the paper's model: a regexp accepts
        // whole numbers, not digit substrings of longer numbers).
        let masn = cm.asn_map().map(701);
        for v in (0..=u16::MAX).step_by(97) {
            let s = format!("701:{v}");
            let t = format!("{masn}:{}", cm.map_value(v));
            assert_eq!(pre.is_full_match(&s), post.is_full_match(&t), "value {v}");
        }
        // And a wrong ASN half must not match.
        assert!(!post.is_full_match(&format!("{}:{}", masn.wrapping_add(1), cm.map_value(7100))));
    }

    #[test]
    fn universal_value_side_untouched() {
        let (_, cm) = maps();
        let pat = "701:[0-9]+";
        let out = rewrite_community_regex(pat, &cm, RewriteOptions::default()).unwrap();
        assert!(out.ends_with(":[0-9]+"), "{out}");
    }

    #[test]
    fn compact_option_produces_equivalent_smaller_pattern() {
        let (m, _) = maps();
        let pat = "70[1-5]";
        let plain = rewrite_aspath_regex(pat, &m, RewriteOptions::default()).unwrap();
        let compact = rewrite_aspath_regex(pat, &m, RewriteOptions { compact: true }).unwrap();
        assert!(compact.len() <= plain.len());
        // Same language either way.
        let a = Regex::compile(&plain).unwrap();
        let b = Regex::compile(&compact).unwrap();
        for asn in (0..=u16::MAX).step_by(61) {
            let s = asn.to_string();
            assert_eq!(a.is_full_match(&s), b.is_full_match(&s), "{asn}");
        }
    }

    #[test]
    fn five_digit_overlong_pattern_untouched() {
        let (m, _) = maps();
        // Accepts only 6-digit strings: empty within the u16 universe.
        let pat = "[1-9][0-9][0-9][0-9][0-9][0-9]";
        let out = rewrite_aspath_regex(pat, &m, RewriteOptions::default()).unwrap();
        assert_eq!(out, pat);
    }

    #[test]
    fn parse_errors_propagate() {
        let (m, _) = maps();
        assert!(rewrite_aspath_regex("(701", &m, RewriteOptions::default()).is_err());
    }
}

// ---------------------------------------------------------------------
// 4-byte ASN rewriting (RFC 4893 extension; see `crate::map32`).
// ---------------------------------------------------------------------

use confanon_regexlang::lang::{accepted_numbers_bounded, LanguageTooLarge};

use crate::map32::{is_public32, AsnMap32};

/// Errors from the 32-bit rewriting path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rewrite32Error {
    /// The pattern failed to parse.
    Parse(ParseErr),
    /// An atom's language over the 2^32 universe is too large to rewrite
    /// as an alternation (and is not universal). The caller should fall
    /// back to hashing the pattern whole.
    LanguageTooLarge(LanguageTooLarge),
}

impl std::fmt::Display for Rewrite32Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rewrite32Error::Parse(e) => write!(f, "{e}"),
            Rewrite32Error::LanguageTooLarge(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Rewrite32Error {}

/// Languages larger than this rewrite to alternations no one can read or
/// run; the caller falls back to conservative hashing.
const LANG32_CAP: usize = 1 << 16;

/// Rewrites an AS-path regexp in the 4-byte ASN world: numeric atoms are
/// enumerated over `0..=u32::MAX` by DFA digit-tree walk, mapped through
/// [`AsnMap32`], and replaced by the alternation of the image.
pub fn rewrite_aspath_regex32(
    pattern: &str,
    map: &AsnMap32,
    _opts: RewriteOptions,
) -> Result<String, Rewrite32Error> {
    let ast = parse(pattern).map_err(Rewrite32Error::Parse)?;
    let out = rewrite32_node(&ast, map)?;
    Ok(out.to_pattern())
}

fn rewrite32_node(ast: &Ast, map: &AsnMap32) -> Result<Ast, Rewrite32Error> {
    let parts: Vec<Ast> = match ast {
        Ast::Concat(v) => v.clone(),
        Ast::Alt(v) => {
            let rewritten: Result<Vec<Ast>, _> =
                v.iter().map(|p| rewrite32_node(p, map)).collect();
            return Ok(Ast::alt(rewritten?));
        }
        other => vec![other.clone()],
    };
    let mut out: Vec<Ast> = Vec::with_capacity(parts.len());
    let mut run: Vec<Ast> = Vec::new();
    for p in &parts {
        if is_atomish(p) {
            run.push(p.clone());
            continue;
        }
        flush32(&mut run, map, &mut out)?;
        out.push(match p {
            Ast::Alt(_) | Ast::Concat(_) => rewrite32_node(p, map)?,
            Ast::Star(a) => Ast::Star(Box::new(rewrite32_node(a, map)?)),
            Ast::Plus(a) => Ast::Plus(Box::new(rewrite32_node(a, map)?)),
            Ast::Opt(a) => Ast::Opt(Box::new(rewrite32_node(a, map)?)),
            other => other.clone(),
        });
    }
    flush32(&mut run, map, &mut out)?;
    Ok(Ast::concat(out))
}

fn flush32(run: &mut Vec<Ast>, map: &AsnMap32, out: &mut Vec<Ast>) -> Result<(), Rewrite32Error> {
    if run.is_empty() {
        return Ok(());
    }
    let atom = Ast::concat(std::mem::take(run));
    if !contains_digit(&atom) {
        out.push(atom);
        return Ok(());
    }
    let lang = accepted_numbers_bounded(&atom, u64::from(u32::MAX), LANG32_CAP)
        .map_err(Rewrite32Error::LanguageTooLarge)?;
    if lang.is_empty() || lang.iter().all(|&a| !is_public32(a as u32)) {
        out.push(atom);
        return Ok(());
    }
    let mut mapped: Vec<u64> = lang
        .iter()
        .map(|&a| u64::from(map.map(a as u32)))
        .collect();
    mapped.sort_unstable();
    out.push(Ast::alt(
        mapped
            .iter()
            .map(|&n| Ast::literal_str(&n.to_string()))
            .collect(),
    ));
    Ok(())
}

#[cfg(test)]
mod tests32 {
    use super::*;
    use confanon_regexlang::Regex;

    #[test]
    fn four_byte_range_rewritten() {
        let m = AsnMap32::new(b"s32");
        let pat = "_39999[0-4]_"; // 399990..=399994, all 4-byte public
        let out = rewrite_aspath_regex32(pat, &m, RewriteOptions::default()).unwrap();
        let re = Regex::compile(&out).unwrap();
        for asn in 399_990u32..=399_994 {
            assert!(re.is_match(&m.map(asn).to_string()), "{asn}: {out}");
        }
        assert!(!re.is_match(&m.map(399_995).to_string()));
    }

    #[test]
    fn two_byte_patterns_agree_with_16bit_path() {
        let m32 = AsnMap32::new(b"shared");
        let m16 = AsnMap::new(b"shared");
        let out32 =
            rewrite_aspath_regex32("_70[1-3]_", &m32, RewriteOptions::default()).unwrap();
        let out16 = rewrite_aspath_regex("_70[1-3]_", &m16, RewriteOptions::default()).unwrap();
        // The 2-byte halves share the permutation (modulo the AS_TRANS
        // dodge), so the outputs coincide for these ASNs.
        assert_eq!(out32, out16);
    }

    #[test]
    fn private_32bit_atoms_unchanged() {
        let m = AsnMap32::new(b"s32");
        let pat = "_420000000[0-9]_";
        let out = rewrite_aspath_regex32(pat, &m, RewriteOptions::default()).unwrap();
        assert_eq!(out, pat);
    }

    #[test]
    fn universal_pattern_rejected_not_exploded() {
        let m = AsnMap32::new(b"s32");
        let err =
            rewrite_aspath_regex32("_[0-9]+_", &m, RewriteOptions::default()).unwrap_err();
        assert!(matches!(err, Rewrite32Error::LanguageTooLarge(_)));
    }
}
