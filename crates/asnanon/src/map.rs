//! Keyed permutations for ASNs and community values.

use confanon_crypto::FeistelPermutation;

/// First ASN of the private range (64512..=65535 are private-use,
/// RFC 1930 / IANA).
pub const PRIVATE_ASN_START: u16 = 64512;

/// Size of the public 16-bit ASN space the permutation acts on
/// (`1..=64511`) — the denominator of any known-plaintext attack's
/// chance level: guessing one mapping blind succeeds with probability
/// `1 / PUBLIC_ASN_COUNT`.
pub const PUBLIC_ASN_COUNT: u64 = PRIVATE_ASN_START as u64 - 1;

/// True if `asn` is in the public, globally-unique range that must be
/// anonymized. ASN 0 is reserved and treated like a private value (it
/// cannot identify anyone).
pub fn is_public(asn: u16) -> bool {
    asn != 0 && asn < PRIVATE_ASN_START
}

/// The keyed random permutation over public AS numbers.
///
/// The underlying Feistel network is a bijection on all of `u16`; public
/// inputs are *cycle-walked* (re-applied until the image is public),
/// which restricts the bijection to a bijection on the public range.
/// Private ASNs and 0 map to themselves per the paper.
///
/// ```
/// use confanon_asnanon::AsnMap;
/// let m = AsnMap::new(b"owner-secret");
/// assert_eq!(m.map(65001), 65001);          // private: unchanged
/// assert_ne!(m.map(701), 701);              // public: moved (w.h.p.)
/// assert!(m.map(701) < 64512 && m.map(701) != 0);
/// ```
#[derive(Clone)]
pub struct AsnMap {
    perm: FeistelPermutation,
}

impl AsnMap {
    /// Creates a map keyed by the owner secret.
    pub fn new(owner_secret: &[u8]) -> AsnMap {
        AsnMap {
            perm: FeistelPermutation::new(owner_secret, "asn"),
        }
    }

    /// Maps one ASN.
    pub fn map(&self, asn: u16) -> u16 {
        if !is_public(asn) {
            return asn;
        }
        let mut y = self.perm.apply(asn);
        // Cycle-walk: the orbit returns to `asn` (which is public) after
        // finitely many steps, so this terminates; in expectation it takes
        // ~2^16 / 64511 ≈ 1.02 applications.
        while !is_public(y) {
            y = self.perm.apply(y);
        }
        y
    }

    /// Inverts the map (useful for audits and tests).
    pub fn unmap(&self, asn: u16) -> u16 {
        if !is_public(asn) {
            return asn;
        }
        let mut x = self.perm.invert(asn);
        while !is_public(x) {
            x = self.perm.invert(x);
        }
        x
    }

    /// Parameter check value of the underlying permutation (for
    /// persisted-state validation; does not reveal the key).
    pub fn check_value(&self) -> u64 {
        self.perm.check_value()
    }
}

/// BGP community (`asn:value`) anonymization.
///
/// §4.5: "To be conservative, we must assume that even the integer part
/// of the attributes … are publicly known and sufficiently distinctive to
/// identify the network owner, so the integer part of community
/// attributes must also be anonymized." The value half uses an
/// independent keyed permutation so that distinct communities stay
/// distinct and equal communities stay equal — referential integrity for
/// the `match community` / `set community` relationship.
#[derive(Clone)]
pub struct CommunityMap {
    asn: AsnMap,
    value: FeistelPermutation,
}

impl CommunityMap {
    /// Creates a map keyed by the owner secret.
    pub fn new(owner_secret: &[u8]) -> CommunityMap {
        CommunityMap {
            asn: AsnMap::new(owner_secret),
            value: FeistelPermutation::new(owner_secret, "community-value"),
        }
    }

    /// Access to the underlying ASN map (shared with plain-ASN rules).
    pub fn asn_map(&self) -> &AsnMap {
        &self.asn
    }

    /// Maps the value half.
    pub fn map_value(&self, v: u16) -> u16 {
        self.value.apply(v)
    }

    /// Maps a structured community.
    pub fn map_pair(&self, asn: u16, value: u16) -> (u16, u16) {
        (self.asn.map(asn), self.map_value(value))
    }

    /// Combined parameter check value over the ASN and value halves.
    pub fn check_value(&self) -> u64 {
        self.asn
            .check_value()
            .rotate_left(32)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ self.value.check_value()
    }

    /// Anonymizes a textual `asn:value` token, returning `None` when the
    /// token is not a well-formed community (the caller falls through to
    /// other rules).
    ///
    /// Well-known communities written numerically (e.g. `no-export` as
    /// `65535:65281`) have a private ASN half and keep it; the value half
    /// is still permuted per the paper's conservative stance.
    pub fn map_token(&self, token: &str) -> Option<String> {
        let (a, v) = token.split_once(':')?;
        let asn: u16 = parse_u16(a)?;
        let value: u16 = parse_u16(v)?;
        let (ma, mv) = self.map_pair(asn, value);
        Some(format!("{ma}:{mv}"))
    }
}

/// Strict decimal u16 parse: digits only, no signs, value ≤ 65535.
fn parse_u16(s: &str) -> Option<u16> {
    if s.is_empty() || s.len() > 5 || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_private_split() {
        assert!(is_public(1));
        assert!(is_public(701));
        assert!(is_public(64511));
        assert!(!is_public(0));
        assert!(!is_public(64512));
        assert!(!is_public(65535));
    }

    #[test]
    fn private_asns_fixed() {
        let m = AsnMap::new(b"s");
        for asn in [0u16, 64512, 65000, 65535] {
            assert_eq!(m.map(asn), asn);
        }
    }

    #[test]
    fn public_maps_to_public_bijectively() {
        let m = AsnMap::new(b"s");
        let mut seen = vec![false; 1 << 16];
        for asn in 1..PRIVATE_ASN_START {
            let y = m.map(asn);
            assert!(is_public(y), "{asn} -> {y} not public");
            assert!(!seen[y as usize], "collision at image {y}");
            seen[y as usize] = true;
            assert_eq!(m.unmap(y), asn);
        }
    }

    #[test]
    fn deterministic_per_secret() {
        let a = AsnMap::new(b"s");
        let b = AsnMap::new(b"s");
        let c = AsnMap::new(b"t");
        assert_eq!(a.map(701), b.map(701));
        assert_ne!(a.map(701), c.map(701)); // w.h.p. for distinct keys
    }

    #[test]
    fn community_token_round_trip() {
        let m = CommunityMap::new(b"s");
        let out = m.map_token("701:120").unwrap();
        let (a, v) = out.split_once(':').unwrap();
        assert_eq!(a.parse::<u16>().unwrap(), m.asn_map().map(701));
        assert_eq!(v.parse::<u16>().unwrap(), m.map_value(120));
        // Referential integrity.
        assert_eq!(m.map_token("701:120"), m.map_token("701:120"));
    }

    #[test]
    fn community_value_is_permutation() {
        let m = CommunityMap::new(b"s");
        let mut seen = std::collections::HashSet::new();
        for v in (0..=u16::MAX).step_by(13) {
            assert!(seen.insert(m.map_value(v)));
        }
    }

    #[test]
    fn malformed_community_tokens_rejected() {
        let m = CommunityMap::new(b"s");
        for t in [
            "701", ":", "701:", ":120", "701:1234567", "a:b", "701:12x", "-1:5", "701:120:3",
        ] {
            assert!(m.map_token(t).is_none(), "{t:?}");
        }
    }

    #[test]
    fn well_known_private_half_kept() {
        let m = CommunityMap::new(b"s");
        let out = m.map_token("65535:65281").unwrap();
        assert!(out.starts_with("65535:"));
    }
}

/// RFC 8092 *large* BGP communities: `GlobalAdmin:Data1:Data2`, three
/// 32-bit fields with the global administrator being an ASN. Another
/// post-paper construct (2017) a contemporary anonymizer must cover —
/// without it the ASN half of `64496:1:2`-style attributes leaks.
#[derive(Clone)]
pub struct LargeCommunityMap {
    asn32: crate::map32::AsnMap32,
    value: confanon_crypto::FeistelPermutation32,
}

impl LargeCommunityMap {
    /// Creates a map keyed by the owner secret.
    pub fn new(owner_secret: &[u8]) -> LargeCommunityMap {
        LargeCommunityMap {
            asn32: crate::map32::AsnMap32::new(owner_secret),
            value: confanon_crypto::FeistelPermutation32::new(owner_secret, "large-community"),
        }
    }

    /// Combined parameter check value over the admin and data halves.
    pub fn check_value(&self) -> u64 {
        self.asn32
            .check_value()
            .rotate_left(32)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ self.value.check_value()
    }

    /// Anonymizes a textual `ga:d1:d2` token; `None` when the token is
    /// not a well-formed large community.
    pub fn map_token(&self, token: &str) -> Option<String> {
        let mut parts = token.split(':');
        let (a, b, c) = (parts.next()?, parts.next()?, parts.next()?);
        if parts.next().is_some() {
            return None;
        }
        let ga = parse_u32(a)?;
        let d1 = parse_u32(b)?;
        let d2 = parse_u32(c)?;
        Some(format!(
            "{}:{}:{}",
            self.asn32.map(ga),
            self.value.apply(d1),
            self.value.apply(d2)
        ))
    }
}

/// Strict decimal u32 parse.
fn parse_u32(s: &str) -> Option<u32> {
    if s.is_empty() || s.len() > 10 || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

#[cfg(test)]
mod large_tests {
    use super::*;

    #[test]
    fn large_community_round_trip() {
        let m = LargeCommunityMap::new(b"s");
        let out = m.map_token("64496:1:2").expect("well formed");
        let parts: Vec<&str> = out.split(':').collect();
        assert_eq!(parts.len(), 3);
        // 64496 is a 2-byte public ASN: stays 2-byte public.
        let ga: u32 = parts[0].parse().unwrap();
        assert!(crate::map32::is_public32(ga));
        assert!(ga <= 65535);
        // Deterministic.
        assert_eq!(m.map_token("64496:1:2"), Some(out));
    }

    #[test]
    fn four_byte_global_admin() {
        let m = LargeCommunityMap::new(b"s");
        let out = m.map_token("199999:7:8").unwrap();
        let ga: u32 = out.split(':').next().unwrap().parse().unwrap();
        assert!(ga > 65535, "4-byte admin stayed 4-byte: {out}");
    }

    #[test]
    fn malformed_large_communities_rejected() {
        let m = LargeCommunityMap::new(b"s");
        for t in ["1:2", "1:2:3:4", "a:2:3", "1::3", "99999999999:1:2", ""] {
            assert!(m.map_token(t).is_none(), "{t:?}");
        }
    }

    #[test]
    fn private_admin_passes_values_still_move() {
        let m = LargeCommunityMap::new(b"s");
        let out = m.map_token("65001:10:20").unwrap();
        assert!(out.starts_with("65001:"), "{out}");
        assert_ne!(out, "65001:10:20");
    }
}
