//! 4-byte AS numbers (RFC 4893 / RFC 6793) — the obvious extension.
//!
//! The paper could write "there are only 2^16 ASNs in BGPv4" in 2004;
//! 4-byte ASNs arrived three years later, so a contemporary release must
//! handle them. The same design carries over:
//!
//! * reserved/private ranges pass through: 0, 23456 (AS_TRANS),
//!   64512..=65534 and 4200000000..=4294967294 (private use, RFC 6996),
//!   65535 and 4294967295 (reserved, RFC 7300);
//! * public ASNs permute through a keyed 32-bit Feistel bijection with
//!   cycle-walking;
//! * the 2-byte/4-byte split is preserved: a 2-byte public ASN maps to a
//!   2-byte public ASN (via the paper's original [`AsnMap`]) and a 4-byte
//!   one to a 4-byte one — whether a config needs 4-byte support is a
//!   structural property old route reflectors genuinely care about;
//! * regexp rewriting enumerates atoms over the 2^32 universe by walking
//!   the decimal digit tree through the DFA
//!   ([`confanon_regexlang::lang::accepted_numbers_bounded`]) rather than
//!   brute force.

use confanon_crypto::FeistelPermutation32;

use crate::map::{is_public, AsnMap};

/// First 4-byte private ASN (RFC 6996).
pub const PRIVATE_ASN32_START: u32 = 4_200_000_000;
/// Last 4-byte private ASN (RFC 6996); 4294967295 itself is reserved.
pub const PRIVATE_ASN32_END: u32 = 4_294_967_294;
/// AS_TRANS (RFC 4893): the 2-byte stand-in for 4-byte ASNs. Mapping it
/// would corrupt the migration semantics, so it is pinned.
pub const AS_TRANS: u32 = 23_456;

/// True if `asn` is public (identity-bearing) in the 32-bit space.
pub fn is_public32(asn: u32) -> bool {
    if asn == AS_TRANS {
        return false;
    }
    if asn <= u32::from(u16::MAX) {
        return is_public(asn as u16);
    }
    !(PRIVATE_ASN32_START..=u32::MAX).contains(&asn)
}

/// Keyed permutation over the public 32-bit ASN space.
#[derive(Clone)]
pub struct AsnMap32 {
    map16: AsnMap,
    perm: FeistelPermutation32,
}

impl AsnMap32 {
    /// Creates a map keyed by the owner secret. The 2-byte half reuses
    /// the paper's 16-bit permutation, so a network anonymized before its
    /// 4-byte migration maps identically afterward.
    pub fn new(owner_secret: &[u8]) -> AsnMap32 {
        AsnMap32 {
            map16: AsnMap::new(owner_secret),
            perm: FeistelPermutation32::new(owner_secret, "asn32"),
        }
    }

    /// The embedded 2-byte map.
    pub fn map16(&self) -> &AsnMap {
        &self.map16
    }

    /// Combined parameter check value over the 2-byte and 4-byte halves.
    pub fn check_value(&self) -> u64 {
        self.map16
            .check_value()
            .rotate_left(32)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ self.perm.check_value()
    }

    /// Maps one ASN, preserving the 2-byte/4-byte split and passing
    /// reserved/private values through.
    pub fn map(&self, asn: u32) -> u32 {
        if !is_public32(asn) {
            return asn;
        }
        if asn <= u32::from(u16::MAX) {
            // 2-byte public, minus AS_TRANS which is excluded above. The
            // 16-bit permutation may land on AS_TRANS, which would turn a
            // plain ASN into the migration sentinel — cycle past it.
            let mut y = self.map16.map(asn as u16);
            while u32::from(y) == AS_TRANS {
                y = self.map16.map(y);
            }
            return u32::from(y);
        }
        // 4-byte public: cycle-walk within the 4-byte public region.
        let mut y = self.perm.apply(asn);
        while !is_public32(y) || y <= u32::from(u16::MAX) {
            y = self.perm.apply(y);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_classification() {
        assert!(is_public32(1));
        assert!(is_public32(701));
        assert!(is_public32(65_536));
        assert!(is_public32(199_999));
        assert!(!is_public32(0));
        assert!(!is_public32(AS_TRANS));
        assert!(!is_public32(64_512));
        assert!(!is_public32(65_535));
        assert!(!is_public32(PRIVATE_ASN32_START));
        assert!(!is_public32(PRIVATE_ASN32_END));
        assert!(!is_public32(u32::MAX));
    }

    #[test]
    fn reserved_and_private_fixed() {
        let m = AsnMap32::new(b"s");
        for asn in [0u32, AS_TRANS, 64_512, 65_535, PRIVATE_ASN32_START, u32::MAX] {
            assert_eq!(m.map(asn), asn);
        }
    }

    #[test]
    fn two_byte_publics_stay_two_byte() {
        let m = AsnMap32::new(b"s");
        for asn in [1u32, 701, 1239, 7018, 64_511] {
            let y = m.map(asn);
            assert!(y <= 65_535, "{asn} -> {y} left the 2-byte space");
            assert!(is_public32(y));
            assert_ne!(y, AS_TRANS);
        }
    }

    #[test]
    fn two_byte_map_agrees_with_paper_map() {
        // Backward compatibility: unless the 16-bit image is AS_TRANS,
        // the 32-bit map equals the paper's 16-bit map.
        let m = AsnMap32::new(b"s");
        for asn in [701u32, 1239, 7018, 3356] {
            let y16 = m.map16().map(asn as u16);
            if u32::from(y16) != AS_TRANS {
                assert_eq!(m.map(asn), u32::from(y16));
            }
        }
    }

    #[test]
    fn four_byte_publics_stay_four_byte() {
        let m = AsnMap32::new(b"s");
        for asn in [65_536u32, 100_000, 199_999, 4_199_999_999] {
            let y = m.map(asn);
            assert!(y > 65_535, "{asn} -> {y} fell into the 2-byte space");
            assert!(is_public32(y), "{asn} -> {y} not public");
        }
    }

    #[test]
    fn injective_across_a_sample() {
        let m = AsnMap32::new(b"s");
        let mut seen = std::collections::HashSet::new();
        for i in 0..20_000u32 {
            let asn = 65_536 + i * 1_009;
            if is_public32(asn) {
                assert!(seen.insert(m.map(asn)), "collision at {asn}");
            }
        }
    }

    #[test]
    fn deterministic_and_keyed() {
        let a = AsnMap32::new(b"s");
        let b = AsnMap32::new(b"s");
        let c = AsnMap32::new(b"t");
        assert_eq!(a.map(100_000), b.map(100_000));
        assert_ne!(a.map(100_000), c.map(100_000));
    }
}
