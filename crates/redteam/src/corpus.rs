//! Corpus views: re-grouping a flat file list into per-network units.
//!
//! Both sides of an audit arrive as `(corpus-relative name, text)` pairs
//! in corpus order — the same sorted order `confanon batch` fixes. The
//! attacks work per *network* (the paper's unit of release), so this
//! module groups files by their first path component, parses each into a
//! [`Config`], and carries the owner's decoy provenance alongside.

use std::collections::{BTreeMap, BTreeSet};

use confanon_iosparse::Config;

/// One network's slice of a corpus: parallel vectors of file names,
/// parsed configs, and decoy provenance flags, all in corpus order.
#[derive(Debug, Clone)]
pub struct NetworkView {
    /// The network name: the first path component of its files, or `"."`
    /// for files at the corpus root.
    pub name: String,
    /// Corpus-relative file names.
    pub files: Vec<String>,
    /// Parsed configs, parallel to `files`.
    pub configs: Vec<Config>,
    /// Decoy provenance, parallel to `files`: true for injected chaff.
    /// Only the corpus *owner* knows these — attacks see the flag solely
    /// to score their trials against ground truth, never to pick inputs.
    pub decoy: Vec<bool>,
}

impl NetworkView {
    /// Number of decoy files in this view.
    pub fn decoy_count(&self) -> usize {
        self.decoy.iter().filter(|d| **d).count()
    }
}

/// Groups `files` into [`NetworkView`]s by first path component,
/// returning the views in name order. `decoys` names the injected chaff
/// files (empty for an original corpus).
pub fn group_networks(files: &[(String, String)], decoys: &BTreeSet<String>) -> Vec<NetworkView> {
    let mut groups: BTreeMap<String, NetworkView> = BTreeMap::new();
    for (name, text) in files {
        let net = match name.split_once('/') {
            Some((head, _)) => head,
            None => ".",
        };
        let view = groups.entry(net.to_string()).or_insert_with(|| NetworkView {
            name: net.to_string(),
            files: Vec::new(),
            configs: Vec::new(),
            decoy: Vec::new(),
        });
        view.files.push(name.clone());
        view.configs.push(Config::parse(text));
        view.decoy.push(decoys.contains(name));
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(v: &[(&str, &str)]) -> Vec<(String, String)> {
        v.iter().map(|(n, t)| (n.to_string(), t.to_string())).collect()
    }

    #[test]
    fn groups_by_first_component_in_name_order() {
        let fs = files(&[
            ("beta/r1.cfg", "hostname b1\n"),
            ("alpha/r1.cfg", "hostname a1\n"),
            ("alpha/r2.cfg", "hostname a2\n"),
            ("loose.cfg", "hostname loose\n"),
        ]);
        let views = group_networks(&fs, &BTreeSet::new());
        let names: Vec<&str> = views.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec![".", "alpha", "beta"]);
        assert_eq!(views[1].files, vec!["alpha/r1.cfg", "alpha/r2.cfg"]);
        assert_eq!(views[1].configs.len(), 2);
        assert_eq!(views[0].files, vec!["loose.cfg"]);
    }

    #[test]
    fn decoy_provenance_rides_along() {
        let fs = files(&[
            ("net/r1.cfg", "hostname r1\n"),
            ("net/zz-decoy-0.cfg", "hostname chaff\n"),
        ]);
        let decoys = BTreeSet::from(["net/zz-decoy-0.cfg".to_string()]);
        let views = group_networks(&fs, &decoys);
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].decoy, vec![false, true]);
        assert_eq!(views[0].decoy_count(), 1);
    }
}
