//! The attack battery: three deterministic de-anonymization attacks,
//! each a pure function of `(pre corpus, post corpus, options)`.
//!
//! The threat model is the paper's §6: the attacker holds the *released*
//! bytes only — never `run_manifest.json`, never the owner secret used
//! for scoring — plus whatever public knowledge the specific attack
//! grants (a candidate-network set, the population's degree signatures,
//! or *m* known plaintext/ciphertext ASN pairs). The pre-anonymization
//! corpus appears in these signatures purely as ground truth for
//! *scoring* the attacker's guesses.

use std::collections::{BTreeMap, BTreeSet};

use confanon_asnanon::{is_public, AsnMap, PUBLIC_ASN_COUNT};
use confanon_confgen::{generate_dataset, DatasetSpec};
use confanon_design::extract_design;
use confanon_iosparse::Config;
use confanon_testkit::rng::{Rng, SeedableRng, StdRng};
use confanon_validate::{subnet_fingerprint, FingerprintIndex};

use crate::corpus::NetworkView;

/// Seed salt separating the distractor-candidate stream from everything
/// else derived from the audit seed.
const DISTRACTOR_SALT: u64 = 0xD15A_57E5_0000_0001;

/// Seed salt for the known-plaintext pair selection.
const KNOWN_PAIR_SALT: u64 = 0x4B50_A125_0000_0002;

/// Outcome of the §6.2/§6.3 prefix-structure fingerprint attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixAttack {
    /// Networks probed (every released network, decoys included — the
    /// attacker cannot tell chaff from signal).
    pub trials: u64,
    /// Networks whose subnet fingerprint matched exactly one candidate,
    /// and that candidate was the true source network.
    pub successes: u64,
    /// Networks whose true source ranked within the top-*k* candidates
    /// by fingerprint distance.
    pub top_k_successes: u64,
    /// Size of the candidate index the attacker searched.
    pub candidates_total: u64,
}

/// Runs the prefix-structure fingerprint attack: each released
/// network's subnet-size histogram is matched against a candidate index
/// holding every pre-anonymization network plus `distractors` seeded
/// synthetic networks (public knowledge an attacker could assemble from
/// looking like-sized networks up).
pub fn prefix_attack(
    pre: &[NetworkView],
    post: &[NetworkView],
    seed: u64,
    top_k: usize,
    distractors: usize,
) -> PrefixAttack {
    let mut index = FingerprintIndex::new();
    for n in pre {
        index.insert(&n.name, subnet_fingerprint(&n.configs));
    }
    if distractors > 0 {
        let ds = generate_dataset(&DatasetSpec {
            seed: seed ^ DISTRACTOR_SALT,
            networks: distractors,
            mean_routers: 6,
            backbone_fraction: 0.35,
        });
        for (i, n) in ds.networks.iter().enumerate() {
            let configs: Vec<Config> =
                n.routers.iter().map(|r| Config::parse(&r.config)).collect();
            index.insert(&format!("distractor-{i}"), subnet_fingerprint(&configs));
        }
    }

    let mut out = PrefixAttack {
        trials: 0,
        successes: 0,
        top_k_successes: 0,
        candidates_total: index.len() as u64,
    };
    for n in post {
        out.trials += 1;
        let probe = subnet_fingerprint(&n.configs);
        if index.exact_unique(&probe) == Some(n.name.as_str()) {
            out.successes += 1;
        }
        if index
            .match_top_k(&probe, top_k)
            .iter()
            .any(|m| m.name == n.name)
        {
            out.top_k_successes += 1;
        }
    }
    out
}

/// Outcome of the per-router degree-matching attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegreeAttack {
    /// Routers probed: every *real* released router (decoys are excluded
    /// from trials — they have no true identity to recover — but they
    /// still sit in the released population the attacker searches).
    pub trials: u64,
    /// Routers whose (interface count, BGP neighbor count, speaker)
    /// signature is unique in the known population and points at the
    /// router's true source file.
    pub successes: u64,
}

/// A router's degree signature: structure the anonymizer preserves by
/// design, and therefore exactly what re-identification can lean on.
type Signature = (usize, usize, bool);

fn signatures(view: &NetworkView) -> Vec<Signature> {
    extract_design(&view.configs)
        .routers
        .iter()
        .map(|r| (r.interface_count, r.neighbors.len(), r.bgp_speaker))
        .collect()
}

/// Runs the degree-matching attack: the attacker knows every source
/// router's degree signature (ground truth from the pre corpus) and
/// claims a released router re-identified when its signature is unique
/// in that population and the unique owner is the router's true source.
pub fn degree_attack(pre: &[NetworkView], post: &[NetworkView]) -> DegreeAttack {
    let mut owners: BTreeMap<Signature, Vec<(&str, &str)>> = BTreeMap::new();
    for n in pre {
        for (i, sig) in signatures(n).into_iter().enumerate() {
            if let Some(file) = n.files.get(i) {
                owners.entry(sig).or_default().push((n.name.as_str(), file));
            }
        }
    }

    let mut out = DegreeAttack {
        trials: 0,
        successes: 0,
    };
    for n in post {
        for (i, sig) in signatures(n).into_iter().enumerate() {
            if n.decoy.get(i).copied().unwrap_or(false) {
                continue;
            }
            let Some(file) = n.files.get(i) else {
                continue;
            };
            out.trials += 1;
            if let Some(list) = owners.get(&sig) {
                if let [(owner_net, owner_file)] = list.as_slice() {
                    if *owner_net == n.name && *owner_file == file {
                        out.successes += 1;
                    }
                }
            }
        }
    }
    out
}

/// Outcome of the known-plaintext attack on the ASN permutation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsnAttack {
    /// Target ASNs the attacker tried to recover (the pre corpus's
    /// public ASNs minus the known pairs).
    pub trials: u64,
    /// Targets recovered by any strategy.
    pub successes: u64,
    /// Targets that survived into the released bytes in plaintext — the
    /// direct cost of disabling an ASN rule, counted inside `successes`.
    pub plaintext_survivors: u64,
    /// Per-target success probability of blind guessing: one over the
    /// public ASN space the permutation walks.
    pub chance_level: f64,
}

/// Public ASNs observable in a corpus: numeric tokens directly following
/// `router bgp`, `remote-as`, or `local-as` — the contexts the paper's
/// rules 6/7 anonymize.
fn observed_asns(views: &[NetworkView]) -> BTreeSet<u16> {
    let mut out = BTreeSet::new();
    for view in views {
        for config in &view.configs {
            for line in config.lines() {
                let mut prev: Option<&str> = None;
                for tok in line.split_whitespace() {
                    if matches!(prev, Some("bgp" | "remote-as" | "local-as")) {
                        if let Ok(v) = tok.parse::<u16>() {
                            if is_public(v) {
                                out.insert(v);
                            }
                        }
                    }
                    prev = Some(tok);
                }
            }
        }
    }
    out
}

/// Clamps an attacker's arithmetic guess back into the public ASN space.
fn clamp_public(v: i64) -> u16 {
    v.clamp(1, PUBLIC_ASN_COUNT as i64) as u16
}

/// Runs the known-plaintext ASN attack. The attacker holds `known_pairs`
/// seeded `(plain, anon)` pairs (an insider leak, or ASNs recognized
/// from public peering data) and, for every anonymized ASN visible in
/// the released corpus, guesses its plaintext by identity,
/// nearest-known-pair offset, and linear interpolation between the
/// bracketing known pairs. A target also counts as recovered when its
/// plaintext survives verbatim in the released bytes.
///
/// `secret` is the *owner's* secret, used only to score guesses against
/// the true permutation — the attacker never evaluates it.
pub fn asn_attack(
    pre: &[NetworkView],
    post: &[NetworkView],
    secret: &[u8],
    seed: u64,
    known_pairs: usize,
) -> AsnAttack {
    let plain: Vec<u16> = observed_asns(pre).into_iter().collect();
    let post_tokens = observed_asns(post);
    let map = AsnMap::new(secret);
    let chance_level = 1.0 / PUBLIC_ASN_COUNT as f64;

    // Seeded known-pair selection: shuffle the plain ASNs, take the
    // first m as the attacker's leak.
    let mut order: Vec<usize> = (0..plain.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ KNOWN_PAIR_SALT);
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let m = known_pairs.min(plain.len());
    let known: Vec<(u16, u16)> = order[..m]
        .iter()
        .map(|&i| (plain[i], map.map(plain[i])))
        .collect();
    let known_set: BTreeSet<u16> = known.iter().map(|(p, _)| *p).collect();
    // Interpolation wants the pairs sorted by anonymized value.
    let mut by_anon = known.clone();
    by_anon.sort_by_key(|(_, c)| *c);

    let mut out = AsnAttack {
        trials: 0,
        successes: 0,
        plaintext_survivors: 0,
        chance_level,
    };
    for &p in plain.iter().filter(|p| !known_set.contains(p)) {
        out.trials += 1;
        if post_tokens.contains(&p) {
            out.plaintext_survivors += 1;
            out.successes += 1;
            continue;
        }
        let c = map.map(p);
        if !post_tokens.contains(&c) {
            continue; // the ciphertext never surfaced; nothing to attack
        }
        let mut guesses: Vec<u16> = vec![c]; // identity: hope the map is trivial
        if let Some((pk, ck)) = known
            .iter()
            .min_by_key(|(_, ck)| (i64::from(*ck) - i64::from(c)).abs())
        {
            // Nearest-known-pair offset: assume a locally constant shift.
            guesses.push(clamp_public(
                i64::from(c) + i64::from(*pk) - i64::from(*ck),
            ));
        }
        let below = by_anon.iter().rev().find(|(_, ck)| *ck <= c);
        let above = by_anon.iter().find(|(_, ck)| *ck >= c);
        if let (Some((pl, cl)), Some((ph, ch))) = (below, above) {
            if ch > cl {
                // Linear interpolation between the bracketing pairs.
                let num = (i64::from(*ph) - i64::from(*pl)) * (i64::from(c) - i64::from(*cl));
                let den = i64::from(*ch) - i64::from(*cl);
                guesses.push(clamp_public(i64::from(*pl) + num / den));
            }
        }
        if guesses.contains(&p) {
            out.successes += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::group_networks;

    fn corpus(v: &[(&str, &str)]) -> Vec<NetworkView> {
        let files: Vec<(String, String)> =
            v.iter().map(|(n, t)| (n.to_string(), t.to_string())).collect();
        group_networks(&files, &BTreeSet::new())
    }

    fn net(name: &str, subnets: &[(&str, &str)]) -> (String, String) {
        let mut text = String::from("hostname r\n");
        for (i, (addr, mask)) in subnets.iter().enumerate() {
            text.push_str(&format!(
                "interface Ethernet{i}\n ip address {addr} {mask}\n"
            ));
        }
        (format!("{name}/r1.cfg"), text)
    }

    #[test]
    fn prefix_attack_recovers_identical_structure_and_misses_divergent() {
        let a = net("alpha", &[("10.0.0.1", "255.255.255.252"), ("10.1.0.1", "255.255.255.0")]);
        let b = net("beta", &[("10.2.0.1", "255.255.0.0")]);
        let files = vec![a.clone(), b.clone()];
        let pre = group_networks(&files, &BTreeSet::new());
        // Structure-preserving release: same subnet sizes, new addresses.
        let post_files = vec![
            net("alpha", &[("172.16.0.1", "255.255.255.252"), ("172.17.0.1", "255.255.255.0")]),
            net("beta", &[("172.18.0.1", "255.255.0.0")]),
        ];
        let post = group_networks(&post_files, &BTreeSet::new());
        let r = prefix_attack(&pre, &post, 7, 3, 0);
        assert_eq!((r.trials, r.successes, r.top_k_successes), (2, 2, 2));
        assert_eq!(r.candidates_total, 2);

        // A structure-scrambling release defeats the exact match.
        let scrambled = corpus(&[("alpha/r1.cfg", "hostname r\n"), ("beta/r1.cfg", "hostname r\n")]);
        let r2 = prefix_attack(&pre, &scrambled, 7, 3, 0);
        assert_eq!(r2.successes, 0);
    }

    #[test]
    fn prefix_attack_distractors_grow_the_candidate_set_deterministically() {
        let files = vec![net("alpha", &[("10.0.0.1", "255.255.255.0")])];
        let views = group_networks(&files, &BTreeSet::new());
        let a = prefix_attack(&views, &views, 7, 3, 4);
        let b = prefix_attack(&views, &views, 7, 3, 4);
        assert_eq!(a, b, "same seed, same battery");
        assert_eq!(a.candidates_total, 5);
        // The seed reaches the distractor stream: different seeds yield
        // different distractor corpora (the attack counts may coincide).
        let d1 = generate_dataset(&DatasetSpec {
            seed: 7 ^ DISTRACTOR_SALT,
            networks: 1,
            mean_routers: 6,
            backbone_fraction: 0.35,
        });
        let d2 = generate_dataset(&DatasetSpec {
            seed: 8 ^ DISTRACTOR_SALT,
            networks: 1,
            mean_routers: 6,
            backbone_fraction: 0.35,
        });
        assert_ne!(d1.networks[0].routers[0].config, d2.networks[0].routers[0].config);
    }

    #[test]
    fn degree_attack_requires_a_unique_population_signature() {
        let unique = corpus(&[
            ("alpha/r1.cfg", "hostname a\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"),
            ("beta/r1.cfg", "hostname b\ninterface Ethernet0\n ip address 10.1.0.1 255.255.255.0\ninterface Ethernet1\n ip address 10.2.0.1 255.255.255.0\n"),
        ]);
        let r = degree_attack(&unique, &unique);
        assert_eq!((r.trials, r.successes), (2, 2), "unique signatures re-identify");

        // Two identical routers: signatures collide, nobody re-identifies.
        let twins = corpus(&[
            ("alpha/r1.cfg", "hostname a\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n"),
            ("beta/r1.cfg", "hostname b\ninterface Ethernet0\n ip address 10.1.0.1 255.255.255.0\n"),
        ]);
        let r2 = degree_attack(&twins, &twins);
        assert_eq!((r2.trials, r2.successes), (2, 0));
    }

    #[test]
    fn degree_attack_skips_decoy_trials() {
        let files: Vec<(String, String)> = vec![
            ("alpha/r1.cfg".to_string(), "hostname a\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n".to_string()),
            ("alpha/zz-decoy-0.cfg".to_string(), "hostname d\n".to_string()),
        ];
        let pre = group_networks(&[files[0].clone()], &BTreeSet::new());
        let decoys = BTreeSet::from(["alpha/zz-decoy-0.cfg".to_string()]);
        let post = group_networks(&files, &decoys);
        let r = degree_attack(&pre, &post);
        assert_eq!(r.trials, 1, "chaff has no identity to recover");
    }

    #[test]
    fn asn_attack_scores_zero_against_the_permutation_and_catches_plaintext() {
        let pre = corpus(&[(
            "alpha/r1.cfg",
            "router bgp 2914\n neighbor 10.0.0.2 remote-as 174\n neighbor 10.0.0.3 remote-as 3356\n neighbor 10.0.0.4 remote-as 701\n",
        )]);
        let map = AsnMap::new(b"s");
        let anonymized = format!(
            "router bgp {}\n neighbor 10.0.0.2 remote-as {}\n neighbor 10.0.0.3 remote-as {}\n neighbor 10.0.0.4 remote-as {}\n",
            map.map(2914),
            map.map(174),
            map.map(3356),
            map.map(701)
        );
        let post = corpus(&[("alpha/r1.cfg", anonymized.as_str())]);
        let r = asn_attack(&pre, &post, b"s", 7, 1);
        assert_eq!(r.trials, 3, "4 observed ASNs minus 1 known pair");
        assert_eq!(r.successes, 0, "the Feistel permutation resists extension");
        assert!(r.chance_level > 0.0 && r.chance_level < 1e-4);
        assert_eq!(r, asn_attack(&pre, &post, b"s", 7, 1), "replayable");

        // A release that leaks ASNs in plaintext is caught immediately.
        let leaky = asn_attack(&pre, &pre, b"s", 7, 1);
        assert_eq!(leaky.successes, leaky.trials);
        assert_eq!(leaky.plaintext_survivors, leaky.trials);
    }

    #[test]
    fn asn_attack_handles_empty_and_tiny_corpora() {
        let empty = corpus(&[("alpha/r1.cfg", "hostname a\n")]);
        let r = asn_attack(&empty, &empty, b"s", 1, 4);
        assert_eq!((r.trials, r.successes), (0, 0));

        // Fewer observed ASNs than requested pairs: everything is known.
        let one = corpus(&[("alpha/r1.cfg", "router bgp 2914\n")]);
        let r2 = asn_attack(&one, &one, b"s", 1, 4);
        assert_eq!(r2.trials, 0);
    }
}
