//! The utility side of the tradeoff: how much of the §5 research value
//! survives anonymization.
//!
//! Every fact the validation suites would tabulate — the ten compared
//! [`NetworkProperties`] fields per network (suite 1) and the
//! name-abstracted routing-design facts (suite 2, via
//! [`confanon_design::RoutingDesign::facts`]) — is rendered as a stable
//! string, network-prefixed. Utility is then a plain set intersection:
//! the fraction of the original corpus's facts still derivable from the
//! released corpus. Decoys are *not* filtered out of the released side:
//! a researcher consuming the corpus cannot distinguish them, so chaff
//! that perturbs a network's aggregate properties genuinely costs
//! utility, and the score says so.

use std::collections::BTreeSet;

use confanon_design::extract_design;
use confanon_validate::{network_properties, NetworkProperties};

use crate::corpus::NetworkView;

/// The utility score: §5 extraction facts preserved across anonymization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtilityScore {
    /// Facts derivable from the original corpus.
    pub facts_total: u64,
    /// Of those, facts still derivable from the released corpus.
    pub facts_preserved: u64,
}

impl UtilityScore {
    /// Preserved fraction in `[0, 1]`; an empty corpus preserves
    /// everything vacuously.
    pub fn fraction(&self) -> f64 {
        if self.facts_total == 0 {
            1.0
        } else {
            self.facts_preserved as f64 / self.facts_total as f64
        }
    }
}

/// Suite-1 facts: one per compared property field (`lines` is excluded
/// there too — comment stripping legitimately changes it).
fn property_facts(net: &str, p: &NetworkProperties, facts: &mut BTreeSet<String>) {
    facts.insert(format!("{net}:props:routers={}", p.routers));
    facts.insert(format!("{net}:props:bgp_speakers={}", p.bgp_speakers));
    facts.insert(format!("{net}:props:interfaces={}", p.interfaces));
    facts.insert(format!("{net}:props:subnet_histogram={:?}", p.subnet_histogram));
    facts.insert(format!("{net}:props:bgp_neighbors={}", p.bgp_neighbors));
    facts.insert(format!("{net}:props:route_map_clauses={}", p.route_map_clauses));
    facts.insert(format!(
        "{net}:props:distinct_route_maps={}",
        p.distinct_route_maps
    ));
    facts.insert(format!("{net}:props:acl_entries={}", p.acl_entries));
    facts.insert(format!("{net}:props:ipv6_interfaces={}", p.ipv6_interfaces));
    facts.insert(format!(
        "{net}:props:ipv6_subnet_histogram={:?}",
        p.ipv6_subnet_histogram
    ));
}

fn corpus_facts(views: &[NetworkView]) -> BTreeSet<String> {
    let mut facts = BTreeSet::new();
    for view in views {
        property_facts(&view.name, &network_properties(&view.configs), &mut facts);
        for fact in extract_design(&view.configs).facts() {
            facts.insert(format!("{}:design:{fact}", view.name));
        }
    }
    facts
}

/// Scores the released corpus against the original: the fraction of §5
/// extraction facts (suites 1 and 2) that survived.
pub fn utility_score(pre: &[NetworkView], post: &[NetworkView]) -> UtilityScore {
    let pre_facts = corpus_facts(pre);
    let post_facts = corpus_facts(post);
    UtilityScore {
        facts_total: pre_facts.len() as u64,
        facts_preserved: pre_facts.intersection(&post_facts).count() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::group_networks;

    fn corpus(v: &[(&str, &str)]) -> Vec<NetworkView> {
        let files: Vec<(String, String)> =
            v.iter().map(|(n, t)| (n.to_string(), t.to_string())).collect();
        group_networks(&files, &BTreeSet::new())
    }

    #[test]
    fn identical_corpora_preserve_everything() {
        let views = corpus(&[(
            "alpha/r1.cfg",
            "hostname r1\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\nrouter bgp 2914\n neighbor 10.0.0.2 remote-as 174\n",
        )]);
        let u = utility_score(&views, &views);
        assert!(u.facts_total > 0);
        assert_eq!(u.facts_preserved, u.facts_total);
        assert_eq!(u.fraction(), 1.0);
    }

    #[test]
    fn structural_damage_costs_utility() {
        let pre = corpus(&[(
            "alpha/r1.cfg",
            "hostname r1\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.0\n",
        )]);
        let post = corpus(&[("alpha/r1.cfg", "hostname r1\n")]);
        let u = utility_score(&pre, &post);
        assert!(u.facts_preserved < u.facts_total);
        assert!(u.fraction() < 1.0);
        assert_eq!(UtilityScore { facts_total: 0, facts_preserved: 0 }.fraction(), 1.0);
    }
}
