//! # confanon-redteam — the seeded de-anonymization red team
//!
//! §6 of the paper analyzes what an attacker holding only the *released*
//! corpus can still learn. This crate makes that analysis executable: a
//! deterministic battery of de-anonymization attacks that run against
//! anonymized output (never the originals), each seeded through the
//! testkit PRNG so success rates are exact, replayable numbers rather
//! than anecdotes:
//!
//! * [`prefix_attack`] — §6.2/§6.3 structural fingerprinting: match each
//!   released network's subnet-size histogram against a candidate set
//!   (the true pre-anonymization networks plus seeded confgen
//!   distractors) through [`confanon_validate::FingerprintIndex`],
//!   scoring exact-unique recovery and top-*k* recovery.
//! * [`degree_attack`] — per-router re-identification by degree: an
//!   attacker who knows the population's (interface count, BGP neighbor
//!   count, speaker) signatures tries to pin each released router to its
//!   source. Structure preservation is exactly what keeps these
//!   signatures stable, so this measures the utility/risk coupling.
//! * [`asn_attack`] — known-plaintext attack on the ASN permutation: the
//!   attacker holds *m* `(plain, anon)` pairs and tries to extend them to
//!   the rest of the public ASNs via identity, nearest-known-offset, and
//!   interpolation guesses. Against the cycle-walked Feistel permutation
//!   every strategy should sit at chance level
//!   (`1 /` [`confanon_asnanon::PUBLIC_ASN_COUNT`]); against a run with
//!   an ASN rule disabled, plaintext survival makes the rate jump — the
//!   quantified cost of `--disable-rule`.
//!
//! The counterweight is [`utility_score`]: the fraction of §5 extraction
//! facts (validation suites 1 and 2, enumerated by
//! [`confanon_design::RoutingDesign::facts`]) that survive from the
//! original corpus into the released one. [`build_risk_report`] folds
//! attacks and utility into the versioned `confanon-risk-v1` document
//! whose tradeoff table is the deliverable: one row per anonymization
//! variant, each pairing measured risk with measured utility.
//!
//! Everything here is a pure function of `(corpora, secret, options)` —
//! no clock, no I/O — which is what makes risk reports byte-identical
//! across runs and `--jobs` values.

#![deny(rustdoc::broken_intra_doc_links)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod attacks;
pub mod corpus;
pub mod report;
pub mod utility;

pub use attacks::{asn_attack, degree_attack, prefix_attack, AsnAttack, DegreeAttack, PrefixAttack};
pub use corpus::{group_networks, NetworkView};
pub use report::{
    build_risk_report, rate, run_suite, tradeoff_line, validate_risk_report, AttackSuite,
    AuditOptions, TradeoffRow, RISK_SCHEMA,
};
pub use utility::{utility_score, UtilityScore};
