//! The `confanon-risk-v1` report: the attack battery and the utility
//! score folded into one versioned, validator-checked document.
//!
//! The report is built exclusively from [`AttackSuite`] values — pure
//! functions of the corpora — so its bytes are a deterministic function
//! of `(pre corpus, post corpus, secret, options)`. `tests/audit_risk.rs`
//! holds that to byte-identity across repeated runs and `--jobs` values;
//! `tests/golden/risk_report.json` pins the seed corpus's document.

use std::collections::BTreeSet;

use confanon_testkit::json::Json;

use crate::attacks::{asn_attack, degree_attack, prefix_attack, AsnAttack, DegreeAttack, PrefixAttack};
use crate::corpus::group_networks;
use crate::utility::{utility_score, UtilityScore};

/// Schema tag of the risk report document.
pub const RISK_SCHEMA: &str = "confanon-risk-v1";

/// Knobs of one audit run. Every field feeds the report's `params` /
/// `seed` members, so two reports are comparable exactly when these
/// match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditOptions {
    /// Seed of every attack's PRNG stream (known-pair selection,
    /// distractor candidates).
    pub seed: u64,
    /// `k` for top-*k* prefix-fingerprint recovery.
    pub top_k: usize,
    /// Known `(plain, anon)` ASN pairs handed to the attacker.
    pub known_pairs: usize,
    /// Synthetic distractor networks added to the prefix-attack
    /// candidate set.
    pub candidates: usize,
}

impl Default for AuditOptions {
    fn default() -> AuditOptions {
        AuditOptions {
            seed: 0,
            top_k: 3,
            known_pairs: 4,
            candidates: 8,
        }
    }
}

/// One full battery run: the three attacks plus the utility score over a
/// `(pre, post)` corpus pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackSuite {
    /// Networks in the released corpus.
    pub networks: u64,
    /// Router files in the released corpus (decoys included).
    pub routers: u64,
    /// Of those, injected decoy files.
    pub decoy_files: u64,
    /// Prefix-structure fingerprint attack outcome.
    pub prefix: PrefixAttack,
    /// Degree-matching attack outcome.
    pub degree: DegreeAttack,
    /// Known-plaintext ASN attack outcome.
    pub asn: AsnAttack,
    /// §5 fact survival.
    pub utility: UtilityScore,
}

impl AttackSuite {
    /// The headline risk number: the strongest attack's success rate.
    pub fn risk_overall(&self) -> f64 {
        rate(self.prefix.successes, self.prefix.trials)
            .max(rate(self.degree.successes, self.degree.trials))
            .max(rate(self.asn.successes, self.asn.trials))
    }

    /// Total attack trials across the battery.
    pub fn attack_trials(&self) -> u64 {
        self.prefix.trials + self.degree.trials + self.asn.trials
    }
}

/// A success rate rounded to six decimals — enough resolution for any
/// corpus the battery can hold, few enough digits that the JSON bytes
/// stay readable and stable. Zero trials score zero risk.
pub fn rate(successes: u64, trials: u64) -> f64 {
    if trials == 0 {
        0.0
    } else {
        (successes as f64 / trials as f64 * 1e6).round() / 1e6
    }
}

/// Runs the whole battery over a `(pre, post)` corpus pair. `decoys`
/// names the injected chaff files in `post` (owner provenance, used only
/// for scoring); `secret` is the owner secret the released corpus was
/// anonymized under, used only to score ASN guesses.
pub fn run_suite(
    pre: &[(String, String)],
    post: &[(String, String)],
    decoys: &BTreeSet<String>,
    secret: &[u8],
    opts: &AuditOptions,
) -> AttackSuite {
    let pre_views = group_networks(pre, &BTreeSet::new());
    let post_views = group_networks(post, decoys);
    AttackSuite {
        networks: post_views.len() as u64,
        routers: post_views.iter().map(|v| v.files.len() as u64).sum(),
        decoy_files: post_views.iter().map(|v| v.decoy_count() as u64).sum(),
        prefix: prefix_attack(&pre_views, &post_views, opts.seed, opts.top_k, opts.candidates),
        degree: degree_attack(&pre_views, &post_views),
        asn: asn_attack(&pre_views, &post_views, secret, opts.seed, opts.known_pairs),
        utility: utility_score(&pre_views, &post_views),
    }
}

/// One row of the risk–utility tradeoff table: a labelled anonymization
/// variant and its battery outcome.
#[derive(Debug, Clone)]
pub struct TradeoffRow {
    /// Human-readable variant label (`baseline`, `disable:…`, `scramble`,
    /// `decoys:N`).
    pub label: String,
    /// Rules disabled for this variant (empty for baseline).
    pub disabled_rules: Vec<String>,
    /// The battery outcome for this variant.
    pub suite: AttackSuite,
}

fn prefix_json(a: &PrefixAttack, top_k: usize) -> Json {
    Json::obj()
        .with("trials", a.trials)
        .with("successes", a.successes)
        .with("rate", rate(a.successes, a.trials))
        .with("top_k", top_k as u64)
        .with("top_k_successes", a.top_k_successes)
        .with("top_k_rate", rate(a.top_k_successes, a.trials))
        .with("candidates_total", a.candidates_total)
}

fn degree_json(a: &DegreeAttack) -> Json {
    Json::obj()
        .with("trials", a.trials)
        .with("successes", a.successes)
        .with("rate", rate(a.successes, a.trials))
}

fn asn_json(a: &AsnAttack) -> Json {
    Json::obj()
        .with("trials", a.trials)
        .with("successes", a.successes)
        .with("rate", rate(a.successes, a.trials))
        .with("plaintext_survivors", a.plaintext_survivors)
        .with("chance_level", a.chance_level)
}

/// [`UtilityScore::fraction`] in the same six-decimal rounding as the
/// attack rates, so the document's numbers share one precision.
fn utility_fraction(u: &UtilityScore) -> f64 {
    if u.facts_total == 0 {
        1.0
    } else {
        rate(u.facts_preserved, u.facts_total)
    }
}

fn utility_json(u: &UtilityScore) -> Json {
    Json::obj()
        .with("facts_total", u.facts_total)
        .with("facts_preserved", u.facts_preserved)
        .with("fraction", utility_fraction(u))
}

fn row_json(row: &TradeoffRow) -> Json {
    let s = &row.suite;
    Json::obj()
        .with("label", row.label.as_str())
        .with(
            "disabled_rules",
            Json::Arr(row.disabled_rules.iter().map(|r| Json::from(r.as_str())).collect()),
        )
        .with("prefix_rate", rate(s.prefix.successes, s.prefix.trials))
        .with("degree_rate", rate(s.degree.successes, s.degree.trials))
        .with("asn_rate", rate(s.asn.successes, s.asn.trials))
        .with("utility", utility_fraction(&s.utility))
        .with("risk_overall", s.risk_overall())
}

/// The grep-able one-line rendering of a tradeoff row the CLI prints and
/// `scripts/ci.sh` asserts on.
pub fn tradeoff_line(label: &str, suite: &AttackSuite) -> String {
    format!(
        "tradeoff {label} prefix={:.3} degree={:.3} asn={:.3} utility={:.3}",
        rate(suite.prefix.successes, suite.prefix.trials),
        rate(suite.degree.successes, suite.degree.trials),
        rate(suite.asn.successes, suite.asn.trials),
        suite.utility.fraction()
    )
}

/// Builds the `confanon-risk-v1` document: headline attacks/utility from
/// `baseline`, a tradeoff table of `baseline` followed by `sweeps`, and
/// the `confanon_obs::AUDIT_COUNTERS`-shaped counters object (the
/// names are duplicated here rather than imported to keep this crate's
/// dependency set to the analysis layers).
pub fn build_risk_report(opts: &AuditOptions, baseline: &AttackSuite, sweeps: &[TradeoffRow]) -> Json {
    let mut rows = vec![TradeoffRow {
        label: "baseline".to_string(),
        disabled_rules: Vec::new(),
        suite: *baseline,
    }];
    rows.extend(sweeps.iter().cloned());
    let counters = Json::obj()
        .with("audit.networks", baseline.networks)
        .with("audit.routers", baseline.routers)
        .with("audit.attack_trials", baseline.attack_trials())
        .with("audit.tradeoff_rows", rows.len() as u64);
    Json::obj()
        .with("schema", RISK_SCHEMA)
        .with("seed", opts.seed)
        .with(
            "params",
            Json::obj()
                .with("top_k", opts.top_k as u64)
                .with("known_pairs", opts.known_pairs as u64)
                .with("candidates", opts.candidates as u64),
        )
        .with(
            "corpus",
            Json::obj()
                .with("networks", baseline.networks)
                .with("routers", baseline.routers)
                .with("decoy_files", baseline.decoy_files),
        )
        .with("counters", counters)
        .with(
            "attacks",
            Json::obj()
                .with("prefix_fingerprint", prefix_json(&baseline.prefix, opts.top_k))
                .with("degree_matching", degree_json(&baseline.degree))
                .with("asn_known_plaintext", asn_json(&baseline.asn)),
        )
        .with("utility", utility_json(&baseline.utility))
        .with("tradeoff", Json::Arr(rows.iter().map(row_json).collect()))
}

fn require_u64(obj: &Json, ctx: &str, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{ctx}: missing integer {key:?}"))
}

fn require_rate(obj: &Json, ctx: &str, key: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{ctx}: missing number {key:?}"))?;
    if !(0.0..=1.0).contains(&v) {
        return Err(format!("{ctx}: {key} = {v} outside [0, 1]"));
    }
    Ok(v)
}

/// Checks one attack object: trials/successes/rate present, successes
/// bounded by trials, and the rate consistent with the counts ("summing"
/// — a report must never claim a rate its own counts contradict).
fn check_attack(doc: &Json, name: &str) -> Result<(), String> {
    let a = doc
        .get("attacks")
        .and_then(|s| s.get(name))
        .ok_or_else(|| format!("missing attack {name:?}"))?;
    let trials = require_u64(a, name, "trials")?;
    let successes = require_u64(a, name, "successes")?;
    if successes > trials {
        return Err(format!("{name}: successes {successes} > trials {trials}"));
    }
    let r = require_rate(a, name, "rate")?;
    if (r - rate(successes, trials)).abs() > 1e-6 {
        return Err(format!("{name}: rate {r} inconsistent with {successes}/{trials}"));
    }
    Ok(())
}

/// Validates a parsed risk report: schema tag, every required section,
/// per-attack count/rate consistency, utility-fraction consistency, and
/// a well-formed non-empty tradeoff table whose `risk_overall` is the
/// max of its attack rates. `confanon audit --check-report` is this
/// function behind an exit code.
pub fn validate_risk_report(doc: &Json) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(RISK_SCHEMA) => {}
        Some(other) => return Err(format!("unexpected schema {other:?}")),
        None => return Err("missing \"schema\" member".to_string()),
    }
    doc.get("seed")
        .and_then(Json::as_u64)
        .ok_or("missing integer \"seed\"")?;
    for section in ["params", "corpus", "counters", "attacks", "utility"] {
        match doc.get(section) {
            Some(Json::Obj(_)) => {}
            Some(_) => return Err(format!("\"{section}\" is not an object")),
            None => return Err(format!("missing \"{section}\" section")),
        }
    }
    if let Some(counters) = doc.get("counters") {
        for key in ["audit.networks", "audit.routers", "audit.attack_trials", "audit.tradeoff_rows"] {
            require_u64(counters, "counters", key)?;
        }
    }
    for name in ["prefix_fingerprint", "degree_matching", "asn_known_plaintext"] {
        check_attack(doc, name)?;
    }
    if let Some(u) = doc.get("utility") {
        let total = require_u64(u, "utility", "facts_total")?;
        let preserved = require_u64(u, "utility", "facts_preserved")?;
        if preserved > total {
            return Err(format!("utility: preserved {preserved} > total {total}"));
        }
        let f = require_rate(u, "utility", "fraction")?;
        let expect = if total == 0 { 1.0 } else { rate(preserved, total) };
        if (f - expect).abs() > 1e-6 {
            return Err(format!(
                "utility: fraction {f} inconsistent with {preserved}/{total}"
            ));
        }
    }
    let rows = doc
        .get("tradeoff")
        .and_then(Json::as_array)
        .ok_or("missing \"tradeoff\" array")?;
    if rows.is_empty() {
        return Err("tradeoff table is empty".to_string());
    }
    for (i, row) in rows.iter().enumerate() {
        let ctx = format!("tradeoff[{i}]");
        row.get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: missing label"))?;
        row.get("disabled_rules")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{ctx}: missing disabled_rules array"))?;
        let p = require_rate(row, &ctx, "prefix_rate")?;
        let d = require_rate(row, &ctx, "degree_rate")?;
        let a = require_rate(row, &ctx, "asn_rate")?;
        require_rate(row, &ctx, "utility")?;
        let overall = require_rate(row, &ctx, "risk_overall")?;
        if (overall - p.max(d).max(a)).abs() > 1e-6 {
            return Err(format!(
                "{ctx}: risk_overall {overall} is not the max attack rate"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Vec<(String, String)> {
        vec![
            (
                "alpha/r1.cfg".to_string(),
                "hostname a1\ninterface Ethernet0\n ip address 10.0.0.1 255.255.255.252\nrouter bgp 2914\n neighbor 10.0.0.2 remote-as 174\n neighbor 10.0.0.5 remote-as 701\n neighbor 10.0.0.6 remote-as 3356\n neighbor 10.0.0.7 remote-as 7018\n neighbor 10.0.0.8 remote-as 1299\n"
                    .to_string(),
            ),
            (
                "beta/r1.cfg".to_string(),
                "hostname b1\ninterface Ethernet0\n ip address 10.1.0.1 255.255.0.0\ninterface Ethernet1\n ip address 10.2.0.1 255.255.255.0\n"
                    .to_string(),
            ),
        ]
    }

    #[test]
    fn suite_and_report_are_deterministic_and_valid() {
        let corpus = tiny_corpus();
        let opts = AuditOptions { seed: 7, ..AuditOptions::default() };
        let s1 = run_suite(&corpus, &corpus, &BTreeSet::new(), b"s", &opts);
        let s2 = run_suite(&corpus, &corpus, &BTreeSet::new(), b"s", &opts);
        assert_eq!(s1, s2);
        assert_eq!(s1.networks, 2);
        assert_eq!(s1.routers, 2);

        let report = build_risk_report(&opts, &s1, &[]);
        assert_eq!(
            report.to_string_pretty(),
            build_risk_report(&opts, &s2, &[]).to_string_pretty(),
            "byte-identical documents"
        );
        validate_risk_report(&report).expect("self-built reports validate");
        let reparsed = Json::parse(&report.to_string_pretty()).expect("parses");
        validate_risk_report(&reparsed).expect("round-trips");
    }

    #[test]
    fn validator_rejects_inconsistent_documents() {
        assert!(validate_risk_report(&Json::obj()).is_err());
        assert!(validate_risk_report(&Json::obj().with("schema", "other-v9")).is_err());

        let corpus = tiny_corpus();
        let opts = AuditOptions::default();
        let suite = run_suite(&corpus, &corpus, &BTreeSet::new(), b"s", &opts);
        let good = build_risk_report(&opts, &suite, &[]);

        // successes > trials
        let mut bad = good.clone();
        if let Some(a) = bad.get_mut("attacks").and_then(|s| s.get_mut("degree_matching")) {
            a.set("successes", 1_000_000u64);
        }
        assert!(validate_risk_report(&bad).unwrap_err().contains("degree"));

        // rate contradicting the counts
        let mut bad = good.clone();
        if let Some(a) = bad.get_mut("attacks").and_then(|s| s.get_mut("prefix_fingerprint")) {
            a.set("rate", 0.123456);
        }
        assert!(validate_risk_report(&bad).unwrap_err().contains("inconsistent"));

        // a tradeoff row whose risk_overall is not the max
        let mut bad = good.clone();
        if let Some(Json::Arr(rows)) = bad.get_mut("tradeoff") {
            rows[0].set("risk_overall", 0.0);
            rows[0].set("prefix_rate", 1.0);
        }
        assert!(validate_risk_report(&bad).unwrap_err().contains("risk_overall"));

        // empty tradeoff table
        let mut bad = good.clone();
        if let Some(t) = bad.get_mut("tradeoff") {
            *t = Json::Arr(Vec::new());
        }
        assert!(validate_risk_report(&bad).unwrap_err().contains("empty"));
    }

    #[test]
    fn tradeoff_lines_are_grepable() {
        let corpus = tiny_corpus();
        let opts = AuditOptions::default();
        let suite = run_suite(&corpus, &corpus, &BTreeSet::new(), b"s", &opts);
        let line = tradeoff_line("baseline", &suite);
        assert!(line.starts_with("tradeoff baseline prefix="));
        assert!(line.contains(" utility="));
    }

    #[test]
    fn rate_is_bounded_and_rounded() {
        assert_eq!(rate(0, 0), 0.0);
        assert_eq!(rate(1, 2), 0.5);
        assert_eq!(rate(1, 3), 0.333333);
        assert_eq!(rate(7, 7), 1.0);
    }
}
