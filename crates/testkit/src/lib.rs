//! Std-only testing and benchmarking toolkit for the confanon workspace.
//!
//! The build environment is hermetic: no registry, no external crates.
//! This crate supplies, from scratch, the four capabilities the workspace
//! previously imported:
//!
//! * [`rng`] — a deterministic xorshift64\* PRNG behind `rand`-shaped
//!   traits (`Rng`, `SeedableRng`, `SliceRandom`), so the corpus
//!   generator and benches keep their generic `<R: Rng>` signatures.
//! * [`mod@props`] — a property-test harness (`props!` macro) with random
//!   case generation, integrated shrinking over the recorded choice
//!   stream, and a `TESTKIT_SEED` / `TESTKIT_CASES` env override.
//! * [`json`] — a tiny JSON value type with a writer *and* parser,
//!   replacing `serde_json` for stats/report emission and the
//!   `confanon scan --record` input path.
//! * [`mod@bench`] — a wall-clock bench runner replacing `criterion`,
//!   with warmup, calibration, median-of-batches timing, and JSON
//!   report emission.
//! * [`chaos`] — a seeded corpus mutator (truncation, invalid UTF-8
//!   splices, control characters, unterminated banners, oversized
//!   lines, deep nesting) for hostile-input hardening tests.
//! * [`faultfs`] — a seeded fault-injecting filesystem (torn writes,
//!   transient/permanent errors, rename failures, a switchable ENOSPC
//!   mode) for the durable-write crash-consistency properties.
//! * [`netchaos`] — seeded network chaos: deterministic hostile-wire
//!   delivery schedules (dribble, duplication, garbage, mid-frame
//!   disconnects) and a fault-injecting TCP proxy, the wire-level
//!   sibling of `faultfs` for serve-daemon hardening tests.
//! * [`serveclient`] — an independent `CONFANON/1` wire client for the
//!   serve daemon, implementing the framing from the DESIGN §14 spec
//!   (not from the server's code) so round-trip tests double as an
//!   interoperability check.
//!
//! Everything here is deterministic by default: property tests derive
//! their seed from the test name so CI runs are reproducible, and the
//! PRNG is a fixed algorithm with no platform entropy.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod bench;
pub mod chaos;
pub mod faultfs;
pub mod json;
pub mod netchaos;
pub mod props;
pub mod rng;
pub mod serveclient;
