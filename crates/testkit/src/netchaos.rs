//! Seeded network chaos: hostile-wire fault injection for the serve
//! daemon.
//!
//! The filesystem analogue is [`crate::faultfs`]; this module does the
//! same for the *wire*. Two pieces:
//!
//! * [`mutate_stream`] — turns a byte stream into a deterministic
//!   schedule of [`WireOp`]s (dribbled chunks, pauses, duplicated
//!   bytes, garbage splices, early disconnects) driven by the testkit
//!   PRNG, so every fault schedule replays from a seed. A test writes
//!   the schedule onto a socket with [`apply_ops`] to play a hostile
//!   client.
//! * [`ChaosProxy`] — a TCP proxy that forwards client bytes to an
//!   upstream daemon through a per-connection fault [`Profile`].
//!   Connection `i` derives its fault stream from `mix(seed, i)`, so a
//!   proxy run is reproducible per seed regardless of accept timing.
//!   Server-to-client bytes are forwarded verbatim: the faults model a
//!   hostile *network/client*, not a corrupted daemon.
//!
//! The [`Profile::lossless`] profile injects only delivery shapes that
//! preserve stream content (chunking and pauses — the "slowloris"
//! spectrum), so a protocol that survives it must parse correctly from
//! arbitrary split points. [`Profile::hostile`] adds content faults
//! (duplication, garbage, mid-frame disconnects) that a robust daemon
//! must answer with an error frame or a clean close — never a panic,
//! never a wedged worker.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::rng::{Rng, SeedableRng, XorShift64Star};

/// One step of a chaotic delivery schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOp {
    /// Write these bytes to the peer.
    Send(Vec<u8>),
    /// Sleep this many milliseconds before the next op.
    Pause(u64),
    /// Close the connection (possibly mid-frame); later ops are moot.
    Disconnect,
}

/// Per-mille fault intensities for a chaos stream. All decisions come
/// from one seeded PRNG stream, so a `(seed, profile, input)` triple
/// yields exactly one schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Largest chunk a single `Send` carries (dribble granularity).
    pub max_chunk: usize,
    /// Chance a chunk is preceded by a pause, per mille.
    pub pause_per_mille: u32,
    /// Upper bound of an injected pause, in milliseconds.
    pub max_pause_ms: u64,
    /// Chance a chunk is sent twice (duplicated bytes), per mille.
    pub dup_per_mille: u32,
    /// Chance a chunk is preceded by garbage bytes, per mille.
    pub garbage_per_mille: u32,
    /// Chance the stream disconnects before a chunk (torn frame /
    /// mid-frame hangup), per mille.
    pub disconnect_per_mille: u32,
}

impl Profile {
    /// Content-preserving chaos: dribbled chunks and pauses only. A
    /// correct frame parser must produce identical results under it.
    pub fn lossless() -> Profile {
        Profile {
            max_chunk: 7,
            pause_per_mille: 300,
            max_pause_ms: 3,
            dup_per_mille: 0,
            garbage_per_mille: 0,
            disconnect_per_mille: 0,
        }
    }

    /// Full hostility: dribble plus duplicated bytes, garbage splices,
    /// and mid-frame disconnects.
    pub fn hostile() -> Profile {
        Profile {
            max_chunk: 11,
            pause_per_mille: 250,
            max_pause_ms: 3,
            dup_per_mille: 120,
            garbage_per_mille: 150,
            disconnect_per_mille: 60,
        }
    }

    /// Parses a profile name (`lossless` | `hostile`), for CLI use.
    pub fn parse(name: &str) -> Option<Profile> {
        match name {
            "lossless" => Some(Profile::lossless()),
            "hostile" => Some(Profile::hostile()),
            _ => None,
        }
    }
}

/// Domain-separated per-connection seed: connection `index` of a proxy
/// (or schedule `index` of a test) gets an independent but fully
/// seed-determined fault stream.
pub fn conn_seed(seed: u64, index: u64) -> u64 {
    let mut s = seed ^ 0x9E37_79B9_7F4A_7C15 ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    crate::rng::splitmix64(&mut s)
}

/// Compiles `bytes` into a seeded chaotic delivery schedule under
/// `profile`. Deterministic: same `(seed, profile, bytes)`, same ops.
pub fn mutate_stream(seed: u64, profile: Profile, bytes: &[u8]) -> Vec<WireOp> {
    let mut rng = XorShift64Star::seed_from_u64(seed ^ 0x4E45_5443_4841_0553);
    let mut ops = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        if rng.gen_range(0u32..1000) < profile.disconnect_per_mille {
            ops.push(WireOp::Disconnect);
            return ops;
        }
        if rng.gen_range(0u32..1000) < profile.pause_per_mille {
            ops.push(WireOp::Pause(rng.gen_range(1..=profile.max_pause_ms.max(1))));
        }
        if rng.gen_range(0u32..1000) < profile.garbage_per_mille {
            let n = rng.gen_range(1usize..=8);
            let junk: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..=255)).collect();
            ops.push(WireOp::Send(junk));
        }
        let take = rng.gen_range(1..=profile.max_chunk.max(1)).min(bytes.len() - pos);
        let chunk = bytes[pos..pos + take].to_vec();
        if rng.gen_range(0u32..1000) < profile.dup_per_mille {
            ops.push(WireOp::Send(chunk.clone()));
        }
        ops.push(WireOp::Send(chunk));
        pos += take;
    }
    ops.push(WireOp::Disconnect);
    ops
}

/// Plays a schedule onto a stream. Stops silently on the first write
/// error (the peer may have legitimately closed on garbage) and returns
/// how many ops were applied.
pub fn apply_ops(stream: &mut dyn Write, ops: &[WireOp]) -> usize {
    for (i, op) in ops.iter().enumerate() {
        match op {
            WireOp::Send(bytes) => {
                if stream.write_all(bytes).and_then(|()| stream.flush()).is_err() {
                    return i;
                }
            }
            WireOp::Pause(ms) => std::thread::sleep(Duration::from_millis(*ms)),
            WireOp::Disconnect => return i + 1,
        }
    }
    ops.len()
}

/// A seeded fault-injecting TCP proxy in front of a serve daemon.
///
/// Client-to-server bytes pass through a per-connection chaos stream;
/// server-to-client bytes are forwarded verbatim. Dropping the proxy
/// stops the accept loop and waits for it.
pub struct ChaosProxy {
    addr: String,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `127.0.0.1:0` and starts proxying to `upstream` (a TCP
    /// `host:port`). Connection `i` uses fault stream `conn_seed(seed, i)`.
    pub fn spawn(seed: u64, profile: Profile, upstream: &str) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let upstream = upstream.to_string();
        let accept_thread = std::thread::spawn(move || {
            let mut index = 0u64;
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let cseed = conn_seed(seed, index);
                        index += 1;
                        let upstream = upstream.clone();
                        let stop = Arc::clone(&stop2);
                        conns.push(std::thread::spawn(move || {
                            proxy_conn(client, &upstream, cseed, profile, &stop);
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            for c in conns {
                let _ = c.join();
            }
        });
        Ok(ChaosProxy {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's own `host:port` — point clients here.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops the accept loop and joins every connection thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One proxied connection: chaos client→server, verbatim server→client.
fn proxy_conn(
    mut client: TcpStream,
    upstream: &str,
    seed: u64,
    profile: Profile,
    stop: &AtomicBool,
) {
    let Ok(mut server) = TcpStream::connect(upstream) else {
        return;
    };
    let _ = client.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = server.set_read_timeout(Some(Duration::from_millis(50)));
    let mut rng = XorShift64Star::seed_from_u64(seed);
    let mut to_server: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    let mut client_open = true;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Client → chaos → server.
        if client_open {
            match client.read(&mut buf) {
                Ok(0) => client_open = false,
                Ok(n) => to_server.extend_from_slice(&buf[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
                Err(_) => client_open = false,
            }
        }
        while !to_server.is_empty() {
            if rng.gen_range(0u32..1000) < profile.disconnect_per_mille {
                return; // mid-frame hangup, both directions die
            }
            if rng.gen_range(0u32..1000) < profile.pause_per_mille {
                std::thread::sleep(Duration::from_millis(
                    rng.gen_range(1..=profile.max_pause_ms.max(1)),
                ));
            }
            if rng.gen_range(0u32..1000) < profile.garbage_per_mille {
                let n = rng.gen_range(1usize..=8);
                let junk: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..=255)).collect();
                if server.write_all(&junk).is_err() {
                    return;
                }
            }
            let take = rng
                .gen_range(1..=profile.max_chunk.max(1))
                .min(to_server.len());
            let chunk: Vec<u8> = to_server.drain(..take).collect();
            if rng.gen_range(0u32..1000) < profile.dup_per_mille && server.write_all(&chunk).is_err()
            {
                return;
            }
            if server.write_all(&chunk).is_err() {
                return;
            }
        }
        let _ = server.flush();
        // Server → verbatim → client.
        match server.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => {
                if client.write_all(&buf[..n]).is_err() {
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return,
        }
        if !client_open && to_server.is_empty() {
            // Half-closed client: drain what the server still says,
            // then give up after it goes quiet.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let input = b"CONFANON/1 PING - - 0\n".repeat(8);
        for profile in [Profile::lossless(), Profile::hostile()] {
            let a = mutate_stream(42, profile, &input);
            let b = mutate_stream(42, profile, &input);
            assert_eq!(a, b, "same seed must replay the same schedule");
            let c = mutate_stream(43, profile, &input);
            assert_ne!(a, c, "different seeds should differ");
        }
    }

    #[test]
    fn lossless_schedule_reassembles_the_exact_stream() {
        let input: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for seed in 0..20 {
            let ops = mutate_stream(seed, Profile::lossless(), &input);
            let mut out = Vec::new();
            for op in &ops {
                match op {
                    WireOp::Send(b) => out.extend_from_slice(b),
                    WireOp::Pause(ms) => assert!(*ms >= 1),
                    WireOp::Disconnect => break,
                }
            }
            assert_eq!(out, input, "seed {seed}: lossless must preserve content");
            assert_eq!(ops.last(), Some(&WireOp::Disconnect));
        }
    }

    #[test]
    fn hostile_schedules_inject_content_faults_somewhere() {
        let input = vec![b'x'; 4096];
        let (mut saw_fault, mut saw_cut) = (false, false);
        for seed in 0..50 {
            let ops = mutate_stream(seed, Profile::hostile(), &input);
            let sent: usize = ops
                .iter()
                .map(|op| match op {
                    WireOp::Send(b) => b.len(),
                    _ => 0,
                })
                .sum();
            if sent != input.len() {
                saw_fault = true; // garbage, duplication, or truncation
            }
            if sent < input.len() {
                saw_cut = true; // early disconnect tore the stream
            }
        }
        assert!(saw_fault, "50 hostile seeds must mutate content at least once");
        assert!(saw_cut, "50 hostile seeds must tear the stream at least once");
    }

    #[test]
    fn conn_seeds_are_distinct_per_index() {
        let seeds: std::collections::BTreeSet<u64> =
            (0..100).map(|i| conn_seed(7, i)).collect();
        assert_eq!(seeds.len(), 100);
        assert_eq!(conn_seed(7, 3), conn_seed(7, 3));
    }

    #[test]
    fn lossless_proxy_is_transparent_to_an_echo_peer() {
        // A trivial upstream that echoes one line back; a lossless
        // chaos proxy in front of it must not change what either side
        // observes.
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let up_addr = upstream.local_addr().expect("addr").to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = upstream.accept().expect("accept");
            let mut got = Vec::new();
            let mut buf = [0u8; 256];
            loop {
                let n = conn.read(&mut buf).expect("read");
                got.extend_from_slice(&buf[..n]);
                if got.ends_with(b"\n") {
                    break;
                }
            }
            conn.write_all(&got).expect("echo");
            got
        });
        let mut proxy = ChaosProxy::spawn(11, Profile::lossless(), &up_addr).expect("proxy");
        let mut client = TcpStream::connect(proxy.addr()).expect("connect");
        client.write_all(b"hello hostile wire\n").expect("write");
        let mut reply = Vec::new();
        let mut buf = [0u8; 256];
        while !reply.ends_with(b"\n") {
            let n = client.read(&mut buf).expect("read reply");
            assert!(n > 0, "proxy closed before the echo");
            reply.extend_from_slice(&buf[..n]);
        }
        assert_eq!(reply, b"hello hostile wire\n");
        assert_eq!(server.join().expect("join"), b"hello hostile wire\n");
        proxy.stop();
    }
}
