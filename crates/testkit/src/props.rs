//! A property-test harness with integrated shrinking.
//!
//! Design: every strategy draws from a [`Source`] — a recorded stream of
//! `u64` choices. In random mode the stream comes from the workspace
//! PRNG; in replay mode it comes from a saved vector (padded with zeros
//! when exhausted). Shrinking never needs per-type shrinkers: the harness
//! mutates the *choice stream* (truncate, zero, halve, delete) and
//! re-runs the generator, so any strategy — including `prop_map` chains
//! and hand-written recursive generators — shrinks for free, and smaller
//! stream values map to smaller generated values by construction.
//!
//! Tests are written with the [`crate::props!`] macro:
//!
//! ```ignore
//! confanon_testkit::props! {
//!     cases = 256;
//!     fn round_trip(x in 0u32..1000, s in pattern("[a-z]{1,8}")) {
//!         assert_eq!(decode(&encode(x, &s)), (x, s.clone()));
//!     }
//! }
//! ```
//!
//! Reproducibility: the per-test seed is derived from the test's module
//! path and name, so runs are stable across invocations and machines.
//! `TESTKIT_SEED=<n>` overrides the seed for every test in the process;
//! `TESTKIT_CASES=<n>` overrides the case count (e.g. for a quick edit
//! loop or an overnight soak).

use std::cell::Cell;
use std::fmt::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Mutex, Once, OnceLock};

use crate::rng::{Rng, SeedableRng, StdRng};

// ---------------------------------------------------------------------------
// Choice source
// ---------------------------------------------------------------------------

enum Mode {
    Random(StdRng),
    Replay { stream: Vec<u64>, pos: usize },
}

/// The stream of raw choices a generator draws from.
pub struct Source {
    mode: Mode,
    recorded: Vec<u64>,
}

impl Source {
    /// A fresh random source for one test case.
    pub fn random(seed: u64) -> Self {
        Self {
            mode: Mode::Random(StdRng::seed_from_u64(seed)),
            recorded: Vec::new(),
        }
    }

    /// A replay source over a saved choice stream. Draws past the end of
    /// the stream yield `0` — by construction the "smallest" choice.
    pub fn replay(stream: Vec<u64>) -> Self {
        Self {
            mode: Mode::Replay { stream, pos: 0 },
            recorded: Vec::new(),
        }
    }

    /// Draws the next raw choice, recording it.
    pub fn draw(&mut self) -> u64 {
        let v = match &mut self.mode {
            Mode::Random(rng) => rng.next_u64(),
            Mode::Replay { stream, pos } => {
                let v = stream.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        };
        self.recorded.push(v);
        v
    }

    /// The choices drawn so far.
    pub fn recorded(&self) -> &[u64] {
        &self.recorded
    }
}

/// Strategies sample through the `Rng` trait, so every `SampleRange`
/// impl (ints, inclusive ranges, `f64`) works on a `Source` directly —
/// and every draw lands in the recorded stream for shrinking.
impl Rng for Source {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.draw()
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of test values driven by a [`Source`].
pub trait Strategy {
    type Value;

    fn generate(&self, src: &mut Source) -> Self::Value;

    /// Transforms generated values (shrinking passes through for free).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type, for heterogeneous `one_of` lists.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, src: &mut Source) -> S::Value {
        (**self).generate(src)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, src: &mut Source) -> S::Value {
        (**self).generate(src)
    }
}

/// `x in 0u8..32` — plain ranges are strategies.
impl<T> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: crate::rng::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        src.gen_range(self.clone())
    }
}

/// `x in 1..=25u8` — inclusive ranges too.
impl<T> Strategy for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: crate::rng::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        src.gen_range(self.clone())
    }
}

/// Any value of a primitive type (`any::<u32>()`).
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

pub fn any<T: crate::rng::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: crate::rng::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        src.gen()
    }
}

/// Always the same value.
pub struct Just<T: Clone>(pub T);

pub fn just<T: Clone>(v: T) -> Just<T> {
    Just(v)
}

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _src: &mut Source) -> T {
        self.0.clone()
    }
}

/// `prop_map` output.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, src: &mut Source) -> U {
        (self.f)(self.inner.generate(src))
    }
}

/// A strategy from a closure — the escape hatch for recursive or
/// stateful generators (e.g. regexp ASTs).
pub struct FromFn<F>(F);

pub fn from_fn<T, F: Fn(&mut Source) -> T>(f: F) -> FromFn<F> {
    FromFn(f)
}

impl<T, F: Fn(&mut Source) -> T> Strategy for FromFn<F> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        (self.0)(src)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof`).
pub struct OneOf<T>(Vec<BoxedStrategy<T>>);

pub fn one_of<T>(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!options.is_empty(), "one_of: no alternatives");
    OneOf(options)
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        let ix = src.gen_range(0..self.0.len());
        self.0[ix].generate(src)
    }
}

/// A vector whose length is drawn from `len` and whose elements come
/// from `elem` (`prop::collection::vec`).
pub struct VecOf<S, L> {
    elem: S,
    len: L,
}

pub fn vec_of<S: Strategy, L>(elem: S, len: L) -> VecOf<S, L> {
    VecOf { elem, len }
}

impl<S: Strategy, L: crate::rng::SampleRange<usize> + Clone> Strategy for VecOf<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, src: &mut Source) -> Vec<S::Value> {
        let n = src.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(src)).collect()
    }
}

macro_rules! tuple_strategy {
    ($($s:ident / $v:ident / $ix:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, src: &mut Source) -> Self::Value {
                ($(self.$ix.generate(src),)+)
            }
        }
    };
}
tuple_strategy!(A / a / 0);
tuple_strategy!(A / a / 0, B / b / 1);
tuple_strategy!(A / a / 0, B / b / 1, C / c / 2);
tuple_strategy!(A / a / 0, B / b / 1, C / c / 2, D / d / 3);
tuple_strategy!(A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4);
tuple_strategy!(A / a / 0, B / b / 1, C / c / 2, D / d / 3, E / e / 4, F / f / 5);

// ---------------------------------------------------------------------------
// Pattern strategy (regex-subset string generator)
// ---------------------------------------------------------------------------

/// Cap applied to unbounded quantifiers (`*`, `+`, `{m,}`).
const UNBOUNDED_REPEAT_CAP: u32 = 8;

enum PatNode {
    /// A set of candidate characters (literal or character class).
    Chars(Vec<char>),
    /// Alternation of sequences (a group body, or the whole pattern).
    Alt(Vec<Vec<Quantified>>),
}

struct Quantified {
    node: PatNode,
    min: u32,
    max: u32,
}

/// Generates strings matching a regex subset: literals, escapes,
/// character classes with ranges (`[A-Za-z0-9_]`, `[ -~]`), groups,
/// alternation, and the quantifiers `?`, `*`, `+`, `{m}`, `{m,n}`,
/// `{m,}` (unbounded forms capped at 8 repeats).
pub struct Pattern {
    root: Vec<Vec<Quantified>>,
    source: String,
}

pub fn pattern(pat: &str) -> Pattern {
    Pattern::new(pat)
}

impl Pattern {
    /// Parses `pat`; panics on unsupported syntax (a test-authoring
    /// error, not a runtime condition).
    pub fn new(pat: &str) -> Self {
        let chars: Vec<char> = pat.chars().collect();
        let mut pos = 0usize;
        let root = parse_alt(&chars, &mut pos, None);
        assert!(
            pos == chars.len(),
            "pattern {pat:?}: trailing input at byte offset {pos}"
        );
        Self {
            root,
            source: pat.to_string(),
        }
    }

    /// The pattern text this strategy was built from.
    pub fn source(&self) -> &str {
        &self.source
    }
}

impl Strategy for Pattern {
    type Value = String;
    fn generate(&self, src: &mut Source) -> String {
        let mut out = String::new();
        gen_alt(&self.root, src, &mut out);
        out
    }
}

fn gen_alt(branches: &[Vec<Quantified>], src: &mut Source, out: &mut String) {
    let branch = if branches.len() == 1 {
        &branches[0]
    } else {
        &branches[src.gen_range(0..branches.len())]
    };
    for q in branch {
        let n = src.gen_range(q.min..=q.max);
        for _ in 0..n {
            match &q.node {
                PatNode::Chars(set) => {
                    let c = set[src.gen_range(0..set.len())];
                    out.push(c);
                }
                PatNode::Alt(inner) => gen_alt(inner, src, out),
            }
        }
    }
}

fn parse_alt(chars: &[char], pos: &mut usize, end: Option<char>) -> Vec<Vec<Quantified>> {
    let mut branches: Vec<Vec<Quantified>> = vec![Vec::new()];
    loop {
        match chars.get(*pos) {
            None => {
                assert!(end.is_none(), "pattern: unterminated group");
                return branches;
            }
            Some(&c) if Some(c) == end => {
                *pos += 1;
                return branches;
            }
            Some('|') => {
                *pos += 1;
                branches.push(Vec::new());
            }
            Some(_) => {
                let node = parse_atom(chars, pos);
                let (min, max) = parse_quant(chars, pos);
                branches.last_mut().unwrap().push(Quantified { node, min, max });
            }
        }
    }
}

fn parse_atom(chars: &[char], pos: &mut usize) -> PatNode {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            PatNode::Alt(parse_alt(chars, pos, Some(')')))
        }
        '[' => {
            *pos += 1;
            PatNode::Chars(parse_class(chars, pos))
        }
        '\\' => {
            *pos += 1;
            let c = escape_char(chars, pos);
            PatNode::Chars(vec![c])
        }
        '.' => {
            *pos += 1;
            // Any printable ASCII plus space — a bounded stand-in for
            // regex `.` that keeps generated text readable.
            PatNode::Chars((' '..='~').collect())
        }
        c => {
            assert!(
                !matches!(c, '*' | '+' | '?' | '{' | ')' | ']'),
                "pattern: unexpected {c:?} at offset {pos}",
                pos = *pos
            );
            *pos += 1;
            PatNode::Chars(vec![c])
        }
    }
}

fn escape_char(chars: &[char], pos: &mut usize) -> char {
    let c = *chars
        .get(*pos)
        .unwrap_or_else(|| panic!("pattern: dangling backslash"));
    *pos += 1;
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Vec<char> {
    assert!(
        chars.get(*pos) != Some(&'^'),
        "pattern: negated classes unsupported"
    );
    let mut set = Vec::new();
    loop {
        let lo = match chars.get(*pos) {
            None => panic!("pattern: unterminated character class"),
            Some(']') => {
                *pos += 1;
                assert!(!set.is_empty(), "pattern: empty character class");
                return set;
            }
            Some('\\') => {
                *pos += 1;
                escape_char(chars, pos)
            }
            Some(&c) => {
                *pos += 1;
                c
            }
        };
        // A `-` forms a range only when sandwiched between two class
        // members; `[a-]` and `[-z]` keep it literal.
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&c| c != ']') {
            *pos += 1;
            let hi = if chars[*pos] == '\\' {
                *pos += 1;
                escape_char(chars, pos)
            } else {
                let c = chars[*pos];
                *pos += 1;
                c
            };
            assert!(lo <= hi, "pattern: inverted range {lo:?}-{hi:?}");
            set.extend(lo..=hi);
        } else {
            set.push(lo);
        }
    }
}

fn parse_quant(chars: &[char], pos: &mut usize) -> (u32, u32) {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            (0, 1)
        }
        Some('*') => {
            *pos += 1;
            (0, UNBOUNDED_REPEAT_CAP)
        }
        Some('+') => {
            *pos += 1;
            (1, UNBOUNDED_REPEAT_CAP)
        }
        Some('{') => {
            *pos += 1;
            let min = parse_int(chars, pos);
            match chars.get(*pos) {
                Some('}') => {
                    *pos += 1;
                    (min, min)
                }
                Some(',') => {
                    *pos += 1;
                    if chars.get(*pos) == Some(&'}') {
                        *pos += 1;
                        (min, min + UNBOUNDED_REPEAT_CAP)
                    } else {
                        let max = parse_int(chars, pos);
                        assert_eq!(chars.get(*pos), Some(&'}'), "pattern: bad quantifier");
                        *pos += 1;
                        assert!(min <= max, "pattern: quantifier {{{min},{max}}}");
                        (min, max)
                    }
                }
                _ => panic!("pattern: bad quantifier"),
            }
        }
        _ => (1, 1),
    }
}

fn parse_int(chars: &[char], pos: &mut usize) -> u32 {
    let start = *pos;
    while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
        *pos += 1;
    }
    assert!(*pos > start, "pattern: expected integer in quantifier");
    chars[start..*pos].iter().collect::<String>().parse().unwrap()
}

// ---------------------------------------------------------------------------
// Assumptions (discards)
// ---------------------------------------------------------------------------

/// Marker payload distinguishing a discarded case from a failure.
struct AssumeFailed;

/// Discards the current case when `cond` is false (like `prop_assume!`).
/// The harness retries with fresh input instead of counting a failure.
pub fn assume(cond: bool) {
    if !cond {
        panic::panic_any(AssumeFailed);
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

enum Outcome {
    Pass,
    Discard,
    Fail(String),
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// The previously installed panic hook, forwarded to for real failures.
type PanicHook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Send + Sync>;

static HOOK: Once = Once::new();
static PREV_HOOK: OnceLock<Mutex<Option<PanicHook>>> = OnceLock::new();

/// Installs (once) a panic hook that stays silent while the harness is
/// probing a case, so shrinking hundreds of candidates does not spray
/// "thread panicked" noise; the final, real failure still reports.
fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        PREV_HOOK.set(Mutex::new(Some(prev))).ok();
        panic::set_hook(Box::new(|info| {
            if QUIET_PANICS.with(Cell::get) {
                return;
            }
            if let Some(prev) = PREV_HOOK.get().and_then(|m| m.lock().ok()) {
                if let Some(hook) = prev.as_ref() {
                    hook(info);
                }
            }
        }));
    });
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn run_one<F>(f: &F, src: &mut Source, repr: &mut Vec<String>) -> Outcome
where
    F: Fn(&mut Source, &mut Vec<String>),
{
    install_quiet_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(src, repr)));
    QUIET_PANICS.with(|q| q.set(false));
    match result {
        Ok(()) => Outcome::Pass,
        Err(payload) => {
            if payload.downcast_ref::<AssumeFailed>().is_some() {
                Outcome::Discard
            } else {
                Outcome::Fail(payload_message(payload.as_ref()))
            }
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be an integer, got {raw:?}"),
    }
}

/// Budget of extra executions the shrinker may spend per failure.
const SHRINK_BUDGET: usize = 2_000;

fn shrink<F>(f: &F, stream: Vec<u64>, msg: String) -> (Vec<u64>, String)
where
    F: Fn(&mut Source, &mut Vec<String>),
{
    let mut best = stream;
    let mut best_msg = msg;
    let mut spent = 0usize;

    let try_candidate = |cand: Vec<u64>, best: &mut Vec<u64>, best_msg: &mut String| -> bool {
        let mut src = Source::replay(cand);
        let mut repr = Vec::new();
        if let Outcome::Fail(m) = run_one(f, &mut src, &mut repr) {
            // Keep the choices actually consumed — often shorter.
            let mut used = src.recorded().to_vec();
            while used.last() == Some(&0) {
                used.pop();
            }
            *best = used;
            *best_msg = m;
            true
        } else {
            false
        }
    };

    let mut progress = true;
    while progress && spent < SHRINK_BUDGET {
        progress = false;

        // Pass 1: drop a suffix (halving first, then single steps).
        let mut cut = best.len() / 2;
        while cut > 0 && spent < SHRINK_BUDGET {
            if best.len() > cut {
                let cand = best[..best.len() - cut].to_vec();
                spent += 1;
                if try_candidate(cand, &mut best, &mut best_msg) {
                    progress = true;
                    continue;
                }
            }
            cut /= 2;
        }

        // Pass 2: delete single elements (simplifies lengths drawn
        // before the deleted choice's consumer).
        let mut i = 0;
        while i < best.len() && spent < SHRINK_BUDGET {
            let mut cand = best.clone();
            cand.remove(i);
            spent += 1;
            if try_candidate(cand, &mut best, &mut best_msg) {
                progress = true;
            } else {
                i += 1;
            }
        }

        // Pass 3: minimize individual values (zero, then binary search
        // down via halving).
        let mut i = 0;
        while i < best.len() && spent < SHRINK_BUDGET {
            if best[i] != 0 {
                let mut cand = best.clone();
                cand[i] = 0;
                spent += 1;
                if try_candidate(cand, &mut best, &mut best_msg) {
                    progress = true;
                    // Deliberately do not advance: the stream may have
                    // changed shape entirely.
                    continue;
                }
                let mut lo = 0u64;
                let mut hi = best[i];
                while hi - lo > 1 && spent < SHRINK_BUDGET {
                    let mid = lo + (hi - lo) / 2;
                    let mut cand = best.clone();
                    cand[i] = mid;
                    spent += 1;
                    if try_candidate(cand, &mut best, &mut best_msg) {
                        progress = true;
                        hi = best.get(i).copied().unwrap_or(mid);
                        if hi <= mid {
                            break;
                        }
                    } else {
                        lo = mid;
                    }
                }
            }
            i += 1;
        }
    }

    (best, best_msg)
}

/// Runs `cases` random cases of the property `f`; on failure, shrinks
/// the choice stream and panics with the minimized arguments.
///
/// `f` receives the choice source and a vector it fills with `Debug`
/// renderings of the generated arguments (the `props!` macro wires
/// this up).
pub fn run_prop<F>(name: &str, cases: u32, f: F)
where
    F: Fn(&mut Source, &mut Vec<String>),
{
    let cases = env_u64("TESTKIT_CASES").map_or(cases, |v| v.max(1) as u32);
    let seed = env_u64("TESTKIT_SEED").unwrap_or_else(|| fnv1a(name));
    let mut master = StdRng::seed_from_u64(seed);

    let mut passed = 0u32;
    let mut discarded = 0u32;
    let max_discards = cases.saturating_mul(10).max(100);

    while passed < cases {
        let case_seed = master.next_u64();
        let mut src = Source::random(case_seed);
        let mut repr = Vec::new();
        match run_one(&f, &mut src, &mut repr) {
            Outcome::Pass => passed += 1,
            Outcome::Discard => {
                discarded += 1;
                assert!(
                    discarded <= max_discards,
                    "[{name}] too many discards ({discarded}) after {passed} cases; \
                     weaken the assume() or tighten the strategy"
                );
            }
            Outcome::Fail(msg) => {
                let (stream, final_msg) = shrink(&f, src.recorded().to_vec(), msg);
                // Re-run the minimized case to capture its arguments.
                let mut final_repr = Vec::new();
                let mut replay = Source::replay(stream);
                let _ = run_one(&f, &mut replay, &mut final_repr);
                let mut args = String::new();
                for r in &final_repr {
                    let _ = write!(args, "\n    {r}");
                }
                panic!(
                    "[{name}] property failed (case {case}, seed {seed:#x})\n  \
                     minimized arguments:{args}\n  cause: {final_msg}\n  \
                     reproduce with TESTKIT_SEED={seed}",
                    case = passed + 1,
                );
            }
        }
    }
}

/// Declares property tests. Each `fn` becomes a `#[test]` running
/// `cases` random cases with shrinking on failure.
///
/// ```ignore
/// props! {
///     cases = 256;
///     /// Doc comments and cfg attributes pass through.
///     fn commutes(a in any::<u32>(), b in any::<u32>()) {
///         assert_eq!(add(a, b), add(b, a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! props {
    (
        cases = $cases:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::props::run_prop(
                    concat!(module_path!(), "::", stringify!($name)),
                    $cases,
                    |__src: &mut $crate::props::Source, __repr: &mut Vec<String>| {
                        $(
                            let $arg = $crate::props::Strategy::generate(&($strat), __src);
                            __repr.push(format!(concat!(stringify!($arg), " = {:?}"), $arg));
                        )+
                        $body
                    },
                );
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategy_respects_bounds() {
        let mut src = Source::random(1);
        for _ in 0..1000 {
            let v = (3u8..17).generate(&mut src);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn pattern_identifier_shape() {
        let pat = pattern("[A-Za-z][A-Za-z0-9]{0,14}");
        let mut src = Source::random(2);
        for _ in 0..500 {
            let s = pat.generate(&mut src);
            assert!(!s.is_empty() && s.len() <= 15, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic(), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()), "{s:?}");
        }
    }

    #[test]
    fn pattern_grouped_lines() {
        let pat = pattern("([ -~]{0,60}\n){0,10}");
        let mut src = Source::random(3);
        for _ in 0..200 {
            let s = pat.generate(&mut src);
            if !s.is_empty() {
                assert!(s.ends_with('\n'), "{s:?}");
            }
            for line in s.lines() {
                assert!(line.len() <= 60);
                assert!(line.chars().all(|c| (' '..='~').contains(&c)));
            }
        }
    }

    #[test]
    fn pattern_class_with_metachars() {
        // The robustness suite's class: metacharacters stay literal
        // inside classes, trailing `-` is literal.
        let pat = pattern(r"[(|)\[\]0-9a-z^$_*+?{},-]{0,30}");
        let allowed: Vec<char> = "(|)[]^$_*+?{},-"
            .chars()
            .chain('0'..='9')
            .chain('a'..='z')
            .collect();
        let mut src = Source::random(4);
        let mut union = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let s = pat.generate(&mut src);
            assert!(s.len() <= 30);
            for c in s.chars() {
                assert!(allowed.contains(&c), "{c:?}");
                union.insert(c);
            }
        }
        // Sanity: metacharacters actually get generated.
        assert!(union.contains(&'['));
        assert!(union.contains(&'-'));
    }

    #[test]
    fn pattern_alternation_and_quantifiers() {
        let pat = pattern("(ab|cd)+x?");
        let mut src = Source::random(5);
        for _ in 0..200 {
            let s = pat.generate(&mut src);
            let trimmed = s.strip_suffix('x').unwrap_or(&s);
            assert!(!trimmed.is_empty(), "{s:?}");
            let mut rest = trimmed;
            while !rest.is_empty() {
                assert!(
                    rest.starts_with("ab") || rest.starts_with("cd"),
                    "{s:?}"
                );
                rest = &rest[2..];
            }
        }
    }

    #[test]
    fn replay_reproduces_generation() {
        let pat = pattern("[a-z]{0,20}");
        let mut src = Source::random(6);
        let v1 = pat.generate(&mut src);
        let stream = src.recorded().to_vec();
        let mut replay = Source::replay(stream);
        let v2 = pat.generate(&mut replay);
        assert_eq!(v1, v2);
    }

    #[test]
    fn exhausted_replay_pads_with_zero() {
        let mut src = Source::replay(vec![5]);
        assert_eq!(src.draw(), 5);
        assert_eq!(src.draw(), 0);
        assert_eq!(src.draw(), 0);
    }

    #[test]
    fn shrinking_minimizes_threshold_failure() {
        // Property "v < 100" fails for v >= 100; the shrunk stream must
        // generate a value close to the boundary.
        let observed = std::sync::Mutex::new(None::<u64>);
        let f = |src: &mut Source, _repr: &mut Vec<String>| {
            let v = src.gen_range(0u64..1_000_000);
            if v >= 100 {
                *observed.lock().unwrap() = Some(v);
                panic!("too big: {v}");
            }
        };
        // Find a failing stream first.
        let mut failing = None;
        let mut master = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            let mut src = Source::random(master.next_u64());
            if matches!(run_one(&f, &mut src, &mut Vec::new()), Outcome::Fail(_)) {
                failing = Some(src.recorded().to_vec());
                break;
            }
        }
        let (stream, _msg) = shrink(&f, failing.expect("should fail fast"), String::new());
        let mut replay = Source::replay(stream);
        let _ = run_one(&f, &mut replay, &mut Vec::new());
        let v = observed.lock().unwrap().expect("shrunk case still fails");
        assert!(v >= 100, "shrunk case must still fail: {v}");
        assert!(v <= 200, "shrink should approach the boundary, got {v}");
    }

    #[test]
    fn tuple_and_map_compose() {
        let strat = (0u8..10, pattern("[a-c]{1,3}")).prop_map(|(n, s)| format!("{n}:{s}"));
        let mut src = Source::random(8);
        for _ in 0..100 {
            let v = strat.generate(&mut src);
            let (n, s) = v.split_once(':').unwrap();
            assert!(n.parse::<u8>().unwrap() < 10);
            assert!((1..=3).contains(&s.len()));
        }
    }

    #[test]
    fn one_of_hits_all_branches() {
        let strat = one_of(vec![
            just("a").boxed(),
            just("b").boxed(),
            just("c").boxed(),
        ]);
        let mut src = Source::random(9);
        let seen: std::collections::BTreeSet<&str> =
            (0..100).map(|_| strat.generate(&mut src)).collect();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn vec_of_lengths_in_range() {
        let strat = vec_of(any::<u32>(), 1..200usize);
        let mut src = Source::random(10);
        for _ in 0..200 {
            let v = strat.generate(&mut src);
            assert!((1..200).contains(&v.len()));
        }
    }

    props! {
        cases = 64;
        fn harness_self_test(a in any::<u32>(), b in any::<u32>()) {
            assert_eq!(u64::from(a) + u64::from(b), u64::from(b) + u64::from(a));
        }
        fn assume_discards_work(v in 0u32..100) {
            assume(v % 2 == 0);
            assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn failing_prop_reports_minimized_args() {
        let err = std::panic::catch_unwind(|| {
            run_prop("testkit::self::threshold", 200, |src, repr| {
                let v = (0u64..1_000_000).generate(src);
                repr.push(format!("v = {v:?}"));
                assert!(v < 100, "v too large");
            });
        })
        .expect_err("property must fail");
        let msg = payload_message(err.as_ref());
        assert!(msg.contains("minimized arguments"), "{msg}");
        assert!(msg.contains("TESTKIT_SEED="), "{msg}");
    }
}
