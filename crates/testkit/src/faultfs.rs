//! A seeded fault-injecting filesystem for crash-consistency tests.
//!
//! [`FaultFs`] performs real I/O (against a temp directory the test
//! owns) but, driven by an xorshift64\* stream, injects the failure
//! modes a durable-write layer must survive:
//!
//! * **torn writes** — a prefix of the bytes reaches the disk, then the
//!   write reports an error (what a crash or ENOSPC mid-`write` leaves
//!   behind);
//! * **transient errors** — EINTR-class conditions that clear on retry;
//! * **permanent errors** — EIO-class conditions that must fail the
//!   operation;
//! * **rename failures** — the publish step itself dying.
//!
//! The injector is deterministic per seed (replayable via the usual
//! `TESTKIT_SEED` property-harness override) and supports a *fault
//! budget*: after `n` injected faults every operation succeeds, which
//! lets a property assert that bounded retry absorbs bounded
//! transients. The struct deliberately mirrors the `Fs` trait of
//! `confanon-core::fsx` method for method; the core crate provides the
//! trait impl (the dependency points core → testkit, not the reverse).

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::rng::{Rng, SeedableRng, XorShift64Star};

/// Probabilities are expressed per mille (out of 1000) so the injector
/// needs no floating point.
#[derive(Debug, Clone, Copy)]
struct Rates {
    /// Chance a `write_sync` tears and errors.
    write: u32,
    /// Chance a `rename` fails.
    rename: u32,
    /// Chance a `sync_dir` fails.
    sync: u32,
    /// Of injected faults, the share that is transient (EINTR-class).
    transient: u32,
}

#[derive(Debug)]
struct Inner {
    rng: XorShift64Star,
    /// Remaining faults allowed; `None` = unlimited.
    budget: Option<u64>,
    injected: u64,
}

/// The fault-injecting filesystem. All decisions come from one seeded
/// stream, so a given seed produces one reproducible fault schedule.
#[derive(Debug)]
pub struct FaultFs {
    rates: Rates,
    inner: Mutex<Inner>,
    /// When set, every data-path operation fails with a permanent
    /// "no space left on device" error (budget-exempt) until cleared —
    /// the ENOSPC scenario a DEGRADED tenant must survive and recover
    /// from once the device heals.
    enospc: AtomicBool,
}

/// What a faultable operation should do, decided before any I/O.
enum Verdict {
    Proceed,
    Fail(io::Error),
}

impl FaultFs {
    /// A mixed-mode injector: torn writes, rename and sync failures,
    /// with a blend of transient and permanent error kinds.
    pub fn new(seed: u64) -> FaultFs {
        FaultFs {
            rates: Rates {
                write: 250,
                rename: 200,
                sync: 150,
                transient: 400,
            },
            inner: Mutex::new(Inner {
                rng: XorShift64Star::seed_from_u64(seed ^ 0xFA01_75F5),
                budget: None,
                injected: 0,
            }),
            enospc: AtomicBool::new(false),
        }
    }

    /// An injector whose every fault is transient (EINTR-class), for
    /// properties about retry absorption.
    pub fn transient_only(seed: u64) -> FaultFs {
        let mut fs = FaultFs::new(seed);
        fs.rates.write = 500;
        fs.rates.rename = 350;
        fs.rates.sync = 350;
        fs.rates.transient = 1000;
        fs
    }

    /// An injector with every random rate at zero: all operations
    /// succeed until a deliberate failure mode ([`FaultFs::set_enospc`])
    /// is switched on. The base for scripted permanent-failure scenes.
    pub fn quiet(seed: u64) -> FaultFs {
        let mut fs = FaultFs::new(seed);
        fs.rates.write = 0;
        fs.rates.rename = 0;
        fs.rates.sync = 0;
        fs
    }

    /// Switches the permanent ENOSPC mode on or off. While on, every
    /// `write_sync`/`rename`/`sync_dir` fails with a permanent
    /// "no space left on device" error (writes still tear a prefix onto
    /// disk, as a real out-of-space `write(2)` does); faults injected
    /// this way ignore any fault budget. Clearing the flag models the
    /// device being freed — subsequent operations follow the normal
    /// seeded rates again.
    pub fn set_enospc(&self, on: bool) {
        self.enospc.store(on, Ordering::SeqCst);
    }

    /// Caps the total number of injected faults; after the budget is
    /// spent every operation succeeds.
    pub fn with_fault_budget(self, budget: u64) -> FaultFs {
        {
            let mut g = self.lock();
            g.budget = Some(budget);
        }
        self
    }

    /// How many faults have been injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.lock().injected
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking sibling test thread cannot corrupt the injector
        // state (it is just a PRNG and counters): recover the lock.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Rolls the dice for one operation: proceed, or fail with a
    /// transient/permanent error (consuming budget). The ENOSPC switch
    /// overrides the dice entirely.
    fn decide(&self, per_mille: u32, what: &str) -> Verdict {
        if self.enospc.load(Ordering::SeqCst) {
            let mut g = self.lock();
            g.injected += 1;
            return Verdict::Fail(io::Error::other(format!(
                "no space left on device (injected ENOSPC): {what}"
            )));
        }
        let mut g = self.lock();
        if let Some(b) = g.budget {
            if g.injected >= b {
                return Verdict::Proceed;
            }
        }
        if g.rng.gen_range(0u32..1000) >= per_mille {
            return Verdict::Proceed;
        }
        g.injected += 1;
        let transient = g.rng.gen_range(0u32..1000) < self.rates.transient;
        Verdict::Fail(if transient {
            io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient fault: {what}"),
            )
        } else {
            io::Error::other(format!("injected permanent fault: {what}"))
        })
    }

    /// Length of the torn prefix that reaches disk before a failed
    /// write reports its error.
    fn torn_len(&self, total: usize) -> usize {
        self.lock().rng.gen_range(0..=total)
    }

    // ---- the Fs surface (trait impl lives in confanon-core) ------------

    /// Directory creation is fault-free: the interesting failure edges
    /// are in the data path.
    pub fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    /// Writes with a possible injected tear: on a fault, a random
    /// prefix of `bytes` lands at `path` and the call errors.
    pub fn write_sync(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.decide(self.rates.write, "write_sync") {
            Verdict::Proceed => {
                use io::Write;
                let mut f = std::fs::File::create(path)?;
                f.write_all(bytes)?;
                f.sync_all()
            }
            Verdict::Fail(e) => {
                let torn = &bytes[..self.torn_len(bytes.len())];
                let _ = std::fs::write(path, torn);
                Err(e)
            }
        }
    }

    /// Renames with a possible injected failure (the temp file stays
    /// where it was, as a real failed `rename(2)` leaves it).
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.decide(self.rates.rename, "rename") {
            Verdict::Proceed => std::fs::rename(from, to),
            Verdict::Fail(e) => Err(e),
        }
    }

    /// Directory syncs with a possible injected failure.
    pub fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.decide(self.rates.sync, "sync_dir") {
            Verdict::Proceed => {
                #[cfg(unix)]
                {
                    std::fs::File::open(dir)?.sync_all()
                }
                #[cfg(not(unix))]
                {
                    let _ = dir;
                    Ok(())
                }
            }
            Verdict::Fail(e) => Err(e),
        }
    }

    /// Removal is fault-free so cleanup/rollback paths stay exercised
    /// (a failed rollback would mask the property under test).
    pub fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    /// Reads are fault-free (resume verification reads its own prior
    /// output; corruption there is modelled by torn writes instead).
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    /// Existence checks are fault-free.
    pub fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("confanon-faultfs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mk tmpdir");
        d
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let dir = tmpdir("determinism");
        let schedule = |seed: u64| -> Vec<bool> {
            let fs = FaultFs::new(seed);
            (0..50)
                .map(|i| fs.write_sync(&dir.join(format!("f{i}")), b"x").is_err())
                .collect()
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43), "different seeds should differ");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_caps_injection() {
        let dir = tmpdir("budget");
        let fs = FaultFs::transient_only(7).with_fault_budget(3);
        let mut failures = 0;
        for i in 0..200 {
            if fs.write_sync(&dir.join(format!("f{i}")), b"x").is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 3, "budget must cap injected faults");
        assert_eq!(fs.faults_injected(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_only_errors_are_interrupted() {
        let dir = tmpdir("kinds");
        let fs = FaultFs::transient_only(11);
        let mut saw_fault = false;
        for i in 0..100 {
            if let Err(e) = fs.write_sync(&dir.join(format!("f{i}")), b"x") {
                saw_fault = true;
                assert_eq!(e.kind(), io::ErrorKind::Interrupted);
            }
        }
        assert!(saw_fault, "transient_only at 50% should fault in 100 ops");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_mode_fails_permanently_until_cleared() {
        let dir = tmpdir("enospc");
        let fs = FaultFs::quiet(3);
        fs.write_sync(&dir.join("before"), b"ok").expect("quiet fs writes");

        fs.set_enospc(true);
        for i in 0..10 {
            let err = fs
                .write_sync(&dir.join(format!("full{i}")), b"x")
                .expect_err("ENOSPC mode must fail every write");
            assert!(err.to_string().contains("no space left"), "{err}");
            // Permanent, not EINTR-class: a retry loop must give up.
            assert_ne!(err.kind(), io::ErrorKind::Interrupted);
        }
        assert!(fs
            .rename(&dir.join("before"), &dir.join("after"))
            .is_err());
        assert!(fs.sync_dir(&dir).is_err());
        assert!(fs.faults_injected() >= 12);

        fs.set_enospc(false);
        fs.write_sync(&dir.join("healed"), b"y").expect("healed fs writes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_leaves_a_strict_state() {
        // On an injected write fault the file holds a prefix (possibly
        // empty, possibly full) of the payload — never other bytes.
        let dir = tmpdir("torn");
        let fs = FaultFs::new(1234);
        let payload = b"0123456789abcdef";
        for i in 0..100 {
            let p = dir.join(format!("f{i}"));
            if fs.write_sync(&p, payload).is_err() {
                let on_disk = std::fs::read(&p).unwrap_or_default();
                assert!(
                    payload.starts_with(&on_disk),
                    "torn bytes must be a prefix: {on_disk:?}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
