//! Independent `CONFANON/1` wire client for the serve daemon.
//!
//! This module deliberately re-implements the protocol framing from the
//! DESIGN §14 specification instead of importing the server's encoder:
//! the dependency direction (`confanon-core` depends on this crate, not
//! the reverse) forces it, and the duplication is the point — every
//! round trip through this client is an interoperability check of the
//! wire format, not a tautology.
//!
//! ## Frame grammar (client view)
//!
//! ```text
//! request:  "CONFANON/1 <VERB> <tenant> <name> <len>\n" + len payload bytes
//! response: "CONFANON/1 <STATUS> <len>\n"              + len payload bytes
//! ```
//!
//! `<tenant>` and `<name>` are `[A-Za-z0-9._-]{1,128}` tokens, with `-`
//! as the placeholder for verbs that don't take them (`PING`, `STATS`,
//! `SHUTDOWN`).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::rng::{Rng, SeedableRng, XorShift64Star};

/// Protocol tag, first token of every frame in both directions.
pub const PROTOCOL: &str = "CONFANON/1";

/// Extracts the server's backoff hint from a retriable payload. `BUSY`
/// frames lead with `retry-after-ms=<N>; ` (DESIGN §15); a cooperating
/// client floors its next delay at `N` milliseconds.
pub fn parse_retry_hint(payload: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(payload).ok()?;
    let rest = text.strip_prefix("retry-after-ms=")?;
    let end = rest.find(';')?;
    rest[..end].parse().ok()
}

/// Upper bound the client enforces on response payload lengths, so a
/// corrupt header cannot make a test allocate unboundedly.
pub const MAX_RESPONSE: usize = 8 * 1024 * 1024;

/// A parsed response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The status token exactly as received (`OK`, `BUSY`, ...). Kept
    /// as a string so this client never lags the server's taxonomy.
    pub status: String,
    /// The response payload.
    pub payload: Vec<u8>,
}

impl Reply {
    /// Whether the daemon asked the client to retry later (bounded
    /// queue full, or the per-request deadline passed while queued).
    pub fn retriable(&self) -> bool {
        self.status == "BUSY" || self.status == "TIMEOUT"
    }

    /// The payload as lossy UTF-8, for assertions on error messages.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }

    /// The server's `retry-after-ms` backoff hint, if this reply
    /// carries one.
    pub fn retry_hint(&self) -> Option<u64> {
        parse_retry_hint(&self.payload)
    }
}

/// Deterministic seeded jittered exponential backoff for retriable
/// (`BUSY`/`TIMEOUT`) replies.
///
/// Delay `k` (0-based) is drawn from the upper half of the capped
/// exponential window — `exp = min(cap_ms, base_ms · 2^k)`, then
/// `exp/2 + uniform(0..=exp/2)` — and floored at the server's
/// `retry-after-ms` hint when one was given. The jitter stream is the
/// testkit PRNG, so a seed replays the exact schedule: the retry
/// behavior of a fleet of clients is a testable function, not folklore.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    rng: XorShift64Star,
}

impl Backoff {
    /// A fresh schedule. `base_ms` is the first window; `cap_ms` bounds
    /// the window growth (both floored at 1 ms).
    pub fn new(seed: u64, base_ms: u64, cap_ms: u64) -> Backoff {
        Backoff {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(1),
            attempt: 0,
            rng: XorShift64Star::seed_from_u64(seed ^ 0xBAC0_0FF5),
        }
    }

    /// The next delay, honoring the server's hint as a floor.
    pub fn next_delay(&mut self, hint: Option<u64>) -> Duration {
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(self.attempt).unwrap_or(u64::MAX))
            .min(self.cap_ms);
        self.attempt = self.attempt.saturating_add(1);
        let jittered = exp / 2 + self.rng.gen_range(0..=exp / 2);
        Duration::from_millis(jittered.max(hint.unwrap_or(0)))
    }
}

enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// A blocking client connection to a serve daemon.
pub struct ServeClient {
    transport: Transport,
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl ServeClient {
    /// Connects to `endpoint`: either `host:port` (TCP) or `unix:PATH`
    /// (Unix-domain socket) — the same syntax `--port-file` advertises.
    /// A 10-second read/write timeout guards tests against a wedged
    /// daemon.
    pub fn connect(endpoint: &str) -> io::Result<ServeClient> {
        let timeout = Some(Duration::from_secs(10));
        let transport = if let Some(path) = endpoint.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let s = std::os::unix::net::UnixStream::connect(path)?;
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)?;
                Transport::Unix(s)
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(invalid("unix sockets are not supported on this platform"));
            }
        } else {
            let s = TcpStream::connect(endpoint)?;
            s.set_read_timeout(timeout)?;
            s.set_write_timeout(timeout)?;
            Transport::Tcp(s)
        };
        Ok(ServeClient { transport })
    }

    /// Sends one frame and reads the response. `tenant`/`name` use `-`
    /// as the placeholder when the verb doesn't take them.
    pub fn request(
        &mut self,
        verb: &str,
        tenant: &str,
        name: &str,
        payload: &[u8],
    ) -> io::Result<Reply> {
        let header = format!("{PROTOCOL} {verb} {tenant} {name} {}\n", payload.len());
        self.transport.write_all(header.as_bytes())?;
        self.transport.write_all(payload)?;
        self.transport.flush()?;
        self.read_reply()
    }

    /// `ANON`: anonymize `payload` as file `name` under `tenant`.
    pub fn anon(&mut self, tenant: &str, name: &str, payload: &[u8]) -> io::Result<Reply> {
        self.request("ANON", tenant, name, payload)
    }

    /// `ANON` with bounded retry on `BUSY`/`TIMEOUT` back-pressure:
    /// the cooperative-client loop the protocol contract expects.
    /// Returns the first non-retriable reply, or the last retriable one
    /// if `attempts` is exhausted.
    pub fn anon_with_retry(
        &mut self,
        tenant: &str,
        name: &str,
        payload: &[u8],
        attempts: usize,
        backoff: Duration,
    ) -> io::Result<Reply> {
        let mut last = self.anon(tenant, name, payload)?;
        for _ in 1..attempts {
            if !last.retriable() {
                return Ok(last);
            }
            std::thread::sleep(backoff);
            last = self.anon(tenant, name, payload)?;
        }
        Ok(last)
    }

    /// `ANON` with seeded jittered exponential backoff on retriable
    /// replies, honoring the server's `retry-after-ms` hint. Returns
    /// the first non-retriable reply, or the last retriable one if
    /// `attempts` is exhausted.
    pub fn anon_with_backoff(
        &mut self,
        tenant: &str,
        name: &str,
        payload: &[u8],
        attempts: usize,
        backoff: &mut Backoff,
    ) -> io::Result<Reply> {
        let mut last = self.anon(tenant, name, payload)?;
        for _ in 1..attempts {
            if !last.retriable() {
                return Ok(last);
            }
            std::thread::sleep(backoff.next_delay(last.retry_hint()));
            last = self.anon(tenant, name, payload)?;
        }
        Ok(last)
    }

    /// `PING`: liveness probe.
    pub fn ping(&mut self) -> io::Result<Reply> {
        self.request("PING", "-", "-", b"")
    }

    /// `STATS`: fetch the `confanon-serve-metrics-v1` frame.
    pub fn stats(&mut self) -> io::Result<Reply> {
        self.request("STATS", "-", "-", b"")
    }

    /// `FLUSH`: force a durable state flush for one tenant.
    pub fn flush(&mut self, tenant: &str) -> io::Result<Reply> {
        self.request("FLUSH", tenant, "-", b"")
    }

    /// `SHUTDOWN`: ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<Reply> {
        self.request("SHUTDOWN", "-", "-", b"")
    }

    fn read_reply(&mut self) -> io::Result<Reply> {
        // Header: bytes up to '\n', length-capped like the server's.
        let mut header = Vec::with_capacity(64);
        loop {
            let mut byte = [0u8; 1];
            let n = self.transport.read(&mut byte)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before a response header",
                ));
            }
            if byte[0] == b'\n' {
                break;
            }
            header.push(byte[0]);
            if header.len() > 1024 {
                return Err(invalid("response header exceeds 1024 bytes"));
            }
        }
        let header = String::from_utf8(header)
            .map_err(|_| invalid("response header is not UTF-8"))?;
        let fields: Vec<&str> = header.split(' ').collect();
        let [proto, status, len] = fields.as_slice() else {
            return Err(invalid(format!("malformed response header {header:?}")));
        };
        if *proto != PROTOCOL {
            return Err(invalid(format!("unexpected protocol tag {proto:?}")));
        }
        let len: usize = len
            .parse()
            .map_err(|_| invalid(format!("bad response length {len:?}")))?;
        if len > MAX_RESPONSE {
            return Err(invalid(format!("response length {len} exceeds cap")));
        }
        let mut payload = vec![0u8; len];
        self.transport.read_exact(&mut payload)?;
        Ok(Reply {
            status: status.to_string(),
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A one-shot fake server speaking the frame grammar from the spec,
    /// so the client is tested without the real daemon.
    fn fake_server(respond: &'static [u8]) -> (std::net::SocketAddr, std::thread::JoinHandle<Vec<u8>>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            // Read until the full frame (header line + declared payload
            // length) has arrived — the header and payload may land in
            // separate TCP segments.
            let mut got = Vec::new();
            let mut buf = [0u8; 4096];
            loop {
                let n = conn.read(&mut buf).expect("read");
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
                if let Some(pos) = got.iter().position(|&b| b == b'\n') {
                    let header = std::str::from_utf8(&got[..pos]).expect("utf8 header");
                    let len: usize = header
                        .rsplit(' ')
                        .next()
                        .expect("len field")
                        .parse()
                        .expect("numeric len");
                    if got.len() >= pos + 1 + len {
                        break;
                    }
                }
            }
            conn.write_all(respond).expect("write");
            got
        });
        (addr, handle)
    }

    #[test]
    fn frames_a_request_and_parses_the_reply() {
        let (addr, server) = fake_server(b"CONFANON/1 OK 5\nhello");
        let mut client = ServeClient::connect(&addr.to_string()).expect("connect");
        let reply = client.anon("alpha", "r1.cfg", b"hostname x\n").expect("reply");
        assert_eq!(reply.status, "OK");
        assert_eq!(reply.payload, b"hello");
        assert!(!reply.retriable());
        let sent = server.join().expect("join");
        assert_eq!(sent, b"CONFANON/1 ANON alpha r1.cfg 11\nhostname x\n");
    }

    #[test]
    fn backoff_schedule_is_deterministic_jittered_exponential() {
        // Same seed → the exact same schedule, delay k inside the
        // upper half of the capped window min(cap, base·2^k).
        let schedule = |seed: u64| -> Vec<u64> {
            let mut b = Backoff::new(seed, 10, 200);
            (0..8).map(|_| b.next_delay(None).as_millis() as u64).collect()
        };
        let a = schedule(42);
        assert_eq!(a, schedule(42), "seeded schedule must replay exactly");
        assert_ne!(a, schedule(43), "different seeds must jitter differently");
        for (k, d) in a.iter().enumerate() {
            let exp = (10u64 << k.min(10)).min(200);
            assert!(
                (exp / 2..=exp).contains(d),
                "delay {k} = {d} outside [{}..={exp}]",
                exp / 2
            );
        }
        // The cap holds forever (no overflow at large attempt counts).
        let mut b = Backoff::new(1, 10, 200);
        for _ in 0..80 {
            assert!(b.next_delay(None).as_millis() <= 200);
        }
    }

    #[test]
    fn backoff_honors_the_server_hint_as_a_floor() {
        let mut b = Backoff::new(7, 2, 16);
        let hinted = b.next_delay(Some(500));
        assert_eq!(hinted.as_millis(), 500, "hint above the window wins");
        let mut c = Backoff::new(7, 1000, 4000);
        let d = c.next_delay(Some(3));
        assert!(d.as_millis() >= 500, "a tiny hint must not shrink the window");
    }

    #[test]
    fn retry_hint_parses_only_the_documented_prefix() {
        assert_eq!(parse_retry_hint(b"retry-after-ms=120; queue full"), Some(120));
        assert_eq!(parse_retry_hint(b"retry-after-ms=0; shed"), Some(0));
        assert_eq!(parse_retry_hint(b"queue full"), None);
        assert_eq!(parse_retry_hint(b"retry-after-ms=abc; x"), None);
        assert_eq!(parse_retry_hint(b"retry-after-ms=12"), None);
        assert_eq!(parse_retry_hint(b"\xff\xfe"), None);
    }

    #[test]
    fn busy_is_retriable_and_bad_frames_are_errors() {
        let (addr, _server) = fake_server(b"CONFANON/1 BUSY 5\nretry");
        let mut client = ServeClient::connect(&addr.to_string()).expect("connect");
        let reply = client.ping().expect("reply");
        assert_eq!(reply.status, "BUSY");
        assert!(reply.retriable());

        let (addr2, _server2) = fake_server(b"HTTP/1.1 200 OK\n");
        let mut client2 = ServeClient::connect(&addr2.to_string()).expect("connect");
        let err = client2.ping().expect_err("protocol tag must be checked");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
