//! Independent `CONFANON/1` wire client for the serve daemon.
//!
//! This module deliberately re-implements the protocol framing from the
//! DESIGN §14 specification instead of importing the server's encoder:
//! the dependency direction (`confanon-core` depends on this crate, not
//! the reverse) forces it, and the duplication is the point — every
//! round trip through this client is an interoperability check of the
//! wire format, not a tautology.
//!
//! ## Frame grammar (client view)
//!
//! ```text
//! request:  "CONFANON/1 <VERB> <tenant> <name> <len>\n" + len payload bytes
//! response: "CONFANON/1 <STATUS> <len>\n"              + len payload bytes
//! ```
//!
//! `<tenant>` and `<name>` are `[A-Za-z0-9._-]{1,128}` tokens, with `-`
//! as the placeholder for verbs that don't take them (`PING`, `STATS`,
//! `SHUTDOWN`).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Protocol tag, first token of every frame in both directions.
pub const PROTOCOL: &str = "CONFANON/1";

/// Upper bound the client enforces on response payload lengths, so a
/// corrupt header cannot make a test allocate unboundedly.
pub const MAX_RESPONSE: usize = 8 * 1024 * 1024;

/// A parsed response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The status token exactly as received (`OK`, `BUSY`, ...). Kept
    /// as a string so this client never lags the server's taxonomy.
    pub status: String,
    /// The response payload.
    pub payload: Vec<u8>,
}

impl Reply {
    /// Whether the daemon asked the client to retry later (bounded
    /// queue full, or the per-request deadline passed while queued).
    pub fn retriable(&self) -> bool {
        self.status == "BUSY" || self.status == "TIMEOUT"
    }

    /// The payload as lossy UTF-8, for assertions on error messages.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }
}

enum Transport {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Transport::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Transport::Unix(s) => s.flush(),
        }
    }
}

/// A blocking client connection to a serve daemon.
pub struct ServeClient {
    transport: Transport,
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl ServeClient {
    /// Connects to `endpoint`: either `host:port` (TCP) or `unix:PATH`
    /// (Unix-domain socket) — the same syntax `--port-file` advertises.
    /// A 10-second read/write timeout guards tests against a wedged
    /// daemon.
    pub fn connect(endpoint: &str) -> io::Result<ServeClient> {
        let timeout = Some(Duration::from_secs(10));
        let transport = if let Some(path) = endpoint.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let s = std::os::unix::net::UnixStream::connect(path)?;
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)?;
                Transport::Unix(s)
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(invalid("unix sockets are not supported on this platform"));
            }
        } else {
            let s = TcpStream::connect(endpoint)?;
            s.set_read_timeout(timeout)?;
            s.set_write_timeout(timeout)?;
            Transport::Tcp(s)
        };
        Ok(ServeClient { transport })
    }

    /// Sends one frame and reads the response. `tenant`/`name` use `-`
    /// as the placeholder when the verb doesn't take them.
    pub fn request(
        &mut self,
        verb: &str,
        tenant: &str,
        name: &str,
        payload: &[u8],
    ) -> io::Result<Reply> {
        let header = format!("{PROTOCOL} {verb} {tenant} {name} {}\n", payload.len());
        self.transport.write_all(header.as_bytes())?;
        self.transport.write_all(payload)?;
        self.transport.flush()?;
        self.read_reply()
    }

    /// `ANON`: anonymize `payload` as file `name` under `tenant`.
    pub fn anon(&mut self, tenant: &str, name: &str, payload: &[u8]) -> io::Result<Reply> {
        self.request("ANON", tenant, name, payload)
    }

    /// `ANON` with bounded retry on `BUSY`/`TIMEOUT` back-pressure:
    /// the cooperative-client loop the protocol contract expects.
    /// Returns the first non-retriable reply, or the last retriable one
    /// if `attempts` is exhausted.
    pub fn anon_with_retry(
        &mut self,
        tenant: &str,
        name: &str,
        payload: &[u8],
        attempts: usize,
        backoff: Duration,
    ) -> io::Result<Reply> {
        let mut last = self.anon(tenant, name, payload)?;
        for _ in 1..attempts {
            if !last.retriable() {
                return Ok(last);
            }
            std::thread::sleep(backoff);
            last = self.anon(tenant, name, payload)?;
        }
        Ok(last)
    }

    /// `PING`: liveness probe.
    pub fn ping(&mut self) -> io::Result<Reply> {
        self.request("PING", "-", "-", b"")
    }

    /// `STATS`: fetch the `confanon-serve-metrics-v1` frame.
    pub fn stats(&mut self) -> io::Result<Reply> {
        self.request("STATS", "-", "-", b"")
    }

    /// `FLUSH`: force a durable state flush for one tenant.
    pub fn flush(&mut self, tenant: &str) -> io::Result<Reply> {
        self.request("FLUSH", tenant, "-", b"")
    }

    /// `SHUTDOWN`: ask the daemon to drain and exit.
    pub fn shutdown(&mut self) -> io::Result<Reply> {
        self.request("SHUTDOWN", "-", "-", b"")
    }

    fn read_reply(&mut self) -> io::Result<Reply> {
        // Header: bytes up to '\n', length-capped like the server's.
        let mut header = Vec::with_capacity(64);
        loop {
            let mut byte = [0u8; 1];
            let n = self.transport.read(&mut byte)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before a response header",
                ));
            }
            if byte[0] == b'\n' {
                break;
            }
            header.push(byte[0]);
            if header.len() > 1024 {
                return Err(invalid("response header exceeds 1024 bytes"));
            }
        }
        let header = String::from_utf8(header)
            .map_err(|_| invalid("response header is not UTF-8"))?;
        let fields: Vec<&str> = header.split(' ').collect();
        let [proto, status, len] = fields.as_slice() else {
            return Err(invalid(format!("malformed response header {header:?}")));
        };
        if *proto != PROTOCOL {
            return Err(invalid(format!("unexpected protocol tag {proto:?}")));
        }
        let len: usize = len
            .parse()
            .map_err(|_| invalid(format!("bad response length {len:?}")))?;
        if len > MAX_RESPONSE {
            return Err(invalid(format!("response length {len} exceeds cap")));
        }
        let mut payload = vec![0u8; len];
        self.transport.read_exact(&mut payload)?;
        Ok(Reply {
            status: status.to_string(),
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A one-shot fake server speaking the frame grammar from the spec,
    /// so the client is tested without the real daemon.
    fn fake_server(respond: &'static [u8]) -> (std::net::SocketAddr, std::thread::JoinHandle<Vec<u8>>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            // Read until the full frame (header line + declared payload
            // length) has arrived — the header and payload may land in
            // separate TCP segments.
            let mut got = Vec::new();
            let mut buf = [0u8; 4096];
            loop {
                let n = conn.read(&mut buf).expect("read");
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
                if let Some(pos) = got.iter().position(|&b| b == b'\n') {
                    let header = std::str::from_utf8(&got[..pos]).expect("utf8 header");
                    let len: usize = header
                        .rsplit(' ')
                        .next()
                        .expect("len field")
                        .parse()
                        .expect("numeric len");
                    if got.len() >= pos + 1 + len {
                        break;
                    }
                }
            }
            conn.write_all(respond).expect("write");
            got
        });
        (addr, handle)
    }

    #[test]
    fn frames_a_request_and_parses_the_reply() {
        let (addr, server) = fake_server(b"CONFANON/1 OK 5\nhello");
        let mut client = ServeClient::connect(&addr.to_string()).expect("connect");
        let reply = client.anon("alpha", "r1.cfg", b"hostname x\n").expect("reply");
        assert_eq!(reply.status, "OK");
        assert_eq!(reply.payload, b"hello");
        assert!(!reply.retriable());
        let sent = server.join().expect("join");
        assert_eq!(sent, b"CONFANON/1 ANON alpha r1.cfg 11\nhostname x\n");
    }

    #[test]
    fn busy_is_retriable_and_bad_frames_are_errors() {
        let (addr, _server) = fake_server(b"CONFANON/1 BUSY 5\nretry");
        let mut client = ServeClient::connect(&addr.to_string()).expect("connect");
        let reply = client.ping().expect("reply");
        assert_eq!(reply.status, "BUSY");
        assert!(reply.retriable());

        let (addr2, _server2) = fake_server(b"HTTP/1.1 200 OK\n");
        let mut client2 = ServeClient::connect(&addr2.to_string()).expect("connect");
        let err = client2.ping().expect_err("protocol tag must be checked");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
