//! Seeded corpus mutator for hostile-input testing.
//!
//! Real sharing corpora contain files the anonymizer's authors never
//! imagined: truncated transfers, latin-1 mojibake, editor droppings,
//! pasted binaries. The fail-closed contract is that *no* input may
//! panic the pipeline, leak a recorded identifier, or perturb the
//! output of any other file — and the only way to hold that contract is
//! to manufacture hostile inputs on demand. [`ChaosMutator`] applies a
//! seeded, reproducible sequence of corruptions to well-formed
//! configuration bytes; the same seed over the same inputs yields the
//! same corpus on every platform, so a failing case replays exactly.

use crate::rng::{Rng, SeedableRng, StdRng};

/// One mutated file: the corrupted bytes plus the names of the
/// mutations applied, for failure diagnostics.
#[derive(Debug, Clone)]
pub struct Mutated {
    /// The corrupted configuration bytes (possibly invalid UTF-8).
    pub bytes: Vec<u8>,
    /// Names of the mutations applied, in application order.
    pub applied: Vec<&'static str>,
}

/// A deterministic, seeded source of input corruption.
#[derive(Debug, Clone)]
pub struct ChaosMutator {
    rng: StdRng,
}

/// A mutation: corrupts the buffer in place, drawing all randomness
/// from the mutator's PRNG stream.
type Mutation = fn(&mut Vec<u8>, &mut StdRng);

/// The mutation vocabulary as `(name, function)` pairs.
const MUTATIONS: [(&str, Mutation); 7] = [
    ("truncate", truncate),
    ("splice-non-utf8", splice_non_utf8),
    ("crlf-inject", crlf_inject),
    ("control-inject", control_inject),
    ("unterminated-banner", unterminated_banner),
    ("megabyte-line", megabyte_line),
    ("deep-nesting", deep_nesting),
];

impl ChaosMutator {
    /// A mutator whose whole corruption stream is a pure function of
    /// `seed`.
    pub fn new(seed: u64) -> ChaosMutator {
        ChaosMutator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Applies 1–3 randomly chosen mutations to a copy of `input`.
    pub fn mutate(&mut self, input: &[u8]) -> Mutated {
        let mut bytes = input.to_vec();
        let mut applied = Vec::new();
        let count = self.rng.gen_range(1..=3usize);
        for _ in 0..count {
            let (name, f) = MUTATIONS[self.rng.gen_range(0..MUTATIONS.len())];
            f(&mut bytes, &mut self.rng);
            applied.push(name);
        }
        Mutated { bytes, applied }
    }

    /// Applies one specific mutation by name (for targeted tests).
    /// Returns `None` for unknown names.
    pub fn mutate_one(&mut self, input: &[u8], name: &str) -> Option<Mutated> {
        let (name, f) = MUTATIONS.iter().find(|(n, _)| *n == name)?;
        let mut bytes = input.to_vec();
        f(&mut bytes, &mut self.rng);
        Some(Mutated {
            bytes,
            applied: vec![name],
        })
    }

    /// The names of every mutation in the vocabulary.
    pub fn mutation_names() -> Vec<&'static str> {
        MUTATIONS.iter().map(|(n, _)| *n).collect()
    }
}

/// Cuts the file at an arbitrary byte — possibly mid-line, mid-token, or
/// mid-UTF-8-sequence.
fn truncate(bytes: &mut Vec<u8>, rng: &mut StdRng) {
    if bytes.is_empty() {
        return;
    }
    let at = rng.gen_range(0..bytes.len());
    bytes.truncate(at);
}

/// Inserts a short run of invalid UTF-8 at a random position.
fn splice_non_utf8(bytes: &mut Vec<u8>, rng: &mut StdRng) {
    const JUNK: [&[u8]; 4] = [
        b"\xFF\xFE",             // BOM-ish garbage
        b"\xC0\xAF",             // overlong encoding
        b"\xED\xA0\x80",         // lone surrogate
        b"\xF5\x90\x80\x80\x80", // out-of-range scalar + stray continuation
    ];
    let junk = JUNK[rng.gen_range(0..JUNK.len())];
    let at = if bytes.is_empty() {
        0
    } else {
        rng.gen_range(0..=bytes.len())
    };
    bytes.splice(at..at, junk.iter().copied());
}

/// Rewrites a random fraction of `\n` line endings as `\r\n`.
fn crlf_inject(bytes: &mut Vec<u8>, rng: &mut StdRng) {
    let mut out = Vec::with_capacity(bytes.len() + 16);
    for &b in bytes.iter() {
        if b == b'\n' && rng.gen_bool(0.5) {
            out.push(b'\r');
        }
        out.push(b);
    }
    *bytes = out;
}

/// Sprinkles C0 control characters (NUL, BEL, VT, ESC) into the file.
fn control_inject(bytes: &mut Vec<u8>, rng: &mut StdRng) {
    const CTRL: [u8; 4] = [0x00, 0x07, 0x0B, 0x1B];
    for _ in 0..rng.gen_range(1..=8usize) {
        let c = CTRL[rng.gen_range(0..CTRL.len())];
        let at = if bytes.is_empty() {
            0
        } else {
            rng.gen_range(0..=bytes.len())
        };
        bytes.insert(at, c);
    }
}

/// Appends a banner block whose delimiter never reappears, so the file
/// ends inside the banner.
fn unterminated_banner(bytes: &mut Vec<u8>, rng: &mut StdRng) {
    let delims = ["^C", "#", "@"];
    let delim = delims[rng.gen_range(0..delims.len())];
    if !bytes.is_empty() && !bytes.ends_with(b"\n") {
        bytes.push(b'\n');
    }
    bytes.extend_from_slice(format!("banner motd {delim}\n").as_bytes());
    for i in 0..rng.gen_range(1..=5usize) {
        bytes.extend_from_slice(format!("orphaned banner text line {i}\n").as_bytes());
    }
}

/// Inserts a single line far beyond the sanitizer's 64 KiB cap.
fn megabyte_line(bytes: &mut Vec<u8>, rng: &mut StdRng) {
    let len = rng.gen_range(70_000..=300_000usize);
    let fill = [b'A', b'9', b'.'][rng.gen_range(0..3usize)];
    if !bytes.is_empty() && !bytes.ends_with(b"\n") {
        bytes.push(b'\n');
    }
    bytes.extend(std::iter::repeat_n(fill, len));
    bytes.push(b'\n');
}

/// Appends a deeply nested section: hundreds of lines of monotonically
/// growing indentation (stresses any recursive section view).
fn deep_nesting(bytes: &mut Vec<u8>, rng: &mut StdRng) {
    let depth = rng.gen_range(200..=400usize);
    if !bytes.is_empty() && !bytes.ends_with(b"\n") {
        bytes.push(b'\n');
    }
    bytes.extend_from_slice(b"policy-map DEEP\n");
    for d in 1..depth {
        let line = format!("{}class level{d}\n", " ".repeat(d));
        bytes.extend_from_slice(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &[u8] = b"hostname r1\ninterface Serial0/0\n ip address 10.1.0.1 255.255.255.0\nrouter bgp 701\n neighbor 12.126.236.17 remote-as 1239\n";

    #[test]
    fn same_seed_same_corpus() {
        let mut a = ChaosMutator::new(99);
        let mut b = ChaosMutator::new(99);
        for _ in 0..50 {
            let ma = a.mutate(BASE);
            let mb = b.mutate(BASE);
            assert_eq!(ma.bytes, mb.bytes);
            assert_eq!(ma.applied, mb.applied);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let ma = ChaosMutator::new(1).mutate(BASE);
        let mb = ChaosMutator::new(2).mutate(BASE);
        assert!(ma.bytes != mb.bytes || ma.applied != mb.applied);
    }

    #[test]
    fn every_mutation_is_reachable_and_applies() {
        let mut m = ChaosMutator::new(7);
        for name in ChaosMutator::mutation_names() {
            let out = m.mutate_one(BASE, name).expect("known mutation");
            assert_eq!(out.applied, vec![name]);
            if name != "truncate" {
                assert!(
                    out.bytes.len() >= BASE.len(),
                    "{name} should not shrink the file"
                );
            }
        }
        assert!(m.mutate_one(BASE, "no-such-mutation").is_none());
    }

    #[test]
    fn splice_makes_invalid_utf8() {
        let mut m = ChaosMutator::new(3);
        let out = m.mutate_one(BASE, "splice-non-utf8").unwrap();
        assert!(std::str::from_utf8(&out.bytes).is_err());
    }

    #[test]
    fn megabyte_line_exceeds_cap() {
        let mut m = ChaosMutator::new(5);
        let out = m.mutate_one(BASE, "megabyte-line").unwrap();
        let longest = out
            .bytes
            .split(|&b| b == b'\n')
            .map(<[u8]>::len)
            .max()
            .unwrap();
        assert!(longest > 64 * 1024);
    }

    #[test]
    fn unterminated_banner_never_closes() {
        let mut m = ChaosMutator::new(11);
        let out = m.mutate_one(BASE, "unterminated-banner").unwrap();
        let text = String::from_utf8(out.bytes).unwrap();
        let banner_line = text.lines().position(|l| l.starts_with("banner motd"));
        let at = banner_line.expect("banner appended");
        let delim = text.lines().nth(at).unwrap().split_whitespace().nth(2).unwrap().to_string();
        for l in text.lines().skip(at + 1) {
            assert!(!l.contains(&delim), "delimiter must not reappear: {l}");
        }
    }

    #[test]
    fn empty_input_survives_all_mutations() {
        let mut m = ChaosMutator::new(13);
        for name in ChaosMutator::mutation_names() {
            let _ = m.mutate_one(b"", name).unwrap();
        }
        for _ in 0..20 {
            let _ = m.mutate(b"");
        }
    }
}
