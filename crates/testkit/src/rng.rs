//! Deterministic xorshift64\* PRNG behind `rand`-shaped traits.
//!
//! The generator is Vigna's xorshift64\* (a 64-bit xorshift state with a
//! multiplicative output scrambler), seeded through a splitmix64 stage so
//! that small consecutive seeds produce well-separated streams. It is not
//! cryptographic — the anonymizer's actual secrecy rests on the HMAC-SHA1
//! PRF in `confanon-crypto` — but it is a solid statistical source for
//! corpus generation, property tests, and benches, and it is fully
//! deterministic across platforms.
//!
//! The trait surface mirrors the subset of `rand` 0.8 the workspace used:
//! `Rng::{gen, gen_bool, gen_range}`, `SeedableRng::seed_from_u64`, and
//! `SliceRandom::{shuffle, choose}`. `StdRng` is a type alias for
//! [`XorShift64Star`], so call sites keep reading naturally.

use std::ops::{Range, RangeInclusive};

/// splitmix64: used to diffuse user seeds into the xorshift state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace PRNG: xorshift64\* with a splitmix64-seeded state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

/// Drop-in name for the generator the corpus generator seeds everywhere.
pub type StdRng = XorShift64Star;

impl XorShift64Star {
    /// Raw constructor; a zero state is mapped to a fixed nonzero value
    /// (xorshift has an all-zero fixed point).
    pub fn from_state(state: u64) -> Self {
        Self {
            state: if state == 0 { 0x9E37_79B9_7F4A_7C15 } else { state },
        }
    }
}

/// Seeding, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for XorShift64Star {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        Self::from_state(splitmix64(&mut s))
    }
}

/// The uniform "any value" distribution, backing [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = u128::from(rng.next_u64()) % span;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width u128 range: any draw is in range.
                    return rng.next_u64() as $t;
                }
                let draw = u128::from(rng.next_u64()) % span;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The one required method: the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of `T` (integers full-width, `f64` in `[0,1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample(self) < p
    }

    /// A uniform sample from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl Rng for XorShift64Star {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Slice helpers mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle, in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_stuck() {
        let mut r = StdRng::seed_from_u64(0);
        let first = r.next_u64();
        let second = r.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, second);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u8..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1..=25u8);
            assert!((1..=25).contains(&w));
            let x = r.gen_range(0.3..2.2);
            assert!((0.3..2.2).contains(&x));
            let y: i32 = r.gen_range(0..3);
            assert!((0..3).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(17);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And the shuffle actually moved something.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_uniform_enough() {
        let mut r = StdRng::seed_from_u64(19);
        let pool = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..4_000 {
            counts[*pool.choose(&mut r).unwrap()] += 1;
        }
        for c in counts {
            assert!(c > 700, "{counts:?}");
        }
    }

    #[test]
    fn u128_standard_uses_both_halves() {
        let mut r = StdRng::seed_from_u64(23);
        let v: u128 = r.gen();
        assert_ne!(v >> 64, 0);
        assert_ne!(v & u128::from(u64::MAX), 0);
    }
}
