//! A tiny JSON value type with writer and parser.
//!
//! Replaces `serde_json` for the workspace's needs: emitting mapping
//! audits, stats, and bench reports, and parsing `confanon scan
//! --record` ground-truth files. Object member order is preserved
//! (insertion order), which keeps emitted reports deterministic.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64`; integers up to 2^53 round-trip
    /// exactly and are printed without a fractional part.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Self { Json::Num(v as f64) }
        }
    )*};
}
from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) an object member; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        let Json::Obj(members) = self else {
            panic!("Json::set on non-object");
        };
        let value = value.into();
        if let Some(slot) = members.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            members.push((key.to_string(), value));
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.set(key, value);
        self
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable object member lookup (for tests that corrupt documents
    /// in place to exercise validators).
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(members) => members.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, ind, d| {
                    items[i].write(out, ind, d);
                });
            }
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i, ind, d| {
                    let (k, v) = &members[i];
                    write_string(out, k);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    v.write(out, ind, d);
                });
            }
        }
    }

    /// Parses a JSON document (the whole input must be one value).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, indent, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        let _ = fmt::write(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::write(out, format_args!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&c) => Err(self.err(&format!("unexpected byte {:?}", c as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                self.eat("\\u")?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // bytes are valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_shapes() {
        let mut obj = Json::obj();
        obj.set("name", "corp-router")
            .set("lines", 42u64)
            .set("ratio", 0.5)
            .set("ok", true)
            .set("tags", vec!["a", "b"])
            .set("none", Json::Null);
        assert_eq!(
            obj.to_string_compact(),
            r#"{"name":"corp-router","lines":42,"ratio":0.5,"ok":true,"tags":["a","b"],"none":null}"#
        );
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let v = Json::obj().with("a", 1u64).with("b", Json::Arr(vec![Json::Num(2.0)]));
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}"
        );
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ slash \u{1F600} \u{07}";
        let v = Json::Str(s.to_string());
        let text = v.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_nested_document() {
        let text = r#"
            { "asns": ["701", "1239"],
              "ips": [],
              "nested": { "x": -1.5e3, "y": null, "ok": false } }
        "#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("asns").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("ips").unwrap().as_array().unwrap(), &[]);
        let nested = v.get("nested").unwrap();
        assert_eq!(nested.get("x").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(nested.get("y"), Some(&Json::Null));
        assert_eq!(nested.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn surrogate_pair_parses() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn integers_round_trip_exactly() {
        for n in [0u64, 1, 4_294_967_296, 9_007_199_254_740_991] {
            let text = Json::from(n).to_string_compact();
            assert_eq!(text, n.to_string());
            assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#""\q""#).is_err());
    }

    #[test]
    fn round_trips_arbitrary_trees() {
        let docs = [
            r#"{"a":[1,2,{"b":"c"}],"d":null}"#,
            r#"[[[]],{},"",0]"#,
            r#"{"k":"A\n"}"#,
        ];
        for d in docs {
            let v = Json::parse(d).unwrap();
            assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
            assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
        }
    }
}
