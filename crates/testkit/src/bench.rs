//! A wall-clock bench runner replacing `criterion`.
//!
//! Methodology: one warmup call, geometric calibration until a batch
//! takes a measurable slice of the time budget, then repeated fixed-size
//! batches until the budget is spent; the reported figure is the median
//! batch (robust to scheduler noise, which matters on the shared
//! single-core runners this repo targets). Results print as a table and
//! export through the [`crate::json`] writer — `BENCH_pipeline.json`
//! and friends are plain JSON documents any tooling can ingest.
//!
//! Env knobs: `TESTKIT_BENCH_MS` (per-bench time budget, default 300)
//! lets CI trade fidelity for speed.

use std::hint::black_box;
use std::time::{Duration, Instant};

use crate::json::Json;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: String,
    /// Iterations per measured batch.
    pub batch_iters: u64,
    /// Number of batches measured.
    pub batches: usize,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest batch, ns per iteration.
    pub min_ns: f64,
    /// Slowest batch, ns per iteration.
    pub max_ns: f64,
    /// Optional throughput: (elements per iteration, unit label).
    pub elements: Option<(u64, &'static str)>,
}

impl BenchResult {
    /// Elements per second, when a throughput was declared.
    pub fn throughput(&self) -> Option<f64> {
        self.elements
            .map(|(n, _)| n as f64 * 1e9 / self.median_ns)
    }

    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .with("name", self.name.as_str())
            .with("median_ns_per_iter", self.median_ns)
            .with("min_ns_per_iter", self.min_ns)
            .with("max_ns_per_iter", self.max_ns)
            .with("batch_iters", self.batch_iters)
            .with("batches", self.batches);
        if let Some((n, unit)) = self.elements {
            j.set("elements_per_iter", n);
            j.set("throughput_unit", unit);
            if let Some(tp) = self.throughput() {
                j.set("throughput_per_sec", tp);
            }
        }
        j
    }
}

/// Collects benchmarks and renders the report.
pub struct Runner {
    suite: String,
    budget: Duration,
    results: Vec<BenchResult>,
}

impl Runner {
    pub fn new(suite: &str) -> Self {
        let ms = std::env::var("TESTKIT_BENCH_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(300);
        Self {
            suite: suite.to_string(),
            budget: Duration::from_millis(ms.max(1)),
            results: Vec::new(),
        }
    }

    /// Overrides the per-bench time budget (tests use a tiny one).
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Measures `f`, reporting ns/iter.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) -> &BenchResult {
        self.run(name, None, f)
    }

    /// Measures `f`, additionally reporting `elements`/`unit` per second
    /// (criterion's `Throughput::Elements`).
    pub fn bench_elements<T>(
        &mut self,
        name: &str,
        elements: u64,
        unit: &'static str,
        f: impl FnMut() -> T,
    ) -> &BenchResult {
        self.run(name, Some((elements, unit)), f)
    }

    fn run<T>(
        &mut self,
        name: &str,
        elements: Option<(u64, &'static str)>,
        mut f: impl FnMut() -> T,
    ) -> &BenchResult {
        // Warmup (also forces lazy initialization inside `f`).
        black_box(f());

        // Calibrate: grow the batch until it costs >= budget/20, so a
        // run fits ~20 batches in the budget.
        let slice = self.budget / 20;
        let mut batch_iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch_iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= slice || batch_iters >= 1 << 30 {
                break;
            }
            // Jump toward the target, at least doubling.
            let scale = slice.as_nanos().max(1) / elapsed.as_nanos().max(1);
            batch_iters = (batch_iters * (scale as u64).clamp(2, 16)).max(batch_iters + 1);
        }

        // Measure batches until the budget is spent (min 5 batches).
        let mut per_iter_ns = Vec::new();
        let started = Instant::now();
        while per_iter_ns.len() < 5 || started.elapsed() < self.budget {
            let t = Instant::now();
            for _ in 0..batch_iters {
                black_box(f());
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / batch_iters as f64);
            if per_iter_ns.len() >= 1000 {
                break;
            }
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median_ns = per_iter_ns[per_iter_ns.len() / 2];

        self.results.push(BenchResult {
            name: name.to_string(),
            batch_iters,
            batches: per_iter_ns.len(),
            median_ns,
            min_ns: *per_iter_ns.first().unwrap(),
            max_ns: *per_iter_ns.last().unwrap(),
            elements,
        });
        let r = self.results.last().unwrap();
        println!("{}", format_row(r));
        r
    }

    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// The whole suite as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("suite", self.suite.as_str())
            .with(
                "budget_ms",
                self.budget.as_millis() as u64,
            )
            .with(
                "benches",
                Json::Arr(self.results.iter().map(BenchResult::to_json).collect()),
            )
    }

    /// Writes the JSON report to `path` (pretty-printed).
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Prints a closing summary line.
    pub fn finish(&self) {
        println!(
            "bench suite {}: {} benchmarks, budget {}ms each",
            self.suite,
            self.results.len(),
            self.budget.as_millis()
        );
    }
}

fn format_row(r: &BenchResult) -> String {
    let time = human_time(r.median_ns);
    match (r.elements, r.throughput()) {
        (Some((_, unit)), Some(tp)) => format!(
            "{:<40} {:>12}/iter   {:>14}/s  [{} batches x {} iters]",
            r.name,
            time,
            format!("{} {}", human_count(tp), unit),
            r.batches,
            r.batch_iters
        ),
        _ => format!(
            "{:<40} {:>12}/iter   [{} batches x {} iters]",
            r.name, time, r.batches, r.batch_iters
        ),
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn human_count(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.2}M", v / 1_000_000.0)
    } else if v >= 1_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_runner() -> Runner {
        Runner::new("selftest").with_budget(Duration::from_millis(5))
    }

    #[test]
    fn measures_something_positive() {
        let mut r = tiny_runner();
        let mut acc = 0u64;
        let res = r.bench("wrapping_sum", || {
            acc = acc.wrapping_add(black_box(12345));
            acc
        });
        assert!(res.median_ns > 0.0);
        assert!(res.min_ns <= res.median_ns && res.median_ns <= res.max_ns);
        assert!(res.batches >= 5);
    }

    #[test]
    fn throughput_reported() {
        let mut r = tiny_runner();
        let res = r.bench_elements("count_lines", 100, "lines", || {
            black_box("x\n".repeat(100).lines().count())
        });
        let tp = res.throughput().unwrap();
        assert!(tp > 0.0);
        let j = res.to_json();
        assert_eq!(j.get("elements_per_iter").unwrap().as_u64(), Some(100));
        assert_eq!(j.get("throughput_unit").unwrap().as_str(), Some("lines"));
    }

    #[test]
    fn suite_json_shape() {
        let mut r = tiny_runner();
        r.bench("a", || black_box(1 + 1));
        r.bench("b", || black_box(2 + 2));
        let j = r.to_json();
        assert_eq!(j.get("suite").unwrap().as_str(), Some("selftest"));
        assert_eq!(j.get("benches").unwrap().as_array().unwrap().len(), 2);
        let text = j.to_string_pretty();
        assert_eq!(crate::json::Json::parse(&text).unwrap(), j);
    }
}
