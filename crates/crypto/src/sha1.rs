//! SHA-1 (RFC 3174 / FIPS 180-1) implemented from scratch.
//!
//! The paper anonymizes strings "using SHA1 digests \[2\]" where \[2\] is
//! RFC 3174, so we implement exactly that algorithm. SHA-1 is no longer
//! collision resistant, but for this application the threat model is
//! *preimage* resistance of salted digests of short identifiers, for which
//! it remains adequate — and fidelity to the paper matters more here.

/// Streaming SHA-1 hasher.
///
/// ```
/// use confanon_crypto::Sha1;
/// let digest = Sha1::digest(b"abc");
/// assert_eq!(Sha1::to_hex(&digest), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes (fits u64 for our workloads).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the standard initial state.
    pub fn new() -> Sha1 {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// One-shot convenience: digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len += data.len() as u64;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Applies padding and returns the 160-bit digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len * 8;
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length —
        // written in bulk straight into the block buffer rather than one
        // `update(&[0])` at a time (finalize runs twice per HMAC call, so
        // this sits on the keyed-hash hot path).
        self.buf[self.buf_len] = 0x80;
        if self.buf_len >= 56 {
            // No room for the length field: pad out this block, compress,
            // and start a fresh one.
            self.buf[self.buf_len + 1..].fill(0);
            let block = self.buf;
            self.compress(&block);
            self.buf = [0; 64];
        } else {
            self.buf[self.buf_len + 1..56].fill(0);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Lowercase hex of a digest.
    pub fn to_hex(digest: &[u8; 20]) -> String {
        let mut s = String::with_capacity(40);
        for b in digest {
            use std::fmt::Write;
            write!(s, "{b:02x}").expect("write to String");
        }
        s
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        // One loop per round group so `f` and `k` are loop constants
        // instead of a branch taken 80 times per block; the keyed-hash
        // paths (token digests, trie flip bits) live or die on this
        // function. `round!` is the standard a..e rotation with the
        // choice/parity/majority functions in branch-free form.
        macro_rules! round {
            ($f:expr, $k:expr, $wt:expr) => {
                let temp = a
                    .rotate_left(5)
                    .wrapping_add($f)
                    .wrapping_add(e)
                    .wrapping_add($wt)
                    .wrapping_add($k);
                e = d;
                d = c;
                c = b.rotate_left(30);
                b = a;
                a = temp;
            };
        }
        for &wt in &w[0..20] {
            round!(d ^ (b & (c ^ d)), 0x5A827999, wt);
        }
        for &wt in &w[20..40] {
            round!(b ^ c ^ d, 0x6ED9EBA1, wt);
        }
        for &wt in &w[40..60] {
            round!((b & c) | (d & (b | c)), 0x8F1BBCDC, wt);
        }
        for &wt in &w[60..80] {
            round!(b ^ c ^ d, 0xCA62C1D6, wt);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        Sha1::to_hex(&Sha1::digest(data))
    }

    #[test]
    fn rfc3174_test_vectors() {
        // TEST1 and TEST2a from RFC 3174 §7.3, plus the empty string and
        // the standard one-million-a vector from FIPS 180-1.
        assert_eq!(hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            Sha1::to_hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Sha1::digest(&data);
        // Feed in awkward chunk sizes to exercise buffering.
        for chunk in [1usize, 3, 63, 64, 65, 127, 1000] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 55/56/64 padding boundaries must all work.
        for n in 50..70usize {
            let data = vec![0xABu8; n];
            let d1 = Sha1::digest(&data);
            let mut h = Sha1::new();
            h.update(&data[..n / 2]);
            h.update(&data[n / 2..]);
            assert_eq!(h.finalize(), d1, "length {n}");
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Sha1::digest(b"UUNET-import"), Sha1::digest(b"UUNET-export"));
    }
}
