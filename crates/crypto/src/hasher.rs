//! The salted token hasher: the anonymizer's string-mapping workhorse.
//!
//! Paper §4.1: "All non-numeric tokens found in the configurations are
//! checked against this pass-list, and any tokens not found are hashed
//! using SHA1 digests: this anonymizes the names of class-maps, route-maps,
//! and any other strings that could hold privileged information." §6.1 adds
//! that the hash is "salted with a secret chosen by the network owner."
//!
//! Two identifier occurrences must hash identically (*referential
//! integrity*), and the output must itself be a legal IOS identifier —
//! IOS names may not start with a digit in some positions and must avoid
//! whitespace — so we render digests as `h` + hex prefix.

use crate::hmac::HmacSha1;
use crate::sha1::Sha1;

/// Number of hex characters of the digest kept in rendered tokens.
/// 16 hex chars = 64 bits, far beyond birthday collisions for the ~10^5
/// distinct identifiers in even the largest network's configs.
const RENDER_HEX: usize = 16;

/// Salted, deterministic token-to-identifier mapping.
///
/// ```
/// use confanon_crypto::TokenHasher;
/// let h = TokenHasher::new(b"foo-corp-secret");
/// let a = h.hash_token("UUNET-import");
/// let b = h.hash_token("UUNET-import");
/// assert_eq!(a, b);                      // referential integrity
/// assert!(a.starts_with('h'));
/// assert_ne!(a, h.hash_token("UUNET-export"));
/// ```
#[derive(Clone)]
pub struct TokenHasher {
    mac: HmacSha1,
}

impl TokenHasher {
    /// Creates a hasher keyed with the network owner's secret salt.
    pub fn new(owner_secret: &[u8]) -> TokenHasher {
        TokenHasher {
            mac: HmacSha1::new(owner_secret),
        }
    }

    /// Full 160-bit digest of a token.
    pub fn digest(&self, token: &str) -> [u8; 20] {
        self.mac.mac(token.as_bytes())
    }

    /// Renders the anonymized form of `token`: `h<16 hex chars>`.
    ///
    /// The rendering is case-normalized on input (IOS identifiers are
    /// case-insensitive in most positions, and the paper's goal is that
    /// *the same* logical identifier maps consistently), but the original
    /// case pattern does not survive — that is information we deliberately
    /// discard in favour of anonymity.
    pub fn hash_token(&self, token: &str) -> String {
        let canonical = token.to_ascii_lowercase();
        let digest = self.digest(&canonical);
        let hex = Sha1::to_hex(&digest);
        let mut out = String::with_capacity(1 + RENDER_HEX);
        out.push('h');
        out.push_str(&hex[..RENDER_HEX]);
        out
    }

    /// Hashes a number into a decimal value within `0..modulus`.
    ///
    /// Used for the integer halves of BGP community attributes (§4.5): "the
    /// integer part of community attributes must also be anonymized." The
    /// output stays a plain decimal so the config remains syntactically
    /// valid where IOS demands a number.
    pub fn hash_number(&self, n: u64, modulus: u64) -> u64 {
        assert!(modulus > 0);
        let digest = self.mac.mac(&n.to_be_bytes());
        let v = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"));
        v % modulus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referential_integrity() {
        let h = TokenHasher::new(b"secret");
        assert_eq!(h.hash_token("UUNET-import"), h.hash_token("UUNET-import"));
    }

    #[test]
    fn case_insensitive_canonicalization() {
        let h = TokenHasher::new(b"secret");
        assert_eq!(h.hash_token("FooCorp"), h.hash_token("foocorp"));
    }

    #[test]
    fn salt_changes_everything() {
        let h1 = TokenHasher::new(b"owner-a");
        let h2 = TokenHasher::new(b"owner-b");
        assert_ne!(h1.hash_token("core-policy"), h2.hash_token("core-policy"));
    }

    #[test]
    fn rendered_form_is_identifier_safe() {
        let h = TokenHasher::new(b"s");
        let out = h.hash_token("weird token !@#");
        assert_eq!(out.len(), 1 + RENDER_HEX);
        assert!(out.starts_with('h'));
        assert!(out[1..].chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn distinct_tokens_distinct_hashes() {
        let h = TokenHasher::new(b"s");
        let names = ["a", "b", "ab", "ba", "customer-1", "customer-2"];
        let hashed: Vec<String> = names.iter().map(|n| h.hash_token(n)).collect();
        for i in 0..hashed.len() {
            for j in i + 1..hashed.len() {
                assert_ne!(hashed[i], hashed[j], "{} vs {}", names[i], names[j]);
            }
        }
    }

    #[test]
    fn hash_number_in_range_and_deterministic() {
        let h = TokenHasher::new(b"s");
        for n in [0u64, 1, 701, 65535, u64::MAX] {
            let v = h.hash_number(n, 65536);
            assert!(v < 65536);
            assert_eq!(v, h.hash_number(n, 65536));
        }
    }
}
