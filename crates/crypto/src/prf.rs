//! A keyed pseudo-random function used by the stateless IP scheme.
//!
//! Xu et al.'s Crypto-PAn derives each flipped address bit from a
//! cryptographic function of the address's prefix, so "very little state
//! must be shared to consistently map addresses" (paper §4.3). We build the
//! same shape from HMAC-SHA1: `bit(input) = lsb(HMAC(key, input))` and a
//! general `bytes(domain, input)` expansion for callers that need more
//! than one bit.

use crate::hmac::HmacSha1;

/// Keyed PRF with domain separation.
#[derive(Clone)]
pub struct Prf {
    mac: HmacSha1,
}

impl Prf {
    /// Creates a PRF keyed by `key`.
    pub fn new(key: &[u8]) -> Prf {
        Prf {
            mac: HmacSha1::new(key),
        }
    }

    /// 20 pseudo-random bytes for `(domain, input)`.
    ///
    /// `domain` separates independent uses of one key (e.g. the IP scheme
    /// vs. the ASN permutation) so outputs never correlate across uses.
    pub fn bytes(&self, domain: &str, input: &[u8]) -> [u8; 20] {
        // NUL separator keeps the concatenation unambiguous (domains are
        // ASCII, no NULs); `mac_parts` feeds the pieces straight into the
        // hash so no message buffer is allocated.
        self.mac.mac_parts(&[domain.as_bytes(), &[0], input])
    }

    /// A single pseudo-random bit for `(domain, input)`.
    pub fn bit(&self, domain: &str, input: &[u8]) -> bool {
        self.bytes(domain, input)[19] & 1 == 1
    }

    /// A pseudo-random `u64` for `(domain, input)`.
    pub fn u64(&self, domain: &str, input: &[u8]) -> u64 {
        let b = self.bytes(domain, input);
        u64::from_be_bytes(b[..8].try_into().expect("8 bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let p = Prf::new(b"k");
        assert_eq!(p.bytes("d", b"x"), p.bytes("d", b"x"));
        assert_eq!(p.bit("d", b"x"), p.bit("d", b"x"));
    }

    #[test]
    fn domain_separation() {
        let p = Prf::new(b"k");
        assert_ne!(p.bytes("ip", b"x"), p.bytes("asn", b"x"));
        // The length-ambiguous concatenations must differ too.
        assert_ne!(p.bytes("ab", b"c"), p.bytes("a", b"bc"));
    }

    #[test]
    fn key_separation() {
        assert_ne!(
            Prf::new(b"k1").bytes("d", b"x"),
            Prf::new(b"k2").bytes("d", b"x")
        );
    }

    #[test]
    fn bits_are_roughly_balanced() {
        // Sanity, not a statistical test: over 4096 inputs the ones-count
        // should land well inside (1000, 3100).
        let p = Prf::new(b"balance");
        let ones = (0u32..4096)
            .filter(|i| p.bit("b", &i.to_be_bytes()))
            .count();
        assert!((1000..3100).contains(&ones), "ones = {ones}");
    }
}
