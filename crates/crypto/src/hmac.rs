//! HMAC-SHA1 (RFC 2104), the keyed function underneath salting and PRFs.
//!
//! The paper salts digests "with a secret chosen by the network owner";
//! we realize the salt as an HMAC key, which is the standard construction
//! for turning a hash into a keyed function and strictly stronger than
//! prefixing the salt.

use crate::sha1::Sha1;

const BLOCK: usize = 64;

/// One-shot HMAC-SHA1 with cached key midstates.
///
/// The ipad/opad blocks depend only on the key, so their SHA-1
/// compressions are run once at construction and every [`HmacSha1::mac`]
/// call starts from the stored midstates — two block compressions per
/// short message instead of four. The digests are bit-identical to the
/// naive construction (same function, same values).
#[derive(Clone)]
pub struct HmacSha1 {
    /// SHA-1 state after absorbing `key ^ ipad`.
    inner_mid: Sha1,
    /// SHA-1 state after absorbing `key ^ opad`.
    outer_mid: Sha1,
}

impl HmacSha1 {
    /// Creates an HMAC instance for `key` (any length).
    pub fn new(key: &[u8]) -> HmacSha1 {
        let mut key_block = [0u8; BLOCK];
        if key.len() > BLOCK {
            key_block[..20].copy_from_slice(&Sha1::digest(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK];
        let mut opad = [0x5Cu8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }
        let mut inner_mid = Sha1::new();
        inner_mid.update(&ipad);
        let mut outer_mid = Sha1::new();
        outer_mid.update(&opad);
        HmacSha1 {
            inner_mid,
            outer_mid,
        }
    }

    /// Computes `HMAC(key, msg)`.
    pub fn mac(&self, msg: &[u8]) -> [u8; 20] {
        self.mac_parts(&[msg])
    }

    /// Computes `HMAC(key, parts[0] || parts[1] || …)` without the caller
    /// having to concatenate into a temporary buffer. Equivalent to
    /// [`HmacSha1::mac`] on the concatenation.
    pub fn mac_parts(&self, parts: &[&[u8]]) -> [u8; 20] {
        let mut inner = self.inner_mid.clone();
        for part in parts {
            inner.update(part);
        }
        let inner_digest = inner.finalize();

        let mut outer = self.outer_mid.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Convenience: `HMAC(key, msg)` without keeping the instance.
    pub fn mac_once(key: &[u8], msg: &[u8]) -> [u8; 20] {
        HmacSha1::new(key).mac(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8; 20]) -> String {
        Sha1::to_hex(d)
    }

    #[test]
    fn rfc2202_case1() {
        let key = [0x0bu8; 20];
        let d = HmacSha1::mac_once(&key, b"Hi There");
        assert_eq!(hex(&d), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_case2() {
        let d = HmacSha1::mac_once(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&d), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn rfc2202_case3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let d = HmacSha1::mac_once(&key, &msg);
        assert_eq!(hex(&d), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
    }

    #[test]
    fn rfc2202_case6_long_key() {
        // Key longer than block size exercises the hash-the-key path.
        let key = [0xaau8; 80];
        let d = HmacSha1::mac_once(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(hex(&d), "aa4ae5e15272d00e95705637ce8a3b55ed402112");
    }

    #[test]
    fn different_keys_different_macs() {
        let m1 = HmacSha1::mac_once(b"owner-secret-1", b"route-map-name");
        let m2 = HmacSha1::mac_once(b"owner-secret-2", b"route-map-name");
        assert_ne!(m1, m2);
    }

    #[test]
    fn instance_reuse_is_consistent() {
        let h = HmacSha1::new(b"salt");
        assert_eq!(h.mac(b"x"), h.mac(b"x"));
        assert_ne!(h.mac(b"x"), h.mac(b"y"));
    }

    #[test]
    fn mac_parts_matches_concatenation() {
        let h = HmacSha1::new(b"salt");
        assert_eq!(h.mac_parts(&[b"ab", b"", b"cd"]), h.mac(b"abcd"));
        assert_eq!(h.mac_parts(&[]), h.mac(b""));
        // Across the 64-byte block boundary too.
        let long = [0x41u8; 100];
        assert_eq!(h.mac_parts(&[&long[..37], &long[37..]]), h.mac(&long));
    }
}
