//! A keyed bijection on `u16`: the "random permutation" for AS numbers.
//!
//! Paper §4.4: "There are no semantics and no relationships embedded in
//! public ASNs, so a random permutation can be used to anonymize them."
//! A Feistel network over the 16-bit ASN space gives us a permutation that
//! is (a) a true bijection by construction, (b) deterministic from the
//! owner secret so that re-anonymizing the same network maps consistently,
//! and (c) requires no stored table.
//!
//! The caller (`confanon-asnanon`) is responsible for restricting the
//! permutation to the *public* range and cycling until the image is public;
//! this module only provides the raw bijection on all of `u16`.

use crate::prf::Prf;

/// Number of Feistel rounds. Four rounds of a PRF round function already
/// give a strong pseudo-random permutation (Luby–Rackoff); we use six for
/// margin since evaluation cost is irrelevant here.
const ROUNDS: usize = 6;

/// A keyed permutation of the 16-bit integers.
///
/// ```
/// use confanon_crypto::FeistelPermutation;
/// let p = FeistelPermutation::new(b"owner-secret", "asn");
/// let y = p.apply(701);
/// assert_eq!(p.invert(y), 701);
/// ```
#[derive(Clone)]
pub struct FeistelPermutation {
    prf: Prf,
    domain: String,
}

impl FeistelPermutation {
    /// Creates a permutation keyed by `key`, domain-separated by `domain`.
    pub fn new(key: &[u8], domain: &str) -> FeistelPermutation {
        FeistelPermutation {
            prf: Prf::new(key),
            domain: domain.to_string(),
        }
    }

    fn round(&self, round: usize, half: u8) -> u8 {
        let input = [round as u8, half];
        self.prf.bytes(&self.domain, &input)[0]
    }

    /// Applies the permutation.
    pub fn apply(&self, x: u16) -> u16 {
        let mut l = (x >> 8) as u8;
        let mut r = (x & 0xFF) as u8;
        for i in 0..ROUNDS {
            let (nl, nr) = (r, l ^ self.round(i, r));
            l = nl;
            r = nr;
        }
        ((l as u16) << 8) | r as u16
    }

    /// Inverts the permutation.
    pub fn invert(&self, y: u16) -> u16 {
        let mut l = (y >> 8) as u8;
        let mut r = (y & 0xFF) as u8;
        for i in (0..ROUNDS).rev() {
            let (nl, nr) = (r ^ self.round(i, l), l);
            l = nl;
            r = nr;
        }
        ((l as u16) << 8) | r as u16
    }

    /// A check value summarizing the permutation's parameters: the images
    /// of a few fixed probe points, folded into one `u64`. Two instances
    /// agree on it exactly when they were built from the same key and
    /// domain (up to probe collisions, negligible for a keyed PRF), so
    /// persisted-state loaders can detect a parameter mismatch without
    /// storing the key itself.
    pub fn check_value(&self) -> u64 {
        const PROBES: [u16; 4] = [0, 1, 0x0102, 0xFEDC];
        let mut acc: u64 = 0;
        for p in PROBES {
            acc = (acc << 16) | u64::from(self.apply(p));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_bijection_on_all_u16() {
        let p = FeistelPermutation::new(b"k", "asn");
        let mut seen = vec![false; 1 << 16];
        for x in 0..=u16::MAX {
            let y = p.apply(x);
            assert!(!seen[y as usize], "collision at {x} -> {y}");
            seen[y as usize] = true;
        }
    }

    #[test]
    fn invert_round_trips() {
        let p = FeistelPermutation::new(b"k", "asn");
        for x in (0..=u16::MAX).step_by(97) {
            assert_eq!(p.invert(p.apply(x)), x);
            assert_eq!(p.apply(p.invert(x)), x);
        }
    }

    #[test]
    fn keyed_and_domain_separated() {
        let p1 = FeistelPermutation::new(b"k1", "asn");
        let p2 = FeistelPermutation::new(b"k2", "asn");
        let p3 = FeistelPermutation::new(b"k1", "community");
        let differs12 = (0..100u16).any(|x| p1.apply(x) != p2.apply(x));
        let differs13 = (0..100u16).any(|x| p1.apply(x) != p3.apply(x));
        assert!(differs12 && differs13);
    }

    #[test]
    fn deterministic_across_instances() {
        let a = FeistelPermutation::new(b"secret", "asn");
        let b = FeistelPermutation::new(b"secret", "asn");
        for x in [0u16, 1, 701, 1239, 65535] {
            assert_eq!(a.apply(x), b.apply(x));
        }
    }

    #[test]
    fn not_identity() {
        // With overwhelming probability a keyed permutation moves most
        // points; require at least 90 of the first 100 to move.
        let p = FeistelPermutation::new(b"secret", "asn");
        let moved = (0..100u16).filter(|&x| p.apply(x) != x).count();
        assert!(moved >= 90, "moved = {moved}");
    }
}

/// A keyed permutation of the 32-bit integers — the 4-byte ASN space of
/// RFC 4893, which postdates the paper (BGPv4 had "only 2^16 ASNs" in
/// 2004) but which any contemporary release must cover.
///
/// Same balanced Feistel construction as [`FeistelPermutation`], with
/// 16-bit halves and a PRF round function.
#[derive(Clone)]
pub struct FeistelPermutation32 {
    prf: Prf,
    domain: String,
}

impl FeistelPermutation32 {
    /// Creates a permutation keyed by `key`, domain-separated by `domain`.
    pub fn new(key: &[u8], domain: &str) -> FeistelPermutation32 {
        FeistelPermutation32 {
            prf: Prf::new(key),
            domain: domain.to_string(),
        }
    }

    fn round(&self, round: usize, half: u16) -> u16 {
        let mut input = [0u8; 3];
        input[0] = round as u8;
        input[1..3].copy_from_slice(&half.to_be_bytes());
        let out = self.prf.bytes(&self.domain, &input);
        u16::from_be_bytes([out[0], out[1]])
    }

    /// Applies the permutation.
    pub fn apply(&self, x: u32) -> u32 {
        let mut l = (x >> 16) as u16;
        let mut r = (x & 0xFFFF) as u16;
        for i in 0..ROUNDS {
            let (nl, nr) = (r, l ^ self.round(i, r));
            l = nl;
            r = nr;
        }
        (u32::from(l) << 16) | u32::from(r)
    }

    /// Inverts the permutation.
    pub fn invert(&self, y: u32) -> u32 {
        let mut l = (y >> 16) as u16;
        let mut r = (y & 0xFFFF) as u16;
        for i in (0..ROUNDS).rev() {
            let (nl, nr) = (r ^ self.round(i, l), l);
            l = nl;
            r = nr;
        }
        (u32::from(l) << 16) | u32::from(r)
    }

    /// Parameter check value (see [`FeistelPermutation::check_value`]):
    /// two fixed probe images folded into one `u64`.
    pub fn check_value(&self) -> u64 {
        const PROBES: [u32; 2] = [0x0000_0001, 0xFEDC_BA98];
        let mut acc: u64 = 0;
        for p in PROBES {
            acc = (acc << 32) | u64::from(self.apply(p));
        }
        acc
    }
}

#[cfg(test)]
mod tests32 {
    use super::*;

    #[test]
    fn invert_round_trips_32() {
        let p = FeistelPermutation32::new(b"k", "asn32");
        for x in [0u32, 1, 23456, 65536, 4_200_000_000, u32::MAX] {
            assert_eq!(p.invert(p.apply(x)), x);
        }
        // A pseudo-random sweep.
        for i in 0..1000u32 {
            let x = i.wrapping_mul(2_654_435_761);
            assert_eq!(p.invert(p.apply(x)), x);
        }
    }

    #[test]
    fn injective_on_a_sample_32() {
        let p = FeistelPermutation32::new(b"k", "asn32");
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u32 {
            assert!(seen.insert(p.apply(i)));
        }
    }

    #[test]
    fn keyed_32() {
        let a = FeistelPermutation32::new(b"k1", "asn32");
        let b = FeistelPermutation32::new(b"k2", "asn32");
        assert!((0..64u32).any(|x| a.apply(x) != b.apply(x)));
    }
}
