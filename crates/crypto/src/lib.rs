//! # confanon-crypto — cryptographic primitives for the anonymizer
//!
//! The paper hashes every non-pass-list string "using SHA1 digests … salted
//! with a secret chosen by the network owner" (§4.1, §6.1), drives the
//! Crypto-PAn-style baseline IP scheme with a keyed pseudo-random function
//! (§4.3), and anonymizes public AS numbers with a keyed random permutation
//! (§4.4). This crate provides all of those from scratch:
//!
//! * [`sha1::Sha1`] — RFC 3174 SHA-1, tested against the RFC vectors;
//! * [`hmac::HmacSha1`] — RFC 2104 HMAC over our SHA-1, tested against the
//!   RFC 2202 vectors;
//! * [`hasher::TokenHasher`] — the salted, consistent token-to-digest map
//!   that keeps referential integrity (`UUNET-import` hashes to the same
//!   string at its definition and every use);
//! * [`prf::Prf`] — a keyed bit-oracle used by the stateless IP scheme;
//! * [`permute::FeistelPermutation`] — a keyed bijection on `u16`, the
//!   "random permutation" the paper applies to public ASNs, made
//!   deterministic from the owner secret so that re-running the anonymizer
//!   maps a network consistently.
//!
//! None of this is meant to compete with audited crypto crates; it exists
//! so the reproduction is fully self-contained, and it is bit-for-bit
//! standard SHA-1/HMAC so digests can be checked externally.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod hasher;
pub mod hmac;
pub mod permute;
pub mod prf;
pub mod sha1;

pub use hasher::TokenHasher;
pub use hmac::HmacSha1;
pub use permute::{FeistelPermutation, FeistelPermutation32};
pub use prf::Prf;
pub use sha1::Sha1;
