//! Hostile-input sanitization: everything that happens to raw bytes
//! before the rule pipeline sees them.
//!
//! Real corpora contain damaged files — truncated transfers, EBCDIC or
//! latin-1 mojibake, editor droppings, multi-megabyte pasted lines. The
//! paper's contract (§1: "fully automated to avoid human errors") means
//! none of those may abort a run; fail-closed means none of them may
//! *silently* alter a clean file either. Sanitization is therefore the
//! identity function on well-formed UTF-8 configuration text and a
//! counted, deterministic repair everywhere else:
//!
//! * invalid UTF-8 sequences become U+FFFD via lossy decoding;
//! * C0 control characters (other than `\t`, `\n`, `\r`) and DEL become
//!   spaces, so a spliced NUL cannot fuse two tokens into a new
//!   identifier nor hide one from the leak scanner;
//! * lines longer than [`MAX_LINE_LEN`] bytes are truncated at a char
//!   boundary (a megabyte "line" is an attack or corruption, never IOS).

/// Upper bound on one input line, in bytes. Real IOS lines are < 1 KiB;
/// the cap only exists so pathological input cannot balloon memory or
/// hashing work.
pub const MAX_LINE_LEN: usize = 64 * 1024;

/// What sanitization had to repair. All-zero for clean input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InputSanitation {
    /// Invalid UTF-8 byte sequences replaced with U+FFFD.
    pub invalid_utf8_replaced: u64,
    /// Control characters replaced with spaces.
    pub controls_replaced: u64,
    /// Lines truncated to [`MAX_LINE_LEN`].
    pub lines_truncated: u64,
}

impl InputSanitation {
    /// True when the input needed no repair (output == input).
    pub fn is_clean(&self) -> bool {
        *self == InputSanitation::default()
    }
}

/// Decodes and repairs raw config bytes. Returns the text the rule
/// pipeline should see plus a tally of repairs; clean UTF-8 config text
/// round-trips byte-identically.
pub fn sanitize_bytes(bytes: &[u8]) -> (String, InputSanitation) {
    let mut tally = InputSanitation::default();

    let text = match std::str::from_utf8(bytes) {
        Ok(s) => std::borrow::Cow::Borrowed(s),
        Err(_) => {
            let lossy = String::from_utf8_lossy(bytes);
            tally.invalid_utf8_replaced = lossy.chars().filter(|&c| c == '\u{FFFD}').count() as u64;
            lossy
        }
    };

    let mut out = String::with_capacity(text.len());
    let mut line_len = 0usize; // bytes of the current line already kept
    let mut truncating = false;
    for c in text.chars() {
        if c == '\n' {
            if truncating {
                tally.lines_truncated += 1;
                truncating = false;
            }
            line_len = 0;
            out.push('\n');
            continue;
        }
        if truncating {
            continue;
        }
        let repaired = if c.is_control() && !matches!(c, '\t' | '\r') {
            tally.controls_replaced += 1;
            ' '
        } else {
            c
        };
        if line_len + repaired.len_utf8() > MAX_LINE_LEN {
            truncating = true;
            continue;
        }
        line_len += repaired.len_utf8();
        out.push(repaired);
    }
    if truncating {
        tally.lines_truncated += 1;
    }
    (out, tally)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_text_is_identity() {
        let text = "hostname r1\n! comment\n interface Serial0/0\r\n ip address 1.2.3.4 255.0.0.0\n";
        let (out, tally) = sanitize_bytes(text.as_bytes());
        assert_eq!(out, text);
        assert!(tally.is_clean());
    }

    #[test]
    fn invalid_utf8_is_lossy_decoded_and_counted() {
        let bytes = b"router bgp 7\xFF\xFE01\n";
        let (out, tally) = sanitize_bytes(bytes);
        assert!(out.contains('\u{FFFD}'));
        assert_eq!(tally.invalid_utf8_replaced, 2);
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn control_chars_become_spaces() {
        let bytes = b"router\x00bgp\x0b701\n\tkeep tab\n";
        let (out, tally) = sanitize_bytes(bytes);
        assert_eq!(out, "router bgp 701\n\tkeep tab\n");
        assert_eq!(tally.controls_replaced, 2);
    }

    #[test]
    fn megabyte_line_is_capped() {
        let mut bytes = vec![b'x'; 1 << 20];
        bytes.push(b'\n');
        bytes.extend_from_slice(b"hostname r1\n");
        let (out, tally) = sanitize_bytes(&bytes);
        let first = out.lines().next().unwrap();
        assert_eq!(first.len(), MAX_LINE_LEN);
        assert_eq!(tally.lines_truncated, 1);
        assert!(out.ends_with("hostname r1\n"));
    }

    #[test]
    fn unterminated_capped_line_still_counts() {
        let bytes = vec![b'y'; MAX_LINE_LEN + 5];
        let (out, tally) = sanitize_bytes(&bytes);
        assert_eq!(out.len(), MAX_LINE_LEN);
        assert_eq!(tally.lines_truncated, 1);
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        // A multi-byte char straddling the cap must not split.
        let mut s = "a".repeat(MAX_LINE_LEN - 1);
        s.push('é'); // 2 bytes: would end at MAX_LINE_LEN + 1
        s.push('\n');
        let (out, tally) = sanitize_bytes(s.as_bytes());
        assert_eq!(out.lines().next().unwrap().len(), MAX_LINE_LEN - 1);
        assert_eq!(tally.lines_truncated, 1);
        assert!(std::str::from_utf8(out.as_bytes()).is_ok());
    }

    #[test]
    fn crlf_survives() {
        let (out, tally) = sanitize_bytes(b"a\r\nb\r\n");
        assert_eq!(out, "a\r\nb\r\n");
        assert!(tally.is_clean());
    }
}
