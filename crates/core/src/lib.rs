//! # confanon-core — the structure-preserving configuration anonymizer
//!
//! This crate is the paper's primary contribution (§4): a fully automated
//! pipeline that removes everything connecting a router configuration to
//! the identity of the network that owns it, while preserving the
//! structure researchers need — subnet containment, referential
//! integrity of identifiers, classful addressing, and the languages of
//! policy regexps.
//!
//! The pipeline deliberately avoids a grammar. Its behaviour is the
//! composition of:
//!
//! * a **pass-list** of tokens known to be innocuous ([`PassList`]),
//!   modelled on the paper's web-walker over the Cisco command-reference
//!   guides (§4.1);
//! * **28 contextual rules** ([`rules`]) — 2 word-segmentation rules, 3
//!   comment/banner strippers, 12 ASN locators, 4 miscellaneous-identity
//!   rules, and 7 address/identifier rules (§4.2–§4.5);
//! * salted **SHA-1 token hashing** for everything not on the pass-list;
//! * the **prefix-preserving IP mapper** and **ASN/community
//!   permutations** from the sibling crates;
//! * a **leak recorder** and the §6.1 *iterative methodology*: after a
//!   pass, lines that still contain a previously seen public ASN or
//!   address are highlighted for the operator, and rule ablations can be
//!   closed iteratively ([`iterate`]).
//!
//! ## Quickstart
//!
//! ```
//! use confanon_core::{Anonymizer, AnonymizerConfig};
//!
//! let cfg = AnonymizerConfig::new(b"foo-corp-secret".to_vec());
//! let mut anon = Anonymizer::new(cfg);
//! let out = anon.anonymize_config("router bgp 1111\n neighbor 12.126.236.17 remote-as 701\n");
//! assert!(!out.text.contains("12.126.236.17"));
//! assert!(!out.text.contains("701"));
//! assert!(out.text.contains("router bgp"));
//! ```

// Fail-closed: library code must never abort on input-derived data. Test
// modules keep the ergonomic forms.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod anonymizer;
pub mod batch;
pub mod discover;
pub mod error;
pub mod figure1;
pub mod fsx;
pub mod input;
pub mod iterate;
pub mod leak;
#[cfg(test)]
mod locator_tests;
pub mod manifest;
pub mod passlist;
pub mod publish;
pub mod rules;
pub mod serve;
pub mod signals;
pub mod state;
pub mod stats;
pub mod tenant;

pub use anonymizer::{AnonymizedConfig, Anonymizer, AnonymizerConfig, IpScheme};
pub use batch::{BatchInput, BatchOutput, BatchPipeline, BatchReport, FileDiscovery};
pub use discover::{ObservationLog, ObservedIp};
pub use error::{AnonError, BatchFailure, BatchPhase, StateErrorKind};
pub use state::{AnonState, FileMark, STATE_FILE_NAME, STATE_SCHEMA};
pub use fsx::{write_atomic, DurabilityStats, FileBytes, Fs, StdFs, MMAP_MIN_LEN};
pub use input::{sanitize_bytes, InputSanitation, MAX_LINE_LEN};
pub use iterate::{iterate_to_closure, IterationTrace};
pub use leak::{LeakRecord, LeakReport, LeakScanner};
pub use manifest::{FileEntry, FileStatus, RunManifest, RUN_MANIFEST_NAME, RUN_MANIFEST_SCHEMA};
pub use passlist::PassList;
pub use publish::Publisher;
pub use rules::{LineClass, Prefilter, PrefilterStats, RuleCategory, RuleId, ALL_RULES};
pub use serve::{
    run_daemon, ServeConfig, ServeOptions, ServeSummary, Status, Verb, MAX_PAYLOAD, PROTOCOL,
};
pub use stats::{AnonymizationStats, RewriteStats};
pub use tenant::{FlushMode, Tenant, TenantHealth, TenantSpec};
