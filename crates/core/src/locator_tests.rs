//! Per-rule tests for the 12 ASN locators (R06–R17).
//!
//! §4.4: "A list of 12 rules is used to locate all the ASNs and ASN
//! regular expressions in the configuration files — this is the most
//! fragile part of our method since ASNs are syntactically
//! indistinguishable from simple integers." Each locator gets a positive
//! test (the ASN moves), a negative test (nearby plain integers do not),
//! and an ablation test (disabling the rule leaks).

#![cfg(test)]

use crate::anonymizer::{Anonymizer, AnonymizerConfig};
use crate::rules::RuleId;

fn anon() -> Anonymizer {
    Anonymizer::new(AnonymizerConfig::new(b"locator-tests".to_vec()))
}

fn image(asn: u16) -> String {
    anon().asn_map().map(asn).to_string()
}

fn run(line: &str) -> String {
    let mut a = anon();
    a.anonymize_config(line).text
}

#[test]
fn r06_router_bgp() {
    let out = run("router bgp 701\n");
    assert_eq!(out.trim(), format!("router bgp {}", image(701)));
}

#[test]
fn r07_neighbor_remote_as() {
    let out = run(" neighbor 9.9.9.9 remote-as 1239\n");
    assert!(out.contains(&format!("remote-as {}", image(1239))), "{out}");
}

#[test]
fn r08_as_path_prepend_maps_every_asn() {
    let out = run(" set as-path prepend 701 701 1239\n");
    let i701 = image(701);
    let i1239 = image(1239);
    assert_eq!(
        out.trim(),
        format!("set as-path prepend {i701} {i701} {i1239}")
    );
}

#[test]
fn r10_confederation_identifier() {
    let out = run(" bgp confederation identifier 7018\n");
    assert!(out.contains(&image(7018)), "{out}");
    assert!(!out.contains("7018"), "{out}");
}

#[test]
fn r11_confederation_peers_all_mapped() {
    let out = run(" bgp confederation peers 65100 701 1239\n");
    // Private confederation member ASNs stay; public ones map.
    assert!(out.contains("65100"), "{out}");
    assert!(out.contains(&image(701)), "{out}");
    assert!(out.contains(&image(1239)), "{out}");
}

#[test]
fn r15_neighbor_local_as() {
    let out = run(" neighbor 9.9.9.9 local-as 3356\n");
    assert!(out.contains(&format!("local-as {}", image(3356))), "{out}");
}

#[test]
fn r16_listen_range_remote_as() {
    let out = run(" bgp listen range 10.5.0.0/16 peer-group CUST remote-as 174\n");
    assert!(out.contains(&format!("remote-as {}", image(174))), "{out}");
    assert!(!out.ends_with("174\n"), "{out}");
    // The prefix token also moved (R23).
    assert!(!out.contains("10.5.0.0/16"), "{out}");
    assert!(out.contains("/16"), "{out}");
}

#[test]
fn r17_extcommunity_route_targets() {
    let mut a = anon();
    let out = a.anonymize_config(" set extcommunity rt 701:100 1239:200\n").text;
    let ma = a.asn_map().map(701);
    let mb = a.asn_map().map(1239);
    assert!(out.contains(&format!("{ma}:")), "{out}");
    assert!(out.contains(&format!("{mb}:")), "{out}");
    assert!(!out.contains("701:100"), "{out}");
}

#[test]
fn plain_integers_near_locators_do_not_move() {
    // Sequence numbers, timers, ACL numbers: simple integers are not
    // anonymized (§4.1).
    for line in [
        "route-map X permit 701\n",          // a sequence number that looks like UUNET
        " timers bgp 701 2103\n",            // keepalive/hold timers
        "access-list 701 permit ip any any\n", // (invalid number, still not an ASN position)
        " match as-path 701\n",              // a *list reference*, not an ASN
    ] {
        let out = run(line);
        assert!(out.contains("701"), "{line:?} -> {out:?} moved a plain integer");
    }
}

#[test]
fn every_locator_ablation_leaks() {
    let cases: &[(RuleId, &str)] = &[
        (RuleId::R06RouterBgpAsn, "router bgp 701\n"),
        (RuleId::R07NeighborRemoteAs, " neighbor 9.9.9.9 remote-as 701\n"),
        (RuleId::R08AsPathPrepend, " set as-path prepend 701\n"),
        (RuleId::R10ConfederationIdentifier, " bgp confederation identifier 701\n"),
        (RuleId::R11ConfederationPeers, " bgp confederation peers 701\n"),
        (RuleId::R15NeighborLocalAs, " neighbor 9.9.9.9 local-as 701\n"),
        (
            RuleId::R16BgpListenRange,
            " bgp listen range 10.0.0.0/8 peer-group X remote-as 701\n",
        ),

        (
            RuleId::R09AsPathAccessListRegex,
            "ip as-path access-list 50 permit _701_\n",
        ),
        (
            RuleId::R12CommunityListPattern,
            "ip community-list 100 permit 701:7[1-5]..\n",
        ),
        (RuleId::R14CommunityAttributeToken, " something 701:120\n"),
    ];
    for (rule, line) in cases {
        let mut a = Anonymizer::new(
            AnonymizerConfig::new(b"locator-tests".to_vec()).without_rule(*rule),
        );
        let out = a.anonymize_config(line).text;
        assert!(
            out.contains("701"),
            "{rule:?} ablated but {line:?} still anonymized: {out:?}"
        );
        // And with the rule on, the same line is clean.
        let mut b = anon();
        let out = b.anonymize_config(line).text;
        assert!(
            !out.contains("701"),
            "{rule:?} enabled but {line:?} leaked: {out:?}"
        );
    }
}

#[test]
fn community_rules_are_defense_in_depth() {
    // Ablating R13 (`set community`) or R17 (`set extcommunity`) alone
    // does NOT leak: the global community-token rule R14 backstops them.
    // Only ablating the context rule *and* the backstop leaks — the
    // layered conservatism of §4.1.
    for (ctx_rule, line) in [
        (RuleId::R13SetCommunity, " set community 701:120\n"),
        (RuleId::R17ExtCommunityContext, " set extcommunity rt 701:9\n"),
    ] {
        let mut only_ctx = Anonymizer::new(
            AnonymizerConfig::new(b"locator-tests".to_vec()).without_rule(ctx_rule),
        );
        let out = only_ctx.anonymize_config(line).text;
        assert!(!out.contains("701"), "{ctx_rule:?}: R14 backstop failed: {out:?}");

        let mut both = Anonymizer::new(
            AnonymizerConfig::new(b"locator-tests".to_vec())
                .without_rule(ctx_rule)
                .without_rule(RuleId::R14CommunityAttributeToken),
        );
        let out = both.anonymize_config(line).text;
        assert!(out.contains("701"), "{ctx_rule:?}+R14 ablated but clean: {out:?}");
    }
}

#[test]
fn twelve_locators_exist() {
    use crate::rules::{RuleCategory, ALL_RULES};
    let locators: Vec<&str> = ALL_RULES
        .iter()
        .filter(|r| r.category == RuleCategory::AsnLocation)
        .map(|r| r.name)
        .collect();
    assert_eq!(locators.len(), 12, "{locators:?}");
}

#[test]
fn well_known_communities_survive_symbolically() {
    // `set community no-export` / `internet` / `additive`: symbolic
    // well-known values are keywords, not identity, and must survive.
    let out = run(" set community no-export additive\n");
    assert_eq!(out.trim(), "set community no-export additive");
    let out = run(" set community internet\n");
    assert_eq!(out.trim(), "set community internet");
}

#[test]
fn community_list_with_symbolic_member_unchanged() {
    // A standard community-list naming a well-known community parses as
    // neither a literal pair nor a numeric regexp atom; it passes through
    // structurally (the `no-export` keywords are pass-listed).
    let out = run("ip community-list 5 permit no-export\n");
    assert_eq!(out.trim(), "ip community-list 5 permit no-export");
}

#[test]
fn compact_rewriting_end_to_end() {
    // The §4.4 extension switched on: Figure 1 anonymizes with compacted
    // regexps; the language is still exactly the image set.
    let mut cfg = AnonymizerConfig::new(b"compact-e2e".to_vec());
    cfg.compact_regexps = true;
    let mut a = Anonymizer::new(cfg);
    let out = a.anonymize_config(crate::figure1::FIGURE1_CONFIG);
    let line = out
        .text
        .lines()
        .find(|l| l.starts_with("ip as-path access-list"))
        .expect("as-path line");
    let pattern = line.splitn(6, ' ').nth(5).unwrap().trim();
    let re = confanon_regexlang::Regex::compile(pattern).expect("compact output parses");
    for asn in [1239u16, 702, 703, 704, 705] {
        assert!(
            re.is_match(&a.asn_map().map(asn).to_string()),
            "{asn} image rejected by compact {pattern}"
        );
    }
    assert!(!re.is_match(&a.asn_map().map(706).to_string()));
    // The compacted community rewrite must be no longer than the plain
    // alternation produced without the option.
    let mut plain = Anonymizer::new(AnonymizerConfig::new(b"compact-e2e".to_vec()));
    let plain_out = plain.anonymize_config(crate::figure1::FIGURE1_CONFIG);
    let len = |t: &str| {
        t.lines()
            .find(|l| l.starts_with("ip community-list"))
            .map(|l| l.len())
            .unwrap_or(0)
    };
    assert!(len(&out.text) <= len(&plain_out.text));
}

#[test]
fn ipv6_literals_and_prefixes_map() {
    // Post-paper extension: RFC 4291 forms map through the 128-bit trie
    // with the same guarantees.
    let mut a = anon();
    let out = a.anonymize_config(
        "interface GigabitEthernet0/0\n ipv6 address 2001:db8:1:2::1/64\nipv6 route 2001:db8:1::/48 2001:db8:1:2::9\n",
    );
    let text = out.text;
    assert!(!text.contains("2001:db8"), "{text}");
    assert!(text.contains("ipv6 address"), "keyword lost: {text}");
    assert!(text.contains("ipv6 route"), "keyword lost: {text}");
    assert!(text.contains("/64") && text.contains("/48"), "{text}");
    assert_eq!(out.stats.ips6_mapped, 3);
    // Prefix preservation: the /48 route prefix must still contain the
    // interface address after anonymization.
    let toks: Vec<&str> = text.split_whitespace().collect();
    let iface: confanon_netprim::Ip6 = toks
        .iter()
        .find(|t| t.ends_with("/64"))
        .unwrap()
        .trim_end_matches("/64")
        .parse()
        .unwrap();
    let route: confanon_netprim::Prefix6 = toks
        .iter()
        .find(|t| t.ends_with("/48"))
        .unwrap()
        .parse()
        .unwrap();
    assert!(route.contains(iface), "{route} !contains {iface}");
}

#[test]
fn ipv6_specials_pass_through() {
    let out = run(" ipv6 address fe80::1 link-local\nipv6 route ::/0 fe80::2\n");
    assert!(out.contains("fe80::1"), "{out}");
    assert!(out.contains("::/0"), "{out}");
}

#[test]
fn ipv6_consistency_across_files() {
    let mut a = anon();
    let o1 = a.anonymize_config("ipv6 route 2001:db8::/32 Null0\n");
    let o2 = a.anonymize_config(" ipv6 address 2001:db8::9/128\n");
    let p1 = o1
        .text
        .split_whitespace()
        .find(|t| t.ends_with("/32"))
        .unwrap()
        .trim_end_matches("/32")
        .to_string();
    let a2 = o2
        .text
        .split_whitespace()
        .find(|t| t.ends_with("/128"))
        .unwrap()
        .trim_end_matches("/128")
        .parse::<confanon_netprim::Ip6>()
        .unwrap();
    let p1: confanon_netprim::Ip6 = p1.parse().unwrap();
    assert!(p1.common_prefix_len(a2) >= 32, "{p1} vs {a2}");
}

#[test]
fn all_28_rules_fire_on_a_comprehensive_config() {
    // One config that exercises every rule class; the stats must show
    // all 28 rule names firing (R28 fires implicitly via recording; it
    // has no counter of its own, so it is checked via the record).
    let config = "\
hostname cr1.lax.foo.com
! a comment about global crossing
banner motd ^C
contact noc@foo.com
^C
interface Serial1/0.5
 description secret site
 ip address 1.1.1.1 255.255.255.0
 ipv6 address 2001:db8::1/64
router bgp 1111
 bgp confederation identifier 1111
 bgp confederation peers 65100 702
 bgp listen range 10.0.0.0/8 peer-group CUST remote-as 3356
 neighbor 9.9.9.9 remote-as 701
 neighbor 9.9.9.9 local-as 1112
route-map X permit 10
 set as-path prepend 1111 1111
 set community 701:120
 set extcommunity rt 701:99
ip as-path access-list 50 permit _70[1-5]_
ip community-list 100 permit 701:7[1-5]..
ip prefix-list PL seq 5 permit 10.2.0.0/16
dialer string 14155551234
ip domain-name foo.com
snmp-server community s3cr3t RO
ntp server time.foo.com
access-list 10 permit 10.2.3.0 0.0.0.255
something 702:44
";
    let mut a = anon();
    let out = a.anonymize_config(config);
    use crate::rules::ALL_RULES;
    let mut missing: Vec<&str> = Vec::new();
    for r in &ALL_RULES {
        // R28 (leak highlighting) manifests as a populated record, not a
        // fire counter.
        if r.name == "leak-highlighting" {
            continue;
        }
        if !out.stats.rule_fires.contains_key(r.name) {
            missing.push(r.name);
        }
    }
    assert!(missing.is_empty(), "rules never fired: {missing:?}\n{out:#?}");
    assert!(!a.leak_record().is_empty(), "R28 recorded nothing");
}

#[test]
fn large_communities_are_anonymized() {
    // RFC 8092 `GlobalAdmin:Data1:Data2` — post-paper attribute whose
    // admin half is an ASN.
    let out = run(" set large-community 64496:1:2 199999:7:8\n");
    assert!(!out.contains("64496:1:2"), "{out}");
    assert!(!out.contains("199999:7:8"), "{out}");
    // Shape preserved: still three colon-separated decimal fields.
    for tok in out.split_whitespace().filter(|t| t.contains(':')) {
        assert_eq!(tok.split(':').count(), 3, "{tok}");
        for f in tok.split(':') {
            assert!(f.bytes().all(|b| b.is_ascii_digit()), "{tok}");
        }
    }
}
