//! Identifier observations for sharded discovery.
//!
//! The discovery pass exists to warm the [`crate::Anonymizer`]'s mapping
//! state before the parallel rewrite pass, and for most of that state the
//! order files are scanned in does not matter: the leak record, the
//! emitted-image set, and the per-file statistics all merge
//! commutatively. The two exceptions are the v4 and v6 prefix-preserving
//! tries, whose node layout depends on the order addresses are *first*
//! inserted. Sequential discovery gets that order for free; sharded
//! discovery must reconstruct it.
//!
//! The reconstruction rests on one property of the tries (pinned by the
//! `ipanon` test suite): mappings are **sticky**. Once an address has an
//! image, re-anonymizing it returns the same image without mutating
//! state. A sequential run's trie state is therefore a function of one
//! thing only — the sequence of *first occurrences* of distinct
//! addresses, in corpus order. So each discovery shard records, for every
//! address it would have mapped, the corpus position `(file index,
//! in-file sequence)` of its first sighting; merging shards keeps the
//! minimum position per address; and replaying the merged set sorted by
//! position drives the tries through exactly the insertion sequence a
//! sequential scan would have produced. See
//! [`crate::batch::BatchPipeline`] for the surrounding machinery.

use std::collections::BTreeMap;

use confanon_netprim::{Ip, Ip6};

/// Corpus position of an observation: `(file index, in-file sequence)`.
///
/// The in-file sequence is a single counter shared by v4 and v6
/// observations, incremented at each would-be trie mapping, so positions
/// are totally ordered and unique across both address families.
pub type ObsPos = (u64, u64);

/// One trie-mutating identifier observed during a discovery shard's scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObservedIp {
    /// An IPv4 address that would have been mapped through the v4 trie.
    V4(Ip),
    /// An IPv6 address that would have been mapped through the v6 trie.
    V6(Ip6),
}

/// A log of first observations of trie-mutating identifiers, keyed by
/// identifier with the earliest corpus position seen.
///
/// Shards over disjoint file ranges produce logs with disjoint position
/// sets; [`ObservationLog::merge`] is nevertheless written to keep the
/// minimum position per identifier, so it is commutative and idempotent
/// regardless of how the corpus was split.
#[derive(Debug, Clone, Default)]
pub struct ObservationLog {
    cursor: ObsPos,
    v4: BTreeMap<Ip, ObsPos>,
    v6: BTreeMap<Ip6, ObsPos>,
}

impl ObservationLog {
    /// Positions subsequent observations at the start of file `file_idx`.
    pub fn begin_file(&mut self, file_idx: u64) {
        self.cursor = (file_idx, 0);
    }

    /// Records a v4 address at the current cursor position, keeping the
    /// earliest position if it was already seen.
    pub fn note_v4(&mut self, ip: Ip) {
        let pos = self.next_pos();
        self.v4
            .entry(ip)
            .and_modify(|p| *p = (*p).min(pos))
            .or_insert(pos);
    }

    /// Records a v6 address at the current cursor position, keeping the
    /// earliest position if it was already seen.
    pub fn note_v6(&mut self, ip: Ip6) {
        let pos = self.next_pos();
        self.v6
            .entry(ip)
            .and_modify(|p| *p = (*p).min(pos))
            .or_insert(pos);
    }

    fn next_pos(&mut self) -> ObsPos {
        let p = self.cursor;
        self.cursor.1 += 1;
        p
    }

    /// Folds another log in, keeping the earliest position per
    /// identifier. Commutative: merge order cannot change the result.
    pub fn merge(&mut self, other: ObservationLog) {
        for (ip, pos) in other.v4 {
            self.v4
                .entry(ip)
                .and_modify(|p| *p = (*p).min(pos))
                .or_insert(pos);
        }
        for (ip, pos) in other.v6 {
            self.v6
                .entry(ip)
                .and_modify(|p| *p = (*p).min(pos))
                .or_insert(pos);
        }
    }

    /// Number of distinct identifiers recorded (v4 + v6).
    pub fn len(&self) -> usize {
        self.v4.len() + self.v6.len()
    }

    /// `true` when no identifier has been recorded.
    pub fn is_empty(&self) -> bool {
        self.v4.is_empty() && self.v6.is_empty()
    }

    /// The observed identifiers sorted by first corpus position — the
    /// exact order a sequential scan would have first inserted them into
    /// the tries. Ties (impossible for shards over disjoint files, since
    /// every observation consumes a unique position) break on the
    /// identifier itself so the order is total in every case.
    pub fn into_canonical_order(self) -> Vec<ObservedIp> {
        let mut all: Vec<(ObsPos, ObservedIp)> = self
            .v4
            .into_iter()
            .map(|(ip, pos)| (pos, ObservedIp::V4(ip)))
            .chain(self.v6.into_iter().map(|(ip, pos)| (pos, ObservedIp::V6(ip))))
            .collect();
        all.sort_unstable();
        all.into_iter().map(|(_, ip)| ip).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(n: u32) -> Ip {
        Ip(n)
    }

    #[test]
    fn canonical_order_is_first_occurrence_order() {
        let mut log = ObservationLog::default();
        log.begin_file(0);
        log.note_v4(v4(30));
        log.note_v4(v4(10));
        log.note_v4(v4(30)); // repeat: keeps the earlier position
        log.begin_file(1);
        log.note_v4(v4(20));
        assert_eq!(
            log.into_canonical_order(),
            vec![
                ObservedIp::V4(v4(30)),
                ObservedIp::V4(v4(10)),
                ObservedIp::V4(v4(20)),
            ]
        );
    }

    #[test]
    fn merge_is_commutative_and_keeps_min_position() {
        let mut a = ObservationLog::default();
        a.begin_file(0);
        a.note_v4(v4(7));
        a.note_v6(Ip6(9));
        let mut b = ObservationLog::default();
        b.begin_file(3);
        b.note_v4(v4(7)); // later sighting of the same address
        b.note_v4(v4(8));

        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        assert_eq!(ab.into_canonical_order(), ba.into_canonical_order());
    }

    #[test]
    fn v4_and_v6_share_one_position_sequence() {
        let mut log = ObservationLog::default();
        log.begin_file(0);
        log.note_v6(Ip6(1));
        log.note_v4(v4(1));
        assert_eq!(
            log.into_canonical_order(),
            vec![ObservedIp::V6(Ip6(1)), ObservedIp::V4(v4(1))]
        );
        let mut log = ObservationLog::default();
        log.begin_file(0);
        log.note_v4(v4(1));
        log.note_v6(Ip6(1));
        assert_eq!(
            log.into_canonical_order(),
            vec![ObservedIp::V4(v4(1)), ObservedIp::V6(Ip6(1))]
        );
    }

    #[test]
    fn empty_log_reports_empty() {
        let log = ObservationLog::default();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert!(log.into_canonical_order().is_empty());
    }
}
