//! The pass-list of unprivileged tokens.
//!
//! Paper §4.1: "A pass-list of unprivileged tokens was created by building
//! a web-walker that string scraped the Cisco IOS command reference
//! guides. In theory, most Cisco keywords will appear somewhere in the
//! guides, and non-keywords used in the guides are so common they cannot
//! leak information."
//!
//! We cannot ship the output of a crawl over Cisco's documentation, so the
//! builtin list embeds the same two populations the crawl would find:
//! the IOS command vocabulary (keywords, protocol names, interface-type
//! names, units) and the common documentation English that surrounds them.
//! [`PassList::scrape`] reproduces the web-walker behaviour for any
//! reference corpus you *can* provide: it string-scrapes alphabetic
//! tokens exactly as the paper describes, so a deployment can regenerate
//! its pass-list from local command references.

use std::collections::HashSet;

use confanon_iosparse::{segment, Segment};

/// IOS command vocabulary: every keyword the anonymizer should recognize
/// as structure rather than identity. Matching is case-insensitive.
const IOS_KEYWORDS: &[&str] = &[
    // Top-level and mode-opening commands.
    "aaa", "access", "address", "aggregate", "alias", "area", "arp", "async", "atm",
    "authentication", "authorization", "auto", "autonomous", "backbone", "bandwidth", "banner",
    "bgp", "boot", "bridge", "broadcast", "buffers", "cable", "card", "cdp", "class", "classless",
    "clock", "cluster", "community", "confederation", "config", "configuration", "console",
    "controller", "cost", "crypto", "dampening", "databits", "dead", "default", "delay", "deny",
    "description", "dialer", "directed", "disable", "distance", "distribute", "domain", "dot",
    "downstream", "duplex", "eigrp", "enable", "encapsulation", "end", "exec", "exit", "export",
    "external", "fair", "fast", "flowcontrol", "format", "forward", "forwarding", "frame",
    "framing", "ftp", "full", "gateway", "group", "half", "hello", "history", "hold", "holdtime",
    "host", "hostname", "hssi", "http", "identifier", "igmp", "import", "in", "inbound",
    "input", "interface", "internal", "interval", "invalid", "ios", "ip", "ipx", "isdn", "isis",
    "keepalive", "key", "lan", "level", "line", "list", "listen", "local", "log", "logging",
    "login", "loopback", "map", "mask", "match", "maximum", "md", "media", "memory", "metric",
    "mls", "mode", "motd", "mpls", "mroute", "mtu", "multicast", "multipoint", "name", "nat",
    "neighbor", "network", "nexthop", "next", "hop", "no", "ntp", "ospf", "out", "outbound",
    "output", "parity", "passive", "password", "path", "peer", "permanent", "permit", "point",
    "policy", "pool", "preference", "prefix", "prepend", "priority", "privilege", "process",
    "protocol", "proxy", "queue", "radius", "range", "rate", "redistribute", "reference",
    "reflector", "relay", "reload", "remark", "remote", "retransmit", "rip", "route", "router",
    "routing", "rx", "scheduler", "secondary", "secret", "send", "seq", "sequence", "server",
    "service", "session", "set", "shutdown", "snmp", "source", "spanning", "speed", "split",
    "standby", "static", "stopbits", "stub", "subnet", "summary", "switch", "switchport",
    "synchronization", "table", "tacacs", "tag", "tcp", "telnet", "terminal", "tftp", "timeout",
    "timers", "to", "traffic", "translation", "transmit", "transport", "trap", "traps", "tree",
    "trunk", "tunnel", "tx", "udp", "unicast", "update", "upstream", "username", "version",
    "virtual", "vlan", "vrf", "vtp", "vty", "weight", "zone", "encryption", "zero", "changes",
    "netmask", "icmp", "traceroute", "location", "ro", "rw", "uptime", "summarization",
    "extcommunity", "rt", "soo", "client", "ipv", "unicast-routing", "link", "large",
    // Interface type names.
    "ethernet", "fastethernet", "gigabitethernet", "tengigabitethernet", "serial", "pos",
    "port", "channel", "dialer0", "null", "vlan1", "mgmt", "fddi", "tokenring",
    // Protocol/feature names that appear as arguments.
    "connected", "ibgp", "ebgp", "egp", "incomplete", "internet", "any", "all", "none", "both",
    "additive", "exact", "ge", "le", "eq", "gt", "lt", "neq", "established", "echo", "reply",
    "unreachable", "redirect", "ttl", "tos", "precedence", "dscp", "fragments",
    // Units and common argument words in references.
    "seconds", "minutes", "hours", "bytes", "packets", "bits", "kilobits", "megabits",
    "milliseconds", "percent",
];

/// Documentation English: words that appear in any command-reference
/// guide and therefore, per the paper, "are so common they cannot leak
/// information". (Note `global` and `crossing` are here on purpose: the
/// paper's own example of why comments must be stripped *despite* the
/// pass-list.)
const GUIDE_ENGLISH: &[&str] = &[
    "a", "about", "above", "accept", "active", "after", "allowed", "an", "and", "apply", "are",
    "argument", "as", "assign", "at", "attribute", "available", "be", "because", "been",
    "before", "begin", "below", "between", "bit", "but", "by", "can", "cannot", "case", "change",
    "character", "check", "command", "commands", "common", "configure", "configured", "contact",
    "contains", "control", "create", "crossing", "current", "data", "defined", "defines",
    "device", "disabled", "displays", "does", "down", "each", "either", "empty", "enabled",
    "enter", "entry", "error", "event", "example", "exceed", "existing", "false", "field",
    "file", "filter", "first", "flag", "following", "for", "from", "general", "global", "guide",
    "has", "have", "if", "ignore", "include", "information", "instance", "into", "is", "it",
    "its", "keyword", "label", "last", "length", "limit", "lines", "lower", "main", "manual",
    "may", "message", "might", "minimum", "more", "most", "must", "new", "not", "notice",
    "number", "of", "off", "old", "on", "one", "only", "option", "optional", "options", "or",
    "order", "other", "packet", "page", "parameter", "parameters", "part", "per", "point",
    "ports", "prohibited", "provides", "reachable", "read", "received", "reference", "refer",
    "related", "release", "removed", "required", "reserved", "reset", "restricted", "result",
    "running", "same", "sample", "second", "section", "see", "selected", "sent", "show",
    "single", "size", "software", "specified", "specifies", "specify", "standard", "start",
    "state", "status", "strictly", "string", "support", "supported", "system", "than", "that",
    "the", "then", "these", "this", "time", "true", "two", "type", "under", "unit", "until",
    "up", "upper", "use", "used", "user", "uses", "using", "valid", "value", "values", "when",
    "where", "which", "will", "with", "within", "word", "write", "you",
];

/// The pass-list: a case-insensitive set of unprivileged words.
#[derive(Debug, Clone)]
pub struct PassList {
    words: HashSet<String>,
}

impl PassList {
    /// The builtin list (IOS vocabulary + guide English).
    pub fn builtin() -> PassList {
        let mut words = HashSet::with_capacity(IOS_KEYWORDS.len() + GUIDE_ENGLISH.len());
        for w in IOS_KEYWORDS.iter().chain(GUIDE_ENGLISH) {
            words.insert((*w).to_ascii_lowercase());
        }
        PassList { words }
    }

    /// An empty list (useful for worst-case tests: everything hashes).
    pub fn empty() -> PassList {
        PassList {
            words: HashSet::new(),
        }
    }

    /// The web-walker behaviour: string-scrape every alphabetic segment of
    /// `reference_text` into the list. "In theory, most Cisco keywords
    /// will appear somewhere in the guides."
    pub fn scrape(&mut self, reference_text: &str) {
        for word in reference_text.split_whitespace() {
            for seg in segment(word) {
                if let Segment::Alpha(a) = seg {
                    // Single letters scrape too (flags like `A` appear in
                    // guides constantly and cannot leak).
                    self.words.insert(a.to_ascii_lowercase());
                }
            }
        }
    }

    /// Builds a list purely by scraping (no builtin seed).
    pub fn from_reference_text(reference_text: &str) -> PassList {
        let mut pl = PassList::empty();
        pl.scrape(reference_text);
        pl
    }

    /// Case-insensitive membership test.
    pub fn contains(&self, word: &str) -> bool {
        // Avoid allocating when the word is already lowercase.
        if word.bytes().any(|b| b.is_ascii_uppercase()) {
            self.words.contains(&word.to_ascii_lowercase())
        } else {
            self.words.contains(word)
        }
    }

    /// Inserts one word (lowercased).
    pub fn insert(&mut self, word: &str) {
        self.words.insert(word.to_ascii_lowercase());
    }

    /// Number of words on the list.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_contains_core_vocabulary() {
        let pl = PassList::builtin();
        for w in [
            "interface",
            "ethernet",
            "router",
            "bgp",
            "neighbor",
            "route",
            "map",
            "permit",
            "deny",
            "community",
            "network",
            "description",
        ] {
            assert!(pl.contains(w), "{w} missing from builtin pass-list");
        }
    }

    #[test]
    fn case_insensitive() {
        let pl = PassList::builtin();
        assert!(pl.contains("Ethernet"));
        assert!(pl.contains("ETHERNET"));
        assert!(pl.contains("eThErNeT"));
    }

    #[test]
    fn identity_words_are_absent() {
        let pl = PassList::builtin();
        for w in ["uunet", "foo", "lax", "genuity", "sprintlink"] {
            assert!(!pl.contains(w), "{w} must not be on the pass-list");
        }
    }

    #[test]
    fn paper_example_global_crossing_words_are_present() {
        // §4.2: "global and crossing are both in the pass-list, but the
        // string `global crossing` in a comment must be anonymized" — the
        // defence is comment stripping, not pass-list removal.
        let pl = PassList::builtin();
        assert!(pl.contains("global"));
        assert!(pl.contains("crossing"));
    }

    #[test]
    fn scrape_mimics_web_walker() {
        let mut pl = PassList::empty();
        pl.scrape("Use the frobnicate command to enable WidgetFlow on e0/1.");
        for w in ["use", "frobnicate", "command", "widgetflow", "e"] {
            assert!(pl.contains(w), "{w}");
        }
        assert!(!pl.contains("0/1"));
    }

    #[test]
    fn insert_and_len() {
        let mut pl = PassList::empty();
        assert!(pl.is_empty());
        pl.insert("FooBar");
        assert!(pl.contains("foobar"));
        assert_eq!(pl.len(), 1);
        pl.insert("foobar");
        assert_eq!(pl.len(), 1, "case-folded duplicates collapse");
    }

    #[test]
    fn builtin_is_substantial() {
        // The real crawl produced thousands of words; our embedded seed
        // must at least cover the few hundred the pipeline exercises.
        assert!(PassList::builtin().len() > 400);
    }
}
