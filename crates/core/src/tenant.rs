//! One tenant of the serve daemon: resident anonymizer state, its
//! persistent store, and the per-request robustness envelope.
//!
//! A tenant is exactly what a `confanon batch --state DIR` run is,
//! made resident: one owner secret, one [`AnonState`] directory, one
//! leak gate. The serve layer owns each tenant from a single worker
//! thread, so this type needs no interior locking — isolation between
//! tenants is structural (separate threads, separate state, separate
//! secrets), not a locking discipline.
//!
//! Request handling is clone-mutate-swap: the worker clones the
//! resident [`Anonymizer`], runs the request on the clone under
//! `catch_unwind`, and only swaps the clone in after the §6.1 leak gate
//! passes. A poisoned request therefore fails closed — the error frame
//! goes out, the resident state is still the pre-request state (the
//! "worker re-clone" from the batch pipeline, per request instead of
//! per file), and no other tenant is involved at all.
//!
//! Quarantine is two-tier and deliberate about what it flushes:
//!
//! * **leak quarantine** (a request tripped the gate): the tenant stops
//!   serving, but its state as of the *last clean request* is intact
//!   and still flushes on drain;
//! * **state quarantine** (the persisted store was unusable at open):
//!   the tenant refuses to serve *and to flush* — overwriting a torn
//!   `state.json` with a fresh empty one would destroy exactly the
//!   evidence an operator needs to repair the store.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use confanon_obs::{Clock, ObsShard};
use confanon_testkit::json::Json;

use crate::anonymizer::{Anonymizer, AnonymizerConfig};
use crate::error::AnonError;
use crate::fsx::{DurabilityStats, Fs};
use crate::input::sanitize_bytes;
use crate::leak::LeakScanner;
use crate::manifest::RunManifest;
use crate::rules::ALL_RULES;
use crate::serve::Status;
use crate::state::{state_path, AnonState, FileMark};

/// When a tenant's state is durably flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushMode {
    /// After every successful request, *before* the `OK` frame is sent:
    /// an acknowledged mapping is a durable mapping, so `kill -9`
    /// loses nothing a client saw succeed.
    Request,
    /// Only at drain (and explicit `FLUSH` frames): faster, but a hard
    /// kill loses mappings issued since the last flush — clients must
    /// replay the whole session to reconverge.
    Drain,
}

impl FlushMode {
    /// Stable name, used in config files and log lines.
    pub fn name(self) -> &'static str {
        match self {
            FlushMode::Request => "request",
            FlushMode::Drain => "drain",
        }
    }

    /// Parses [`FlushMode::name`].
    pub fn parse(s: &str) -> Option<FlushMode> {
        match s {
            "request" => Some(FlushMode::Request),
            "drain" => Some(FlushMode::Drain),
            _ => None,
        }
    }
}

/// One tenant's static configuration (from `confanon.toml`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// The tenant's wire name (token-restricted).
    pub name: String,
    /// The tenant's owner secret: keys every mapping.
    pub secret: Vec<u8>,
    /// The tenant's private `AnonState` directory.
    pub state_dir: PathBuf,
    /// Rule ablations (validated names), as in `batch --disable-rule`.
    pub disabled_rules: Vec<String>,
    /// Per-tenant request-payload quota in bytes (≤ the protocol's
    /// [`crate::serve::MAX_PAYLOAD`]); an oversized `ANON` is answered
    /// with an `ERROR` frame before it ever reaches the worker.
    pub max_request_bytes: usize,
    /// Per-tenant work-queue bound; `None` uses the daemon-wide
    /// `queue_depth`.
    pub queue_depth: Option<usize>,
}

/// Tenant serving health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantHealth {
    /// Serving normally.
    Serving,
    /// A request tripped the §6.1 gate; the tenant refuses further
    /// requests but its last-clean state still flushes.
    LeakQuarantined {
        /// What the gate found.
        reason: String,
    },
    /// The persisted state was unusable at open (torn, foreign secret,
    /// wrong version); the tenant refuses requests *and* flushes.
    StateQuarantined {
        /// The load/verification error.
        reason: String,
    },
    /// A permanent fs error (ENOSPC-class) broke durable flushing. The
    /// tenant keeps serving `ANON` from its resident mappings — marked
    /// with the distinct `DEGRADED` status frame — but flush is
    /// suspended until a recovery probe (or explicit `FLUSH`) lands a
    /// clean save.
    Degraded {
        /// The flush error that started the degradation.
        reason: String,
    },
}

impl TenantHealth {
    /// Stable name for stats frames.
    pub fn name(&self) -> &'static str {
        match self {
            TenantHealth::Serving => "serving",
            TenantHealth::LeakQuarantined { .. } => "leak-quarantined",
            TenantHealth::StateQuarantined { .. } => "state-quarantined",
            TenantHealth::Degraded { .. } => "degraded",
        }
    }
}

/// Deterministic fault hooks, read from the environment once at open —
/// the serve-mode siblings of `CONFANON_CRASH_AFTER`. Tests (and only
/// tests) set them; production requests never contain the markers.
#[derive(Debug, Clone, Default)]
struct FaultHooks {
    /// `CONFANON_SERVE_FAULT_MARKER`: a request whose sanitized text
    /// contains this substring panics inside the containment boundary.
    panic_marker: Option<String>,
    /// `CONFANON_SERVE_SLEEP_MARKER`: a request whose text contains
    /// this substring sleeps before processing (queue saturation and
    /// timeout tests).
    sleep_marker: Option<String>,
    /// `CONFANON_SERVE_SLEEP_MS`: how long the sleep marker sleeps.
    sleep_ms: u64,
}

impl FaultHooks {
    fn from_env() -> FaultHooks {
        FaultHooks {
            panic_marker: std::env::var("CONFANON_SERVE_FAULT_MARKER").ok(),
            sleep_marker: std::env::var("CONFANON_SERVE_SLEEP_MARKER").ok(),
            sleep_ms: std::env::var("CONFANON_SERVE_SLEEP_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(250),
        }
    }
}

/// A resident tenant: the serve daemon's unit of isolation.
pub struct Tenant {
    /// The tenant's wire name.
    pub name: String,
    /// The spec the tenant was opened from, kept so recovery probes can
    /// re-run the full §13 open path against a healed state directory.
    spec: TenantSpec,
    state_dir: PathBuf,
    fingerprint: String,
    anonymizer: Anonymizer,
    files: BTreeMap<String, FileMark>,
    health: TenantHealth,
    flush_mode: FlushMode,
    hooks: FaultHooks,
    obs: ObsShard,
    durability: DurabilityStats,
}

/// Renders a contained panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

impl Tenant {
    /// Opens a tenant: builds its keyed config and loads any persisted
    /// state through the full verification path (owner check + journal
    /// replay + trie digest check). A defective state does not abort
    /// the daemon — the tenant opens [state-quarantined]
    /// (`TenantHealth::StateQuarantined`) with the verification error
    /// as its reason, and every other tenant is unaffected.
    ///
    /// [state-quarantined]: TenantHealth::StateQuarantined
    pub fn open(spec: &TenantSpec, flush_mode: FlushMode, fs: &dyn Fs) -> Tenant {
        let mut cfg = AnonymizerConfig::new(spec.secret.clone());
        for rule in &spec.disabled_rules {
            if let Some(r) = ALL_RULES.iter().find(|r| r.name == *rule) {
                cfg = cfg.without_rule(r.id);
            }
        }
        let fingerprint = RunManifest::fingerprint(&spec.secret);
        let mut anonymizer = Anonymizer::new(cfg.clone());
        let mut files = BTreeMap::new();
        let mut health = TenantHealth::Serving;
        let state_file = state_path(&spec.state_dir).display().to_string();
        match AnonState::load(fs, &spec.state_dir) {
            Ok(None) => {}
            Ok(Some(state)) => {
                let expect_perms = anonymizer.perm_fingerprint();
                let restored = state
                    .check_owner(&state_file, &fingerprint, &expect_perms)
                    .and_then(|()| state.restore_into(&state_file, &mut anonymizer));
                match restored {
                    Ok(_) => files = state.files.clone(),
                    Err(e) => {
                        health = TenantHealth::StateQuarantined {
                            reason: e.to_string(),
                        };
                        // A failed replay may have half-warmed the
                        // tries; a quarantined tenant must hold no
                        // partial mappings.
                        anonymizer = Anonymizer::new(cfg.clone());
                    }
                }
            }
            Err(e) => {
                health = TenantHealth::StateQuarantined {
                    reason: e.to_string(),
                };
            }
        }
        let mut obs = ObsShard::new(Clock::new());
        obs.count("serve.opened", 1);
        Tenant {
            name: spec.name.clone(),
            spec: spec.clone(),
            state_dir: spec.state_dir.clone(),
            fingerprint,
            anonymizer,
            files,
            health,
            flush_mode,
            hooks: FaultHooks::from_env(),
            obs,
            durability: DurabilityStats::default(),
        }
    }

    /// The state defect that quarantined this tenant at open, if any
    /// (`--require-clean-state` turns this into a startup refusal).
    pub fn state_defect(&self) -> Option<&str> {
        match &self.health {
            TenantHealth::StateQuarantined { reason } => Some(reason),
            _ => None,
        }
    }

    /// Current health.
    pub fn health(&self) -> &TenantHealth {
        &self.health
    }

    /// Handles one `ANON` request. Returns the response status and
    /// payload; never panics outward and never leaves the resident
    /// state half-mutated (clone-mutate-swap).
    pub fn handle_anon(&mut self, name: &str, payload: &[u8], fs: &dyn Fs) -> (Status, Vec<u8>) {
        self.obs.count("serve.requests", 1);
        self.obs.record("serve.request_bytes", payload.len() as u64);
        match &self.health {
            TenantHealth::Serving | TenantHealth::Degraded { .. } => {}
            TenantHealth::LeakQuarantined { reason }
            | TenantHealth::StateQuarantined { reason } => {
                self.obs.count("serve.rejected_quarantined", 1);
                let msg = format!("tenant {:?} is {}: {reason}", self.name, self.health.name());
                return (Status::TenantQuarantined, msg.into_bytes());
            }
        }
        let (text, _tally) = sanitize_bytes(payload);
        if let Some(marker) = &self.hooks.sleep_marker {
            if text.contains(marker.as_str()) {
                std::thread::sleep(std::time::Duration::from_millis(self.hooks.sleep_ms));
            }
        }
        let before = *self.anonymizer.prefilter_stats();
        let clone = self.anonymizer.clone();
        let panic_marker = self.hooks.panic_marker.clone();
        let outcome = catch_unwind(AssertUnwindSafe(move || {
            let mut clone = clone;
            if let Some(marker) = &panic_marker {
                assert!(
                    !text.contains(marker.as_str()),
                    "serve fault marker {marker:?} hit"
                );
            }
            let out = clone.anonymize_config(&text);
            (clone, out, text)
        }));
        let (warmed, out, text) = match outcome {
            Ok(parts) => parts,
            Err(payload) => {
                // Fail closed: the clone (and whatever it half-did)
                // is gone; the resident state never saw the request.
                self.obs.count("serve.panics_contained", 1);
                let msg = format!("panic contained: {}", panic_message(payload.as_ref()));
                return (Status::Error, msg.into_bytes());
            }
        };
        let scan = LeakScanner::scan_excluding(
            warmed.leak_record(),
            warmed.emitted_exclusions(),
            &out.text,
        );
        if !scan.is_clean() {
            self.obs.count("serve.leak_quarantines", 1);
            let reason = format!(
                "leak gate: {} residual hit(s) in request {name:?}; output withheld",
                scan.leaks.len()
            );
            self.health = TenantHealth::LeakQuarantined {
                reason: reason.clone(),
            };
            let leaks: Vec<Json> = scan
                .leaks
                .iter()
                .map(|l| {
                    Json::obj()
                        .with("line_no", l.line_no as u64)
                        .with("token", l.token.as_str())
                })
                .collect();
            let doc = Json::obj()
                .with("schema", "confanon-leak-report-v1")
                .with("name", name)
                .with("reason", reason.as_str())
                .with("leaks", Json::Arr(leaks));
            return (Status::Quarantined, doc.to_string_pretty().into_bytes());
        }
        // Gate passed: commit. The swap is the only mutation of the
        // resident state, and it is all-or-nothing by construction.
        let after = *warmed.prefilter_stats();
        self.files.insert(
            name.to_string(),
            FileMark {
                watermark: RunManifest::digest_hex(text.as_bytes()),
                stats: out.stats.clone(),
                prefilter_fast: after.fast_path_lines - before.fast_path_lines,
                prefilter_slow: after.slow_path_lines - before.slow_path_lines,
            },
        );
        self.anonymizer = warmed;
        // Degraded mode suspends the per-request flush entirely — the
        // disk already said no permanently; hammering it per request
        // would turn one bad device into a latency storm. Recovery
        // probes (and explicit FLUSH frames) retry instead.
        if self.flush_mode == FlushMode::Request
            && matches!(self.health, TenantHealth::Serving)
        {
            if let Err(e) = self.flush(fs) {
                // The mapping is resident but not durable. Serve the
                // bytes anyway — mappings stay sticky and deterministic
                // — but under the distinct DEGRADED status so the
                // client knows durability is suspended.
                self.obs.count("serve.flush_failures", 1);
                self.obs.count("serve.degraded_transitions", 1);
                self.health = TenantHealth::Degraded {
                    reason: format!(
                        "state flush failed: {e}; serving from resident \
                         mappings with flushing suspended"
                    ),
                };
            }
        }
        if matches!(self.health, TenantHealth::Degraded { .. }) {
            self.obs.count("serve.requests_degraded", 1);
            return (Status::Degraded, out.text.into_bytes());
        }
        self.obs.count("serve.requests_ok", 1);
        (Status::Ok, out.text.into_bytes())
    }

    /// Durably flushes the resident state through the atomic-rename
    /// discipline. A state-quarantined tenant flushes nothing — the
    /// defective store on disk is evidence, not something to overwrite.
    /// A degraded tenant that lands a clean save heals back to serving:
    /// every mapping issued while the disk was full is now durable.
    pub fn flush(&mut self, fs: &dyn Fs) -> Result<(), AnonError> {
        if matches!(self.health, TenantHealth::StateQuarantined { .. }) {
            return Ok(());
        }
        let state = AnonState::capture(
            &self.anonymizer,
            self.fingerprint.clone(),
            self.files.clone(),
        );
        state.save(fs, &self.state_dir, &mut self.durability)?;
        self.obs.count("serve.flushes", 1);
        if matches!(self.health, TenantHealth::Degraded { .. }) {
            self.obs.count("serve.recoveries", 1);
            self.health = TenantHealth::Serving;
        }
        Ok(())
    }

    /// Whether this tenant is in a health state recovery probes can
    /// heal: state quarantine (re-verify the store) or degradation
    /// (retry the suspended flush). Leak quarantine is deliberately
    /// excluded — a tripped §6.1 gate needs operator review, not a
    /// timer.
    pub fn needs_recovery(&self) -> bool {
        matches!(
            self.health,
            TenantHealth::StateQuarantined { .. } | TenantHealth::Degraded { .. }
        )
    }

    /// One recovery probe. For a state-quarantined tenant, re-runs the
    /// full §13 open path (load → owner check → journal replay) against
    /// the state directory; if the store verifies clean now — repaired
    /// or removed by an operator — the reloaded state replaces the
    /// empty quarantine state and the tenant serves again. For a
    /// degraded tenant, retries the suspended flush ([`Tenant::flush`]
    /// heals on success). Returns `true` if the tenant recovered.
    pub fn try_recover(&mut self, fs: &dyn Fs) -> bool {
        match &self.health {
            TenantHealth::StateQuarantined { .. } => {
                let fresh = Tenant::open(&self.spec, self.flush_mode, fs);
                if fresh.state_defect().is_some() {
                    return false;
                }
                // Adopt the verified reload wholesale; keep this
                // tenant's counters so the stats frame shows the
                // quarantine epoch and the recovery.
                self.anonymizer = fresh.anonymizer;
                self.files = fresh.files;
                self.fingerprint = fresh.fingerprint;
                self.health = TenantHealth::Serving;
                self.obs.count("serve.recoveries", 1);
                true
            }
            TenantHealth::Degraded { .. } => self.flush(fs).is_ok(),
            _ => false,
        }
    }

    /// The tenant's stats-frame entry: health, state size, and the
    /// per-tenant `serve.*` counters.
    pub fn stats_json(&self) -> Json {
        let (n4, n6) = self.anonymizer.trie_node_counts();
        let reason = match &self.health {
            TenantHealth::Serving => String::new(),
            TenantHealth::LeakQuarantined { reason }
            | TenantHealth::StateQuarantined { reason }
            | TenantHealth::Degraded { reason } => reason.clone(),
        };
        Json::obj()
            .with("health", self.health.name())
            .with("reason", reason.as_str())
            .with("identifiers_mapped", self.anonymizer.journal().len() as u64)
            .with("trie4_nodes", n4 as u64)
            .with("trie6_nodes", n6 as u64)
            .with("files_marked", self.files.len() as u64)
            .with("durability", self.durability.to_json())
            .with("counters", self.obs.counters_json("serve."))
    }

    /// Read access to the resident anonymizer (tests compare mapping
    /// state against solo batch runs).
    pub fn anonymizer(&self) -> &Anonymizer {
        &self.anonymizer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsx::StdFs;
    use std::path::{Path, PathBuf};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("confanon-tenant-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mk tmpdir");
        d
    }

    fn spec(name: &str, dir: &Path) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            secret: format!("{name}-secret").into_bytes(),
            state_dir: dir.to_path_buf(),
            disabled_rules: Vec::new(),
            max_request_bytes: crate::serve::MAX_PAYLOAD,
            queue_depth: None,
        }
    }

    fn sample(i: usize) -> String {
        format!(
            "hostname r{i}\n\
             interface Ethernet0\n ip address 10.{i}.2.3 255.255.255.0\n\
             router bgp 70{i}\n neighbor 10.{i}.2.9 remote-as 1239\n"
        )
    }

    #[test]
    fn requests_warm_state_and_flush_persists_it() {
        let root = tmpdir("warm");
        let sdir = root.join("alpha-state");
        let mut tenant = Tenant::open(&spec("alpha", &sdir), FlushMode::Drain, &StdFs);
        let (status, payload) = tenant.handle_anon("r1.cfg", sample(1).as_bytes(), &StdFs);
        assert_eq!(status, Status::Ok);
        let text = String::from_utf8(payload).unwrap();
        assert!(!text.contains("10.1.2.3"));
        tenant.flush(&StdFs).unwrap();

        // Reopen from the flushed store: the mapping must be resident
        // again and a replay byte-identical (sticky mappings).
        let mut reopened = Tenant::open(&spec("alpha", &sdir), FlushMode::Drain, &StdFs);
        assert_eq!(*reopened.health(), TenantHealth::Serving);
        assert!(!reopened.anonymizer().journal().is_empty());
        let (status2, payload2) = reopened.handle_anon("r1.cfg", sample(1).as_bytes(), &StdFs);
        assert_eq!(status2, Status::Ok);
        assert_eq!(text, String::from_utf8(payload2).unwrap());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_state_quarantines_without_flushing_over_it() {
        let root = tmpdir("torn");
        let sdir = root.join("torn-state");
        let mut stats = DurabilityStats::default();
        crate::fsx::write_atomic(
            &StdFs,
            &state_path(&sdir),
            b"{ this is not a state document",
            &mut stats,
        )
        .unwrap();
        let torn_bytes = std::fs::read(state_path(&sdir)).unwrap();

        let mut tenant = Tenant::open(&spec("alpha", &sdir), FlushMode::Request, &StdFs);
        let reason = tenant.state_defect().expect("tenant must be quarantined").to_string();
        assert!(reason.contains("state"), "reason {reason:?}");
        let (status, payload) = tenant.handle_anon("r1.cfg", sample(1).as_bytes(), &StdFs);
        assert_eq!(status, Status::TenantQuarantined);
        assert!(String::from_utf8(payload).unwrap().contains("state-quarantined"));

        // Neither the request (flush=request) nor an explicit flush may
        // overwrite the torn document: it is the operator's evidence.
        tenant.flush(&StdFs).unwrap();
        assert_eq!(std::fs::read(state_path(&sdir)).unwrap(), torn_bytes);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn wrong_secret_state_is_quarantined_distinctly() {
        let root = tmpdir("foreign");
        let sdir = root.join("shared-state");
        let mut owner = Tenant::open(&spec("alpha", &sdir), FlushMode::Drain, &StdFs);
        assert_eq!(
            owner.handle_anon("r1.cfg", sample(1).as_bytes(), &StdFs).0,
            Status::Ok
        );
        owner.flush(&StdFs).unwrap();

        let thief = Tenant::open(&spec("beta", &sdir), FlushMode::Drain, &StdFs);
        let reason = thief.state_defect().expect("foreign state must quarantine");
        assert!(reason.contains("fingerprint"), "reason {reason:?}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn leak_quarantine_is_sticky_but_still_flushes() {
        let root = tmpdir("leak");
        let sdir = root.join("leak-state");
        let mut tenant = Tenant::open(
            &TenantSpec {
                disabled_rules: vec!["neighbor-remote-as".to_string()],
                ..spec("alpha", &sdir)
            },
            FlushMode::Drain,
            &StdFs,
        );
        let (s1, _) = tenant.handle_anon("clean.cfg", sample(1).as_bytes(), &StdFs);
        assert_eq!(s1, Status::Ok);
        let mapped_before = tenant.anonymizer().journal().len();

        // The ci.sh planted-leak recipe: with the remote-as locator
        // disabled, the recorded ASN 701 survives emission.
        let leaky = "router bgp 701\n neighbor 10.0.0.2 remote-as 701\n";
        let (s2, payload) = tenant.handle_anon("leak.cfg", leaky.as_bytes(), &StdFs);
        assert_eq!(s2, Status::Quarantined);
        assert!(String::from_utf8(payload).unwrap().contains("confanon-leak-report-v1"));
        assert!(matches!(tenant.health(), TenantHealth::LeakQuarantined { .. }));

        // The quarantined request left no trace; later requests refuse.
        assert_eq!(tenant.anonymizer().journal().len(), mapped_before);
        let (s3, _) = tenant.handle_anon("next.cfg", sample(2).as_bytes(), &StdFs);
        assert_eq!(s3, Status::TenantQuarantined);

        // Drain still persists the last-clean state.
        tenant.flush(&StdFs).unwrap();
        let reopened = Tenant::open(&spec("alpha", &sdir), FlushMode::Drain, &StdFs);
        assert_eq!(reopened.anonymizer().journal().len(), mapped_before);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn enospc_degrades_serving_and_a_clean_flush_heals() {
        use confanon_testkit::faultfs::FaultFs;
        let root = tmpdir("degrade");
        let sdir = root.join("alpha-state");
        let fs = FaultFs::quiet(9);
        let mut tenant = Tenant::open(&spec("alpha", &sdir), FlushMode::Request, &fs);

        // Healthy request: flush lands, plain OK.
        let (s1, p1) = tenant.handle_anon("r1.cfg", sample(1).as_bytes(), &fs);
        assert_eq!(s1, Status::Ok);

        // Disk fills: the request is still served (same sticky mapping,
        // so byte-identical output) but under the DEGRADED status, and
        // the tenant transitions to degraded health.
        fs.set_enospc(true);
        let (s2, p2) = tenant.handle_anon("r1.cfg", sample(1).as_bytes(), &fs);
        assert_eq!(s2, Status::Degraded);
        assert_eq!(p1, p2, "degraded replies must stay byte-identical");
        assert!(matches!(tenant.health(), TenantHealth::Degraded { .. }));
        assert!(tenant.needs_recovery());

        // While degraded the per-request flush is suspended: new
        // mappings accumulate resident-only, still DEGRADED.
        let (s3, _) = tenant.handle_anon("r2.cfg", sample(2).as_bytes(), &fs);
        assert_eq!(s3, Status::Degraded);
        let mapped = tenant.anonymizer().journal().len();

        // A probe against the still-full disk fails and stays degraded.
        assert!(!tenant.try_recover(&fs));
        assert!(tenant.needs_recovery());

        // Device heals: the probe flushes everything and un-degrades.
        fs.set_enospc(false);
        assert!(tenant.try_recover(&fs));
        assert_eq!(*tenant.health(), TenantHealth::Serving);
        let (s4, _) = tenant.handle_anon("r3.cfg", sample(3).as_bytes(), &fs);
        assert_eq!(s4, Status::Ok);

        // Everything issued while degraded is durable: a reopen holds
        // at least the degraded-era mappings.
        let reopened = Tenant::open(&spec("alpha", &sdir), FlushMode::Request, &StdFs);
        assert_eq!(*reopened.health(), TenantHealth::Serving);
        assert!(reopened.anonymizer().journal().len() >= mapped);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn state_quarantine_recovers_once_the_store_heals() {
        let root = tmpdir("recover");
        let sdir = root.join("alpha-state");
        let mut stats = DurabilityStats::default();
        crate::fsx::write_atomic(
            &StdFs,
            &state_path(&sdir),
            b"{ torn beyond recognition",
            &mut stats,
        )
        .unwrap();
        let mut tenant = Tenant::open(&spec("alpha", &sdir), FlushMode::Request, &StdFs);
        assert!(tenant.state_defect().is_some());
        assert!(tenant.needs_recovery());

        // The store is still torn: the probe re-verifies and refuses.
        assert!(!tenant.try_recover(&StdFs));
        assert!(matches!(tenant.health(), TenantHealth::StateQuarantined { .. }));

        // Operator removes the torn document: the next probe reloads
        // clean (cold state) and the tenant serves again.
        std::fs::remove_file(state_path(&sdir)).unwrap();
        assert!(tenant.try_recover(&StdFs));
        assert_eq!(*tenant.health(), TenantHealth::Serving);
        let (s, _) = tenant.handle_anon("r1.cfg", sample(1).as_bytes(), &StdFs);
        assert_eq!(s, Status::Ok);

        // Leak quarantine is NOT auto-recovered.
        tenant.health = TenantHealth::LeakQuarantined {
            reason: "gate hit".to_string(),
        };
        assert!(!tenant.needs_recovery());
        assert!(!tenant.try_recover(&StdFs));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stats_json_has_stable_shape() {
        let root = tmpdir("stats");
        let mut tenant =
            Tenant::open(&spec("alpha", &root.join("s")), FlushMode::Drain, &StdFs);
        let _ = tenant.handle_anon("r1.cfg", sample(1).as_bytes(), &StdFs);
        let doc = tenant.stats_json();
        assert_eq!(doc.get("health").and_then(Json::as_str), Some("serving"));
        assert!(doc.get("identifiers_mapped").and_then(Json::as_u64).unwrap() > 0);
        let counters = doc.get("counters").expect("counters object");
        assert_eq!(
            counters.get("serve.requests_ok").and_then(Json::as_u64),
            Some(1)
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    confanon_testkit::props! {
        cases = 48;

        /// Satellite: the PR 6 all-or-nothing flush property, extended
        /// to the multi-tenant layout — a faulted flush during drain
        /// leaves every tenant with exactly one complete state document
        /// (the old one or the new one, never a torn mixture, no
        /// staging residue), independently per tenant.
        fn faulted_multi_tenant_drain_is_all_or_nothing(seed in 0u64..1_000_000) {
            use confanon_testkit::faultfs::FaultFs;
            let root = std::env::temp_dir().join(format!(
                "confanon-tenant-drain-{}-{seed}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&root);
            std::fs::create_dir_all(&root).expect("mk tmpdir");
            let names = ["alpha", "beta", "gamma"];
            let dirs: Vec<PathBuf> = names.iter().map(|n| root.join(n)).collect();
            let mut tenants: Vec<Tenant> = names
                .iter()
                .zip(&dirs)
                .map(|(n, d)| Tenant::open(&spec(n, d), FlushMode::Drain, &StdFs))
                .collect();
            // Round 1: warm and flush cleanly; remember the documents.
            for (i, t) in tenants.iter_mut().enumerate() {
                let (s, _) = t.handle_anon("r1.cfg", sample(i + 1).as_bytes(), &StdFs);
                assert_eq!(s, Status::Ok);
                t.flush(&StdFs).expect("clean flush");
            }
            let old_docs: Vec<Vec<u8>> = dirs
                .iter()
                .map(|d| std::fs::read(state_path(d)).expect("old doc"))
                .collect();
            // Round 2: more requests, then the drain flush under faults.
            for (i, t) in tenants.iter_mut().enumerate() {
                let (s, _) = t.handle_anon("r2.cfg", sample(i + 10).as_bytes(), &StdFs);
                assert_eq!(s, Status::Ok);
            }
            let faulty = FaultFs::new(seed);
            for t in tenants.iter_mut() {
                let _ = t.flush(&faulty); // may fail: that's the point
            }
            for (i, dir) in dirs.iter().enumerate() {
                let on_disk = std::fs::read(state_path(dir)).expect("state present");
                let loaded = AnonState::load(&StdFs, dir)
                    .expect("state must stay loadable after a faulted flush")
                    .expect("state must exist");
                // Exactly one complete document: round 1 (old) or
                // round 2 (new) — file-mark count tells them apart.
                if on_disk == old_docs[i] {
                    assert_eq!(loaded.files.len(), 1, "seed {seed}: old doc is round 1");
                } else {
                    assert_eq!(
                        loaded.files.len(),
                        2,
                        "seed {seed}: tenant {} holds a torn mixture",
                        names[i]
                    );
                }
                let residue: Vec<String> = std::fs::read_dir(dir)
                    .expect("read dir")
                    .flatten()
                    .map(|e| e.file_name().to_string_lossy().to_string())
                    .filter(|n| n.ends_with(crate::fsx::TMP_SUFFIX))
                    .collect();
                assert!(residue.is_empty(), "seed {seed}: staging residue {residue:?}");
            }
            let _ = std::fs::remove_dir_all(&root);
        }
    }
}
