//! Anonymization statistics.
//!
//! The paper reports aggregate numbers — fraction of words removed as
//! comments (1.5% average, 6% at the 90th percentile), rule sufficiency,
//! dataset scale — and the validation methodology is built on comparing
//! machine-readable pre/post reports. Everything here serializes to JSON
//! through the in-tree writer so experiment harnesses can diff runs.

use std::collections::BTreeMap;

use confanon_testkit::json::Json;

/// Counters accumulated while anonymizing one or more configurations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnonymizationStats {
    /// Total input lines processed.
    pub lines_total: u64,
    /// Lines whose comment text was stripped (bang comments).
    pub comment_lines_stripped: u64,
    /// Description/remark lines dropped.
    pub freetext_lines_dropped: u64,
    /// Banner body lines dropped.
    pub banner_lines_dropped: u64,
    /// Banner blocks still open at end of file (corrupt input: the
    /// delimiter never reappeared; the tail was treated as banner text).
    pub unterminated_banners: u64,
    /// Words counted across all input lines.
    pub words_total: u64,
    /// Words removed by the comment rules (the paper's 1.5%/6% metric
    /// counts these against `words_total`).
    pub words_removed_as_comments: u64,
    /// Alphabetic segments found on the pass-list (left alone).
    pub segments_passed: u64,
    /// Alphabetic segments hashed.
    pub segments_hashed: u64,
    /// IPv4 literals mapped through the trie.
    pub ips_mapped: u64,
    /// IPv4 literals passed through as special.
    pub ips_special_passthrough: u64,
    /// IPv6 literals mapped through the 128-bit trie (extension).
    pub ips6_mapped: u64,
    /// ASNs permuted.
    pub asns_mapped: u64,
    /// Community attributes mapped.
    pub communities_mapped: u64,
    /// Policy regexps rewritten by language enumeration.
    pub regexps_rewritten: u64,
    /// Regexps that failed to parse and were conservatively hashed.
    pub regexps_fallback_hashed: u64,
    /// Phone numbers re-digited.
    pub phone_numbers_mapped: u64,
    /// Secrets (passwords, SNMP communities, keys) hashed whole.
    pub secrets_hashed: u64,
    /// Fire count per rule name.
    pub rule_fires: BTreeMap<String, u64>,
}

impl AnonymizationStats {
    /// Records one firing of `rule`. The common repeat case (the rule
    /// already has an entry) is a borrowed lookup — no key `String` is
    /// allocated on the hot path.
    pub fn fire(&mut self, rule: crate::rules::RuleId) {
        let name = rule.info().name;
        match self.rule_fires.get_mut(name) {
            Some(count) => *count += 1,
            None => {
                self.rule_fires.insert(name.to_string(), 1);
            }
        }
    }

    /// The paper's comment metric: fraction of words removed as comments.
    pub fn comment_word_fraction(&self) -> f64 {
        if self.words_total == 0 {
            0.0
        } else {
            self.words_removed_as_comments as f64 / self.words_total as f64
        }
    }

    /// Per-rule fire counts over the full 28-rule registry, zero-filled:
    /// every rule appears even when it never fired, so two runs over the
    /// same corpus serialize the same key set and diff cleanly.
    pub fn rule_fires_complete(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for rule in &crate::rules::ALL_RULES {
            out.insert(
                rule.name,
                self.rule_fires.get(rule.name).copied().unwrap_or(0),
            );
        }
        out
    }

    /// Total rule firings across all rules.
    pub fn rules_fired_total(&self) -> u64 {
        self.rule_fires.values().sum()
    }

    /// Rule firings rolled up by the paper's category breakdown,
    /// zero-filled like [`AnonymizationStats::rule_fires_complete`].
    pub fn rule_fires_by_category(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for rule in &crate::rules::ALL_RULES {
            *out.entry(rule.category.name()).or_insert(0) +=
                self.rule_fires.get(rule.name).copied().unwrap_or(0);
        }
        out
    }

    /// Merges another stats block into this one (for per-network then
    /// per-dataset aggregation).
    pub fn merge(&mut self, other: &AnonymizationStats) {
        self.lines_total += other.lines_total;
        self.comment_lines_stripped += other.comment_lines_stripped;
        self.freetext_lines_dropped += other.freetext_lines_dropped;
        self.banner_lines_dropped += other.banner_lines_dropped;
        self.unterminated_banners += other.unterminated_banners;
        self.words_total += other.words_total;
        self.words_removed_as_comments += other.words_removed_as_comments;
        self.segments_passed += other.segments_passed;
        self.segments_hashed += other.segments_hashed;
        self.ips_mapped += other.ips_mapped;
        self.ips_special_passthrough += other.ips_special_passthrough;
        self.ips6_mapped += other.ips6_mapped;
        self.asns_mapped += other.asns_mapped;
        self.communities_mapped += other.communities_mapped;
        self.regexps_rewritten += other.regexps_rewritten;
        self.regexps_fallback_hashed += other.regexps_fallback_hashed;
        self.phone_numbers_mapped += other.phone_numbers_mapped;
        self.secrets_hashed += other.secrets_hashed;
        for (k, v) in &other.rule_fires {
            *self.rule_fires.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// The stats block as a JSON document (counters plus per-rule fires).
    pub fn to_json(&self) -> Json {
        let mut fires = Json::obj();
        for (rule, count) in &self.rule_fires {
            fires.set(rule, *count);
        }
        Json::obj()
            .with("lines_total", self.lines_total)
            .with("comment_lines_stripped", self.comment_lines_stripped)
            .with("freetext_lines_dropped", self.freetext_lines_dropped)
            .with("banner_lines_dropped", self.banner_lines_dropped)
            .with("unterminated_banners", self.unterminated_banners)
            .with("words_total", self.words_total)
            .with("words_removed_as_comments", self.words_removed_as_comments)
            .with("segments_passed", self.segments_passed)
            .with("segments_hashed", self.segments_hashed)
            .with("ips_mapped", self.ips_mapped)
            .with("ips_special_passthrough", self.ips_special_passthrough)
            .with("ips6_mapped", self.ips6_mapped)
            .with("asns_mapped", self.asns_mapped)
            .with("communities_mapped", self.communities_mapped)
            .with("regexps_rewritten", self.regexps_rewritten)
            .with("regexps_fallback_hashed", self.regexps_fallback_hashed)
            .with("phone_numbers_mapped", self.phone_numbers_mapped)
            .with("secrets_hashed", self.secrets_hashed)
            .with("comment_word_fraction", self.comment_word_fraction())
            .with("rule_fires", fires)
    }

    /// Parses the shape produced by [`AnonymizationStats::to_json`]. The
    /// derived `comment_word_fraction` member is ignored (it is a
    /// function of the counters); missing counters read as 0 so minor
    /// schema growth stays loadable.
    pub fn from_json(doc: &Json) -> Result<AnonymizationStats, String> {
        let counter = |key: &str| -> Result<u64, String> {
            match doc.get(key) {
                None => Ok(0),
                Some(v) => v
                    .as_u64()
                    .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
            }
        };
        let mut rule_fires = BTreeMap::new();
        if let Some(fires) = doc.get("rule_fires") {
            let Json::Obj(members) = fires else {
                return Err("\"rule_fires\" must be an object".to_string());
            };
            for (rule, count) in members {
                let count = count
                    .as_u64()
                    .ok_or_else(|| format!("rule_fires[{rule:?}] must be an integer"))?;
                rule_fires.insert(rule.clone(), count);
            }
        }
        Ok(AnonymizationStats {
            lines_total: counter("lines_total")?,
            comment_lines_stripped: counter("comment_lines_stripped")?,
            freetext_lines_dropped: counter("freetext_lines_dropped")?,
            banner_lines_dropped: counter("banner_lines_dropped")?,
            unterminated_banners: counter("unterminated_banners")?,
            words_total: counter("words_total")?,
            words_removed_as_comments: counter("words_removed_as_comments")?,
            segments_passed: counter("segments_passed")?,
            segments_hashed: counter("segments_hashed")?,
            ips_mapped: counter("ips_mapped")?,
            ips_special_passthrough: counter("ips_special_passthrough")?,
            ips6_mapped: counter("ips6_mapped")?,
            asns_mapped: counter("asns_mapped")?,
            communities_mapped: counter("communities_mapped")?,
            regexps_rewritten: counter("regexps_rewritten")?,
            regexps_fallback_hashed: counter("regexps_fallback_hashed")?,
            phone_numbers_mapped: counter("phone_numbers_mapped")?,
            secrets_hashed: counter("secrets_hashed")?,
            rule_fires,
        })
    }
}

/// Borrow-or-own accounting for the zero-copy rewrite path (DESIGN.md
/// §17).
///
/// Kept *outside* [`AnonymizationStats`] deliberately, like
/// [`crate::rules::PrefilterStats`]: borrow verdicts and hash-memo hits
/// only exist in emit mode (and memo hits additionally vary with which
/// worker clone rewrote which file), while per-file stats are pinned
/// byte-identical between the discovery and emit passes. These counters
/// therefore report under timing-section metrics keys and in the
/// `--bench-json` `rewrite` block, never in the deterministic section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Command lines that went through the emit-mode rewrite path.
    pub lines_total: u64,
    /// Lines returned as `Cow::Borrowed` — no rewrite changed a byte, so
    /// no line-level allocation or copy happened.
    pub lines_borrowed: u64,
    /// Lines where at least one token changed (allocated and rebuilt).
    pub lines_rewritten: u64,
    /// Allocations the zero-copy path skipped versus the legacy dense
    /// path: one per token kept verbatim (`None` slot) plus one per
    /// borrowed line (the elided rebuild `String`).
    pub allocations_avoided: u64,
    /// Salted token hashes answered from the memo (SHA-1 skipped).
    pub hash_memo_hits: u64,
    /// Salted token hashes actually computed.
    pub hash_memo_misses: u64,
}

impl RewriteStats {
    /// Adds another instance's counts (commutative).
    pub fn absorb(&mut self, other: &RewriteStats) {
        self.lines_total += other.lines_total;
        self.lines_borrowed += other.lines_borrowed;
        self.lines_rewritten += other.lines_rewritten;
        self.allocations_avoided += other.allocations_avoided;
        self.hash_memo_hits += other.hash_memo_hits;
        self.hash_memo_misses += other.hash_memo_misses;
    }

    /// Fraction of emit-mode lines that stayed `Borrowed` (0.0 when no
    /// lines were rewritten yet).
    pub fn borrowed_fraction(&self) -> f64 {
        if self.lines_total == 0 {
            0.0
        } else {
            self.lines_borrowed as f64 / self.lines_total as f64
        }
    }

    /// The counters as a JSON object (for bench reports).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("lines_total", self.lines_total)
            .with("lines_borrowed", self.lines_borrowed)
            .with("lines_rewritten", self.lines_rewritten)
            .with("borrowed_fraction", self.borrowed_fraction())
            .with("allocations_avoided", self.allocations_avoided)
            .with("hash_memo_hits", self.hash_memo_hits)
            .with("hash_memo_misses", self.hash_memo_misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    #[test]
    fn rewrite_stats_absorb_and_fraction() {
        let mut a = RewriteStats {
            lines_total: 8,
            lines_borrowed: 6,
            lines_rewritten: 2,
            allocations_avoided: 40,
            hash_memo_hits: 10,
            hash_memo_misses: 3,
        };
        a.absorb(&RewriteStats {
            lines_total: 2,
            lines_borrowed: 2,
            lines_rewritten: 0,
            allocations_avoided: 10,
            hash_memo_hits: 1,
            hash_memo_misses: 0,
        });
        assert_eq!(a.lines_total, 10);
        assert_eq!(a.lines_borrowed, 8);
        assert_eq!(a.lines_rewritten, 2);
        assert_eq!(a.allocations_avoided, 50);
        assert_eq!(a.hash_memo_hits, 11);
        assert_eq!(a.hash_memo_misses, 3);
        assert!((a.borrowed_fraction() - 0.8).abs() < 1e-12);
        assert_eq!(RewriteStats::default().borrowed_fraction(), 0.0);
        assert!(a.to_json().get("borrowed_fraction").is_some());
    }

    #[test]
    fn comment_fraction() {
        let mut s = AnonymizationStats::default();
        assert_eq!(s.comment_word_fraction(), 0.0);
        s.words_total = 200;
        s.words_removed_as_comments = 3;
        assert!((s.comment_word_fraction() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn fire_accumulates() {
        let mut s = AnonymizationStats::default();
        s.fire(RuleId::R22Ipv4Literal);
        s.fire(RuleId::R22Ipv4Literal);
        assert_eq!(s.rule_fires["ipv4-literal"], 2);
    }

    #[test]
    fn complete_fires_cover_all_28_rules_zero_filled() {
        let mut s = AnonymizationStats::default();
        s.fire(RuleId::R22Ipv4Literal);
        s.fire(RuleId::R22Ipv4Literal);
        let complete = s.rule_fires_complete();
        assert_eq!(complete.len(), 28);
        assert_eq!(complete["ipv4-literal"], 2);
        assert_eq!(complete["banner-blocks"], 0);
        assert_eq!(s.rules_fired_total(), 2);
        let by_cat = s.rule_fires_by_category();
        assert_eq!(by_cat.len(), 5);
        assert_eq!(by_cat["identifiers"], 2);
        assert_eq!(by_cat["comments"], 0);
        assert_eq!(
            by_cat.values().sum::<u64>(),
            s.rules_fired_total(),
            "category rollup conserves the total"
        );
    }

    #[test]
    fn json_round_trips() {
        let mut s = AnonymizationStats {
            lines_total: 42,
            words_total: 400,
            words_removed_as_comments: 6,
            ips_mapped: 7,
            ips6_mapped: 3,
            asns_mapped: 2,
            secrets_hashed: 1,
            ..Default::default()
        };
        s.fire(RuleId::R22Ipv4Literal);
        s.fire(RuleId::R06RouterBgpAsn);
        let back = AnonymizationStats::from_json(&s.to_json()).expect("parse");
        assert_eq!(back, s);
        // Text round trip through the parser too.
        let doc = Json::parse(&s.to_json().to_string()).expect("reparse");
        assert_eq!(AnonymizationStats::from_json(&doc).expect("parse"), s);
    }

    #[test]
    fn from_json_rejects_bad_shapes() {
        let doc = Json::obj().with("lines_total", "ten");
        assert!(AnonymizationStats::from_json(&doc).is_err());
        let doc = Json::obj().with("rule_fires", Json::Arr(vec![]));
        assert!(AnonymizationStats::from_json(&doc).is_err());
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = AnonymizationStats {
            lines_total: 10,
            words_total: 100,
            ..Default::default()
        };
        a.fire(RuleId::R06RouterBgpAsn);
        let mut b = AnonymizationStats {
            lines_total: 5,
            words_total: 50,
            ..Default::default()
        };
        b.fire(RuleId::R06RouterBgpAsn);
        a.merge(&b);
        assert_eq!(a.lines_total, 15);
        assert_eq!(a.words_total, 150);
        assert_eq!(a.rule_fires["router-bgp-asn"], 2);
    }
}
