//! `confanon serve` — the fault-tolerant multi-tenant anonymization
//! daemon.
//!
//! The paper's workflow is one-shot batch anonymization; the
//! clearinghouse vision (§7) is a *service*: many operators submit
//! configuration files over months, and each operator's mappings must
//! stay consistent across submissions yet strictly isolated from every
//! other operator's. This module provides that service on `std` alone —
//! scoped threads and a poll-based blocking accept loop, no async
//! runtime — reusing the existing pillars: [`crate::state::AnonState`]
//! for resident-and-persistent per-tenant mapping state,
//! [`crate::fsx::write_atomic`] for torn-write-free flushes, and the
//! §6.1 leak gate per request.
//!
//! ## Wire protocol
//!
//! A length-prefixed line protocol, same shape both directions: one
//! ASCII header line, then exactly `len` payload bytes.
//!
//! ```text
//! request:  "CONFANON/1 <VERB> <tenant> <name> <len>\n" + payload
//! response: "CONFANON/1 <STATUS> <len>\n" + payload
//! ```
//!
//! Verbs: `ANON` (anonymize `payload` under `<tenant>`'s state as file
//! `<name>`), `FLUSH` (durably flush a tenant's state now), `STATS`
//! (the `confanon-serve-metrics-v1` document), `PING`, `SHUTDOWN`
//! (graceful drain, same as `SIGTERM`). Tenant/name positions use `-`
//! when a verb does not need them. Tokens are restricted to
//! `[A-Za-z0-9._-]` (≤ 128 bytes); payloads are capped at
//! [`MAX_PAYLOAD`] — a malformed header or oversized length is answered
//! with an `ERROR` frame and the connection is closed, never buffered.
//!
//! Response statuses and the robustness contract they encode:
//!
//! * `OK` — payload is the anonymized text (or requested document).
//! * `BUSY` — the tenant's bounded queue is full. *Retriable*: nothing
//!   was processed, nothing was buffered. Back-pressure is explicit.
//! * `TIMEOUT` — the request exceeded the per-request deadline while
//!   queued or processing. Retriable: mappings are sticky, so a replay
//!   returns byte-identical output.
//! * `ERROR` — the request failed closed (contained panic, flush
//!   failure, malformed frame). The tenant's resident state is the
//!   state from *before* the request.
//! * `QUARANTINED` — the §6.1 gate found residual identifiers in this
//!   request's output; the bytes are withheld and the tenant enters
//!   quarantine.
//! * `TENANT-QUARANTINED` — the tenant is quarantined (leak hit
//!   earlier, or its persisted state was unusable at startup); the
//!   payload says which.
//! * `DEGRADED` — the payload *is* the anonymized text (mappings are
//!   resident and sticky), but a permanent fs error suspended this
//!   tenant's durable flushing; a recovery probe resumes flushing (and
//!   plain `OK`) once the state directory heals.
//! * `UNKNOWN-TENANT`, `DRAINING`, `BYE` — routing/lifecycle statuses.
//!
//! ## Hostile wire
//!
//! DESIGN §15 specifies the fail-closed-but-keep-serving envelope this
//! module enforces per connection: a malformed frame is classified by
//! [`FrameDefect`] and answered with one `ERROR` frame before the
//! close; a connection that dribbles a frame past `read_deadline_ms`
//! or goes byte-silent past `idle_timeout_ms` is closed; a payload
//! over a tenant's `max_request_bytes` quota is rejected without
//! touching the worker; and connections past `max_connections` are
//! shed with a retriable `BUSY` frame carrying a `retry-after-ms=`
//! hint. Every such event feeds the `daemon.faults` counters of the
//! `confanon-serve-metrics-v1` document. The seeded chaos harness in
//! `confanon_testkit::netchaos` replays all of it deterministically.
//!
//! ## Drain and recovery
//!
//! `SIGTERM` or a `SHUTDOWN` frame sets one flag. The accept loop
//! closes, in-flight and already-queued requests finish, idle
//! connections receive `DRAINING`, every tenant's state is flushed
//! through `write_atomic`, and the daemon exits 0. A `kill -9` instead
//! loses nothing that was acknowledged: with `flush = "request"` each
//! `OK` response is sent only *after* the tenant state hit stable
//! storage, so a restart reloads every acknowledged mapping via the
//! state verification path and unacknowledged requests are safely
//! replayed (sticky mappings make replay byte-identical). A tenant
//! whose state file is torn or foreign is quarantined with a distinct
//! error while healthy tenants keep serving.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use confanon_testkit::json::Json;

use crate::error::AnonError;
use crate::fsx::{write_atomic, DurabilityStats, StdFs};
use crate::rules::ALL_RULES;
use crate::signals;
use crate::tenant::{FlushMode, Tenant, TenantSpec};

/// Protocol magic + version, the first token of every frame header.
pub const PROTOCOL: &str = "CONFANON/1";

/// Hard cap on a frame payload. A header may not announce more: the
/// daemon answers `ERROR` and closes instead of buffering unboundedly.
pub const MAX_PAYLOAD: usize = 4 * 1024 * 1024;

/// Hard cap on a frame header line (defense against a peer that never
/// sends a newline).
pub const MAX_HEADER: usize = 1024;

/// Default bound of each tenant's work queue.
pub const DEFAULT_QUEUE_DEPTH: usize = 8;

/// Default per-request deadline (queue wait + processing), in ms.
pub const DEFAULT_REQUEST_TIMEOUT_MS: u64 = 10_000;

/// Default idle timeout: a connection that delivers no bytes for this
/// long is closed (it was previously held forever).
pub const DEFAULT_IDLE_TIMEOUT_MS: u64 = 30_000;

/// Default read deadline: the maximum wall-clock a single frame may
/// take from its first byte to completion. Defeats slowloris dribble
/// that always makes *some* progress and so never trips the idle clock.
pub const DEFAULT_READ_DEADLINE_MS: u64 = 10_000;

/// Default bound on concurrently-served connections; arrivals beyond it
/// are shed with a retriable `BUSY` frame carrying a backoff hint.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// Default interval between tenant recovery probes (state-quarantine
/// re-verification and degraded-flush retries).
pub const DEFAULT_RECOVERY_PROBE_MS: u64 = 1_000;

/// Default `retry-after-ms` hint carried by `BUSY` frames.
pub const DEFAULT_BUSY_RETRY_HINT_MS: u64 = 100;

/// How often blocked loops (accept poll, idle connection reads) wake to
/// check the drain flag.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Read timeout on accepted connections: the granularity at which an
/// idle connection notices a drain.
const CONN_READ_TIMEOUT: Duration = Duration::from_millis(100);

/// A request verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Anonymize the payload under a tenant's resident state.
    Anon,
    /// Durably flush a tenant's state now.
    Flush,
    /// Return the `confanon-serve-metrics-v1` stats document.
    Stats,
    /// Liveness check.
    Ping,
    /// Graceful drain, equivalent to `SIGTERM`.
    Shutdown,
}

impl Verb {
    /// The wire token.
    pub fn name(self) -> &'static str {
        match self {
            Verb::Anon => "ANON",
            Verb::Flush => "FLUSH",
            Verb::Stats => "STATS",
            Verb::Ping => "PING",
            Verb::Shutdown => "SHUTDOWN",
        }
    }

    /// Parses the wire token.
    pub fn parse(s: &str) -> Option<Verb> {
        match s {
            "ANON" => Some(Verb::Anon),
            "FLUSH" => Some(Verb::Flush),
            "STATS" => Some(Verb::Stats),
            "PING" => Some(Verb::Ping),
            "SHUTDOWN" => Some(Verb::Shutdown),
            _ => None,
        }
    }
}

/// A response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Success; payload is the result.
    Ok,
    /// Tenant queue full; retriable, nothing buffered.
    Busy,
    /// This request's output tripped the leak gate; tenant quarantined.
    Quarantined,
    /// The tenant is quarantined (earlier leak hit or unusable state).
    TenantQuarantined,
    /// Success — payload is the anonymized text — but the tenant's
    /// durable flushing is suspended by a permanent fs error; the
    /// mapping is resident-only until a recovery probe lands a flush.
    Degraded,
    /// No such tenant in the daemon's configuration.
    UnknownTenant,
    /// Per-request deadline exceeded; retriable (mappings are sticky).
    Timeout,
    /// The request failed closed; tenant state unchanged.
    Error,
    /// The daemon is draining; reconnect after restart.
    Draining,
    /// Acknowledges a `SHUTDOWN` frame.
    Bye,
}

impl Status {
    /// The wire token.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Busy => "BUSY",
            Status::Quarantined => "QUARANTINED",
            Status::TenantQuarantined => "TENANT-QUARANTINED",
            Status::Degraded => "DEGRADED",
            Status::UnknownTenant => "UNKNOWN-TENANT",
            Status::Timeout => "TIMEOUT",
            Status::Error => "ERROR",
            Status::Draining => "DRAINING",
            Status::Bye => "BYE",
        }
    }

    /// Parses the wire token.
    pub fn parse(s: &str) -> Option<Status> {
        match s {
            "OK" => Some(Status::Ok),
            "BUSY" => Some(Status::Busy),
            "QUARANTINED" => Some(Status::Quarantined),
            "TENANT-QUARANTINED" => Some(Status::TenantQuarantined),
            "DEGRADED" => Some(Status::Degraded),
            "UNKNOWN-TENANT" => Some(Status::UnknownTenant),
            "TIMEOUT" => Some(Status::Timeout),
            "ERROR" => Some(Status::Error),
            "DRAINING" => Some(Status::Draining),
            "BYE" => Some(Status::Bye),
            _ => None,
        }
    }

    /// Whether a client may simply resend the same request: the daemon
    /// guarantees nothing happened (`BUSY`) or that a replay is
    /// byte-identical (`TIMEOUT`, sticky mappings).
    pub fn retriable(self) -> bool {
        matches!(self, Status::Busy | Status::Timeout)
    }
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// What to do.
    pub verb: Verb,
    /// Target tenant (`-` on the wire when unused).
    pub tenant: String,
    /// Submission name, the per-tenant state's file key.
    pub name: String,
    /// The raw bytes to anonymize (empty for control verbs).
    pub payload: Vec<u8>,
}

/// Whether `s` is a legal tenant/name token.
pub fn valid_token(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 128
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Encodes a request frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = format!(
        "{PROTOCOL} {} {} {} {}\n",
        req.verb.name(),
        req.tenant,
        req.name,
        req.payload.len()
    )
    .into_bytes();
    out.extend_from_slice(&req.payload);
    out
}

/// Encodes a response frame.
pub fn encode_response(status: Status, payload: &[u8]) -> Vec<u8> {
    let mut out = format!("{PROTOCOL} {} {}\n", status.name(), payload.len()).into_bytes();
    out.extend_from_slice(payload);
    out
}

/// The malformed-frame taxonomy (DESIGN §15). Every frame a peer can
/// send that is not a well-formed request lands in exactly one class;
/// the daemon answers with one `ERROR` frame naming the class
/// (`malformed-frame/<class>: detail`), counts it into
/// `daemon.faults.frames_rejected`, and closes the connection — it
/// never buffers past the caps and never lets garbage near a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDefect {
    /// The first token was not [`PROTOCOL`].
    BadProtocol(String),
    /// The verb token names no known verb.
    UnknownVerb(String),
    /// A tenant/name token violates the token grammar, or a required
    /// token was the `-` placeholder.
    BadToken(String),
    /// The length field is not a base-10 integer.
    BadLength(String),
    /// The announced payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The announced length.
        len: usize,
    },
    /// The header line exceeds [`MAX_HEADER`] bytes (with or without a
    /// newline in sight).
    HeaderOverflow,
    /// The header line is not UTF-8.
    NotUtf8,
    /// The header does not have exactly five space-separated fields.
    FieldCount(usize),
}

impl FrameDefect {
    /// The stable class slug, the token after `malformed-frame/` in
    /// `ERROR` payloads.
    pub fn class(&self) -> &'static str {
        match self {
            FrameDefect::BadProtocol(_) => "bad-protocol",
            FrameDefect::UnknownVerb(_) => "unknown-verb",
            FrameDefect::BadToken(_) => "bad-token",
            FrameDefect::BadLength(_) => "bad-length",
            FrameDefect::Oversized { .. } => "oversized-payload",
            FrameDefect::HeaderOverflow => "header-overflow",
            FrameDefect::NotUtf8 => "non-utf8-header",
            FrameDefect::FieldCount(_) => "field-count",
        }
    }
}

impl std::fmt::Display for FrameDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed-frame/{}: ", self.class())?;
        match self {
            FrameDefect::BadProtocol(got) => {
                write!(f, "unknown protocol {got:?} (expected {PROTOCOL})")
            }
            FrameDefect::UnknownVerb(got) => write!(f, "unknown verb {got:?}"),
            FrameDefect::BadToken(detail) => write!(f, "{detail}"),
            FrameDefect::BadLength(got) => write!(f, "invalid length {got:?}"),
            FrameDefect::Oversized { len } => {
                write!(f, "payload length {len} exceeds cap {MAX_PAYLOAD}")
            }
            FrameDefect::HeaderOverflow => {
                write!(f, "header exceeds {MAX_HEADER} bytes")
            }
            FrameDefect::NotUtf8 => write!(f, "header is not UTF-8"),
            FrameDefect::FieldCount(got) => {
                write!(f, "expected 5 space-separated fields, got {got}")
            }
        }
    }
}

fn parse_request_header(line: &str) -> Result<(Verb, String, String, usize), FrameDefect> {
    let parts: Vec<&str> = line.split(' ').collect();
    let [magic, verb, tenant, name, len] = parts.as_slice() else {
        return Err(FrameDefect::FieldCount(parts.len()));
    };
    if *magic != PROTOCOL {
        return Err(FrameDefect::BadProtocol((*magic).to_string()));
    }
    let Some(verb) = Verb::parse(verb) else {
        return Err(FrameDefect::UnknownVerb((*verb).to_string()));
    };
    let token_ok = |t: &str| t == "-" || valid_token(t);
    if !token_ok(tenant) {
        return Err(FrameDefect::BadToken(format!(
            "invalid tenant token {tenant:?}"
        )));
    }
    if !token_ok(name) {
        return Err(FrameDefect::BadToken(format!("invalid name token {name:?}")));
    }
    match verb {
        Verb::Anon if *tenant == "-" || *name == "-" => {
            return Err(FrameDefect::BadToken(
                "ANON requires a tenant and a name".to_string(),
            ));
        }
        Verb::Flush if *tenant == "-" => {
            return Err(FrameDefect::BadToken("FLUSH requires a tenant".to_string()));
        }
        _ => {}
    }
    let Ok(len) = len.parse::<usize>() else {
        return Err(FrameDefect::BadLength((*len).to_string()));
    };
    if len > MAX_PAYLOAD {
        return Err(FrameDefect::Oversized { len });
    }
    Ok((verb, tenant.to_string(), name.to_string(), len))
}

/// What one poll of a connection produced.
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete request frame.
    Request(Request),
    /// The peer closed (or the connection broke).
    Eof,
    /// No complete frame yet; poll again (and check the drain flag).
    Idle,
    /// The peer sent garbage; answer `ERROR` and close.
    Malformed(FrameDefect),
}

/// Incremental frame reader over a stream with a read timeout. Keeps
/// partial bytes across polls so a drain check never loses data, and
/// enforces the header/payload caps before buffering.
#[derive(Debug, Default)]
pub struct FrameReader {
    pending: Vec<u8>,
}

impl FrameReader {
    /// A fresh reader with no buffered bytes.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Reads once from `stream` and returns the resulting event. A
    /// timeout maps to [`ReadEvent::Idle`]; connection errors map to
    /// [`ReadEvent::Eof`] (the response channel is gone either way).
    pub fn poll(&mut self, stream: &mut dyn Read) -> ReadEvent {
        if let Some(ev) = self.try_parse() {
            return ev;
        }
        let mut buf = [0u8; 16 * 1024];
        match stream.read(&mut buf) {
            Ok(0) => ReadEvent::Eof,
            Ok(n) => {
                self.pending.extend_from_slice(&buf[..n]);
                self.try_parse().unwrap_or(ReadEvent::Idle)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                ReadEvent::Idle
            }
            Err(_) => ReadEvent::Eof,
        }
    }

    /// Bytes buffered toward the next frame — the progress signal the
    /// connection handler's idle/read-deadline clocks key off.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    fn try_parse(&mut self) -> Option<ReadEvent> {
        let Some(nl) = self.pending.iter().position(|&b| b == b'\n') else {
            if self.pending.len() > MAX_HEADER {
                return Some(ReadEvent::Malformed(FrameDefect::HeaderOverflow));
            }
            return None;
        };
        if nl > MAX_HEADER {
            return Some(ReadEvent::Malformed(FrameDefect::HeaderOverflow));
        }
        let header = match std::str::from_utf8(&self.pending[..nl]) {
            Ok(h) => h,
            Err(_) => return Some(ReadEvent::Malformed(FrameDefect::NotUtf8)),
        };
        let (verb, tenant, name, len) = match parse_request_header(header) {
            Ok(parts) => parts,
            Err(m) => return Some(ReadEvent::Malformed(m)),
        };
        let total = nl + 1 + len;
        if self.pending.len() < total {
            return None;
        }
        let payload = self.pending[nl + 1..total].to_vec();
        self.pending.drain(..total);
        Some(ReadEvent::Request(Request {
            verb,
            tenant,
            name,
            payload,
        }))
    }
}

// ---------------------------------------------------------------------
// confanon.toml
// ---------------------------------------------------------------------

/// Parsed `confanon.toml` — the daemon's endpoint, robustness knobs,
/// and tenant roster. The accepted grammar is the TOML subset the
/// in-tree reader implements (documented on [`ServeConfig::parse`]);
/// there is no external TOML crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// TCP endpoint (`host:port`). Exactly one of `listen`/`socket`.
    pub listen: Option<String>,
    /// Unix socket path. Exactly one of `listen`/`socket`.
    pub socket: Option<PathBuf>,
    /// Bound of each tenant's work queue (back-pressure threshold).
    pub queue_depth: usize,
    /// Per-request deadline in milliseconds (queue wait + processing).
    pub request_timeout_ms: u64,
    /// Close a connection that delivers no bytes for this long (ms).
    pub idle_timeout_ms: u64,
    /// Close a connection whose in-progress frame takes longer than
    /// this to complete (ms) — the anti-slowloris clock.
    pub read_deadline_ms: u64,
    /// Bound on concurrently-served connections; excess arrivals are
    /// shed with a retriable `BUSY` frame.
    pub max_connections: usize,
    /// Interval between tenant recovery probes (ms).
    pub recovery_probe_ms: u64,
    /// The `retry-after-ms` hint `BUSY` frames carry (ms).
    pub busy_retry_hint_ms: u64,
    /// When tenant state is durably flushed.
    pub flush: FlushMode,
    /// The tenant roster, in file order.
    pub tenants: Vec<TenantSpec>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listen: None,
            socket: None,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            request_timeout_ms: DEFAULT_REQUEST_TIMEOUT_MS,
            idle_timeout_ms: DEFAULT_IDLE_TIMEOUT_MS,
            read_deadline_ms: DEFAULT_READ_DEADLINE_MS,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            recovery_probe_ms: DEFAULT_RECOVERY_PROBE_MS,
            busy_retry_hint_ms: DEFAULT_BUSY_RETRY_HINT_MS,
            flush: FlushMode::Request,
            tenants: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Str(String),
    Int(u64),
    Bool(bool),
}

fn config_err(path: &str, line_no: usize, message: impl std::fmt::Display) -> AnonError {
    AnonError::ConfigInvalid {
        path: path.to_string(),
        message: format!("line {line_no}: {message}"),
    }
}

/// Strips a `#` comment that is outside double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_toml_value(raw: &str) -> Result<TomlValue, String> {
    let raw = raw.trim();
    if let Some(inner) = raw.strip_prefix('"') {
        let Some(inner) = inner.strip_suffix('"') else {
            return Err(format!("unterminated string {raw:?}"));
        };
        if inner.contains('"') {
            return Err("strings may not contain embedded quotes".to_string());
        }
        return Ok(TomlValue::Str(inner.to_string()));
    }
    match raw {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if !raw.is_empty() && raw.bytes().all(|b| b.is_ascii_digit()) {
        return raw
            .parse::<u64>()
            .map(TomlValue::Int)
            .map_err(|e| e.to_string());
    }
    Err(format!(
        "unsupported value {raw:?} (expected \"string\", integer, true, or false)"
    ))
}

fn expect_str(path: &str, line_no: usize, key: &str, v: TomlValue) -> Result<String, AnonError> {
    match v {
        TomlValue::Str(s) => Ok(s),
        other => Err(config_err(
            path,
            line_no,
            format!("`{key}` expects a string, got {other:?}"),
        )),
    }
}

fn expect_int(path: &str, line_no: usize, key: &str, v: TomlValue) -> Result<u64, AnonError> {
    match v {
        TomlValue::Int(n) => Ok(n),
        other => Err(config_err(
            path,
            line_no,
            format!("`{key}` expects an integer, got {other:?}"),
        )),
    }
}

impl ServeConfig {
    /// Parses the `confanon.toml` grammar: top-level `key = value`
    /// pairs (`listen`, `socket`, `queue_depth`, `request_timeout_ms`,
    /// `idle_timeout_ms`, `read_deadline_ms`, `max_connections`,
    /// `recovery_probe_ms`, `busy_retry_hint_ms`,
    /// `flush = "request" | "drain"`), then one `[tenant.NAME]` section
    /// per tenant with `secret`, `state_dir`, and optional
    /// `disable_rule` (comma-separated rule names, validated against
    /// the rule table), `max_request_bytes` (per-tenant payload quota,
    /// ≤ [`MAX_PAYLOAD`]), and `queue_depth` (per-tenant override of
    /// the daemon-wide bound). Values are double-quoted strings (no escapes),
    /// unsigned integers, or `true`/`false`; `#` starts a comment.
    /// Unknown keys, duplicate tenants, shared state directories, and
    /// missing required keys are errors — the config gates secrets, so
    /// it is parsed strictly.
    pub fn parse(path: &str, text: &str) -> Result<ServeConfig, AnonError> {
        let mut cfg = ServeConfig::default();
        // A `[tenant.NAME]` section under construction; `line_no` is the
        // header's line, for error messages about missing keys.
        struct PartialTenant {
            name: String,
            secret: Option<String>,
            state_dir: Option<String>,
            disabled_rules: Vec<String>,
            max_request_bytes: usize,
            queue_depth: Option<usize>,
            line_no: usize,
        }
        let mut current: Option<PartialTenant> = None;
        let mut finished: Vec<TenantSpec> = Vec::new();

        let finish = |t: PartialTenant| -> Result<TenantSpec, AnonError> {
            let PartialTenant {
                name,
                secret,
                state_dir,
                disabled_rules,
                max_request_bytes,
                queue_depth,
                line_no,
            } = t;
            let Some(secret) = secret else {
                return Err(config_err(
                    path,
                    line_no,
                    format!("tenant {name:?} is missing `secret`"),
                ));
            };
            let Some(state_dir) = state_dir else {
                return Err(config_err(
                    path,
                    line_no,
                    format!("tenant {name:?} is missing `state_dir`"),
                ));
            };
            Ok(TenantSpec {
                name,
                secret: secret.into_bytes(),
                state_dir: PathBuf::from(state_dir),
                disabled_rules,
                max_request_bytes,
                queue_depth,
            })
        };

        for (i, raw_line) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let Some(section) = section.strip_suffix(']') else {
                    return Err(config_err(path, line_no, "unterminated section header"));
                };
                let Some(tenant_name) = section.strip_prefix("tenant.") else {
                    return Err(config_err(
                        path,
                        line_no,
                        format!("unknown section [{section}] (only [tenant.NAME] is accepted)"),
                    ));
                };
                if !valid_token(tenant_name) || tenant_name == "-" {
                    return Err(config_err(
                        path,
                        line_no,
                        format!("invalid tenant name {tenant_name:?} (use [A-Za-z0-9._-])"),
                    ));
                }
                if let Some(t) = current.take() {
                    finished.push(finish(t)?);
                }
                current = Some(PartialTenant {
                    name: tenant_name.to_string(),
                    secret: None,
                    state_dir: None,
                    disabled_rules: Vec::new(),
                    max_request_bytes: MAX_PAYLOAD,
                    queue_depth: None,
                    line_no,
                });
                continue;
            }
            let Some((key, raw_value)) = line.split_once('=') else {
                return Err(config_err(
                    path,
                    line_no,
                    format!("expected `key = value`, got {line:?}"),
                ));
            };
            let key = key.trim();
            let value = parse_toml_value(raw_value).map_err(|m| config_err(path, line_no, m))?;
            match &mut current {
                None => match key {
                    "listen" => cfg.listen = Some(expect_str(path, line_no, key, value)?),
                    "socket" => {
                        cfg.socket =
                            Some(PathBuf::from(expect_str(path, line_no, key, value)?));
                    }
                    "queue_depth" => {
                        let n = expect_int(path, line_no, key, value)?;
                        if n == 0 || n > 4096 {
                            return Err(config_err(
                                path,
                                line_no,
                                "`queue_depth` must be between 1 and 4096",
                            ));
                        }
                        cfg.queue_depth = n as usize;
                    }
                    "request_timeout_ms" => {
                        let n = expect_int(path, line_no, key, value)?;
                        if n == 0 {
                            return Err(config_err(
                                path,
                                line_no,
                                "`request_timeout_ms` must be positive",
                            ));
                        }
                        cfg.request_timeout_ms = n;
                    }
                    "idle_timeout_ms" | "read_deadline_ms" | "recovery_probe_ms"
                    | "busy_retry_hint_ms" => {
                        let n = expect_int(path, line_no, key, value)?;
                        if n == 0 {
                            return Err(config_err(
                                path,
                                line_no,
                                format!("`{key}` must be positive"),
                            ));
                        }
                        match key {
                            "idle_timeout_ms" => cfg.idle_timeout_ms = n,
                            "read_deadline_ms" => cfg.read_deadline_ms = n,
                            "recovery_probe_ms" => cfg.recovery_probe_ms = n,
                            _ => cfg.busy_retry_hint_ms = n,
                        }
                    }
                    "max_connections" => {
                        let n = expect_int(path, line_no, key, value)?;
                        if n == 0 || n > 4096 {
                            return Err(config_err(
                                path,
                                line_no,
                                "`max_connections` must be between 1 and 4096",
                            ));
                        }
                        cfg.max_connections = n as usize;
                    }
                    "flush" => {
                        let s = expect_str(path, line_no, key, value)?;
                        cfg.flush = match FlushMode::parse(&s) {
                            Some(m) => m,
                            None => {
                                return Err(config_err(
                                    path,
                                    line_no,
                                    format!("`flush` must be \"request\" or \"drain\", got {s:?}"),
                                ));
                            }
                        };
                    }
                    other => {
                        return Err(config_err(
                            path,
                            line_no,
                            format!("unknown top-level key `{other}`"),
                        ));
                    }
                },
                Some(PartialTenant {
                    name,
                    secret,
                    state_dir,
                    disabled_rules: disabled,
                    max_request_bytes,
                    queue_depth,
                    ..
                }) => match key {
                    "secret" => {
                        let s = expect_str(path, line_no, key, value)?;
                        if s.is_empty() {
                            return Err(config_err(
                                path,
                                line_no,
                                format!("tenant {name:?}: `secret` may not be empty"),
                            ));
                        }
                        *secret = Some(s);
                    }
                    "state_dir" => {
                        let s = expect_str(path, line_no, key, value)?;
                        if s.is_empty() {
                            return Err(config_err(
                                path,
                                line_no,
                                format!("tenant {name:?}: `state_dir` may not be empty"),
                            ));
                        }
                        *state_dir = Some(s);
                    }
                    "disable_rule" => {
                        let spec = expect_str(path, line_no, key, value)?;
                        for rule in spec.split(',').map(str::trim).filter(|r| !r.is_empty()) {
                            if !ALL_RULES.iter().any(|r| r.name == rule) {
                                return Err(config_err(
                                    path,
                                    line_no,
                                    format!("unknown rule {rule:?} (see `confanon rules`)"),
                                ));
                            }
                            disabled.push(rule.to_string());
                        }
                    }
                    "max_request_bytes" => {
                        let n = expect_int(path, line_no, key, value)?;
                        if n == 0 || n as usize > MAX_PAYLOAD {
                            return Err(config_err(
                                path,
                                line_no,
                                format!(
                                    "tenant {name:?}: `max_request_bytes` must be between 1 \
                                     and {MAX_PAYLOAD}"
                                ),
                            ));
                        }
                        *max_request_bytes = n as usize;
                    }
                    "queue_depth" => {
                        let n = expect_int(path, line_no, key, value)?;
                        if n == 0 || n > 4096 {
                            return Err(config_err(
                                path,
                                line_no,
                                format!("tenant {name:?}: `queue_depth` must be between 1 and 4096"),
                            ));
                        }
                        *queue_depth = Some(n as usize);
                    }
                    other => {
                        return Err(config_err(
                            path,
                            line_no,
                            format!("unknown tenant key `{other}`"),
                        ));
                    }
                },
            }
        }
        if let Some(t) = current.take() {
            finished.push(finish(t)?);
        }
        if finished.is_empty() {
            return Err(AnonError::ConfigInvalid {
                path: path.to_string(),
                message: "no [tenant.NAME] sections — a daemon with no tenants serves nothing"
                    .to_string(),
            });
        }
        let mut names = std::collections::BTreeSet::new();
        let mut dirs = std::collections::BTreeSet::new();
        for t in &finished {
            if !names.insert(t.name.clone()) {
                return Err(AnonError::ConfigInvalid {
                    path: path.to_string(),
                    message: format!("duplicate tenant {:?}", t.name),
                });
            }
            if !dirs.insert(t.state_dir.clone()) {
                return Err(AnonError::ConfigInvalid {
                    path: path.to_string(),
                    message: format!(
                        "tenants may not share a state_dir ({})",
                        t.state_dir.display()
                    ),
                });
            }
        }
        cfg.tenants = finished;
        Ok(cfg)
    }
}

// ---------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------

/// Operational options that come from the CLI rather than the config.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Where to write the bound endpoint (`host:port` or `unix:PATH`)
    /// once listening — how tests and scripts discover an ephemeral
    /// port requested with `--listen 127.0.0.1:0`.
    pub port_file: Option<PathBuf>,
    /// Refuse to start (exit with the tenant-state code) if any
    /// tenant's persisted state is unusable, instead of the default
    /// per-tenant quarantine.
    pub require_clean_state: bool,
}

/// What a drained daemon run did, for the exit log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Frames dispatched (all verbs).
    pub requests: u64,
    /// `BUSY` back-pressure rejections.
    pub busy_rejections: u64,
    /// Tenants served.
    pub tenants: usize,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Conn {
    fn configure(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(CONN_READ_TIMEOUT))?;
                s.set_write_timeout(Some(Duration::from_secs(10)))
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(CONN_READ_TIMEOUT))?;
                s.set_write_timeout(Some(Duration::from_secs(10)))
            }
        }
    }
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

fn bind_endpoint(cfg: &ServeConfig, config_path: &str) -> Result<(Listener, String), AnonError> {
    match (&cfg.listen, &cfg.socket) {
        (Some(_), Some(_)) | (None, None) => Err(AnonError::ConfigInvalid {
            path: config_path.to_string(),
            message: "exactly one of `listen` (TCP) and `socket` (Unix) must be set".to_string(),
        }),
        (Some(addr), None) => {
            let l = TcpListener::bind(addr).map_err(|e| AnonError::BindFailed {
                addr: addr.clone(),
                message: e.to_string(),
            })?;
            let advertised = match l.local_addr() {
                Ok(a) => a.to_string(),
                Err(_) => addr.clone(),
            };
            l.set_nonblocking(true).map_err(|e| AnonError::BindFailed {
                addr: addr.clone(),
                message: e.to_string(),
            })?;
            Ok((Listener::Tcp(l), advertised))
        }
        (None, Some(path)) => bind_unix(path),
    }
}

#[cfg(unix)]
fn bind_unix(path: &std::path::Path) -> Result<(Listener, String), AnonError> {
    use std::os::unix::net::{UnixListener, UnixStream};
    let addr = format!("unix:{}", path.display());
    let bind_err = |e: io::Error| AnonError::BindFailed {
        addr: addr.clone(),
        message: e.to_string(),
    };
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            // A socket file survives kill -9. If nothing answers it, the
            // file is stale residue of a dead daemon: reclaim it. If a
            // peer answers, a live daemon owns the path — refuse.
            if UnixStream::connect(path).is_ok() {
                return Err(AnonError::BindFailed {
                    addr,
                    message: "address in use by a live daemon".to_string(),
                });
            }
            std::fs::remove_file(path).map_err(bind_err)?;
            UnixListener::bind(path).map_err(bind_err)?
        }
        Err(e) => return Err(bind_err(e)),
    };
    listener.set_nonblocking(true).map_err(bind_err)?;
    Ok((Listener::Unix(listener), addr))
}

#[cfg(not(unix))]
fn bind_unix(path: &std::path::Path) -> Result<(Listener, String), AnonError> {
    Err(AnonError::BindFailed {
        addr: format!("unix:{}", path.display()),
        message: "unix sockets are not supported on this platform".to_string(),
    })
}

struct DaemonShared {
    shutdown: AtomicBool,
    connections: AtomicU64,
    /// Connections currently being served — the gauge load-shedding
    /// compares against `max_connections`.
    live: AtomicU64,
    requests: AtomicU64,
    busy: AtomicU64,
    /// DESIGN §15 fault taxonomy, exported as `daemon.faults`.
    frames_rejected: AtomicU64,
    read_timeouts: AtomicU64,
    idle_closed: AtomicU64,
    connections_shed: AtomicU64,
    recoveries: AtomicU64,
    degraded_transitions: AtomicU64,
    /// Latest per-tenant stats snapshot, refreshed by each worker after
    /// every request — so `STATS` never has to rendezvous with (or wait
    /// behind) tenant queues.
    snapshots: Mutex<BTreeMap<String, Json>>,
}

impl DaemonShared {
    fn new() -> DaemonShared {
        DaemonShared {
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            live: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            frames_rejected: AtomicU64::new(0),
            read_timeouts: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
            connections_shed: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            degraded_transitions: AtomicU64::new(0),
            snapshots: Mutex::new(BTreeMap::new()),
        }
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signals::term_requested()
    }

    fn stats_doc(&self) -> Json {
        let mut tenants = Json::obj();
        {
            let snaps = self
                .snapshots
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for (name, snap) in snaps.iter() {
                tenants.set(name, snap.clone());
            }
        }
        let faults = confanon_obs::serve_faults_json([
            self.frames_rejected.load(Ordering::SeqCst),
            self.read_timeouts.load(Ordering::SeqCst),
            self.idle_closed.load(Ordering::SeqCst),
            self.connections_shed.load(Ordering::SeqCst),
            self.recoveries.load(Ordering::SeqCst),
            self.degraded_transitions.load(Ordering::SeqCst),
        ]);
        let daemon = Json::obj()
            .with("connections", self.connections.load(Ordering::SeqCst))
            .with("live_connections", self.live.load(Ordering::SeqCst))
            .with("requests", self.requests.load(Ordering::SeqCst))
            .with("busy_rejections", self.busy.load(Ordering::SeqCst))
            .with("faults", faults)
            .with("draining", self.draining());
        confanon_obs::serve_metrics_doc(tenants, daemon)
    }

    fn publish_snapshot(&self, name: &str, snap: Json) {
        let mut snaps = self.snapshots.lock().unwrap_or_else(|e| e.into_inner());
        snaps.insert(name.to_string(), snap);
    }

    /// The `BUSY` payload with the backoff hint clients key off:
    /// `retry-after-ms=<N>; <why>`.
    fn busy_payload(&self, hint_ms: u64, why: &str) -> Vec<u8> {
        format!("retry-after-ms={hint_ms}; {why}").into_bytes()
    }
}

struct Job {
    req: Request,
    reply: mpsc::Sender<(Status, Vec<u8>)>,
}

/// A tenant's dispatch port: its queue sender plus the per-tenant
/// quota the connection handler enforces *before* a byte of payload
/// reaches the worker.
struct TenantPort {
    tx: SyncSender<Job>,
    max_request_bytes: usize,
}

/// One tenant's worker loop: owns the tenant exclusively, so request
/// handling needs no locks and a sibling tenant's failure cannot poison
/// this one's state. Between jobs it runs the DESIGN §15 self-healing
/// probe: every `probe_interval` of queue silence, a state-quarantined
/// tenant re-verifies its persisted state through the §13 load path and
/// a degraded tenant retries its suspended flush — both un-gate
/// themselves the moment the store heals, with no operator action.
/// (Leak quarantine is deliberately *not* probed: a tripped §6.1 gate
/// means output was withheld, and only an operator can declare that
/// incident closed.) Returns the drain-flush error, if any.
fn tenant_worker(
    tenant: &mut Tenant,
    rx: Receiver<Job>,
    shared: &DaemonShared,
    probe_interval: Duration,
) -> Option<AnonError> {
    let snap = tenant.stats_json();
    shared.publish_snapshot(&tenant.name, snap);
    loop {
        let job = match rx.recv_timeout(probe_interval) {
            Ok(job) => job,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if tenant.needs_recovery() && tenant.try_recover(&StdFs) {
                    shared.recoveries.fetch_add(1, Ordering::SeqCst);
                    shared.publish_snapshot(&tenant.name, tenant.stats_json());
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        let was_degraded = matches!(tenant.health(), crate::tenant::TenantHealth::Degraded { .. });
        let (status, payload) = match job.req.verb {
            Verb::Anon => tenant.handle_anon(&job.req.name, &job.req.payload, &StdFs),
            Verb::Flush => match tenant.flush(&StdFs) {
                Ok(()) => (Status::Ok, b"flushed".to_vec()),
                Err(e) => (Status::Error, e.to_string().into_bytes()),
            },
            // The handler routes only tenant verbs here.
            _ => (Status::Error, b"internal: verb is not tenant-scoped".to_vec()),
        };
        let is_degraded = matches!(tenant.health(), crate::tenant::TenantHealth::Degraded { .. });
        if is_degraded && !was_degraded {
            shared.degraded_transitions.fetch_add(1, Ordering::SeqCst);
        }
        if was_degraded && !is_degraded {
            shared.recoveries.fetch_add(1, Ordering::SeqCst);
        }
        let snap = tenant.stats_json();
        shared.publish_snapshot(&tenant.name, snap);
        // The requester may have timed out and gone; that's its choice.
        let _ = job.reply.send((status, payload));
    }
    // All senders dropped: the daemon is draining. Flush the resident
    // state through the atomic-rename discipline, whatever the mode.
    let result = tenant.flush(&StdFs);
    let snap = tenant.stats_json();
    shared.publish_snapshot(&tenant.name, snap);
    result.err()
}

fn dispatch_request(
    req: Request,
    shared: &DaemonShared,
    dispatch: &BTreeMap<String, TenantPort>,
    timeout: Duration,
    busy_hint_ms: u64,
) -> (Status, Vec<u8>) {
    match req.verb {
        Verb::Ping => (Status::Ok, b"pong".to_vec()),
        Verb::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (Status::Bye, b"draining".to_vec())
        }
        Verb::Stats => (
            Status::Ok,
            shared.stats_doc().to_string_pretty().into_bytes(),
        ),
        Verb::Anon | Verb::Flush => {
            let Some(port) = dispatch.get(&req.tenant) else {
                let msg = format!("unknown tenant {:?}", req.tenant);
                return (Status::UnknownTenant, msg.into_bytes());
            };
            if req.payload.len() > port.max_request_bytes {
                shared.frames_rejected.fetch_add(1, Ordering::SeqCst);
                let msg = format!(
                    "quota-exceeded: payload {} bytes exceeds tenant quota {} bytes",
                    req.payload.len(),
                    port.max_request_bytes
                );
                return (Status::Error, msg.into_bytes());
            }
            let (rtx, rrx) = mpsc::channel();
            match port.tx.try_send(Job { req, reply: rtx }) {
                Err(TrySendError::Full(_)) => {
                    shared.busy.fetch_add(1, Ordering::SeqCst);
                    (
                        Status::Busy,
                        shared.busy_payload(busy_hint_ms, "tenant queue full; back off and retry"),
                    )
                }
                Err(TrySendError::Disconnected(_)) => {
                    (Status::Error, b"tenant worker is gone".to_vec())
                }
                Ok(()) => match rrx.recv_timeout(timeout) {
                    Ok(reply) => reply,
                    Err(_) => (
                        Status::Timeout,
                        b"deadline exceeded; safe to retry (mappings are sticky)".to_vec(),
                    ),
                },
            }
        }
    }
}

fn handle_conn(
    mut conn: Conn,
    shared: &DaemonShared,
    dispatch: &Arc<BTreeMap<String, TenantPort>>,
    cfg: &ServeConfig,
) {
    if conn.configure().is_err() {
        return;
    }
    let timeout = Duration::from_millis(cfg.request_timeout_ms);
    let idle_timeout = Duration::from_millis(cfg.idle_timeout_ms);
    let read_deadline = Duration::from_millis(cfg.read_deadline_ms);
    let mut reader = FrameReader::new();
    // Two clocks per connection (DESIGN §15): `last_progress` restarts
    // on every delivered byte and trips the idle timeout; `frame_start`
    // pins the first byte of an in-progress frame and trips the read
    // deadline — a dribbler that always makes *some* progress resets
    // the first clock but never the second.
    let mut last_progress = Instant::now();
    let mut frame_start: Option<Instant> = None;
    let mut seen = 0usize;
    loop {
        let ev = reader.poll(&mut conn);
        let buffered = reader.buffered();
        if buffered != seen {
            seen = buffered;
            last_progress = Instant::now();
        }
        if buffered > 0 && frame_start.is_none() {
            frame_start = Some(last_progress);
        }
        match ev {
            ReadEvent::Eof => return,
            ReadEvent::Idle => {
                if shared.draining() {
                    let _ = conn.write_all(&encode_response(
                        Status::Draining,
                        b"daemon draining; reconnect after restart",
                    ));
                    return;
                }
                if let Some(start) = frame_start {
                    if start.elapsed() >= read_deadline {
                        shared.read_timeouts.fetch_add(1, Ordering::SeqCst);
                        let msg = format!(
                            "read-deadline: frame incomplete after {} ms",
                            cfg.read_deadline_ms
                        );
                        let _ = conn.write_all(&encode_response(Status::Error, msg.as_bytes()));
                        return;
                    }
                }
                if last_progress.elapsed() >= idle_timeout {
                    shared.idle_closed.fetch_add(1, Ordering::SeqCst);
                    let msg = format!("idle-timeout: no bytes for {} ms", cfg.idle_timeout_ms);
                    let _ = conn.write_all(&encode_response(Status::Error, msg.as_bytes()));
                    return;
                }
            }
            ReadEvent::Malformed(m) => {
                shared.frames_rejected.fetch_add(1, Ordering::SeqCst);
                let _ = conn.write_all(&encode_response(Status::Error, m.to_string().as_bytes()));
                return;
            }
            ReadEvent::Request(req) => {
                frame_start = None;
                // In-flight and queued work finishes during a drain, but
                // a frame parsed after the flag is *new* work: reject it
                // (SHUTDOWN stays answerable so drains are idempotent).
                if shared.draining() && req.verb != Verb::Shutdown {
                    let _ = conn.write_all(&encode_response(
                        Status::Draining,
                        b"daemon draining; reconnect after restart",
                    ));
                    return;
                }
                shared.requests.fetch_add(1, Ordering::SeqCst);
                let verb = req.verb;
                let (status, payload) =
                    dispatch_request(req, shared, dispatch, timeout, cfg.busy_retry_hint_ms);
                if conn.write_all(&encode_response(status, &payload)).is_err() {
                    return;
                }
                let _ = conn.flush();
                // Queue wait and processing must not count against the
                // peer's idle budget.
                last_progress = Instant::now();
                if verb == Verb::Shutdown {
                    return;
                }
            }
        }
    }
}

/// Runs the daemon until a graceful drain completes. Binds, opens every
/// tenant (loading persisted state through the verification path),
/// serves with scoped threads, and on `SIGTERM`/`SHUTDOWN` drains:
/// in-flight requests finish, every tenant flushes atomically, and the
/// function returns the run summary (the caller exits 0). Errors are
/// startup refusals ([`AnonError::BindFailed`],
/// [`AnonError::ConfigInvalid`], [`AnonError::TenantStateRefused`]) or
/// a drain-flush I/O failure.
pub fn run_daemon(
    cfg: &ServeConfig,
    opts: &ServeOptions,
    config_path: &str,
) -> Result<ServeSummary, AnonError> {
    // Open tenants before binding: state refusals must win over bind
    // errors so `--require-clean-state` is testable without a port.
    let mut tenants = Vec::new();
    for spec in &cfg.tenants {
        let tenant = Tenant::open(spec, cfg.flush, &StdFs);
        if opts.require_clean_state {
            if let Some(reason) = tenant.state_defect() {
                return Err(AnonError::TenantStateRefused {
                    tenant: spec.name.clone(),
                    message: reason.to_string(),
                });
            }
        }
        tenants.push(tenant);
    }

    let (listener, advertised) = bind_endpoint(cfg, config_path)?;
    if let Some(pf) = &opts.port_file {
        let mut stats = DurabilityStats::default();
        write_atomic(&StdFs, pf, format!("{advertised}\n").as_bytes(), &mut stats)?;
    }
    signals::install_term_handler();
    eprintln!(
        "serve: listening on {advertised} with {} tenant(s) \
         (queue depth {}, timeout {} ms, flush {})",
        tenants.len(),
        cfg.queue_depth,
        cfg.request_timeout_ms,
        cfg.flush.name()
    );

    let shared = DaemonShared::new();
    let probe_interval = Duration::from_millis(cfg.recovery_probe_ms);
    let tenant_count = tenants.len();
    let flush_errors: Mutex<Vec<AnonError>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        let mut senders = BTreeMap::new();
        // `tenants` was built from `cfg.tenants` in order, so the specs
        // zip back onto their tenants for the per-tenant knobs.
        for (mut tenant, spec) in tenants.into_iter().zip(&cfg.tenants) {
            let depth = spec.queue_depth.unwrap_or(cfg.queue_depth);
            let (tx, rx) = mpsc::sync_channel::<Job>(depth);
            senders.insert(
                tenant.name.clone(),
                TenantPort {
                    tx,
                    max_request_bytes: spec.max_request_bytes,
                },
            );
            let shared = &shared;
            let flush_errors = &flush_errors;
            scope.spawn(move || {
                if let Some(e) = tenant_worker(&mut tenant, rx, shared, probe_interval) {
                    let mut errs = flush_errors.lock().unwrap_or_else(|p| p.into_inner());
                    errs.push(e);
                }
            });
        }
        // Handlers hold Arc clones so the senders' lifetime is exactly
        // "main loop + live connections": when the accept loop drops its
        // Arc and the last draining handler exits, every tenant channel
        // disconnects and workers flush.
        let dispatch = Arc::new(senders);
        loop {
            if shared.draining() {
                break;
            }
            match listener.accept() {
                Ok(mut conn) => {
                    // Load-shed above the connection bound: one BUSY
                    // frame with the backoff hint, then close. Nothing
                    // was read, so the client can simply reconnect.
                    if shared.live.load(Ordering::SeqCst) >= cfg.max_connections as u64 {
                        shared.connections_shed.fetch_add(1, Ordering::SeqCst);
                        let _ = conn.configure();
                        let _ = conn.write_all(&encode_response(
                            Status::Busy,
                            &shared.busy_payload(
                                cfg.busy_retry_hint_ms,
                                "connection limit reached; back off and reconnect",
                            ),
                        ));
                        continue;
                    }
                    shared.connections.fetch_add(1, Ordering::SeqCst);
                    shared.live.fetch_add(1, Ordering::SeqCst);
                    let shared = &shared;
                    let dispatch = Arc::clone(&dispatch);
                    scope.spawn(move || {
                        handle_conn(conn, shared, &dispatch, cfg);
                        shared.live.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                // Transient accept failure (EMFILE and friends): don't
                // kill the daemon over one connection.
                Err(_) => std::thread::sleep(POLL_INTERVAL),
            }
        }
        eprintln!("serve: draining ({} tenant(s) to flush)", tenant_count);
        drop(dispatch);
    });

    #[cfg(unix)]
    if let Some(path) = &cfg.socket {
        let _ = std::fs::remove_file(path);
    }

    let mut errs = flush_errors.into_inner().unwrap_or_else(|p| p.into_inner());
    if let Some(e) = errs.drain(..).next() {
        return Err(e);
    }
    Ok(ServeSummary {
        connections: shared.connections.load(Ordering::SeqCst),
        requests: shared.requests.load(Ordering::SeqCst),
        busy_rejections: shared.busy.load(Ordering::SeqCst),
        tenants: tenant_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anon_req(tenant: &str, name: &str, payload: &[u8]) -> Request {
        Request {
            verb: Verb::Anon,
            tenant: tenant.to_string(),
            name: name.to_string(),
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn request_frames_round_trip() {
        let req = anon_req("alpha", "r1.cfg", b"hostname core1\n");
        let bytes = encode_request(&req);
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(bytes);
        match reader.poll(&mut cursor) {
            ReadEvent::Request(parsed) => assert_eq!(parsed, req),
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn two_frames_in_one_read_both_parse() {
        let a = anon_req("alpha", "a.cfg", b"interface Ethernet0\n");
        let b = anon_req("beta", "b.cfg", b"");
        let mut bytes = encode_request(&a);
        bytes.extend_from_slice(&encode_request(&b));
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(bytes);
        let first = reader.poll(&mut cursor);
        let second = reader.poll(&mut cursor);
        match (first, second) {
            (ReadEvent::Request(x), ReadEvent::Request(y)) => {
                assert_eq!(x, a);
                assert_eq!(y, b);
            }
            other => panic!("expected two requests, got {other:?}"),
        }
    }

    #[test]
    fn split_delivery_is_reassembled() {
        let req = anon_req("alpha", "r1.cfg", b"router bgp 65001\n");
        let bytes = encode_request(&req);
        let mut reader = FrameReader::new();
        // Feed one byte at a time: every prefix is Idle, the final byte
        // completes the frame.
        let mut parsed = None;
        for i in 0..bytes.len() {
            let mut cursor = std::io::Cursor::new(&bytes[i..i + 1]);
            match reader.poll(&mut cursor) {
                ReadEvent::Request(r) => {
                    parsed = Some(r);
                    assert_eq!(i, bytes.len() - 1, "frame completed early");
                }
                ReadEvent::Idle => {}
                // Cursor returns Ok(0) once exhausted; a 1-byte slice
                // yields the byte first.
                other => panic!("unexpected event at byte {i}: {other:?}"),
            }
        }
        assert_eq!(parsed, Some(req));
    }

    #[test]
    fn malformed_headers_are_rejected_not_panicked() {
        let cases: &[&[u8]] = &[
            b"HTTP/1.1 GET / 0\n",
            b"CONFANON/1 ANON alpha r1.cfg notanumber\n",
            b"CONFANON/1 EXPLODE alpha r1.cfg 0\n",
            b"CONFANON/1 ANON - r1.cfg 0\n",
            b"CONFANON/1 ANON alpha - 0\n",
            b"CONFANON/1 FLUSH - - 0\n",
            b"CONFANON/1 ANON al/pha r1.cfg 0\n",
            b"CONFANON/1 ANON alpha r1.cfg 0 extra\n",
            b"CONFANON/1 ANON alpha r1.cfg 999999999999\n",
            b"\xff\xfe\n",
        ];
        for case in cases {
            let mut reader = FrameReader::new();
            let mut cursor = std::io::Cursor::new(case.to_vec());
            match reader.poll(&mut cursor) {
                ReadEvent::Malformed(_) => {}
                other => panic!("{case:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_header_without_newline_is_rejected() {
        let mut reader = FrameReader::new();
        let junk = vec![b'A'; MAX_HEADER + 10];
        let mut cursor = std::io::Cursor::new(junk);
        match reader.poll(&mut cursor) {
            ReadEvent::Malformed(m) => {
                assert_eq!(m, FrameDefect::HeaderOverflow);
                assert!(m.to_string().contains("header"));
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn frame_defects_classify_stably() {
        let cases: &[(&[u8], &str)] = &[
            (b"HTTP/1.1 GET / - 0\n", "bad-protocol"),
            (b"CONFANON/1 EXPLODE alpha r1.cfg 0\n", "unknown-verb"),
            (b"CONFANON/1 ANON al/pha r1.cfg 0\n", "bad-token"),
            (b"CONFANON/1 ANON - r1.cfg 0\n", "bad-token"),
            (b"CONFANON/1 ANON alpha r1.cfg notanumber\n", "bad-length"),
            (b"CONFANON/1 ANON alpha r1.cfg 999999999999\n", "oversized-payload"),
            (b"\xff\xfe\n", "non-utf8-header"),
            (b"CONFANON/1 ANON alpha r1.cfg 0 extra\n", "field-count"),
        ];
        for (bytes, class) in cases {
            let mut reader = FrameReader::new();
            let mut cursor = std::io::Cursor::new(bytes.to_vec());
            match reader.poll(&mut cursor) {
                ReadEvent::Malformed(m) => {
                    assert_eq!(m.class(), *class, "for {bytes:?}");
                    let rendered = m.to_string();
                    assert!(
                        rendered.starts_with(&format!("malformed-frame/{class}: ")),
                        "payload {rendered:?} must lead with the class slug"
                    );
                }
                other => panic!("{bytes:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn response_encoding_has_exact_shape() {
        let bytes = encode_response(Status::Busy, b"retry");
        assert_eq!(bytes, b"CONFANON/1 BUSY 5\nretry");
        assert!(Status::Busy.retriable());
        assert!(Status::Timeout.retriable());
        assert!(!Status::Ok.retriable());
        assert!(!Status::Error.retriable());
    }

    #[test]
    fn verb_and_status_tokens_round_trip() {
        for v in [Verb::Anon, Verb::Flush, Verb::Stats, Verb::Ping, Verb::Shutdown] {
            assert_eq!(Verb::parse(v.name()), Some(v));
        }
        for s in [
            Status::Ok,
            Status::Busy,
            Status::Quarantined,
            Status::TenantQuarantined,
            Status::Degraded,
            Status::UnknownTenant,
            Status::Timeout,
            Status::Error,
            Status::Draining,
            Status::Bye,
        ] {
            assert_eq!(Status::parse(s.name()), Some(s));
        }
        assert_eq!(Verb::parse("anon"), None);
        assert_eq!(Status::parse("ok"), None);
    }

    const GOOD_TOML: &str = r#"
# endpoint
listen = "127.0.0.1:0"
queue_depth = 4
request_timeout_ms = 2500
idle_timeout_ms = 9000
read_deadline_ms = 4000
max_connections = 32
recovery_probe_ms = 250
busy_retry_hint_ms = 40
flush = "drain"

[tenant.alpha]
secret = "alpha-secret"
state_dir = "/tmp/alpha-state"   # per-tenant store
max_request_bytes = 65536
queue_depth = 2

[tenant.beta]
secret = "beta-secret"
state_dir = "/tmp/beta-state"
disable_rule = "neighbor-remote-as"
"#;

    #[test]
    fn config_parses_the_documented_grammar() {
        let cfg = ServeConfig::parse("confanon.toml", GOOD_TOML).unwrap();
        assert_eq!(cfg.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cfg.socket, None);
        assert_eq!(cfg.queue_depth, 4);
        assert_eq!(cfg.request_timeout_ms, 2500);
        assert_eq!(cfg.idle_timeout_ms, 9000);
        assert_eq!(cfg.read_deadline_ms, 4000);
        assert_eq!(cfg.max_connections, 32);
        assert_eq!(cfg.recovery_probe_ms, 250);
        assert_eq!(cfg.busy_retry_hint_ms, 40);
        assert_eq!(cfg.flush, FlushMode::Drain);
        assert_eq!(cfg.tenants.len(), 2);
        assert_eq!(cfg.tenants[0].name, "alpha");
        assert_eq!(cfg.tenants[0].secret, b"alpha-secret");
        assert!(cfg.tenants[0].disabled_rules.is_empty());
        assert_eq!(cfg.tenants[0].max_request_bytes, 65536);
        assert_eq!(cfg.tenants[0].queue_depth, Some(2));
        assert_eq!(cfg.tenants[1].disabled_rules, vec!["neighbor-remote-as"]);
        assert_eq!(cfg.tenants[1].max_request_bytes, MAX_PAYLOAD);
        assert_eq!(cfg.tenants[1].queue_depth, None);
    }

    #[test]
    fn config_defaults_apply() {
        let cfg = ServeConfig::parse(
            "c",
            "[tenant.a]\nsecret = \"s\"\nstate_dir = \"d\"\n",
        )
        .unwrap();
        assert_eq!(cfg.queue_depth, DEFAULT_QUEUE_DEPTH);
        assert_eq!(cfg.request_timeout_ms, DEFAULT_REQUEST_TIMEOUT_MS);
        assert_eq!(cfg.idle_timeout_ms, DEFAULT_IDLE_TIMEOUT_MS);
        assert_eq!(cfg.read_deadline_ms, DEFAULT_READ_DEADLINE_MS);
        assert_eq!(cfg.max_connections, DEFAULT_MAX_CONNECTIONS);
        assert_eq!(cfg.recovery_probe_ms, DEFAULT_RECOVERY_PROBE_MS);
        assert_eq!(cfg.busy_retry_hint_ms, DEFAULT_BUSY_RETRY_HINT_MS);
        assert_eq!(cfg.flush, FlushMode::Request);
        assert_eq!(cfg.tenants[0].max_request_bytes, MAX_PAYLOAD);
        assert_eq!(cfg.tenants[0].queue_depth, None);
    }

    #[test]
    fn config_rejections_carry_line_numbers() {
        let cases: &[(&str, &str)] = &[
            ("listen = \n", "line 1"),
            ("queue_depth = \"four\"\n[tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\n", "integer"),
            ("queue_depth = 0\n[tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\n", "between"),
            ("bogus = 1\n", "unknown top-level key"),
            ("[server]\n", "unknown section"),
            ("[tenant.a!]\n", "invalid tenant name"),
            ("[tenant.a]\nstate_dir = \"d\"\n", "missing `secret`"),
            ("[tenant.a]\nsecret = \"s\"\n", "missing `state_dir`"),
            ("[tenant.a]\nsecret = \"s\"\nstate_dir = \"d\"\nbogus = 1\n", "unknown tenant key"),
            (
                "[tenant.a]\nsecret = \"s\"\nstate_dir = \"d\"\ndisable_rule = \"no-such\"\n",
                "unknown rule",
            ),
            ("not a pair\n", "expected `key = value`"),
            ("flush = \"sometimes\"\n", "must be \"request\" or \"drain\""),
            ("", "no [tenant.NAME] sections"),
            ("idle_timeout_ms = 0\n", "`idle_timeout_ms` must be positive"),
            ("read_deadline_ms = 0\n", "`read_deadline_ms` must be positive"),
            ("recovery_probe_ms = 0\n", "`recovery_probe_ms` must be positive"),
            ("busy_retry_hint_ms = 0\n", "`busy_retry_hint_ms` must be positive"),
            ("max_connections = 0\n", "`max_connections` must be between"),
            ("max_connections = 5000\n", "`max_connections` must be between"),
            (
                "[tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\nmax_request_bytes = 0\n",
                "`max_request_bytes` must be between",
            ),
            (
                "[tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\nmax_request_bytes = 999999999999\n",
                "`max_request_bytes` must be between",
            ),
            (
                "[tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\nqueue_depth = 0\n",
                "`queue_depth` must be between",
            ),
        ];
        for (text, needle) in cases {
            let err = ServeConfig::parse("confanon.toml", text).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "{text:?}: expected {needle:?} in {msg:?}"
            );
            assert!(msg.contains("confanon.toml"), "{msg:?} lacks the path");
        }
    }

    #[test]
    fn config_rejects_duplicate_tenants_and_shared_state_dirs() {
        let dup = "[tenant.a]\nsecret=\"s\"\nstate_dir=\"d1\"\n\
                   [tenant.a]\nsecret=\"s\"\nstate_dir=\"d2\"\n";
        assert!(ServeConfig::parse("c", dup)
            .unwrap_err()
            .to_string()
            .contains("duplicate tenant"));
        let shared = "[tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\n\
                      [tenant.b]\nsecret=\"t\"\nstate_dir=\"d\"\n";
        assert!(ServeConfig::parse("c", shared)
            .unwrap_err()
            .to_string()
            .contains("share a state_dir"));
    }

    #[test]
    fn comments_only_strip_outside_quotes() {
        let cfg = ServeConfig::parse(
            "c",
            "[tenant.a]\nsecret = \"se#cret\" # trailing\nstate_dir = \"d\"\n",
        )
        .unwrap();
        assert_eq!(cfg.tenants[0].secret, b"se#cret");
    }

    #[test]
    fn endpoint_requires_exactly_one_of_listen_and_socket() {
        let none = ServeConfig::parse("c", "[tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\n").unwrap();
        assert!(matches!(
            bind_endpoint(&none, "c"),
            Err(AnonError::ConfigInvalid { .. })
        ));
        let both_txt = "listen = \"127.0.0.1:0\"\nsocket = \"/tmp/x.sock\"\n\
                        [tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\n";
        let both = ServeConfig::parse("c", both_txt).unwrap();
        assert!(matches!(
            bind_endpoint(&both, "c"),
            Err(AnonError::ConfigInvalid { .. })
        ));
    }

    #[test]
    fn bind_failure_is_reported_as_bind_failed() {
        let txt = "listen = \"256.256.256.256:1\"\n[tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\n";
        let cfg = ServeConfig::parse("c", txt).unwrap();
        match bind_endpoint(&cfg, "c") {
            Err(AnonError::BindFailed { addr, .. }) => {
                assert_eq!(addr, "256.256.256.256:1");
            }
            Err(other) => panic!("expected BindFailed, got {other:?}"),
            Ok(_) => panic!("expected BindFailed, got a listener"),
        }
    }
}
