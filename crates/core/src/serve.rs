//! `confanon serve` — the fault-tolerant multi-tenant anonymization
//! daemon.
//!
//! The paper's workflow is one-shot batch anonymization; the
//! clearinghouse vision (§7) is a *service*: many operators submit
//! configuration files over months, and each operator's mappings must
//! stay consistent across submissions yet strictly isolated from every
//! other operator's. This module provides that service on `std` alone —
//! scoped threads and a poll-based blocking accept loop, no async
//! runtime — reusing the existing pillars: [`crate::state::AnonState`]
//! for resident-and-persistent per-tenant mapping state,
//! [`crate::fsx::write_atomic`] for torn-write-free flushes, and the
//! §6.1 leak gate per request.
//!
//! ## Wire protocol
//!
//! A length-prefixed line protocol, same shape both directions: one
//! ASCII header line, then exactly `len` payload bytes.
//!
//! ```text
//! request:  "CONFANON/1 <VERB> <tenant> <name> <len>\n" + payload
//! response: "CONFANON/1 <STATUS> <len>\n" + payload
//! ```
//!
//! Verbs: `ANON` (anonymize `payload` under `<tenant>`'s state as file
//! `<name>`), `FLUSH` (durably flush a tenant's state now), `STATS`
//! (the `confanon-serve-metrics-v1` document), `PING`, `SHUTDOWN`
//! (graceful drain, same as `SIGTERM`). Tenant/name positions use `-`
//! when a verb does not need them. Tokens are restricted to
//! `[A-Za-z0-9._-]` (≤ 128 bytes); payloads are capped at
//! [`MAX_PAYLOAD`] — a malformed header or oversized length is answered
//! with an `ERROR` frame and the connection is closed, never buffered.
//!
//! Response statuses and the robustness contract they encode:
//!
//! * `OK` — payload is the anonymized text (or requested document).
//! * `BUSY` — the tenant's bounded queue is full. *Retriable*: nothing
//!   was processed, nothing was buffered. Back-pressure is explicit.
//! * `TIMEOUT` — the request exceeded the per-request deadline while
//!   queued or processing. Retriable: mappings are sticky, so a replay
//!   returns byte-identical output.
//! * `ERROR` — the request failed closed (contained panic, flush
//!   failure, malformed frame). The tenant's resident state is the
//!   state from *before* the request.
//! * `QUARANTINED` — the §6.1 gate found residual identifiers in this
//!   request's output; the bytes are withheld and the tenant enters
//!   quarantine.
//! * `TENANT-QUARANTINED` — the tenant is quarantined (leak hit
//!   earlier, or its persisted state was unusable at startup); the
//!   payload says which.
//! * `UNKNOWN-TENANT`, `DRAINING`, `BYE` — routing/lifecycle statuses.
//!
//! ## Drain and recovery
//!
//! `SIGTERM` or a `SHUTDOWN` frame sets one flag. The accept loop
//! closes, in-flight and already-queued requests finish, idle
//! connections receive `DRAINING`, every tenant's state is flushed
//! through `write_atomic`, and the daemon exits 0. A `kill -9` instead
//! loses nothing that was acknowledged: with `flush = "request"` each
//! `OK` response is sent only *after* the tenant state hit stable
//! storage, so a restart reloads every acknowledged mapping via the
//! state verification path and unacknowledged requests are safely
//! replayed (sticky mappings make replay byte-identical). A tenant
//! whose state file is torn or foreign is quarantined with a distinct
//! error while healthy tenants keep serving.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use confanon_testkit::json::Json;

use crate::error::AnonError;
use crate::fsx::{write_atomic, DurabilityStats, StdFs};
use crate::rules::ALL_RULES;
use crate::signals;
use crate::tenant::{FlushMode, Tenant, TenantSpec};

/// Protocol magic + version, the first token of every frame header.
pub const PROTOCOL: &str = "CONFANON/1";

/// Hard cap on a frame payload. A header may not announce more: the
/// daemon answers `ERROR` and closes instead of buffering unboundedly.
pub const MAX_PAYLOAD: usize = 4 * 1024 * 1024;

/// Hard cap on a frame header line (defense against a peer that never
/// sends a newline).
pub const MAX_HEADER: usize = 1024;

/// Default bound of each tenant's work queue.
pub const DEFAULT_QUEUE_DEPTH: usize = 8;

/// Default per-request deadline (queue wait + processing), in ms.
pub const DEFAULT_REQUEST_TIMEOUT_MS: u64 = 10_000;

/// How often blocked loops (accept poll, idle connection reads) wake to
/// check the drain flag.
const POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Read timeout on accepted connections: the granularity at which an
/// idle connection notices a drain.
const CONN_READ_TIMEOUT: Duration = Duration::from_millis(100);

/// A request verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Anonymize the payload under a tenant's resident state.
    Anon,
    /// Durably flush a tenant's state now.
    Flush,
    /// Return the `confanon-serve-metrics-v1` stats document.
    Stats,
    /// Liveness check.
    Ping,
    /// Graceful drain, equivalent to `SIGTERM`.
    Shutdown,
}

impl Verb {
    /// The wire token.
    pub fn name(self) -> &'static str {
        match self {
            Verb::Anon => "ANON",
            Verb::Flush => "FLUSH",
            Verb::Stats => "STATS",
            Verb::Ping => "PING",
            Verb::Shutdown => "SHUTDOWN",
        }
    }

    /// Parses the wire token.
    pub fn parse(s: &str) -> Option<Verb> {
        match s {
            "ANON" => Some(Verb::Anon),
            "FLUSH" => Some(Verb::Flush),
            "STATS" => Some(Verb::Stats),
            "PING" => Some(Verb::Ping),
            "SHUTDOWN" => Some(Verb::Shutdown),
            _ => None,
        }
    }
}

/// A response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Success; payload is the result.
    Ok,
    /// Tenant queue full; retriable, nothing buffered.
    Busy,
    /// This request's output tripped the leak gate; tenant quarantined.
    Quarantined,
    /// The tenant is quarantined (earlier leak hit or unusable state).
    TenantQuarantined,
    /// No such tenant in the daemon's configuration.
    UnknownTenant,
    /// Per-request deadline exceeded; retriable (mappings are sticky).
    Timeout,
    /// The request failed closed; tenant state unchanged.
    Error,
    /// The daemon is draining; reconnect after restart.
    Draining,
    /// Acknowledges a `SHUTDOWN` frame.
    Bye,
}

impl Status {
    /// The wire token.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Busy => "BUSY",
            Status::Quarantined => "QUARANTINED",
            Status::TenantQuarantined => "TENANT-QUARANTINED",
            Status::UnknownTenant => "UNKNOWN-TENANT",
            Status::Timeout => "TIMEOUT",
            Status::Error => "ERROR",
            Status::Draining => "DRAINING",
            Status::Bye => "BYE",
        }
    }

    /// Parses the wire token.
    pub fn parse(s: &str) -> Option<Status> {
        match s {
            "OK" => Some(Status::Ok),
            "BUSY" => Some(Status::Busy),
            "QUARANTINED" => Some(Status::Quarantined),
            "TENANT-QUARANTINED" => Some(Status::TenantQuarantined),
            "UNKNOWN-TENANT" => Some(Status::UnknownTenant),
            "TIMEOUT" => Some(Status::Timeout),
            "ERROR" => Some(Status::Error),
            "DRAINING" => Some(Status::Draining),
            "BYE" => Some(Status::Bye),
            _ => None,
        }
    }

    /// Whether a client may simply resend the same request: the daemon
    /// guarantees nothing happened (`BUSY`) or that a replay is
    /// byte-identical (`TIMEOUT`, sticky mappings).
    pub fn retriable(self) -> bool {
        matches!(self, Status::Busy | Status::Timeout)
    }
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// What to do.
    pub verb: Verb,
    /// Target tenant (`-` on the wire when unused).
    pub tenant: String,
    /// Submission name, the per-tenant state's file key.
    pub name: String,
    /// The raw bytes to anonymize (empty for control verbs).
    pub payload: Vec<u8>,
}

/// Whether `s` is a legal tenant/name token.
pub fn valid_token(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 128
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Encodes a request frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = format!(
        "{PROTOCOL} {} {} {} {}\n",
        req.verb.name(),
        req.tenant,
        req.name,
        req.payload.len()
    )
    .into_bytes();
    out.extend_from_slice(&req.payload);
    out
}

/// Encodes a response frame.
pub fn encode_response(status: Status, payload: &[u8]) -> Vec<u8> {
    let mut out = format!("{PROTOCOL} {} {}\n", status.name(), payload.len()).into_bytes();
    out.extend_from_slice(payload);
    out
}

fn parse_request_header(line: &str) -> Result<(Verb, String, String, usize), String> {
    let parts: Vec<&str> = line.split(' ').collect();
    let [magic, verb, tenant, name, len] = parts.as_slice() else {
        return Err(format!(
            "malformed header: expected 5 space-separated fields, got {}",
            parts.len()
        ));
    };
    if *magic != PROTOCOL {
        return Err(format!("unknown protocol {magic:?} (expected {PROTOCOL})"));
    }
    let Some(verb) = Verb::parse(verb) else {
        return Err(format!("unknown verb {verb:?}"));
    };
    let token_ok = |t: &str| t == "-" || valid_token(t);
    if !token_ok(tenant) {
        return Err(format!("invalid tenant token {tenant:?}"));
    }
    if !token_ok(name) {
        return Err(format!("invalid name token {name:?}"));
    }
    match verb {
        Verb::Anon if *tenant == "-" || *name == "-" => {
            return Err("ANON requires a tenant and a name".to_string());
        }
        Verb::Flush if *tenant == "-" => {
            return Err("FLUSH requires a tenant".to_string());
        }
        _ => {}
    }
    let Ok(len) = len.parse::<usize>() else {
        return Err(format!("invalid length {len:?}"));
    };
    if len > MAX_PAYLOAD {
        return Err(format!("payload length {len} exceeds cap {MAX_PAYLOAD}"));
    }
    Ok((verb, tenant.to_string(), name.to_string(), len))
}

/// What one poll of a connection produced.
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete request frame.
    Request(Request),
    /// The peer closed (or the connection broke).
    Eof,
    /// No complete frame yet; poll again (and check the drain flag).
    Idle,
    /// The peer sent garbage; answer `ERROR` and close.
    Malformed(String),
}

/// Incremental frame reader over a stream with a read timeout. Keeps
/// partial bytes across polls so a drain check never loses data, and
/// enforces the header/payload caps before buffering.
#[derive(Debug, Default)]
pub struct FrameReader {
    pending: Vec<u8>,
}

impl FrameReader {
    /// A fresh reader with no buffered bytes.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Reads once from `stream` and returns the resulting event. A
    /// timeout maps to [`ReadEvent::Idle`]; connection errors map to
    /// [`ReadEvent::Eof`] (the response channel is gone either way).
    pub fn poll(&mut self, stream: &mut dyn Read) -> ReadEvent {
        if let Some(ev) = self.try_parse() {
            return ev;
        }
        let mut buf = [0u8; 16 * 1024];
        match stream.read(&mut buf) {
            Ok(0) => ReadEvent::Eof,
            Ok(n) => {
                self.pending.extend_from_slice(&buf[..n]);
                self.try_parse().unwrap_or(ReadEvent::Idle)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                ReadEvent::Idle
            }
            Err(_) => ReadEvent::Eof,
        }
    }

    fn try_parse(&mut self) -> Option<ReadEvent> {
        let Some(nl) = self.pending.iter().position(|&b| b == b'\n') else {
            if self.pending.len() > MAX_HEADER {
                return Some(ReadEvent::Malformed(format!(
                    "header exceeds {MAX_HEADER} bytes without a newline"
                )));
            }
            return None;
        };
        if nl > MAX_HEADER {
            return Some(ReadEvent::Malformed(format!(
                "header exceeds {MAX_HEADER} bytes"
            )));
        }
        let header = match std::str::from_utf8(&self.pending[..nl]) {
            Ok(h) => h,
            Err(_) => return Some(ReadEvent::Malformed("header is not UTF-8".to_string())),
        };
        let (verb, tenant, name, len) = match parse_request_header(header) {
            Ok(parts) => parts,
            Err(m) => return Some(ReadEvent::Malformed(m)),
        };
        let total = nl + 1 + len;
        if self.pending.len() < total {
            return None;
        }
        let payload = self.pending[nl + 1..total].to_vec();
        self.pending.drain(..total);
        Some(ReadEvent::Request(Request {
            verb,
            tenant,
            name,
            payload,
        }))
    }
}

// ---------------------------------------------------------------------
// confanon.toml
// ---------------------------------------------------------------------

/// Parsed `confanon.toml` — the daemon's endpoint, robustness knobs,
/// and tenant roster. The accepted grammar is the TOML subset the
/// in-tree reader implements (documented on [`ServeConfig::parse`]);
/// there is no external TOML crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// TCP endpoint (`host:port`). Exactly one of `listen`/`socket`.
    pub listen: Option<String>,
    /// Unix socket path. Exactly one of `listen`/`socket`.
    pub socket: Option<PathBuf>,
    /// Bound of each tenant's work queue (back-pressure threshold).
    pub queue_depth: usize,
    /// Per-request deadline in milliseconds (queue wait + processing).
    pub request_timeout_ms: u64,
    /// When tenant state is durably flushed.
    pub flush: FlushMode,
    /// The tenant roster, in file order.
    pub tenants: Vec<TenantSpec>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            listen: None,
            socket: None,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            request_timeout_ms: DEFAULT_REQUEST_TIMEOUT_MS,
            flush: FlushMode::Request,
            tenants: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Str(String),
    Int(u64),
    Bool(bool),
}

fn config_err(path: &str, line_no: usize, message: impl std::fmt::Display) -> AnonError {
    AnonError::ConfigInvalid {
        path: path.to_string(),
        message: format!("line {line_no}: {message}"),
    }
}

/// Strips a `#` comment that is outside double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_toml_value(raw: &str) -> Result<TomlValue, String> {
    let raw = raw.trim();
    if let Some(inner) = raw.strip_prefix('"') {
        let Some(inner) = inner.strip_suffix('"') else {
            return Err(format!("unterminated string {raw:?}"));
        };
        if inner.contains('"') {
            return Err("strings may not contain embedded quotes".to_string());
        }
        return Ok(TomlValue::Str(inner.to_string()));
    }
    match raw {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if !raw.is_empty() && raw.bytes().all(|b| b.is_ascii_digit()) {
        return raw
            .parse::<u64>()
            .map(TomlValue::Int)
            .map_err(|e| e.to_string());
    }
    Err(format!(
        "unsupported value {raw:?} (expected \"string\", integer, true, or false)"
    ))
}

fn expect_str(path: &str, line_no: usize, key: &str, v: TomlValue) -> Result<String, AnonError> {
    match v {
        TomlValue::Str(s) => Ok(s),
        other => Err(config_err(
            path,
            line_no,
            format!("`{key}` expects a string, got {other:?}"),
        )),
    }
}

fn expect_int(path: &str, line_no: usize, key: &str, v: TomlValue) -> Result<u64, AnonError> {
    match v {
        TomlValue::Int(n) => Ok(n),
        other => Err(config_err(
            path,
            line_no,
            format!("`{key}` expects an integer, got {other:?}"),
        )),
    }
}

impl ServeConfig {
    /// Parses the `confanon.toml` grammar: top-level `key = value`
    /// pairs (`listen`, `socket`, `queue_depth`, `request_timeout_ms`,
    /// `flush = "request" | "drain"`), then one `[tenant.NAME]` section
    /// per tenant with `secret`, `state_dir`, and optional
    /// `disable_rule` (comma-separated rule names, validated against
    /// the rule table). Values are double-quoted strings (no escapes),
    /// unsigned integers, or `true`/`false`; `#` starts a comment.
    /// Unknown keys, duplicate tenants, shared state directories, and
    /// missing required keys are errors — the config gates secrets, so
    /// it is parsed strictly.
    pub fn parse(path: &str, text: &str) -> Result<ServeConfig, AnonError> {
        let mut cfg = ServeConfig::default();
        // A `[tenant.NAME]` section under construction; `line_no` is the
        // header's line, for error messages about missing keys.
        struct PartialTenant {
            name: String,
            secret: Option<String>,
            state_dir: Option<String>,
            disabled_rules: Vec<String>,
            line_no: usize,
        }
        let mut current: Option<PartialTenant> = None;
        let mut finished: Vec<TenantSpec> = Vec::new();

        let finish = |t: PartialTenant| -> Result<TenantSpec, AnonError> {
            let PartialTenant {
                name,
                secret,
                state_dir,
                disabled_rules,
                line_no,
            } = t;
            let Some(secret) = secret else {
                return Err(config_err(
                    path,
                    line_no,
                    format!("tenant {name:?} is missing `secret`"),
                ));
            };
            let Some(state_dir) = state_dir else {
                return Err(config_err(
                    path,
                    line_no,
                    format!("tenant {name:?} is missing `state_dir`"),
                ));
            };
            Ok(TenantSpec {
                name,
                secret: secret.into_bytes(),
                state_dir: PathBuf::from(state_dir),
                disabled_rules,
            })
        };

        for (i, raw_line) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let Some(section) = section.strip_suffix(']') else {
                    return Err(config_err(path, line_no, "unterminated section header"));
                };
                let Some(tenant_name) = section.strip_prefix("tenant.") else {
                    return Err(config_err(
                        path,
                        line_no,
                        format!("unknown section [{section}] (only [tenant.NAME] is accepted)"),
                    ));
                };
                if !valid_token(tenant_name) || tenant_name == "-" {
                    return Err(config_err(
                        path,
                        line_no,
                        format!("invalid tenant name {tenant_name:?} (use [A-Za-z0-9._-])"),
                    ));
                }
                if let Some(t) = current.take() {
                    finished.push(finish(t)?);
                }
                current = Some(PartialTenant {
                    name: tenant_name.to_string(),
                    secret: None,
                    state_dir: None,
                    disabled_rules: Vec::new(),
                    line_no,
                });
                continue;
            }
            let Some((key, raw_value)) = line.split_once('=') else {
                return Err(config_err(
                    path,
                    line_no,
                    format!("expected `key = value`, got {line:?}"),
                ));
            };
            let key = key.trim();
            let value = parse_toml_value(raw_value).map_err(|m| config_err(path, line_no, m))?;
            match &mut current {
                None => match key {
                    "listen" => cfg.listen = Some(expect_str(path, line_no, key, value)?),
                    "socket" => {
                        cfg.socket =
                            Some(PathBuf::from(expect_str(path, line_no, key, value)?));
                    }
                    "queue_depth" => {
                        let n = expect_int(path, line_no, key, value)?;
                        if n == 0 || n > 4096 {
                            return Err(config_err(
                                path,
                                line_no,
                                "`queue_depth` must be between 1 and 4096",
                            ));
                        }
                        cfg.queue_depth = n as usize;
                    }
                    "request_timeout_ms" => {
                        let n = expect_int(path, line_no, key, value)?;
                        if n == 0 {
                            return Err(config_err(
                                path,
                                line_no,
                                "`request_timeout_ms` must be positive",
                            ));
                        }
                        cfg.request_timeout_ms = n;
                    }
                    "flush" => {
                        let s = expect_str(path, line_no, key, value)?;
                        cfg.flush = match FlushMode::parse(&s) {
                            Some(m) => m,
                            None => {
                                return Err(config_err(
                                    path,
                                    line_no,
                                    format!("`flush` must be \"request\" or \"drain\", got {s:?}"),
                                ));
                            }
                        };
                    }
                    other => {
                        return Err(config_err(
                            path,
                            line_no,
                            format!("unknown top-level key `{other}`"),
                        ));
                    }
                },
                Some(PartialTenant {
                    name,
                    secret,
                    state_dir,
                    disabled_rules: disabled,
                    ..
                }) => match key {
                    "secret" => {
                        let s = expect_str(path, line_no, key, value)?;
                        if s.is_empty() {
                            return Err(config_err(
                                path,
                                line_no,
                                format!("tenant {name:?}: `secret` may not be empty"),
                            ));
                        }
                        *secret = Some(s);
                    }
                    "state_dir" => {
                        let s = expect_str(path, line_no, key, value)?;
                        if s.is_empty() {
                            return Err(config_err(
                                path,
                                line_no,
                                format!("tenant {name:?}: `state_dir` may not be empty"),
                            ));
                        }
                        *state_dir = Some(s);
                    }
                    "disable_rule" => {
                        let spec = expect_str(path, line_no, key, value)?;
                        for rule in spec.split(',').map(str::trim).filter(|r| !r.is_empty()) {
                            if !ALL_RULES.iter().any(|r| r.name == rule) {
                                return Err(config_err(
                                    path,
                                    line_no,
                                    format!("unknown rule {rule:?} (see `confanon rules`)"),
                                ));
                            }
                            disabled.push(rule.to_string());
                        }
                    }
                    other => {
                        return Err(config_err(
                            path,
                            line_no,
                            format!("unknown tenant key `{other}`"),
                        ));
                    }
                },
            }
        }
        if let Some(t) = current.take() {
            finished.push(finish(t)?);
        }
        if finished.is_empty() {
            return Err(AnonError::ConfigInvalid {
                path: path.to_string(),
                message: "no [tenant.NAME] sections — a daemon with no tenants serves nothing"
                    .to_string(),
            });
        }
        let mut names = std::collections::BTreeSet::new();
        let mut dirs = std::collections::BTreeSet::new();
        for t in &finished {
            if !names.insert(t.name.clone()) {
                return Err(AnonError::ConfigInvalid {
                    path: path.to_string(),
                    message: format!("duplicate tenant {:?}", t.name),
                });
            }
            if !dirs.insert(t.state_dir.clone()) {
                return Err(AnonError::ConfigInvalid {
                    path: path.to_string(),
                    message: format!(
                        "tenants may not share a state_dir ({})",
                        t.state_dir.display()
                    ),
                });
            }
        }
        cfg.tenants = finished;
        Ok(cfg)
    }
}

// ---------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------

/// Operational options that come from the CLI rather than the config.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Where to write the bound endpoint (`host:port` or `unix:PATH`)
    /// once listening — how tests and scripts discover an ephemeral
    /// port requested with `--listen 127.0.0.1:0`.
    pub port_file: Option<PathBuf>,
    /// Refuse to start (exit with the tenant-state code) if any
    /// tenant's persisted state is unusable, instead of the default
    /// per-tenant quarantine.
    pub require_clean_state: bool,
}

/// What a drained daemon run did, for the exit log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Frames dispatched (all verbs).
    pub requests: u64,
    /// `BUSY` back-pressure rejections.
    pub busy_rejections: u64,
    /// Tenants served.
    pub tenants: usize,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Conn {
    fn configure(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(CONN_READ_TIMEOUT))?;
                s.set_write_timeout(Some(Duration::from_secs(10)))
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(CONN_READ_TIMEOUT))?;
                s.set_write_timeout(Some(Duration::from_secs(10)))
            }
        }
    }
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

fn bind_endpoint(cfg: &ServeConfig, config_path: &str) -> Result<(Listener, String), AnonError> {
    match (&cfg.listen, &cfg.socket) {
        (Some(_), Some(_)) | (None, None) => Err(AnonError::ConfigInvalid {
            path: config_path.to_string(),
            message: "exactly one of `listen` (TCP) and `socket` (Unix) must be set".to_string(),
        }),
        (Some(addr), None) => {
            let l = TcpListener::bind(addr).map_err(|e| AnonError::BindFailed {
                addr: addr.clone(),
                message: e.to_string(),
            })?;
            let advertised = match l.local_addr() {
                Ok(a) => a.to_string(),
                Err(_) => addr.clone(),
            };
            l.set_nonblocking(true).map_err(|e| AnonError::BindFailed {
                addr: addr.clone(),
                message: e.to_string(),
            })?;
            Ok((Listener::Tcp(l), advertised))
        }
        (None, Some(path)) => bind_unix(path),
    }
}

#[cfg(unix)]
fn bind_unix(path: &std::path::Path) -> Result<(Listener, String), AnonError> {
    use std::os::unix::net::{UnixListener, UnixStream};
    let addr = format!("unix:{}", path.display());
    let bind_err = |e: io::Error| AnonError::BindFailed {
        addr: addr.clone(),
        message: e.to_string(),
    };
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
            // A socket file survives kill -9. If nothing answers it, the
            // file is stale residue of a dead daemon: reclaim it. If a
            // peer answers, a live daemon owns the path — refuse.
            if UnixStream::connect(path).is_ok() {
                return Err(AnonError::BindFailed {
                    addr,
                    message: "address in use by a live daemon".to_string(),
                });
            }
            std::fs::remove_file(path).map_err(bind_err)?;
            UnixListener::bind(path).map_err(bind_err)?
        }
        Err(e) => return Err(bind_err(e)),
    };
    listener.set_nonblocking(true).map_err(bind_err)?;
    Ok((Listener::Unix(listener), addr))
}

#[cfg(not(unix))]
fn bind_unix(path: &std::path::Path) -> Result<(Listener, String), AnonError> {
    Err(AnonError::BindFailed {
        addr: format!("unix:{}", path.display()),
        message: "unix sockets are not supported on this platform".to_string(),
    })
}

struct DaemonShared {
    shutdown: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    busy: AtomicU64,
    /// Latest per-tenant stats snapshot, refreshed by each worker after
    /// every request — so `STATS` never has to rendezvous with (or wait
    /// behind) tenant queues.
    snapshots: Mutex<BTreeMap<String, Json>>,
}

impl DaemonShared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signals::term_requested()
    }

    fn stats_doc(&self) -> Json {
        let mut tenants = Json::obj();
        {
            let snaps = self
                .snapshots
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            for (name, snap) in snaps.iter() {
                tenants.set(name, snap.clone());
            }
        }
        let daemon = Json::obj()
            .with("connections", self.connections.load(Ordering::SeqCst))
            .with("requests", self.requests.load(Ordering::SeqCst))
            .with("busy_rejections", self.busy.load(Ordering::SeqCst))
            .with("draining", self.draining());
        confanon_obs::serve_metrics_doc(tenants, daemon)
    }

    fn publish_snapshot(&self, name: &str, snap: Json) {
        let mut snaps = self.snapshots.lock().unwrap_or_else(|e| e.into_inner());
        snaps.insert(name.to_string(), snap);
    }
}

struct Job {
    req: Request,
    reply: mpsc::Sender<(Status, Vec<u8>)>,
}

/// One tenant's worker loop: owns the tenant exclusively, so request
/// handling needs no locks and a sibling tenant's failure cannot poison
/// this one's state. Returns the drain-flush error, if any.
fn tenant_worker(
    tenant: &mut Tenant,
    rx: Receiver<Job>,
    shared: &DaemonShared,
) -> Option<AnonError> {
    let snap = tenant.stats_json();
    shared.publish_snapshot(&tenant.name, snap);
    while let Ok(job) = rx.recv() {
        let (status, payload) = match job.req.verb {
            Verb::Anon => tenant.handle_anon(&job.req.name, &job.req.payload, &StdFs),
            Verb::Flush => match tenant.flush(&StdFs) {
                Ok(()) => (Status::Ok, b"flushed".to_vec()),
                Err(e) => (Status::Error, e.to_string().into_bytes()),
            },
            // The handler routes only tenant verbs here.
            _ => (Status::Error, b"internal: verb is not tenant-scoped".to_vec()),
        };
        let snap = tenant.stats_json();
        shared.publish_snapshot(&tenant.name, snap);
        // The requester may have timed out and gone; that's its choice.
        let _ = job.reply.send((status, payload));
    }
    // All senders dropped: the daemon is draining. Flush the resident
    // state through the atomic-rename discipline, whatever the mode.
    let result = tenant.flush(&StdFs);
    let snap = tenant.stats_json();
    shared.publish_snapshot(&tenant.name, snap);
    result.err()
}

fn dispatch_request(
    req: Request,
    shared: &DaemonShared,
    dispatch: &BTreeMap<String, SyncSender<Job>>,
    timeout: Duration,
) -> (Status, Vec<u8>) {
    match req.verb {
        Verb::Ping => (Status::Ok, b"pong".to_vec()),
        Verb::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (Status::Bye, b"draining".to_vec())
        }
        Verb::Stats => (
            Status::Ok,
            shared.stats_doc().to_string_pretty().into_bytes(),
        ),
        Verb::Anon | Verb::Flush => {
            let Some(tx) = dispatch.get(&req.tenant) else {
                let msg = format!("unknown tenant {:?}", req.tenant);
                return (Status::UnknownTenant, msg.into_bytes());
            };
            let (rtx, rrx) = mpsc::channel();
            match tx.try_send(Job { req, reply: rtx }) {
                Err(TrySendError::Full(_)) => {
                    shared.busy.fetch_add(1, Ordering::SeqCst);
                    (
                        Status::Busy,
                        b"tenant queue full; back off and retry".to_vec(),
                    )
                }
                Err(TrySendError::Disconnected(_)) => {
                    (Status::Error, b"tenant worker is gone".to_vec())
                }
                Ok(()) => match rrx.recv_timeout(timeout) {
                    Ok(reply) => reply,
                    Err(_) => (
                        Status::Timeout,
                        b"deadline exceeded; safe to retry (mappings are sticky)".to_vec(),
                    ),
                },
            }
        }
    }
}

fn handle_conn(
    mut conn: Conn,
    shared: &DaemonShared,
    dispatch: &Arc<BTreeMap<String, SyncSender<Job>>>,
    timeout: Duration,
) {
    if conn.configure().is_err() {
        return;
    }
    let mut reader = FrameReader::new();
    loop {
        match reader.poll(&mut conn) {
            ReadEvent::Eof => return,
            ReadEvent::Idle => {
                if shared.draining() {
                    let _ = conn.write_all(&encode_response(
                        Status::Draining,
                        b"daemon draining; reconnect after restart",
                    ));
                    return;
                }
            }
            ReadEvent::Malformed(m) => {
                let _ = conn.write_all(&encode_response(Status::Error, m.as_bytes()));
                return;
            }
            ReadEvent::Request(req) => {
                // In-flight and queued work finishes during a drain, but
                // a frame parsed after the flag is *new* work: reject it
                // (SHUTDOWN stays answerable so drains are idempotent).
                if shared.draining() && req.verb != Verb::Shutdown {
                    let _ = conn.write_all(&encode_response(
                        Status::Draining,
                        b"daemon draining; reconnect after restart",
                    ));
                    return;
                }
                shared.requests.fetch_add(1, Ordering::SeqCst);
                let verb = req.verb;
                let (status, payload) = dispatch_request(req, shared, dispatch, timeout);
                if conn.write_all(&encode_response(status, &payload)).is_err() {
                    return;
                }
                let _ = conn.flush();
                if verb == Verb::Shutdown {
                    return;
                }
            }
        }
    }
}

/// Runs the daemon until a graceful drain completes. Binds, opens every
/// tenant (loading persisted state through the verification path),
/// serves with scoped threads, and on `SIGTERM`/`SHUTDOWN` drains:
/// in-flight requests finish, every tenant flushes atomically, and the
/// function returns the run summary (the caller exits 0). Errors are
/// startup refusals ([`AnonError::BindFailed`],
/// [`AnonError::ConfigInvalid`], [`AnonError::TenantStateRefused`]) or
/// a drain-flush I/O failure.
pub fn run_daemon(
    cfg: &ServeConfig,
    opts: &ServeOptions,
    config_path: &str,
) -> Result<ServeSummary, AnonError> {
    // Open tenants before binding: state refusals must win over bind
    // errors so `--require-clean-state` is testable without a port.
    let mut tenants = Vec::new();
    for spec in &cfg.tenants {
        let tenant = Tenant::open(spec, cfg.flush, &StdFs);
        if opts.require_clean_state {
            if let Some(reason) = tenant.state_defect() {
                return Err(AnonError::TenantStateRefused {
                    tenant: spec.name.clone(),
                    message: reason.to_string(),
                });
            }
        }
        tenants.push(tenant);
    }

    let (listener, advertised) = bind_endpoint(cfg, config_path)?;
    if let Some(pf) = &opts.port_file {
        let mut stats = DurabilityStats::default();
        write_atomic(&StdFs, pf, format!("{advertised}\n").as_bytes(), &mut stats)?;
    }
    signals::install_term_handler();
    eprintln!(
        "serve: listening on {advertised} with {} tenant(s) \
         (queue depth {}, timeout {} ms, flush {})",
        tenants.len(),
        cfg.queue_depth,
        cfg.request_timeout_ms,
        cfg.flush.name()
    );

    let shared = DaemonShared {
        shutdown: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        busy: AtomicU64::new(0),
        snapshots: Mutex::new(BTreeMap::new()),
    };
    let timeout = Duration::from_millis(cfg.request_timeout_ms);
    let tenant_count = tenants.len();
    let flush_errors: Mutex<Vec<AnonError>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        let mut senders = BTreeMap::new();
        for mut tenant in tenants {
            let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_depth);
            senders.insert(tenant.name.clone(), tx);
            let shared = &shared;
            let flush_errors = &flush_errors;
            scope.spawn(move || {
                if let Some(e) = tenant_worker(&mut tenant, rx, shared) {
                    let mut errs = flush_errors.lock().unwrap_or_else(|p| p.into_inner());
                    errs.push(e);
                }
            });
        }
        // Handlers hold Arc clones so the senders' lifetime is exactly
        // "main loop + live connections": when the accept loop drops its
        // Arc and the last draining handler exits, every tenant channel
        // disconnects and workers flush.
        let dispatch = Arc::new(senders);
        loop {
            if shared.draining() {
                break;
            }
            match listener.accept() {
                Ok(conn) => {
                    shared.connections.fetch_add(1, Ordering::SeqCst);
                    let shared = &shared;
                    let dispatch = Arc::clone(&dispatch);
                    scope.spawn(move || handle_conn(conn, shared, &dispatch, timeout));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                // Transient accept failure (EMFILE and friends): don't
                // kill the daemon over one connection.
                Err(_) => std::thread::sleep(POLL_INTERVAL),
            }
        }
        eprintln!("serve: draining ({} tenant(s) to flush)", tenant_count);
        drop(dispatch);
    });

    #[cfg(unix)]
    if let Some(path) = &cfg.socket {
        let _ = std::fs::remove_file(path);
    }

    let mut errs = flush_errors.into_inner().unwrap_or_else(|p| p.into_inner());
    if let Some(e) = errs.drain(..).next() {
        return Err(e);
    }
    Ok(ServeSummary {
        connections: shared.connections.load(Ordering::SeqCst),
        requests: shared.requests.load(Ordering::SeqCst),
        busy_rejections: shared.busy.load(Ordering::SeqCst),
        tenants: tenant_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anon_req(tenant: &str, name: &str, payload: &[u8]) -> Request {
        Request {
            verb: Verb::Anon,
            tenant: tenant.to_string(),
            name: name.to_string(),
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn request_frames_round_trip() {
        let req = anon_req("alpha", "r1.cfg", b"hostname core1\n");
        let bytes = encode_request(&req);
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(bytes);
        match reader.poll(&mut cursor) {
            ReadEvent::Request(parsed) => assert_eq!(parsed, req),
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn two_frames_in_one_read_both_parse() {
        let a = anon_req("alpha", "a.cfg", b"interface Ethernet0\n");
        let b = anon_req("beta", "b.cfg", b"");
        let mut bytes = encode_request(&a);
        bytes.extend_from_slice(&encode_request(&b));
        let mut reader = FrameReader::new();
        let mut cursor = std::io::Cursor::new(bytes);
        let first = reader.poll(&mut cursor);
        let second = reader.poll(&mut cursor);
        match (first, second) {
            (ReadEvent::Request(x), ReadEvent::Request(y)) => {
                assert_eq!(x, a);
                assert_eq!(y, b);
            }
            other => panic!("expected two requests, got {other:?}"),
        }
    }

    #[test]
    fn split_delivery_is_reassembled() {
        let req = anon_req("alpha", "r1.cfg", b"router bgp 65001\n");
        let bytes = encode_request(&req);
        let mut reader = FrameReader::new();
        // Feed one byte at a time: every prefix is Idle, the final byte
        // completes the frame.
        let mut parsed = None;
        for i in 0..bytes.len() {
            let mut cursor = std::io::Cursor::new(&bytes[i..i + 1]);
            match reader.poll(&mut cursor) {
                ReadEvent::Request(r) => {
                    parsed = Some(r);
                    assert_eq!(i, bytes.len() - 1, "frame completed early");
                }
                ReadEvent::Idle => {}
                // Cursor returns Ok(0) once exhausted; a 1-byte slice
                // yields the byte first.
                other => panic!("unexpected event at byte {i}: {other:?}"),
            }
        }
        assert_eq!(parsed, Some(req));
    }

    #[test]
    fn malformed_headers_are_rejected_not_panicked() {
        let cases: &[&[u8]] = &[
            b"HTTP/1.1 GET / 0\n",
            b"CONFANON/1 ANON alpha r1.cfg notanumber\n",
            b"CONFANON/1 EXPLODE alpha r1.cfg 0\n",
            b"CONFANON/1 ANON - r1.cfg 0\n",
            b"CONFANON/1 ANON alpha - 0\n",
            b"CONFANON/1 FLUSH - - 0\n",
            b"CONFANON/1 ANON al/pha r1.cfg 0\n",
            b"CONFANON/1 ANON alpha r1.cfg 0 extra\n",
            b"CONFANON/1 ANON alpha r1.cfg 999999999999\n",
            b"\xff\xfe\n",
        ];
        for case in cases {
            let mut reader = FrameReader::new();
            let mut cursor = std::io::Cursor::new(case.to_vec());
            match reader.poll(&mut cursor) {
                ReadEvent::Malformed(_) => {}
                other => panic!("{case:?}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_header_without_newline_is_rejected() {
        let mut reader = FrameReader::new();
        let junk = vec![b'A'; MAX_HEADER + 10];
        let mut cursor = std::io::Cursor::new(junk);
        match reader.poll(&mut cursor) {
            ReadEvent::Malformed(m) => assert!(m.contains("header")),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn response_encoding_has_exact_shape() {
        let bytes = encode_response(Status::Busy, b"retry");
        assert_eq!(bytes, b"CONFANON/1 BUSY 5\nretry");
        assert!(Status::Busy.retriable());
        assert!(Status::Timeout.retriable());
        assert!(!Status::Ok.retriable());
        assert!(!Status::Error.retriable());
    }

    #[test]
    fn verb_and_status_tokens_round_trip() {
        for v in [Verb::Anon, Verb::Flush, Verb::Stats, Verb::Ping, Verb::Shutdown] {
            assert_eq!(Verb::parse(v.name()), Some(v));
        }
        for s in [
            Status::Ok,
            Status::Busy,
            Status::Quarantined,
            Status::TenantQuarantined,
            Status::UnknownTenant,
            Status::Timeout,
            Status::Error,
            Status::Draining,
            Status::Bye,
        ] {
            assert_eq!(Status::parse(s.name()), Some(s));
        }
        assert_eq!(Verb::parse("anon"), None);
        assert_eq!(Status::parse("ok"), None);
    }

    const GOOD_TOML: &str = r#"
# endpoint
listen = "127.0.0.1:0"
queue_depth = 4
request_timeout_ms = 2500
flush = "drain"

[tenant.alpha]
secret = "alpha-secret"
state_dir = "/tmp/alpha-state"   # per-tenant store

[tenant.beta]
secret = "beta-secret"
state_dir = "/tmp/beta-state"
disable_rule = "neighbor-remote-as"
"#;

    #[test]
    fn config_parses_the_documented_grammar() {
        let cfg = ServeConfig::parse("confanon.toml", GOOD_TOML).unwrap();
        assert_eq!(cfg.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cfg.socket, None);
        assert_eq!(cfg.queue_depth, 4);
        assert_eq!(cfg.request_timeout_ms, 2500);
        assert_eq!(cfg.flush, FlushMode::Drain);
        assert_eq!(cfg.tenants.len(), 2);
        assert_eq!(cfg.tenants[0].name, "alpha");
        assert_eq!(cfg.tenants[0].secret, b"alpha-secret");
        assert!(cfg.tenants[0].disabled_rules.is_empty());
        assert_eq!(cfg.tenants[1].disabled_rules, vec!["neighbor-remote-as"]);
    }

    #[test]
    fn config_defaults_apply() {
        let cfg = ServeConfig::parse(
            "c",
            "[tenant.a]\nsecret = \"s\"\nstate_dir = \"d\"\n",
        )
        .unwrap();
        assert_eq!(cfg.queue_depth, DEFAULT_QUEUE_DEPTH);
        assert_eq!(cfg.request_timeout_ms, DEFAULT_REQUEST_TIMEOUT_MS);
        assert_eq!(cfg.flush, FlushMode::Request);
    }

    #[test]
    fn config_rejections_carry_line_numbers() {
        let cases: &[(&str, &str)] = &[
            ("listen = \n", "line 1"),
            ("queue_depth = \"four\"\n[tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\n", "integer"),
            ("queue_depth = 0\n[tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\n", "between"),
            ("bogus = 1\n", "unknown top-level key"),
            ("[server]\n", "unknown section"),
            ("[tenant.a!]\n", "invalid tenant name"),
            ("[tenant.a]\nstate_dir = \"d\"\n", "missing `secret`"),
            ("[tenant.a]\nsecret = \"s\"\n", "missing `state_dir`"),
            ("[tenant.a]\nsecret = \"s\"\nstate_dir = \"d\"\nbogus = 1\n", "unknown tenant key"),
            (
                "[tenant.a]\nsecret = \"s\"\nstate_dir = \"d\"\ndisable_rule = \"no-such\"\n",
                "unknown rule",
            ),
            ("not a pair\n", "expected `key = value`"),
            ("flush = \"sometimes\"\n", "must be \"request\" or \"drain\""),
            ("", "no [tenant.NAME] sections"),
        ];
        for (text, needle) in cases {
            let err = ServeConfig::parse("confanon.toml", text).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "{text:?}: expected {needle:?} in {msg:?}"
            );
            assert!(msg.contains("confanon.toml"), "{msg:?} lacks the path");
        }
    }

    #[test]
    fn config_rejects_duplicate_tenants_and_shared_state_dirs() {
        let dup = "[tenant.a]\nsecret=\"s\"\nstate_dir=\"d1\"\n\
                   [tenant.a]\nsecret=\"s\"\nstate_dir=\"d2\"\n";
        assert!(ServeConfig::parse("c", dup)
            .unwrap_err()
            .to_string()
            .contains("duplicate tenant"));
        let shared = "[tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\n\
                      [tenant.b]\nsecret=\"t\"\nstate_dir=\"d\"\n";
        assert!(ServeConfig::parse("c", shared)
            .unwrap_err()
            .to_string()
            .contains("share a state_dir"));
    }

    #[test]
    fn comments_only_strip_outside_quotes() {
        let cfg = ServeConfig::parse(
            "c",
            "[tenant.a]\nsecret = \"se#cret\" # trailing\nstate_dir = \"d\"\n",
        )
        .unwrap();
        assert_eq!(cfg.tenants[0].secret, b"se#cret");
    }

    #[test]
    fn endpoint_requires_exactly_one_of_listen_and_socket() {
        let none = ServeConfig::parse("c", "[tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\n").unwrap();
        assert!(matches!(
            bind_endpoint(&none, "c"),
            Err(AnonError::ConfigInvalid { .. })
        ));
        let both_txt = "listen = \"127.0.0.1:0\"\nsocket = \"/tmp/x.sock\"\n\
                        [tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\n";
        let both = ServeConfig::parse("c", both_txt).unwrap();
        assert!(matches!(
            bind_endpoint(&both, "c"),
            Err(AnonError::ConfigInvalid { .. })
        ));
    }

    #[test]
    fn bind_failure_is_reported_as_bind_failed() {
        let txt = "listen = \"256.256.256.256:1\"\n[tenant.a]\nsecret=\"s\"\nstate_dir=\"d\"\n";
        let cfg = ServeConfig::parse("c", txt).unwrap();
        match bind_endpoint(&cfg, "c") {
            Err(AnonError::BindFailed { addr, .. }) => {
                assert_eq!(addr, "256.256.256.256:1");
            }
            Err(other) => panic!("expected BindFailed, got {other:?}"),
            Ok(_) => panic!("expected BindFailed, got a listener"),
        }
    }
}
