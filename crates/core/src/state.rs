//! Persistent anonymizer state: `confanon-state-v1`.
//!
//! The paper's consistency guarantee (§3.2: "all identifiers must be
//! anonymized in a consistent manner") is process-local until the
//! mapping state survives the process. This module serializes the full
//! anonymizer state into one versioned, atomically-written document so
//! `confanon batch --state DIR` can anonymize a *growing* corpus across
//! runs with every previously-issued mapping provably stable.
//!
//! ## What is stored, and why it is sufficient
//!
//! The only order-dependent mapping state is the pair of
//! prefix-preserving tries, and a trie is a pure function of the
//! sequence of *first insertions* (mappings are sticky: re-mapping
//! mutates nothing — pinned by the `ipanon` suite). So instead of
//! serializing trie nodes, the state stores the **identifier journal**:
//! every distinct mapped address in first-mapped order
//! ([`crate::Anonymizer::journal`]). Loading replays the journal
//! through a fresh anonymizer keyed by the same secret, which rebuilds
//! the tries node-for-node — including the creation-time collision
//! repairs and trailing-zero decisions, because those are functions of
//! the same insertion sequence. A structure digest of each trie
//! ([`confanon_ipanon::IpAnonymizer::structure_digest`]) is stored and
//! re-checked after replay, so a corrupted or reordered journal is
//! refused rather than silently forking the mapping history.
//!
//! Everything else merges commutatively and is stored directly: the
//! leak record, the emitted-image exclusion set, and a per-file map of
//! `{watermark, stats, prefilter counts}` used by warm runs to skip
//! unchanged files while still reporting cold-identical deterministic
//! metrics. The keyed permutations (ASN, community) and token hashes
//! are stateless functions of the owner secret and need no table — the
//! state stores only their parameter check values, so a load under the
//! wrong secret or changed parameters is refused.
//!
//! ## Schema
//!
//! ```json
//! {
//!   "schema": "confanon-state-v1",
//!   "secret_fingerprint": "<domain-separated hex sha1 of the secret>",
//!   "perm_params": "<hex check values of the keyed permutations>",
//!   "trie4_nodes": 123, "trie6_nodes": 45,
//!   "trie4_digest": "<hex16>", "trie6_digest": "<hex16>",
//!   "journal": ["4:0a000001", "6:20010db8…"],
//!   "record": {"asns": [...], "ips": [...], "words": [...]},
//!   "emitted": ["..."],
//!   "files": {"r1.cfg": {"watermark": "<hex sha1 of sanitized text>",
//!                        "prefilter_fast": 10, "prefilter_slow": 2,
//!                        "stats": { ... }}}
//! }
//! ```
//!
//! Journal entries and trie digests are hex *strings* (the in-tree JSON
//! value carries numbers as `f64`, which cannot hold a `u128` address
//! or a 64-bit digest exactly). The document is written pretty-printed
//! with a trailing newline via [`crate::fsx::write_atomic`], so a torn
//! state write can never be observed: the old state (or no state)
//! stays intact.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use confanon_netprim::{Ip, Ip6};
use confanon_testkit::json::Json;

use crate::anonymizer::Anonymizer;
use crate::discover::ObservedIp;
use crate::error::{AnonError, StateErrorKind};
use crate::fsx::{write_atomic, DurabilityStats, Fs};
use crate::leak::LeakRecord;
use crate::stats::AnonymizationStats;

/// Schema tag of the state document.
pub const STATE_SCHEMA: &str = "confanon-state-v1";

/// File name of the state document inside `--state DIR`.
pub const STATE_FILE_NAME: &str = "state.json";

/// Per-file skip record: the watermark identifying the file's content
/// and the deterministic per-file discovery outputs a warm run reuses
/// when the watermark still matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMark {
    /// Hex SHA-1 of the file's *sanitized* text (what the pipeline
    /// actually anonymizes), so an edit anywhere re-processes the file.
    pub watermark: String,
    /// The file's discovery-pass statistics.
    pub stats: AnonymizationStats,
    /// Prefilter fast-path line count for this file (a pure function of
    /// the line texts, so stored counts sum exactly like a rescan).
    pub prefilter_fast: u64,
    /// Prefilter slow-path line count for this file.
    pub prefilter_slow: u64,
}

/// The full persisted anonymizer state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnonState {
    /// Binds the state to one owner secret (same domain-separated
    /// fingerprint `run_manifest.json` records).
    pub secret_fingerprint: String,
    /// Check values of the keyed permutations (see
    /// [`Anonymizer::perm_fingerprint`]).
    pub perm_params: String,
    /// Distinct mapped addresses in first-mapped order.
    pub journal: Vec<ObservedIp>,
    /// The accumulated leak record.
    pub record: LeakRecord,
    /// The accumulated emitted-image exclusion set.
    pub emitted: BTreeSet<String>,
    /// v4 trie node count at save time (replay must reproduce it).
    pub trie4_nodes: u64,
    /// v6 trie node count at save time.
    pub trie6_nodes: u64,
    /// v4 trie structure digest at save time.
    pub trie4_digest: u64,
    /// v6 trie structure digest at save time.
    pub trie6_digest: u64,
    /// Per-file skip records, keyed by corpus-relative name.
    pub files: BTreeMap<String, FileMark>,
}

/// The state file path inside a state directory.
pub fn state_path(dir: &Path) -> PathBuf {
    dir.join(STATE_FILE_NAME)
}

fn corrupted(path: &str, message: String) -> AnonError {
    AnonError::StateInvalid {
        path: path.to_string(),
        kind: StateErrorKind::Corrupted,
        message,
    }
}

fn journal_entry_to_string(obs: &ObservedIp) -> String {
    match obs {
        ObservedIp::V4(ip) => format!("4:{:08x}", ip.0),
        ObservedIp::V6(ip) => format!("6:{:032x}", ip.0),
    }
}

fn journal_entry_from_str(s: &str) -> Result<ObservedIp, String> {
    if let Some(hex) = s.strip_prefix("4:") {
        if hex.len() != 8 {
            return Err(format!("journal entry {s:?}: bad v4 length"));
        }
        let bits = u32::from_str_radix(hex, 16)
            .map_err(|e| format!("journal entry {s:?}: {e}"))?;
        return Ok(ObservedIp::V4(Ip(bits)));
    }
    if let Some(hex) = s.strip_prefix("6:") {
        if hex.len() != 32 {
            return Err(format!("journal entry {s:?}: bad v6 length"));
        }
        let bits = u128::from_str_radix(hex, 16)
            .map_err(|e| format!("journal entry {s:?}: {e}"))?;
        return Ok(ObservedIp::V6(Ip6(bits)));
    }
    Err(format!("journal entry {s:?}: unknown address family"))
}

fn hex16_from_str(key: &str, s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|e| format!("{key:?}: {e}"))
}

impl AnonState {
    /// Captures the current anonymizer state plus the per-file skip map
    /// the caller assembled for the corpus just processed.
    pub fn capture(
        anonymizer: &Anonymizer,
        secret_fingerprint: String,
        files: BTreeMap<String, FileMark>,
    ) -> AnonState {
        let (n4, n6) = anonymizer.trie_node_counts();
        let (d4, d6) = anonymizer.trie_digests();
        AnonState {
            secret_fingerprint,
            perm_params: anonymizer.perm_fingerprint(),
            journal: anonymizer.journal().to_vec(),
            record: anonymizer.leak_record().clone(),
            emitted: anonymizer.emitted_exclusions().into_iter().collect(),
            trie4_nodes: n4 as u64,
            trie6_nodes: n6 as u64,
            trie4_digest: d4,
            trie6_digest: d6,
            files,
        }
    }

    /// The state as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut files = Json::obj();
        for (name, mark) in &self.files {
            files.set(
                name,
                Json::obj()
                    .with("watermark", mark.watermark.as_str())
                    .with("prefilter_fast", mark.prefilter_fast)
                    .with("prefilter_slow", mark.prefilter_slow)
                    .with("stats", mark.stats.to_json()),
            );
        }
        Json::obj()
            .with("schema", STATE_SCHEMA)
            .with("secret_fingerprint", self.secret_fingerprint.as_str())
            .with("perm_params", self.perm_params.as_str())
            .with("trie4_nodes", self.trie4_nodes)
            .with("trie6_nodes", self.trie6_nodes)
            .with("trie4_digest", format!("{:016x}", self.trie4_digest))
            .with("trie6_digest", format!("{:016x}", self.trie6_digest))
            .with(
                "journal",
                Json::Arr(
                    self.journal
                        .iter()
                        .map(|o| Json::Str(journal_entry_to_string(o)))
                        .collect(),
                ),
            )
            .with("record", self.record.to_json())
            .with(
                "emitted",
                Json::Arr(self.emitted.iter().map(|s| Json::Str(s.clone())).collect()),
            )
            .with("files", files)
    }

    /// The serialized document: pretty JSON plus a trailing newline.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        text.into_bytes()
    }

    /// Parses a state document. `path` is used for error messages only.
    ///
    /// Validation order fixes which [`StateErrorKind`] wins: unparseable
    /// JSON is `Corrupted`; a parseable document with the wrong schema
    /// tag is `VersionMismatch`; structural defects after that are
    /// `Corrupted`. Secret/permutation binding is checked separately by
    /// [`AnonState::check_owner`] so the caller controls when the
    /// expected values are known.
    pub fn from_json_str(path: &str, text: &str) -> Result<AnonState, AnonError> {
        let doc = Json::parse(text)
            .map_err(|e| corrupted(path, format!("not valid JSON: {e}")))?;
        let schema = doc.get("schema").and_then(Json::as_str);
        if schema != Some(STATE_SCHEMA) {
            return Err(AnonError::StateInvalid {
                path: path.to_string(),
                kind: StateErrorKind::VersionMismatch,
                message: format!(
                    "schema {} (supported: {STATE_SCHEMA:?})",
                    schema.map_or("missing".to_string(), |s| format!("{s:?}"))
                ),
            });
        }
        let text_field = |key: &str| -> Result<String, AnonError> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| corrupted(path, format!("{key:?} missing or not a string")))
        };
        let count_field = |key: &str| -> Result<u64, AnonError> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| corrupted(path, format!("{key:?} missing or not an integer")))
        };
        let secret_fingerprint = text_field("secret_fingerprint")?;
        let perm_params = text_field("perm_params")?;
        let trie4_nodes = count_field("trie4_nodes")?;
        let trie6_nodes = count_field("trie6_nodes")?;
        let trie4_digest = hex16_from_str("trie4_digest", &text_field("trie4_digest")?)
            .map_err(|m| corrupted(path, m))?;
        let trie6_digest = hex16_from_str("trie6_digest", &text_field("trie6_digest")?)
            .map_err(|m| corrupted(path, m))?;

        let journal = doc
            .get("journal")
            .and_then(Json::as_array)
            .ok_or_else(|| corrupted(path, "\"journal\" missing or not an array".into()))?
            .iter()
            .map(|item| {
                item.as_str()
                    .ok_or_else(|| "journal entries must be strings".to_string())
                    .and_then(journal_entry_from_str)
            })
            .collect::<Result<Vec<ObservedIp>, String>>()
            .map_err(|m| corrupted(path, m))?;

        let record_doc = doc
            .get("record")
            .ok_or_else(|| corrupted(path, "\"record\" missing".into()))?;
        let record = LeakRecord::from_json_str(&record_doc.to_string())
            .map_err(|m| corrupted(path, format!("\"record\": {m}")))?;

        let emitted = doc
            .get("emitted")
            .and_then(Json::as_array)
            .ok_or_else(|| corrupted(path, "\"emitted\" missing or not an array".into()))?
            .iter()
            .map(|item| {
                item.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| corrupted(path, "\"emitted\" must hold strings".into()))
            })
            .collect::<Result<BTreeSet<String>, AnonError>>()?;

        let files_doc = doc
            .get("files")
            .ok_or_else(|| corrupted(path, "\"files\" missing".into()))?;
        let Json::Obj(members) = files_doc else {
            return Err(corrupted(path, "\"files\" must be an object".into()));
        };
        let mut files = BTreeMap::new();
        for (name, mark) in members {
            let watermark = mark
                .get("watermark")
                .and_then(Json::as_str)
                .ok_or_else(|| corrupted(path, format!("files[{name:?}]: watermark missing")))?
                .to_string();
            let prefilter_fast = mark.get("prefilter_fast").and_then(Json::as_u64).ok_or_else(
                || corrupted(path, format!("files[{name:?}]: prefilter_fast missing")),
            )?;
            let prefilter_slow = mark.get("prefilter_slow").and_then(Json::as_u64).ok_or_else(
                || corrupted(path, format!("files[{name:?}]: prefilter_slow missing")),
            )?;
            let stats_doc = mark
                .get("stats")
                .ok_or_else(|| corrupted(path, format!("files[{name:?}]: stats missing")))?;
            let stats = AnonymizationStats::from_json(stats_doc)
                .map_err(|m| corrupted(path, format!("files[{name:?}]: {m}")))?;
            files.insert(
                name.clone(),
                FileMark {
                    watermark,
                    stats,
                    prefilter_fast,
                    prefilter_slow,
                },
            );
        }

        Ok(AnonState {
            secret_fingerprint,
            perm_params,
            journal,
            record,
            emitted,
            trie4_nodes,
            trie6_nodes,
            trie4_digest,
            trie6_digest,
            files,
        })
    }

    /// Verifies the state's owner binding: secret fingerprint and
    /// permutation parameters must both match the current run's.
    pub fn check_owner(
        &self,
        path: &str,
        secret_fingerprint: &str,
        perm_params: &str,
    ) -> Result<(), AnonError> {
        if self.secret_fingerprint != secret_fingerprint {
            return Err(AnonError::StateInvalid {
                path: path.to_string(),
                kind: StateErrorKind::FingerprintMismatch,
                message: "owner secret does not match the saved state \
                          (secret fingerprint mismatch)"
                    .to_string(),
            });
        }
        if self.perm_params != perm_params {
            return Err(AnonError::StateInvalid {
                path: path.to_string(),
                kind: StateErrorKind::FingerprintMismatch,
                message: "permutation parameters do not match the saved state".to_string(),
            });
        }
        Ok(())
    }

    /// Replays the journal into `anonymizer` (which must be fresh and
    /// keyed by the matching secret), merges the stored record and
    /// emitted set, and verifies the rebuilt tries against the stored
    /// node counts and structure digests. Returns the restored (v4, v6)
    /// node counts on success.
    pub fn restore_into(
        &self,
        path: &str,
        anonymizer: &mut Anonymizer,
    ) -> Result<(u64, u64), AnonError> {
        anonymizer.replay_journal(&self.journal);
        let (n4, n6) = anonymizer.trie_node_counts();
        let (d4, d6) = anonymizer.trie_digests();
        if (n4 as u64, n6 as u64) != (self.trie4_nodes, self.trie6_nodes) {
            return Err(corrupted(
                path,
                format!(
                    "journal replay rebuilt {n4}/{n6} trie nodes, state claims {}/{}",
                    self.trie4_nodes, self.trie6_nodes
                ),
            ));
        }
        if (d4, d6) != (self.trie4_digest, self.trie6_digest) {
            return Err(corrupted(
                path,
                "journal replay rebuilt a different trie structure \
                 (digest mismatch)"
                    .to_string(),
            ));
        }
        anonymizer.merge_leak_record(&self.record);
        anonymizer.extend_emitted(self.emitted.iter().cloned());
        Ok((n4 as u64, n6 as u64))
    }

    /// Loads the state document from `dir`, if present. Absence is
    /// `Ok(None)` (a cold start); presence with any defect is an error —
    /// silently starting cold over a damaged state would fork the
    /// mapping history.
    pub fn load(fs: &dyn Fs, dir: &Path) -> Result<Option<AnonState>, AnonError> {
        let path = state_path(dir);
        if !fs.exists(&path) {
            return Ok(None);
        }
        let bytes = fs.read(&path).map_err(|e| AnonError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let text = String::from_utf8_lossy(&bytes);
        Ok(Some(AnonState::from_json_str(
            &path.display().to_string(),
            &text,
        )?))
    }

    /// Durably writes the state document into `dir` via
    /// [`write_atomic`]: a torn write leaves the previous state intact.
    pub fn save(
        &self,
        fs: &dyn Fs,
        dir: &Path,
        stats: &mut DurabilityStats,
    ) -> Result<(), AnonError> {
        write_atomic(fs, &state_path(dir), &self.to_bytes(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymizer::AnonymizerConfig;
    use crate::manifest::RunManifest;

    fn warmed_anonymizer() -> Anonymizer {
        let mut a = Anonymizer::new(AnonymizerConfig::new(b"state-test-secret".to_vec()));
        a.anonymize_config(
            "hostname core1\n\
             interface Ethernet0\n ip address 10.1.2.3 255.255.255.0\n\
             router bgp 701\n neighbor 10.1.2.9 remote-as 1239\n\
             ipv6 route 2001:db8:7::/48 2001:db8::1\n",
        );
        a
    }

    fn capture(a: &Anonymizer) -> AnonState {
        let mut files = BTreeMap::new();
        files.insert(
            "r1.cfg".to_string(),
            FileMark {
                watermark: RunManifest::digest_hex(b"sanitized text"),
                stats: a.total_stats().clone(),
                prefilter_fast: 5,
                prefilter_slow: 1,
            },
        );
        AnonState::capture(a, RunManifest::fingerprint(b"state-test-secret"), files)
    }

    #[test]
    fn serialization_round_trips() {
        let a = warmed_anonymizer();
        let state = capture(&a);
        assert!(!state.journal.is_empty(), "corpus mapped no addresses?");
        let bytes = state.to_bytes();
        let back =
            AnonState::from_json_str("state.json", &String::from_utf8(bytes.clone()).unwrap())
                .expect("parse");
        assert_eq!(back, state);
        // Byte-stable: re-serializing the parse result is identical.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn restore_rebuilds_the_tries_exactly() {
        let a = warmed_anonymizer();
        let state = capture(&a);
        let mut b = Anonymizer::new(AnonymizerConfig::new(b"state-test-secret".to_vec()));
        let (n4, n6) = state.restore_into("state.json", &mut b).expect("restore");
        assert_eq!((n4, n6), (state.trie4_nodes, state.trie6_nodes));
        assert_eq!(b.trie_digests(), a.trie_digests());
        assert_eq!(b.journal(), a.journal());
        assert_eq!(b.emitted_exclusions(), a.emitted_exclusions());
        // Previously mapped addresses keep their images; the anonymized
        // text of the same input is byte-identical.
        let mut a2 = warmed_anonymizer();
        let out_cold = a2.anonymize_config(" ip address 10.1.2.3 255.255.255.0\n");
        let out_warm = b.anonymize_config(" ip address 10.1.2.3 255.255.255.0\n");
        assert_eq!(out_cold.text, out_warm.text);
    }

    #[test]
    fn restore_refuses_a_tampered_journal() {
        let a = warmed_anonymizer();
        let mut state = capture(&a);
        // Reordering the journal changes the insertion sequence, which
        // (in general) changes the trie layout; the digest check or the
        // node-count check must catch any structural divergence.
        state.journal.reverse();
        let mut b = Anonymizer::new(AnonymizerConfig::new(b"state-test-secret".to_vec()));
        match state.restore_into("state.json", &mut b) {
            Ok(_) => {
                // A reversed journal *can* legally rebuild the same
                // structure for tiny inputs; then the state is simply
                // equivalent and restore is correct to accept it.
                assert_eq!(b.trie_digests(), (state.trie4_digest, state.trie6_digest));
            }
            Err(AnonError::StateInvalid { kind, .. }) => {
                assert_eq!(kind, StateErrorKind::Corrupted);
            }
            Err(other) => panic!("unexpected error class: {other}"),
        }
    }

    #[test]
    fn version_and_owner_mismatches_are_distinct() {
        let a = warmed_anonymizer();
        let state = capture(&a);
        let text = String::from_utf8(state.to_bytes()).unwrap();

        // Version mismatch.
        let wrong = text.replace(STATE_SCHEMA, "confanon-state-v0");
        match AnonState::from_json_str("p", &wrong) {
            Err(AnonError::StateInvalid { kind, .. }) => {
                assert_eq!(kind, StateErrorKind::VersionMismatch)
            }
            other => panic!("{other:?}"),
        }

        // Truncation is corruption.
        match AnonState::from_json_str("p", &text[..text.len() / 2]) {
            Err(AnonError::StateInvalid { kind, .. }) => {
                assert_eq!(kind, StateErrorKind::Corrupted)
            }
            other => panic!("{other:?}"),
        }

        // Owner mismatch.
        let err = state
            .check_owner("p", &RunManifest::fingerprint(b"other-secret"), &a.perm_fingerprint())
            .unwrap_err();
        match err {
            AnonError::StateInvalid { kind, .. } => {
                assert_eq!(kind, StateErrorKind::FingerprintMismatch)
            }
            other => panic!("{other:?}"),
        }
        // Matching owner passes.
        state
            .check_owner(
                "p",
                &RunManifest::fingerprint(b"state-test-secret"),
                &a.perm_fingerprint(),
            )
            .expect("matching owner");
    }

    #[test]
    fn load_absent_is_cold_start_and_save_round_trips() {
        use crate::fsx::StdFs;
        let dir = std::env::temp_dir().join(format!(
            "confanon-state-roundtrip-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        assert_eq!(AnonState::load(&StdFs, &dir).expect("load"), None);

        let a = warmed_anonymizer();
        let state = capture(&a);
        let mut stats = DurabilityStats::default();
        state.save(&StdFs, &dir, &mut stats).expect("save");
        assert_eq!(stats.atomic_writes, 1);
        let back = AnonState::load(&StdFs, &dir).expect("load").expect("present");
        assert_eq!(back, state);
        let _ = std::fs::remove_dir_all(&dir);
    }

    confanon_testkit::props! {
        cases = 96;

        /// State publishing is all-or-nothing under injected faults: a
        /// torn overwrite leaves the previous state byte-intact and
        /// loadable, a successful one is complete, and no `*.fsx-tmp`
        /// staging file survives either way.
        fn faulted_state_save_keeps_the_old_state_intact(seed in 0u64..1_000_000) {
            use crate::fsx::StdFs;
            use confanon_testkit::faultfs::FaultFs;
            let dir = std::env::temp_dir().join(format!(
                "confanon-state-fault-{}-{seed}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("mkdir");

            // A good previous state on disk...
            let a = warmed_anonymizer();
            let old = capture(&a);
            let mut stats = DurabilityStats::default();
            old.save(&StdFs, &dir, &mut stats).expect("seed state");
            let old_bytes = std::fs::read(state_path(&dir)).expect("read old");

            // ...overwritten by a grown state through a faulty filesystem.
            let mut b = Anonymizer::new(AnonymizerConfig::new(b"state-test-secret".to_vec()));
            old.restore_into("state.json", &mut b).expect("restore");
            b.anonymize_config(" ip route 172.19.4.0 255.255.255.0 Null0\n");
            let new = AnonState::capture(
                &b,
                old.secret_fingerprint.clone(),
                old.files.clone(),
            );
            assert_ne!(new.to_bytes(), old_bytes, "grown state must differ");

            let fs = FaultFs::new(seed);
            match new.save(&fs, &dir, &mut stats) {
                Ok(()) => {
                    assert_eq!(
                        std::fs::read(state_path(&dir)).expect("read new"),
                        new.to_bytes(),
                        "seed {seed}: committed state must be the complete new document"
                    );
                }
                Err(_) => {
                    // A fault after the rename (e.g. on the directory
                    // sync) reports failure with the new document
                    // already in place; a fault before it leaves the old
                    // one. Either way the file is one *complete*
                    // document — never a torn mixture.
                    let on_disk = std::fs::read(state_path(&dir)).expect("read state");
                    assert!(
                        on_disk == old_bytes || on_disk == new.to_bytes(),
                        "seed {seed}: failed save left a torn state document"
                    );
                    let back = AnonState::load(&StdFs, &dir)
                        .expect("state still parses after a failed save")
                        .expect("present");
                    assert!(back == old || back == new);
                }
            }
            let residue: Vec<String> = std::fs::read_dir(&dir)
                .expect("read dir")
                .flatten()
                .map(|e| e.file_name().to_string_lossy().to_string())
                .filter(|n| n.ends_with(".fsx-tmp"))
                .collect();
            assert!(residue.is_empty(), "seed {seed}: staging residue {residue:?}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
