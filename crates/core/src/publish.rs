//! The journaled publisher: every byte a corpus run emits goes through
//! here.
//!
//! [`Publisher`] enforces the write-ahead discipline around
//! [`crate::manifest::RunManifest`]:
//!
//! 1. **journal first** — a file's new state (and the digest of the
//!    bytes about to appear) is written durably into
//!    `run_manifest.json` *before* the bytes themselves;
//! 2. **publish second** — the bytes land via
//!    [`crate::fsx::write_atomic`], so they appear in one atomic step.
//!
//! A crash between the two steps leaves a manifest that *over*-claims
//! (an entry says `released` but the file is absent or stale); never an
//! output directory that over-claims. [`Publisher::resume`] exploits
//! exactly that asymmetry: it trusts nothing, re-verifies every
//! `released` entry against its digest, demotes anything unverifiable
//! back to `pending`, sweeps staging files, and hands back the set of
//! files whose outputs are already correct so the pipeline can skip
//! re-emitting them.
//!
//! All durable writes go through the injectable [`Fs`] trait, so the
//! fault-injection suites drive this layer through torn writes and
//! rename failures too.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use crate::error::AnonError;
use crate::fsx::{self, write_atomic, DurabilityStats, Fs};
use crate::manifest::{FileStatus, RunManifest, RUN_MANIFEST_NAME};

/// The journaled publisher for one corpus run.
pub struct Publisher<'a> {
    fs: &'a dyn Fs,
    out_dir: PathBuf,
    manifest: RunManifest,
    /// True once a complete manifest has been durably written: from then
    /// on any publish failure leaves a resumable run on disk.
    manifest_durable: bool,
    stats: DurabilityStats,
}

/// The released target path for a corpus file (mirrors the historical
/// `<name>.anon` layout of `confanon batch`).
fn released_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.anon"))
}

/// Best-effort removal of `write_atomic` staging files under `dir`,
/// recursively. Uses the real filesystem directly: both [`Fs`] impls
/// are backed by it, and a sweep that cannot list a directory has
/// nothing it could correctly delete there anyway.
fn sweep_tmp_files(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            sweep_tmp_files(&path);
        } else if fsx::is_tmp_path(&path) {
            let _ = std::fs::remove_file(&path);
        }
    }
}

impl<'a> Publisher<'a> {
    /// Starts a fresh run: writes an all-`pending` manifest durably into
    /// `out_dir` before any output exists, so even a crash during
    /// anonymization leaves a resumable journal behind.
    pub fn begin(
        fs: &'a dyn Fs,
        out_dir: &Path,
        secret: &[u8],
        names: &[String],
    ) -> Result<Publisher<'a>, AnonError> {
        let mut p = Publisher {
            fs,
            out_dir: out_dir.to_path_buf(),
            manifest: RunManifest::new(secret, names),
            manifest_durable: false,
            stats: DurabilityStats::default(),
        };
        p.journal()?;
        Ok(p)
    }

    /// Resumes an interrupted run: loads and validates the journal, then
    /// re-verifies its claims against the output directory.
    ///
    /// Validation failures are [`AnonError::InvalidInput`] — a missing
    /// manifest, a different owner secret, or a corpus whose file list
    /// no longer matches must stop the run, not silently start over.
    ///
    /// Returns the publisher plus the names whose released outputs
    /// verified byte-for-byte (the pipeline may skip re-emitting them).
    /// Everything else — pending, failed, quarantined, or released-but-
    /// unverifiable — is demoted to `pending` and will be re-processed;
    /// stale released files are removed so the output directory never
    /// holds bytes the journal does not vouch for.
    pub fn resume(
        fs: &'a dyn Fs,
        out_dir: &Path,
        secret: &[u8],
        names: &[String],
    ) -> Result<(Publisher<'a>, BTreeSet<String>), AnonError> {
        let manifest_path = out_dir.join(RUN_MANIFEST_NAME);
        let bytes = fs.read(&manifest_path).map_err(|e| AnonError::InvalidInput {
            message: format!(
                "nothing to resume: cannot read {}: {e}",
                manifest_path.display()
            ),
        })?;
        let text = String::from_utf8_lossy(&bytes);
        let mut manifest = RunManifest::from_json_str(&text)?;
        if manifest.secret_fingerprint != RunManifest::fingerprint(secret) {
            return Err(AnonError::InvalidInput {
                message: format!(
                    "{}: owner secret does not match the interrupted run \
                     (fingerprint mismatch)",
                    manifest_path.display()
                ),
            });
        }
        let manifest_names: Vec<&str> = manifest.files.iter().map(|f| f.name.as_str()).collect();
        let corpus_names: Vec<&str> = names.iter().map(String::as_str).collect();
        if manifest_names != corpus_names {
            return Err(AnonError::InvalidInput {
                message: format!(
                    "{}: corpus file list changed since the interrupted run \
                     ({} file(s) then, {} now); resume requires the identical corpus",
                    manifest_path.display(),
                    manifest_names.len(),
                    corpus_names.len()
                ),
            });
        }

        // A crash can strand staging files anywhere we write.
        sweep_tmp_files(out_dir);

        // Re-verify every released claim; trust digests, not statuses.
        let mut verified = BTreeSet::new();
        for entry in &mut manifest.files {
            let keep = entry.status == FileStatus::Released
                && entry.digest.as_deref().is_some_and(|digest| {
                    fs.read(&released_path(out_dir, &entry.name))
                        .is_ok_and(|bytes| RunManifest::digest_hex(&bytes) == digest)
                });
            if keep {
                verified.insert(entry.name.clone());
            } else {
                if entry.status == FileStatus::Released {
                    // Journaled as released but missing or stale on disk:
                    // remove any stale bytes before re-processing.
                    let _ = fs.remove_file(&released_path(out_dir, &entry.name));
                }
                entry.status = FileStatus::Pending;
                entry.digest = None;
            }
        }

        let mut p = Publisher {
            fs,
            out_dir: out_dir.to_path_buf(),
            manifest,
            manifest_durable: false,
            stats: DurabilityStats::default(),
        };
        p.journal()?;
        Ok((p, verified))
    }

    /// Starts a warm incremental run over a corpus that may have grown,
    /// shrunk, or been edited since the previous completed run whose
    /// outputs still sit in `out_dir`.
    ///
    /// `unchanged` names the files whose content watermark matched the
    /// persisted anonymizer state: their previously-released bytes are
    /// digest-verified against the prior manifest and, when they verify,
    /// pre-marked `released` in the *new* manifest so the pipeline can
    /// skip re-emitting them. Everything else starts `pending`. On-disk
    /// outputs the new manifest does not vouch for — deleted corpus
    /// files, edited files, unverifiable bytes — are removed, so the
    /// output directory after the warm run is byte-identical to a cold
    /// run over the same corpus.
    ///
    /// With no readable prior manifest this is exactly
    /// [`Publisher::begin`] plus an empty verified set. A prior manifest
    /// under a different owner secret is refused
    /// ([`AnonError::InvalidInput`]). Unlike [`Publisher::resume`], the
    /// corpus file list is free to differ from the prior run's — that is
    /// the point of an incremental run.
    pub fn begin_incremental(
        fs: &'a dyn Fs,
        out_dir: &Path,
        secret: &[u8],
        names: &[String],
        unchanged: &BTreeSet<String>,
    ) -> Result<(Publisher<'a>, BTreeSet<String>), AnonError> {
        let manifest_path = out_dir.join(RUN_MANIFEST_NAME);
        let prior = match fs.read(&manifest_path) {
            Err(_) => None,
            Ok(bytes) => Some(RunManifest::from_json_str(&String::from_utf8_lossy(&bytes))?),
        };
        let Some(prior) = prior else {
            let p = Publisher::begin(fs, out_dir, secret, names)?;
            return Ok((p, BTreeSet::new()));
        };
        if prior.secret_fingerprint != RunManifest::fingerprint(secret) {
            return Err(AnonError::InvalidInput {
                message: format!(
                    "{}: owner secret does not match the previous run \
                     (fingerprint mismatch)",
                    manifest_path.display()
                ),
            });
        }

        sweep_tmp_files(out_dir);

        // Carry forward only claims that verify *now*: the file must be
        // watermark-unchanged, journaled `released` by the prior run,
        // and its on-disk bytes must still match the journaled digest.
        let mut manifest = RunManifest::new(secret, names);
        let mut verified = BTreeSet::new();
        for entry in &mut manifest.files {
            if !unchanged.contains(&entry.name) {
                continue;
            }
            let carried = prior.entry(&entry.name).and_then(|old| {
                if old.status != FileStatus::Released {
                    return None;
                }
                let digest = old.digest.as_deref()?;
                let bytes = fs.read(&released_path(out_dir, &entry.name)).ok()?;
                (RunManifest::digest_hex(&bytes) == digest).then(|| digest.to_string())
            });
            if let Some(digest) = carried {
                entry.status = FileStatus::Released;
                entry.digest = Some(digest);
                verified.insert(entry.name.clone());
            }
        }

        // Remove every prior output the new manifest does not vouch for:
        // stale bytes of edited files (they re-publish), and outputs of
        // corpus files that no longer exist (a cold run would not emit
        // them).
        for old in &prior.files {
            if !verified.contains(&old.name) {
                let _ = fs.remove_file(&released_path(out_dir, &old.name));
            }
        }

        let mut p = Publisher {
            fs,
            out_dir: out_dir.to_path_buf(),
            manifest,
            manifest_durable: false,
            stats: DurabilityStats::default(),
        };
        p.journal()?;
        Ok((p, verified))
    }

    /// Durably rewrites the journal with the current in-memory state.
    fn journal(&mut self) -> Result<(), AnonError> {
        let path = self.out_dir.join(RUN_MANIFEST_NAME);
        write_atomic(self.fs, &path, &self.manifest.to_bytes(), &mut self.stats)?;
        self.manifest_durable = true;
        Ok(())
    }

    /// Marks `name` with `status`/`digest` or reports the corpus/journal
    /// mismatch as an error.
    fn set_entry(
        &mut self,
        name: &str,
        status: FileStatus,
        digest: Option<String>,
    ) -> Result<(), AnonError> {
        if self.manifest.set(name, status, digest) {
            Ok(())
        } else {
            Err(AnonError::InvalidInput {
                message: format!("{RUN_MANIFEST_NAME}: no entry for corpus file {name:?}"),
            })
        }
    }

    /// Releases one file: journals the `released` state (with the digest
    /// of `bytes`) durably, *then* publishes the bytes atomically. At no
    /// observable point does the output directory contain a file whose
    /// digest is absent from the journal.
    pub fn release(&mut self, name: &str, bytes: &[u8]) -> Result<(), AnonError> {
        self.set_entry(
            name,
            FileStatus::Released,
            Some(RunManifest::digest_hex(bytes)),
        )?;
        self.journal()?;
        write_atomic(
            self.fs,
            &released_path(&self.out_dir, name),
            bytes,
            &mut self.stats,
        )
    }

    /// Quarantines one file: journals the `quarantined` state, then
    /// writes the bytes into `quarantine_dir` (never the output
    /// directory).
    pub fn quarantine(
        &mut self,
        quarantine_dir: &Path,
        name: &str,
        bytes: &[u8],
    ) -> Result<(), AnonError> {
        self.set_entry(
            name,
            FileStatus::Quarantined,
            Some(RunManifest::digest_hex(bytes)),
        )?;
        self.journal()?;
        write_atomic(
            self.fs,
            &released_path(quarantine_dir, name),
            bytes,
            &mut self.stats,
        )
    }

    /// Journals panic-contained files as `failed` (no bytes exist for
    /// them) in one durable write.
    pub fn mark_failed(&mut self, names: &[String]) -> Result<(), AnonError> {
        if names.is_empty() {
            return Ok(());
        }
        for n in names {
            self.set_entry(n, FileStatus::Failed, None)?;
        }
        self.journal()
    }

    /// Journals every name in `names` as a decoy input (`--decoys N`) in
    /// one durable write — the owner's provenance record for injected
    /// chaff. Called right after `begin`/`resume`/`begin_incremental`
    /// so the flags are on disk before any decoy bytes publish.
    pub fn mark_decoys(&mut self, names: &BTreeSet<String>) -> Result<(), AnonError> {
        if names.is_empty() {
            return Ok(());
        }
        if !self.manifest.mark_decoys(names) {
            return Err(AnonError::InvalidInput {
                message: format!("{RUN_MANIFEST_NAME}: decoy name not in corpus"),
            });
        }
        self.journal()
    }

    /// Writes an unjournaled artifact (a leak report, a bench file)
    /// atomically and durably through the same counters.
    pub fn write_report(&mut self, path: &Path, bytes: &[u8]) -> Result<(), AnonError> {
        write_atomic(self.fs, path, bytes, &mut self.stats)
    }

    /// True once a complete manifest is durably on disk — the condition
    /// under which a later publish failure is *resumable* rather than
    /// plainly fatal.
    pub fn manifest_durable(&self) -> bool {
        self.manifest_durable
    }

    /// The current journal state (for summaries and assertions).
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// Finishes the run, yielding the final journal and the durability
    /// counters accumulated across every write.
    pub fn finish(self) -> (RunManifest, DurabilityStats) {
        (self.manifest, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsx::StdFs;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "confanon-publish-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mk tmpdir");
        d
    }

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn manifest_on_disk(dir: &Path) -> RunManifest {
        let text =
            std::fs::read_to_string(dir.join(RUN_MANIFEST_NAME)).expect("manifest readable");
        RunManifest::from_json_str(&text).expect("manifest parses")
    }

    #[test]
    fn begin_release_finish_round_trip() {
        let dir = tmpdir("roundtrip");
        let ns = names(&["a.cfg", "net/b.cfg"]);
        let mut p = Publisher::begin(&StdFs, &dir, b"s3cret", &ns).expect("begin");
        assert!(p.manifest_durable());
        assert_eq!(manifest_on_disk(&dir).pending_count(), 2);

        p.release("a.cfg", b"anon a\n").expect("release a");
        p.release("net/b.cfg", b"anon b\n").expect("release b");
        let (manifest, stats) = p.finish();

        assert_eq!(manifest.pending_count(), 0);
        assert_eq!(manifest_on_disk(&dir), manifest);
        assert_eq!(
            std::fs::read(dir.join("a.cfg.anon")).expect("read"),
            b"anon a\n"
        );
        assert_eq!(
            std::fs::read(dir.join("net/b.cfg.anon")).expect("read"),
            b"anon b\n"
        );
        // begin + 2×(journal + publish) = 5 atomic writes.
        assert_eq!(stats.atomic_writes, 5);
        let entry = manifest.entry("a.cfg").expect("entry");
        assert_eq!(entry.status, FileStatus::Released);
        assert_eq!(entry.digest.as_deref(), Some(RunManifest::digest_hex(b"anon a\n").as_str()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn release_journals_before_publishing() {
        // After a release, the on-disk manifest must vouch for the
        // on-disk bytes; the converse (bytes without journal) is the
        // state release() can never create.
        let dir = tmpdir("wal");
        let ns = names(&["a.cfg"]);
        let mut p = Publisher::begin(&StdFs, &dir, b"s", &ns).expect("begin");
        p.release("a.cfg", b"payload").expect("release");
        let m = manifest_on_disk(&dir);
        let on_disk = std::fs::read(dir.join("a.cfg.anon")).expect("read");
        assert_eq!(
            m.entry("a.cfg").and_then(|e| e.digest.clone()),
            Some(RunManifest::digest_hex(&on_disk))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_skips_verified_and_demotes_the_rest() {
        let dir = tmpdir("resume");
        let ns = names(&["a.cfg", "b.cfg", "c.cfg", "d.cfg"]);
        let mut p = Publisher::begin(&StdFs, &dir, b"s", &ns).expect("begin");
        p.release("a.cfg", b"good").expect("release a");
        p.release("b.cfg", b"stale").expect("release b");
        p.mark_failed(&names(&["c.cfg"])).expect("fail c");
        drop(p);
        // Corrupt b's output (a torn/stale file) and strand a staging file.
        std::fs::write(dir.join("b.cfg.anon"), b"sta").expect("corrupt");
        std::fs::write(dir.join(".x.anon.1.2.fsx-tmp"), b"junk").expect("tmp");

        let (p, verified) = Publisher::resume(&StdFs, &dir, b"s", &ns).expect("resume");
        assert_eq!(verified, BTreeSet::from(["a.cfg".to_string()]));
        // b demoted and its stale bytes removed; c and d pending again.
        assert!(!dir.join("b.cfg.anon").exists());
        assert!(!dir.join(".x.anon.1.2.fsx-tmp").exists());
        let m = p.manifest();
        assert_eq!(m.entry("a.cfg").map(|e| e.status), Some(FileStatus::Released));
        for n in ["b.cfg", "c.cfg", "d.cfg"] {
            assert_eq!(m.entry(n).map(|e| e.status), Some(FileStatus::Pending), "{n}");
        }
        assert_eq!(manifest_on_disk(&dir), *m, "demotions are re-journaled");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_missing_manifest_wrong_secret_and_changed_corpus() {
        let dir = tmpdir("reject");
        let ns = names(&["a.cfg"]);
        assert!(
            matches!(
                Publisher::resume(&StdFs, &dir, b"s", &ns),
                Err(AnonError::InvalidInput { .. })
            ),
            "no manifest"
        );
        drop(Publisher::begin(&StdFs, &dir, b"s", &ns).expect("begin"));
        assert!(
            matches!(
                Publisher::resume(&StdFs, &dir, b"other", &ns),
                Err(AnonError::InvalidInput { .. })
            ),
            "wrong secret"
        );
        assert!(
            matches!(
                Publisher::resume(&StdFs, &dir, b"s", &names(&["a.cfg", "new.cfg"])),
                Err(AnonError::InvalidInput { .. })
            ),
            "changed corpus"
        );
        let (_, verified) = Publisher::resume(&StdFs, &dir, b"s", &ns).expect("valid resume");
        assert!(verified.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_writes_outside_out_dir_and_journals() {
        let dir = tmpdir("quarantine-out");
        let qdir = tmpdir("quarantine-q");
        let ns = names(&["a.cfg"]);
        let mut p = Publisher::begin(&StdFs, &dir, b"s", &ns).expect("begin");
        p.quarantine(&qdir, "a.cfg", b"leaky").expect("quarantine");
        assert!(!dir.join("a.cfg.anon").exists(), "never lands in out-dir");
        assert_eq!(std::fs::read(qdir.join("a.cfg.anon")).expect("read"), b"leaky");
        assert_eq!(
            manifest_on_disk(&dir).entry("a.cfg").map(|e| e.status),
            Some(FileStatus::Quarantined)
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&qdir);
    }

    #[test]
    fn begin_incremental_without_prior_manifest_is_begin() {
        let dir = tmpdir("incr-cold");
        let ns = names(&["a.cfg", "b.cfg"]);
        let unchanged = BTreeSet::from(["a.cfg".to_string()]);
        let (p, verified) =
            Publisher::begin_incremental(&StdFs, &dir, b"s", &ns, &unchanged).expect("begin");
        assert!(verified.is_empty(), "nothing to carry on a cold start");
        assert_eq!(p.manifest().pending_count(), 2);
        assert_eq!(manifest_on_disk(&dir).pending_count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn begin_incremental_carries_verified_and_prunes_the_rest() {
        let dir = tmpdir("incr-warm");
        let ns = names(&["a.cfg", "b.cfg", "gone.cfg"]);
        let mut p = Publisher::begin(&StdFs, &dir, b"s", &ns).expect("begin");
        p.release("a.cfg", b"anon a\n").expect("a");
        p.release("b.cfg", b"anon b\n").expect("b");
        p.release("gone.cfg", b"anon gone\n").expect("gone");
        drop(p);

        // The corpus grows by new.cfg, loses gone.cfg, and b.cfg was
        // edited (not in the unchanged set). Only a.cfg carries forward.
        let ns2 = names(&["a.cfg", "b.cfg", "new.cfg"]);
        let unchanged = BTreeSet::from(["a.cfg".to_string()]);
        let (p2, verified) =
            Publisher::begin_incremental(&StdFs, &dir, b"s", &ns2, &unchanged).expect("warm");
        assert_eq!(verified, BTreeSet::from(["a.cfg".to_string()]));
        assert_eq!(
            std::fs::read(dir.join("a.cfg.anon")).expect("kept"),
            b"anon a\n"
        );
        assert!(!dir.join("b.cfg.anon").exists(), "edited file's bytes pruned");
        assert!(!dir.join("gone.cfg.anon").exists(), "deleted file's bytes pruned");
        let m = p2.manifest();
        assert_eq!(m.entry("a.cfg").map(|e| e.status), Some(FileStatus::Released));
        assert_eq!(m.entry("b.cfg").map(|e| e.status), Some(FileStatus::Pending));
        assert_eq!(m.entry("new.cfg").map(|e| e.status), Some(FileStatus::Pending));
        assert!(m.entry("gone.cfg").is_none(), "new manifest covers the new corpus");
        assert_eq!(manifest_on_disk(&dir), *m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn begin_incremental_demotes_unchanged_files_with_tampered_bytes() {
        // An "unchanged" input whose released bytes were tampered with on
        // disk must not carry forward: trust digests, not watermarks.
        let dir = tmpdir("incr-tamper");
        let ns = names(&["a.cfg"]);
        let mut p = Publisher::begin(&StdFs, &dir, b"s", &ns).expect("begin");
        p.release("a.cfg", b"anon a\n").expect("a");
        drop(p);
        std::fs::write(dir.join("a.cfg.anon"), b"tampered").expect("tamper");

        let unchanged = BTreeSet::from(["a.cfg".to_string()]);
        let (p2, verified) =
            Publisher::begin_incremental(&StdFs, &dir, b"s", &ns, &unchanged).expect("warm");
        assert!(verified.is_empty());
        assert!(!dir.join("a.cfg.anon").exists(), "tampered bytes pruned");
        assert_eq!(
            p2.manifest().entry("a.cfg").map(|e| e.status),
            Some(FileStatus::Pending)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn begin_incremental_rejects_a_foreign_manifest() {
        let dir = tmpdir("incr-foreign");
        let ns = names(&["a.cfg"]);
        drop(Publisher::begin(&StdFs, &dir, b"s", &ns).expect("begin"));
        assert!(
            matches!(
                Publisher::begin_incremental(&StdFs, &dir, b"other", &ns, &BTreeSet::new()),
                Err(AnonError::InvalidInput { .. })
            ),
            "wrong secret"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mark_decoys_journals_provenance_and_survives_resume() {
        let dir = tmpdir("decoys");
        let ns = names(&["a.cfg", "net/zz-decoy-0.cfg"]);
        let mut p = Publisher::begin(&StdFs, &dir, b"s", &ns).expect("begin");
        let decoys = BTreeSet::from(["net/zz-decoy-0.cfg".to_string()]);
        p.mark_decoys(&decoys).expect("mark");
        assert_eq!(
            manifest_on_disk(&dir).decoy_names(),
            vec!["net/zz-decoy-0.cfg".to_string()],
            "flags are journaled before any bytes publish"
        );
        p.release("a.cfg", b"real").expect("a");
        p.release("net/zz-decoy-0.cfg", b"chaff").expect("decoy");
        drop(p);

        // Resume keeps the provenance flag even while re-verifying.
        let (p2, verified) = Publisher::resume(&StdFs, &dir, b"s", &ns).expect("resume");
        assert_eq!(verified.len(), 2);
        assert_eq!(p2.manifest().decoy_names(), vec!["net/zz-decoy-0.cfg".to_string()]);

        // Unknown decoy names are a corpus/journal mismatch.
        let mut p3 = Publisher::begin(&StdFs, &dir, b"s", &ns).expect("begin again");
        let bogus = BTreeSet::from(["missing.cfg".to_string()]);
        assert!(matches!(
            p3.mark_decoys(&bogus),
            Err(AnonError::InvalidInput { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_resume_is_idempotent() {
        let dir = tmpdir("idempotent");
        let ns = names(&["a.cfg", "b.cfg"]);
        let mut p = Publisher::begin(&StdFs, &dir, b"s", &ns).expect("begin");
        p.release("a.cfg", b"one").expect("a");
        p.release("b.cfg", b"two").expect("b");
        let (done, _) = p.finish();
        let (p2, verified) = Publisher::resume(&StdFs, &dir, b"s", &ns).expect("resume");
        assert_eq!(verified.len(), 2, "everything verifies, nothing to redo");
        assert_eq!(*p2.manifest(), done);
        assert_eq!(manifest_on_disk(&dir), done);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
