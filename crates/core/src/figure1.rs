//! The paper's Figure 1 example configuration, verbatim.
//!
//! "Excerpts of a router configuration file" — the running example every
//! section of the paper refers back to. Tests and the quickstart example
//! anonymize it end to end.

/// The pre-anonymization configuration of Figure 1.
pub const FIGURE1_CONFIG: &str = "\
hostname cr1.lax.foo.com
!
banner motd ^C
FooNet contact xxx@foo.com
Access strictly prohibited!
^C
!
interface Ethernet0
 description Foo Corp's LAX Main St offices
 ip address 1.1.1.1 255.255.255.0
!
interface Serial1/0.5 point-to-point
 description cr1.sfo-serial3/0.5
 ip address 1.2.0.1 255.255.255.252
!
router bgp 1111
 redistribute rip
 neighbor 12.126.236.17 remote-as 701
 neighbor 12.126.236.17 route-map UUNET-import in
 neighbor 12.126.236.17 route-map UUNET-export out
!
route-map UUNET-import deny 10
 match as-path 50
 match community 100
route-map UUNET-import permit 20
route-map UUNET-export permit 30
 match ip address 143
 set community 701:120
!
access-list 143 permit ip 1.1.1.0 0.0.0.255 any
ip community-list 100 permit 701:7[1-5]..
ip as-path access-list 50 permit (_1239_|_70[2-5]_)
!
router rip
 network 1.0.0.0
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_the_papers_shape() {
        assert!(FIGURE1_CONFIG.contains("router bgp 1111"));
        assert!(FIGURE1_CONFIG.contains("remote-as 701"));
        assert!(FIGURE1_CONFIG.contains("(_1239_|_70[2-5]_)"));
        assert!(FIGURE1_CONFIG.contains("701:7[1-5].."));
        assert!(FIGURE1_CONFIG.contains("network 1.0.0.0"));
        assert_eq!(FIGURE1_CONFIG.lines().count(), 35);
    }
}
